//! Umbrella crate re-exporting the Indexed DataFrame workspace.
//!
//! See the individual crates for documentation:
//! - [`idf_engine`] — the DataFrame/SQL engine substrate
//! - [`idf_ctrie`] — the concurrent trie index structure
//! - [`idf_core`] — the Indexed DataFrame itself
//! - [`idf_snb`] — the SNB-like benchmark data generator and queries
//! - [`idf_durable`] — WAL, checkpoints and crash recovery (feature
//!   `durability`, on by default)

pub use idf_core as core;
pub use idf_ctrie as ctrie;
#[cfg(feature = "durability")]
pub use idf_durable as durable;
pub use idf_engine as engine;
pub use idf_snb as snb;
