//! Workspace-level integration tests: all four crates together, exercising
//! the paths the paper's demo exercises — index creation over generated
//! graph data, transparent indexed execution through SQL, streaming
//! updates, and agreement with vanilla execution throughout.

use indexed_dataframe::core::prelude::*;
use indexed_dataframe::engine::prelude::*;
use indexed_dataframe::snb::{
    generate, query, register, Mode, QueryParams, SnbConfig, UpdateStream,
};

fn dataset() -> indexed_dataframe::snb::SnbData {
    generate(SnbConfig::with_scale(0.1)).expect("datagen")
}

#[test]
fn paper_listing1_lifecycle() {
    let data = dataset();
    let session = Session::new();
    // createIndex on a DataFrame built from generated graph data.
    let person = session.dataframe_from_chunk(
        indexed_dataframe::snb::gen::person_schema(),
        data.person.clone(),
    );
    let indexed = person.create_index("id").expect("createIndex");
    let indexed = indexed.cache();
    // getRows
    let one = indexed.get_rows(5i64).expect("getRows");
    assert_eq!(one.count().unwrap(), 1);
    // appendRows
    let extra = session.create_dataframe(
        indexed_dataframe::snb::gen::person_schema(),
        vec![data.person.row_values(5)],
    );
    indexed.append_rows(&extra).expect("appendRows");
    assert_eq!(indexed.get_rows(5i64).unwrap().count().unwrap(), 2);
    // join
    let knows = session.dataframe_from_chunk(
        indexed_dataframe::snb::gen::knows_schema(),
        data.knows.clone(),
    );
    let joined = indexed.join(&knows, "id", "person1_id").expect("join");
    assert!(joined.explain().unwrap().contains("IndexedJoin"));
    assert!(
        joined.count().unwrap() > data.knows.len(),
        "dup of person 5 fans out"
    );
}

#[test]
fn seven_short_reads_agree_under_updates() {
    let data = dataset();
    let vanilla = Session::new();
    register(&vanilla, &data, Mode::Vanilla).unwrap();
    let indexed = Session::new();
    let tables = register(&indexed, &data, Mode::Indexed).unwrap().unwrap();

    // Stream some updates into the indexed side only; then append the same
    // rows to fresh vanilla registrations via re-registration is overkill —
    // instead verify the indexed side keeps answering correctly while
    // updated, and agreement holds on the *original* key space.
    let mut stream = UpdateStream::new(&data, 99);
    for e in stream.take_events(200) {
        UpdateStream::apply(&e, &tables).unwrap();
    }
    for i in 0..3u64 {
        let p = QueryParams::nth(
            i,
            data.max_person_id,
            data.max_message_id,
            data.config.forums as i64,
        );
        // SQ1 keys below the original range answer identically (updates
        // only add ids above the range).
        let a = query(&indexed, 1, &p).unwrap().collect().unwrap();
        let b = query(&vanilla, 1, &p).unwrap().collect().unwrap();
        assert_eq!(a.to_rows(), b.to_rows());
    }
}

#[test]
fn sql_and_dataframe_apis_agree() {
    let data = dataset();
    let session = Session::new();
    register(&session, &data, Mode::Indexed).unwrap();
    let via_sql = session
        .sql("SELECT person2_id FROM knows WHERE person1_id = 7")
        .unwrap()
        .collect()
        .unwrap();
    let via_df = session
        .table("knows")
        .unwrap()
        .filter(col("person1_id").eq(lit(7i64)))
        .unwrap()
        .select(vec![col("person2_id")])
        .unwrap()
        .collect()
        .unwrap();
    let mut a = via_sql.to_rows();
    let mut b = via_df.to_rows();
    a.sort();
    b.sort();
    assert_eq!(a, b);
}

#[test]
fn ctrie_is_the_index_under_the_hood() {
    // The index handles multi-version chains through cTrie snapshots:
    // verify versions accumulate and snapshots isolate, end to end.
    let session = Session::new();
    let schema = std::sync::Arc::new(Schema::new(vec![
        Field::new("k", DataType::Int64),
        Field::new("v", DataType::Int64),
    ]));
    let df = session.create_dataframe(
        std::sync::Arc::clone(&schema),
        vec![vec![Value::Int64(1), Value::Int64(0)]],
    );
    let indexed = df.create_index("k").unwrap();
    let frozen = indexed.snapshot_df();
    for ver in 1..=10i64 {
        indexed
            .append_row(&[Value::Int64(1), Value::Int64(ver)])
            .unwrap();
    }
    assert_eq!(frozen.count().unwrap(), 1, "snapshot stays at version 0");
    let chain = indexed.get_rows_chunk(1i64).unwrap();
    assert_eq!(chain.len(), 11);
    assert_eq!(chain.value_at(1, 0), Value::Int64(10), "latest first");
    assert_eq!(chain.value_at(1, 10), Value::Int64(0));
}

#[test]
fn vanilla_fallback_is_transparent() {
    let data = dataset();
    let session = Session::new();
    register(&session, &data, Mode::Indexed).unwrap();
    // A query the index cannot help: range scan + group by over messages.
    let df = session
        .sql(
            "SELECT browser_used, count(*) AS n FROM message \
             WHERE length > 50 GROUP BY browser_used ORDER BY n DESC",
        )
        .unwrap();
    let plan = df.explain().unwrap();
    assert!(!plan.contains("IndexedJoin"));
    let out = df.collect().unwrap();
    assert!(out.len() <= 5);
}
