//! Soak test: the demo scenario end to end for thousands of operations —
//! a continuous update stream applied to the indexed tables while the
//! dashboard queries run and verify invariants the whole time.
//!
//! This is the closest automated analogue of §4's live demonstration.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use indexed_dataframe::engine::prelude::*;
use indexed_dataframe::snb::{
    generate, query, register_indexed, QueryParams, SnbConfig, UpdateEvent, UpdateStream,
};

#[test]
fn dashboard_queries_stay_correct_under_update_stream() {
    let data = generate(SnbConfig::with_scale(0.2)).unwrap();
    let session = Session::new();
    let tables = Arc::new(register_indexed(&session, &data).unwrap());

    let initial_persons = tables.person.row_count();
    let initial_messages = tables.message.row_count();

    let stop = Arc::new(AtomicBool::new(false));
    let writer = {
        let tables = Arc::clone(&tables);
        let stop = Arc::clone(&stop);
        let data_seed = 2024;
        let mut stream = UpdateStream::new(&data, data_seed);
        std::thread::spawn(move || {
            let mut counts = (0usize, 0usize, 0usize); // person, knows, message
            while !stop.load(Ordering::Relaxed) {
                let e = stream.next_event();
                match &e {
                    UpdateEvent::AddPerson(_) => counts.0 += 1,
                    UpdateEvent::AddKnows(..) => counts.1 += 1,
                    UpdateEvent::AddMessage(_) => counts.2 += 1,
                }
                UpdateStream::apply(&e, &tables).unwrap();
            }
            counts
        })
    };

    // The dashboard: short reads with invariant checks, repeatedly.
    for round in 0..30u64 {
        let p = QueryParams::nth(
            round,
            data.max_person_id,
            data.max_message_id,
            data.config.forums as i64,
        );
        // SQ1: the original person is always present exactly once.
        let profile = query(&session, 1, &p).unwrap().collect().unwrap();
        assert_eq!(
            profile.len(),
            1,
            "round {round}: person {} profile",
            p.person_id
        );
        // SQ3: every returned friend row references the queried person's
        // edges; result sizes only grow over time for a fixed person.
        let friends = query(&session, 3, &p).unwrap().collect().unwrap();
        for r in 0..friends.len() {
            assert!(!friends.value_at(0, r).is_null());
        }
        // SQ2: ordered, limited.
        let messages = query(&session, 2, &p).unwrap().collect().unwrap();
        assert!(messages.len() <= 10);
        for r in 1..messages.len() {
            assert!(
                messages.value_at(2, r - 1) >= messages.value_at(2, r),
                "round {round}: SQ2 ordering"
            );
        }
    }

    stop.store(true, Ordering::Relaxed);
    let (persons_added, knows_added, messages_added) = writer.join().unwrap();
    assert!(
        persons_added + knows_added + messages_added > 0,
        "stream made progress"
    );

    // Final accounting: every applied event is queryable.
    assert_eq!(tables.person.row_count(), initial_persons + persons_added);
    assert_eq!(
        tables.message.row_count(),
        initial_messages + messages_added
    );
    let count = session
        .sql("SELECT count(*) FROM person")
        .unwrap()
        .collect()
        .unwrap();
    assert_eq!(
        count.value_at(0, 0),
        Value::Int64((initial_persons + persons_added) as i64)
    );
    // All three message indexes stayed in lock step.
    assert_eq!(
        tables.message.row_count(),
        tables.message_by_creator.row_count()
    );
    assert_eq!(
        tables.message.row_count(),
        tables.message_by_reply.row_count()
    );
}

#[test]
fn repeated_snapshots_remain_stable_while_appending() {
    let data = generate(SnbConfig::with_scale(0.05)).unwrap();
    let session = Session::new();
    let tables = register_indexed(&session, &data).unwrap();
    let mut frozen_counts = Vec::new();
    let mut stream = UpdateStream::new(&data, 7);
    let mut snapshots = Vec::new();
    for _ in 0..10 {
        snapshots.push(tables.person.snapshot_df());
        frozen_counts.push(snapshots.last().unwrap().count().unwrap());
        for e in stream.take_events(50) {
            UpdateStream::apply(&e, &tables).unwrap();
        }
    }
    // Every snapshot still reports the count it had when taken.
    for (snap, expected) in snapshots.iter().zip(&frozen_counts) {
        assert_eq!(snap.count().unwrap(), *expected);
    }
    // Counts are monotone over snapshot time.
    for w in frozen_counts.windows(2) {
        assert!(w[0] <= w[1]);
    }
}
