//! Real-time graph monitoring — the paper's demonstration scenario (§4):
//! an SNB social graph mutated by a continuous (Kafka-like) update stream,
//! while a dashboard concurrently runs the short-read queries on the
//! Indexed DataFrame and reports their latencies.
//!
//! ```text
//! cargo run --release --example graph_monitoring
//! ```

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use indexed_dataframe::engine::prelude::*;
use indexed_dataframe::snb::{
    generate, query, register_indexed, QueryParams, SnbConfig, UpdateStream,
};

fn main() -> Result<()> {
    let scale = 1.0;
    println!("generating SNB graph at scale {scale}...");
    let data = generate(SnbConfig::with_scale(scale))?;
    let session = Session::new();
    let tables = Arc::new(register_indexed(&session, &data)?);
    println!(
        "graph loaded: {} persons, {} knows edges, {} messages\n",
        data.person.len(),
        data.knows.len(),
        data.message.len()
    );

    // The "Kafka" feed: a writer thread applying the update stream.
    let stop = Arc::new(AtomicBool::new(false));
    let applied = Arc::new(AtomicUsize::new(0));
    let writer = {
        let tables = Arc::clone(&tables);
        let stop = Arc::clone(&stop);
        let applied = Arc::clone(&applied);
        let mut stream = UpdateStream::new(&data, 7);
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                let event = stream.next_event();
                UpdateStream::apply(&event, &tables).expect("apply update");
                applied.fetch_add(1, Ordering::Relaxed);
            }
        })
    };

    // The dashboard: run the short reads every tick and report latency.
    println!(
        "{:<6} {:>10} {:>12} {:>12} {:>12}",
        "tick", "updates", "SQ1 p50[µs]", "SQ3 p50[µs]", "rows seen"
    );
    for tick in 0..10 {
        let mut sq1_lat = Vec::new();
        let mut sq3_lat = Vec::new();
        let mut rows = 0usize;
        for i in 0..20u64 {
            let p = QueryParams::nth(
                tick * 100 + i,
                data.max_person_id,
                data.max_message_id,
                data.config.forums as i64,
            );
            let t0 = Instant::now();
            rows += query(&session, 1, &p)?.count()?;
            sq1_lat.push(t0.elapsed().as_micros());
            let t0 = Instant::now();
            rows += query(&session, 3, &p)?.count()?;
            sq3_lat.push(t0.elapsed().as_micros());
        }
        sq1_lat.sort_unstable();
        sq3_lat.sort_unstable();
        println!(
            "{:<6} {:>10} {:>12} {:>12} {:>12}",
            tick,
            applied.load(Ordering::Relaxed),
            sq1_lat[sq1_lat.len() / 2],
            sq3_lat[sq3_lat.len() / 2],
            rows
        );
        std::thread::sleep(Duration::from_millis(100));
    }

    stop.store(true, Ordering::Relaxed);
    writer.join().expect("writer thread");
    let total = applied.load(Ordering::Relaxed);
    println!("\napplied {total} streaming updates while the dashboard ran");

    // Prove the updates are queryable: the newest person arrived live.
    let newest = session.sql("SELECT count(*) FROM person")?.collect()?;
    println!(
        "person rows now: {} (started with {})",
        newest.value_at(0, 0),
        data.person.len()
    );
    Ok(())
}
