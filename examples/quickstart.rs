//! Quickstart: the paper's Listing 1, line by line, in Rust.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use std::sync::Arc;

use indexed_dataframe::core::prelude::*;
use indexed_dataframe::engine::prelude::*;

fn main() -> Result<()> {
    let session = Session::new();

    // A regular DataFrame with some rows.
    let schema = Arc::new(Schema::new(vec![
        Field::new("id", DataType::Int64),
        Field::new("name", DataType::Utf8),
        Field::new("score", DataType::Float64),
    ]));
    let rows: Vec<Vec<Value>> = (0..1000)
        .map(|i| {
            vec![
                Value::Int64(i % 100), // non-unique keys: 10 rows per id
                Value::Utf8(format!("user-{i}")),
                Value::Float64(f64::from(i as u32) / 10.0),
            ]
        })
        .collect();
    let regular_df = session.create_dataframe(Arc::clone(&schema), rows);

    // Listing 1, line 2: creating an index.
    let indexed_df = regular_df.create_index("id")?;
    // Listing 1, line 4: caching the indexed data frame (identity here —
    // the indexed representation is always memory-resident).
    let indexed_df = indexed_df.cache();

    // Listing 1, lines 6-7: looking up keys returns a data frame
    // containing all rows.
    let lookup_key = 42i64;
    let result_dataframe = indexed_df.get_rows(lookup_key)?;
    println!("getRows({lookup_key}):\n{}", result_dataframe.show(20)?);

    // Listing 1, line 9: appending all the rows of a regular dataframe.
    let updates = session.create_dataframe(
        Arc::clone(&schema),
        vec![vec![
            Value::Int64(42),
            Value::Utf8("user-42-v2".into()),
            Value::Float64(99.9),
        ]],
    );
    let new_indexed_df = indexed_df.append_rows(&updates)?;
    println!(
        "after appendRows, getRows(42) has {} rows (latest first)\n",
        new_indexed_df.get_rows(lookup_key)?.count()?
    );

    // Listing 1, lines 10-11: index-powered, efficient join.
    let probe_schema = Arc::new(Schema::new(vec![
        Field::new("key", DataType::Int64),
        Field::new("label", DataType::Utf8),
    ]));
    let probe = session.create_dataframe(
        probe_schema,
        vec![
            vec![Value::Int64(42), Value::Utf8("hot".into())],
            vec![Value::Int64(7), Value::Utf8("warm".into())],
        ],
    );
    let result = indexed_df.join(&probe, "id", "key")?;
    println!("indexed join plan:\n{}", result.explain()?);
    println!("indexed join result:\n{}", result.show(30)?);

    // SQL works too, once registered — with transparent indexed execution.
    indexed_df.register("users");
    let sql = session.sql("SELECT name, score FROM users WHERE id = 7")?;
    println!("SQL over the indexed table:\n{}", sql.show(20)?);

    Ok(())
}
