//! Threat detection and response — one of the paper's motivating use
//! cases (§1, citing Brezinski & Armbrust, Spark Summit 2018): a stream of
//! security events indexed by source address, with analysts issuing
//! interactive point lookups and indexed joins against a threat-intel
//! watchlist while events keep arriving.
//!
//! ```text
//! cargo run --release --example threat_detection
//! ```

use std::sync::Arc;
use std::time::Instant;

use indexed_dataframe::core::prelude::*;
use indexed_dataframe::engine::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn event_schema() -> SchemaRef {
    Arc::new(Schema::new(vec![
        Field::new("src_ip", DataType::Int64), // IPv4 as u32 in i64
        Field::new("dst_port", DataType::Int32),
        Field::new("action", DataType::Utf8),
        Field::new("bytes", DataType::Int64),
        Field::new("ts", DataType::Timestamp),
    ]))
}

fn ip(a: u8, b: u8, c: u8, d: u8) -> i64 {
    i64::from(u32::from_be_bytes([a, b, c, d]))
}

fn main() -> Result<()> {
    let session = Session::new();
    let mut rng = StdRng::seed_from_u64(1337);

    // Historical event log: 200k events from ~5k hosts, indexed by source.
    println!("ingesting historical event log...");
    let actions = ["allow", "deny", "alert"];
    let rows: Vec<Vec<Value>> = (0..200_000)
        .map(|i| {
            let host = rng.gen_range(0..5_000u32);
            vec![
                Value::Int64(ip(10, (host >> 8) as u8, host as u8, 1)),
                Value::Int32([22, 80, 443, 3389, 8080][rng.gen_range(0..5)]),
                Value::Utf8(actions[rng.gen_range(0..3)].to_string()),
                Value::Int64(rng.gen_range(40..1_500_000)),
                Value::Timestamp(1_700_000_000_000 + i),
            ]
        })
        .collect();
    let events = session.create_dataframe(event_schema(), rows);
    let indexed = events.create_index("src_ip")?;
    indexed.cache().register("events");
    println!(
        "indexed {} events over {} distinct sources\n",
        indexed.row_count(),
        indexed.memory_stats().index_entries
    );

    // Point lookup: "show me everything this host did" — the interactive
    // triage query that must return in sub-second time.
    let suspect = ip(10, 7, 7, 1);
    let t0 = Instant::now();
    let history = indexed.get_rows(suspect)?;
    let n = history.count()?;
    println!(
        "triage lookup for 10.7.7.1: {n} events in {:.2?} (sub-second: {})",
        t0.elapsed(),
        t0.elapsed().as_millis() < 1000
    );

    // Indexed join against a watchlist of IOCs (indicators of compromise).
    let watch_schema = Arc::new(Schema::new(vec![
        Field::new("bad_ip", DataType::Int64),
        Field::new("campaign", DataType::Utf8),
    ]));
    let watchlist = session.create_dataframe(
        watch_schema,
        (0..50u32)
            .map(|i| {
                vec![
                    Value::Int64(ip(10, (i * 17 % 20) as u8, (i * 31 % 256) as u8, 1)),
                    Value::Utf8(format!("campaign-{}", i % 5)),
                ]
            })
            .collect(),
    );
    let t0 = Instant::now();
    let hits = indexed.join(&watchlist, "src_ip", "bad_ip")?;
    let matches = hits
        .aggregate(vec![col("campaign")], vec![count_star()])?
        .sort(vec![SortExpr::asc(col("campaign"))])?;
    println!(
        "\nwatchlist sweep ({:.2?}):\n{}",
        t0.elapsed(),
        matches.show(10)?
    );

    // Live response: new events stream in and are immediately visible.
    println!("streaming 10k live events while re-running the triage query...");
    for i in 0..10_000i64 {
        indexed.append_row(&[
            Value::Int64(suspect),
            Value::Int32(4444),
            Value::Utf8("alert".into()),
            Value::Int64(999),
            Value::Timestamp(1_700_000_300_000 + i),
        ])?;
    }
    let t0 = Instant::now();
    let after = indexed.get_rows_chunk(suspect)?;
    println!(
        "triage lookup now sees {} events (was {n}) in {:.2?}",
        after.len(),
        t0.elapsed()
    );

    // SQL analysts get the same index transparently.
    let sql = session.sql(&format!(
        "SELECT action, count(*) AS n, sum(bytes) AS total \
         FROM events WHERE src_ip = {suspect} GROUP BY action ORDER BY n DESC"
    ))?;
    println!("\nper-action summary for the suspect:\n{}", sql.show(5)?);
    Ok(())
}
