//! SNB short reads, both modes side by side — a miniature of the paper's
//! Figure 3 you can run in seconds.
//!
//! ```text
//! cargo run --release --example snb_short_reads
//! ```

use std::time::Instant;

use indexed_dataframe::engine::prelude::*;
use indexed_dataframe::snb::{generate, query, register, uses_index, Mode, QueryParams, SnbConfig};

fn main() -> Result<()> {
    let scale = 1.0;
    println!("generating SNB dataset at scale {scale}...");
    let data = generate(SnbConfig::with_scale(scale))?;

    let vanilla = Session::new();
    register(&vanilla, &data, Mode::Vanilla)?;
    let indexed = Session::new();
    register(&indexed, &data, Mode::Indexed)?;
    println!(
        "loaded {} persons, {} knows edges, {} messages\n",
        data.person.len(),
        data.knows.len(),
        data.message.len()
    );

    println!(
        "{:<5} {:>14} {:>14} {:>9}  index used?",
        "query", "indexed [µs]", "vanilla [µs]", "speedup"
    );
    for q in 1..=7usize {
        let mut indexed_us = 0u128;
        let mut vanilla_us = 0u128;
        let mut rows = (0usize, 0usize);
        for i in 0..10u64 {
            let p = QueryParams::nth(
                i,
                data.max_person_id,
                data.max_message_id,
                data.config.forums as i64,
            );
            let df = query(&indexed, q, &p)?;
            let t = Instant::now();
            rows.0 += df.collect()?.len();
            indexed_us += t.elapsed().as_micros();
            let df = query(&vanilla, q, &p)?;
            let t = Instant::now();
            rows.1 += df.collect()?.len();
            vanilla_us += t.elapsed().as_micros();
        }
        assert_eq!(rows.0, rows.1, "SQ{q} modes must agree");
        println!(
            "SQ{q:<4} {:>14} {:>14} {:>8.2}x  {}",
            indexed_us / 10,
            vanilla_us / 10,
            vanilla_us as f64 / indexed_us as f64,
            if uses_index(q) {
                "yes"
            } else {
                "no (forum path)"
            }
        );
    }

    println!("\nexample plan for SQ3 (indexed mode):");
    let p = QueryParams::nth(0, data.max_person_id, data.max_message_id, 1);
    println!("{}", query(&indexed, 3, &p)?.explain()?);
    Ok(())
}
