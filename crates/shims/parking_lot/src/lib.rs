//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to a crates.io mirror, so the
//! workspace vendors the small API subset it actually uses: `Mutex` and
//! `RwLock` whose guard-returning methods do not surface poisoning.
//! Backed by `std::sync` primitives; a poisoned lock is recovered rather
//! than propagated, matching parking_lot's poison-free semantics.

use std::fmt;
use std::ops::{Deref, DerefMut};

/// Mutual exclusion lock with parking_lot's non-poisoning `lock()` API.
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized>(std::sync::MutexGuard<'a, T>);

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(
            self.0
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner),
        )
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// Reader-writer lock with parking_lot's non-poisoning `read()`/`write()`.
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Shared-access guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized>(std::sync::RwLockReadGuard<'a, T>);

/// Exclusive-access guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(std::sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Create a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(
            self.0
                .read()
                .unwrap_or_else(std::sync::PoisonError::into_inner),
        )
    }

    /// Acquire exclusive access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(
            self.0
                .write()
                .unwrap_or_else(std::sync::PoisonError::into_inner),
        )
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn lock_survives_panicking_holder() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        // parking_lot semantics: no poisoning, the lock stays usable.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
