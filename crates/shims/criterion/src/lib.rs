//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to a crates.io mirror, so the
//! workspace vendors the API subset its benches use: `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`,
//! `BenchmarkId`, `Throughput`, `black_box`, and the `criterion_group!`
//! / `criterion_main!` macros. Statistics are deliberately simple —
//! warm-up, then timed samples with mean/p50/p99 printed per benchmark —
//! but the CLI contract CI relies on is honored: `--test` (and `cargo
//! bench`'s implicit `--bench`) runs every benchmark exactly once as a
//! smoke test, and a positional filter restricts which benchmarks run.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export point so benches can `use criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A `function/parameter` benchmark label.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Label `function_name/parameter`.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Label from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Top-level benchmark configuration and runner.
pub struct Criterion {
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
    test_mode: bool,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            warm_up: Duration::from_millis(500),
            measurement: Duration::from_secs(2),
            sample_size: 50,
            test_mode: false,
            filter: None,
        }
    }
}

impl Criterion {
    /// Builder: warm-up duration before sampling.
    #[must_use]
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    /// Builder: target measurement duration.
    #[must_use]
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    /// Builder: number of samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Apply the CLI arguments `cargo bench` forwards to the binary:
    /// `--test` (smoke mode), flags we accept and ignore, and an optional
    /// positional substring filter.
    #[must_use]
    pub fn configure_from_args(mut self) -> Self {
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--test" | "--bench" => self.test_mode |= a == "--test",
                "--profile-time" | "--save-baseline" | "--baseline" | "--measurement-time"
                | "--warm-up-time" | "--sample-size" => {
                    let _ = args.next(); // swallow the flag's value
                }
                flag if flag.starts_with("--") => {}
                filter => self.filter = Some(filter.to_string()),
            }
        }
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            c: self,
            name: name.to_string(),
            throughput: None,
            sample_size: None,
        }
    }

    /// Run a standalone benchmark (no group).
    pub fn bench_function<F>(&mut self, name: impl Display, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let name = name.to_string();
        self.run(&name, None, None, f);
    }

    fn run<F>(
        &mut self,
        label: &str,
        throughput: Option<Throughput>,
        sample_size: Option<usize>,
        mut f: F,
    ) where
        F: FnMut(&mut Bencher),
    {
        if let Some(filter) = &self.filter {
            if !label.contains(filter.as_str()) {
                return;
            }
        }
        let mut b = Bencher {
            test_mode: self.test_mode,
            warm_up: self.warm_up,
            measurement: self.measurement,
            sample_size: sample_size.unwrap_or(self.sample_size),
            samples: Vec::new(),
        };
        f(&mut b);
        if self.test_mode {
            println!("test {label} ... ok (smoke)");
            return;
        }
        b.report(label, throughput);
    }
}

/// A named set of benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Samples per benchmark within this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(1));
        self
    }

    /// Throughput annotation applied to subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Reduce measurement time for this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.c.measurement = d;
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id().id);
        self.c.run(&label, self.throughput, self.sample_size, f);
    }

    /// Run one parameterized benchmark in the group.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.id);
        self.c
            .run(&label, self.throughput, self.sample_size, |b| f(b, input));
    }

    /// Close the group (kept for API compatibility).
    pub fn finish(self) {}
}

/// Accept both `&str`/`String` names and full [`BenchmarkId`]s.
pub trait IntoBenchmarkId {
    /// Convert to a [`BenchmarkId`].
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            id: self.to_string(),
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { id: self }
    }
}

/// Per-benchmark measurement driver handed to the closure.
pub struct Bencher {
    test_mode: bool,
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Measure `routine`, called repeatedly.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        if self.test_mode {
            black_box(routine());
            return;
        }
        // Warm-up, and calibrate iterations-per-sample from it.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;
        let total_iters = (self.measurement.as_secs_f64() / per_iter.max(1e-9))
            .ceil()
            .max(1.0) as u64;
        let iters_per_sample = (total_iters / self.sample_size as u64).max(1);
        self.samples.clear();
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            self.samples
                .push(t.elapsed() / u32::try_from(iters_per_sample).unwrap_or(u32::MAX));
        }
    }

    fn report(&self, label: &str, throughput: Option<Throughput>) {
        if self.samples.is_empty() {
            println!("{label:<60} (no samples)");
            return;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        let mean: Duration =
            sorted.iter().sum::<Duration>() / u32::try_from(sorted.len()).unwrap_or(u32::MAX);
        let p50 = sorted[sorted.len() / 2];
        let p99 = sorted[((sorted.len() * 99) / 100).min(sorted.len() - 1)];
        let mut line = format!(
            "{label:<60} mean {:>12?}  p50 {:>12?}  p99 {:>12?}",
            mean, p50, p99
        );
        if let Some(t) = throughput {
            let per_sec = match t {
                Throughput::Elements(n) | Throughput::Bytes(n) => {
                    n as f64 / p50.as_secs_f64().max(1e-12)
                }
            };
            let unit = match t {
                Throughput::Elements(_) => "elem/s",
                Throughput::Bytes(_) => "B/s",
            };
            line.push_str(&format!("  {per_sec:>14.0} {unit}"));
        }
        println!("{line}");
    }
}

/// Define a named group-runner function over benchmark target functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config.configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Define `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_mode_runs_once() {
        let mut c = Criterion {
            test_mode: true,
            ..Default::default()
        };
        let mut calls = 0;
        let mut group = c.benchmark_group("g");
        group.bench_function("one", |b| b.iter(|| calls += 1));
        group.finish();
        assert_eq!(calls, 1);
    }

    #[test]
    fn measurement_produces_samples() {
        let mut c = Criterion::default()
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(20))
            .sample_size(5);
        let mut ran = false;
        c.bench_function("tiny", |b| {
            b.iter(|| std::hint::black_box(3 * 7));
            ran = true;
            assert_eq!(b.samples.len(), 5);
        });
        assert!(ran);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 32).id, "f/32");
        assert_eq!(BenchmarkId::from_parameter("x").id, "x");
    }
}
