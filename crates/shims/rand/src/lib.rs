//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to a crates.io mirror, so the
//! workspace vendors the API subset it actually uses:
//! `StdRng::seed_from_u64`, `Rng::gen_range` over half-open integer and
//! float ranges, and `Rng::gen_bool`. The generator is xoshiro256++
//! seeded through splitmix64 — deterministic per seed, which is all the
//! data generators and tests rely on (they never depend on matching the
//! real `StdRng`'s stream).

use std::ops::Range;

/// Low-level uniform u64 source.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Deterministic generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A half-open range a uniform `T` can be drawn from. Blanket-implemented
/// over [`SampleUniform`] types (like rand's `SampleRange<T>`) so integer
/// literals in a range infer their type from the call site's context.
pub trait SampleRange<T> {
    /// Draw one uniform sample from `self`.
    fn sample_from(self, rng: &mut dyn RngCore) -> T;
}

/// Types `gen_range` can sample uniformly.
pub trait SampleUniform: Sized {
    /// Uniform sample from `[low, high)` (`high` exclusive).
    fn sample_half_open(rng: &mut dyn RngCore, low: Self, high: Self) -> Self;
    /// Uniform sample from `[low, high]` (`high` inclusive).
    fn sample_inclusive(rng: &mut dyn RngCore, low: Self, high: Self) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from(self, rng: &mut dyn RngCore) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from(self, rng: &mut dyn RngCore) -> T {
        let (start, end) = self.into_inner();
        T::sample_inclusive(rng, start, end)
    }
}

/// Lemire-style unbiased bounded sampling over `[0, n)`.
fn bounded_u64(rng: &mut dyn RngCore, n: u64) -> u64 {
    debug_assert!(n > 0);
    // Rejection zone keeps the sample exactly uniform.
    let zone = n.wrapping_neg() % n;
    loop {
        let v = rng.next_u64();
        let (hi, lo) = {
            let wide = u128::from(v) * u128::from(n);
            ((wide >> 64) as u64, wide as u64)
        };
        if lo >= zone {
            return hi;
        }
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open(rng: &mut dyn RngCore, low: $t, high: $t) -> $t {
                assert!(low < high, "gen_range: empty range");
                let span = high.abs_diff(low) as u64;
                low.wrapping_add(bounded_u64(rng, span) as $t)
            }

            fn sample_inclusive(rng: &mut dyn RngCore, low: $t, high: $t) -> $t {
                assert!(low <= high, "gen_range: empty range");
                let span = high.abs_diff(low) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                low.wrapping_add(bounded_u64(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl SampleUniform for f64 {
    fn sample_half_open(rng: &mut dyn RngCore, low: f64, high: f64) -> f64 {
        assert!(low < high, "gen_range: empty range");
        // 53 uniform mantissa bits in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        low + unit * (high - low)
    }

    fn sample_inclusive(rng: &mut dyn RngCore, low: f64, high: f64) -> f64 {
        Self::sample_half_open(rng, low, high)
    }
}

/// High-level sampling helpers, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} out of [0, 1]");
        self.gen_range(0.0..1.0) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ (Blackman/Vigna),
    /// seeded via splitmix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            StdRng {
                s: [
                    splitmix64(&mut state),
                    splitmix64(&mut state),
                    splitmix64(&mut state),
                    splitmix64(&mut state),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1_000_000i64), b.gen_range(0..1_000_000i64));
        }
        let mut c = StdRng::seed_from_u64(8);
        let same = (0..100)
            .filter(|_| StdRng::seed_from_u64(7).gen_range(0..u64::MAX) == c.gen_range(0..u64::MAX))
            .count();
        assert!(same < 100, "different seeds must diverge");
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let v = rng.gen_range(10..20i32);
            assert!((10..20).contains(&v));
            let u = rng.gen_range(0..7usize);
            assert!(u < 7);
            let f = rng.gen_range(1e-9..1.0);
            assert!((1e-9..1.0).contains(&f));
            let n = rng.gen_range(-50..50i64);
            assert!((-50..50).contains(&n));
        }
    }

    #[test]
    fn bounded_sampling_hits_every_bucket() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0usize; 5];
        for _ in 0..5_000 {
            counts[rng.gen_range(0..5usize)] += 1;
        }
        for (i, c) in counts.iter().enumerate() {
            assert!(*c > 700, "bucket {i} starved: {c}");
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "p=0.25 gave {hits}/10000");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
