//! Offline stand-in for the `crossbeam-epoch` crate.
//!
//! The build environment has no access to a crates.io mirror, so the
//! workspace vendors the API subset the cTrie uses: tagged atomic
//! pointers ([`Atomic`], [`Shared`]) and guard-scoped deferred execution
//! ([`Guard`], [`pin`], [`unprotected`]).
//!
//! Reclamation is quiescent-state based rather than epoch based: a global
//! registry counts active guards and queues deferred closures; the guard
//! whose drop brings the active count to zero drains the queue. This is
//! sound under the same contract crossbeam requires of callers — a
//! pointer may only be deferred after it has been unlinked from the
//! shared structure, so a thread that pins *after* the defer can no
//! longer reach it, and any thread that could still hold the pointer
//! keeps the active count non-zero until it unpins. The count/queue pair
//! is updated under one mutex, so "count reached zero" and "snapshot the
//! queue" are a single atomic step.
//!
//! The trade-off versus real epochs is throughput under heavy churn
//! (drains happen only at full quiescence and pin/unpin serialize on a
//! mutex), which is acceptable for this workspace: guards are short-lived
//! and reads vastly outnumber reclamation events.

use std::fmt;
use std::marker::PhantomData;
use std::mem::align_of;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

type Deferred = Box<dyn FnOnce() + Send>;

struct Registry {
    active: usize,
    garbage: Vec<Deferred>,
}

static REGISTRY: Mutex<Registry> = Mutex::new(Registry {
    active: 0,
    garbage: Vec::new(),
});

fn registry() -> std::sync::MutexGuard<'static, Registry> {
    REGISTRY
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// A scope during which shared pointers loaded through it stay valid.
pub struct Guard {
    pinned: bool,
}

/// Pin the current thread: pointers loaded while the returned guard is
/// alive will not be reclaimed until the guard drops.
pub fn pin() -> Guard {
    registry().active += 1;
    Guard { pinned: true }
}

/// A guard for data structures that are provably not shared (e.g. inside
/// `Drop` of the owning structure). Deferred closures run immediately.
///
/// # Safety
///
/// The caller must guarantee no other thread can concurrently access the
/// pointers loaded or deferred through this guard.
pub unsafe fn unprotected() -> &'static Guard {
    static UNPROTECTED: Guard = Guard { pinned: false };
    &UNPROTECTED
}

impl Guard {
    /// Defer `f` until every pointer loaded under a currently-live guard
    /// is certain to be unreachable. On the unprotected guard, runs `f`
    /// immediately.
    pub fn defer<F, R>(&self, f: F)
    where
        F: FnOnce() -> R + Send + 'static,
    {
        if self.pinned {
            registry().garbage.push(Box::new(move || {
                f();
            }));
        } else {
            f();
        }
    }
}

impl Drop for Guard {
    fn drop(&mut self) {
        if !self.pinned {
            return;
        }
        let drained = {
            let mut reg = registry();
            reg.active -= 1;
            if reg.active == 0 {
                std::mem::take(&mut reg.garbage)
            } else {
                Vec::new()
            }
        };
        // Run outside the lock: a drain can cascade into nested drops
        // that use the unprotected guard (which runs defers inline).
        for f in drained {
            f();
        }
    }
}

impl fmt::Debug for Guard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Guard")
            .field("pinned", &self.pinned)
            .finish()
    }
}

const fn tag_mask<T>() -> usize {
    align_of::<T>() - 1
}

/// A possibly-tagged shared pointer loaded from an [`Atomic`], valid for
/// the lifetime `'g` of the guard it was loaded under.
pub struct Shared<'g, T> {
    data: usize,
    _marker: PhantomData<(&'g (), *const T)>,
}

impl<T> Clone for Shared<'_, T> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<T> Copy for Shared<'_, T> {}

impl<'g, T> Shared<'g, T> {
    /// The null pointer (tag 0).
    pub fn null() -> Self {
        Shared {
            data: 0,
            _marker: PhantomData,
        }
    }

    /// Whether the pointer (ignoring the tag) is null.
    pub fn is_null(&self) -> bool {
        self.data & !tag_mask::<T>() == 0
    }

    /// The raw pointer with the tag bits stripped.
    pub fn as_raw(&self) -> *const T {
        (self.data & !tag_mask::<T>()) as *const T
    }

    /// The tag stored in the pointer's low alignment bits.
    pub fn tag(&self) -> usize {
        self.data & tag_mask::<T>()
    }

    /// The same pointer with its tag replaced by `tag`.
    pub fn with_tag(&self, tag: usize) -> Self {
        debug_assert!(tag <= tag_mask::<T>(), "tag {tag} exceeds alignment of T");
        Shared {
            data: (self.data & !tag_mask::<T>()) | (tag & tag_mask::<T>()),
            _marker: PhantomData,
        }
    }

    /// Dereference the pointer.
    ///
    /// # Safety
    ///
    /// The pointer must be non-null, properly aligned, and point to a
    /// live `T` for the duration of `'g`.
    pub unsafe fn deref(&self) -> &'g T {
        &*self.as_raw()
    }
}

impl<T> From<*const T> for Shared<'_, T> {
    fn from(raw: *const T) -> Self {
        debug_assert!(
            raw as usize & tag_mask::<T>() == 0,
            "pointer under-aligned for tagging"
        );
        Shared {
            data: raw as usize,
            _marker: PhantomData,
        }
    }
}

impl<T> fmt::Debug for Shared<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Shared({:p}, tag={})", self.as_raw(), self.tag())
    }
}

/// The error returned by a failed [`Atomic::compare_exchange`].
pub struct CompareExchangeError<'g, T> {
    /// The value the cell actually held.
    pub current: Shared<'g, T>,
}

/// An atomic, taggable pointer cell. Does not own its pointee: like
/// crossbeam's `Atomic`, dropping the cell does not drop the target —
/// ownership is managed by the caller (here, via `Arc` strong counts).
pub struct Atomic<T> {
    data: AtomicUsize,
    _marker: PhantomData<*mut T>,
}

// SAFETY: `Atomic<T>` is just an `AtomicUsize` holding a tagged address; the
// `PhantomData<*mut T>` only exists for variance. Sending the cell moves no
// `T`, and the `T: Send + Sync` bound ensures the pointee itself may be
// reached from another thread.
unsafe impl<T: Send + Sync> Send for Atomic<T> {}
// SAFETY: all shared access goes through the inner `AtomicUsize`; concurrent
// loads/stores are synchronized by the atomic, and `T: Send + Sync` covers
// the pointee reached through loaded `Shared` handles.
unsafe impl<T: Send + Sync> Sync for Atomic<T> {}

impl<T> Atomic<T> {
    /// A cell holding the null pointer.
    pub fn null() -> Self {
        Atomic {
            data: AtomicUsize::new(0),
            _marker: PhantomData,
        }
    }

    /// Load the current pointer under `_guard`.
    pub fn load<'g>(&self, ord: Ordering, _guard: &'g Guard) -> Shared<'g, T> {
        Shared {
            data: self.data.load(ord),
            _marker: PhantomData,
        }
    }

    /// Unconditionally store `new`.
    pub fn store(&self, new: Shared<'_, T>, ord: Ordering) {
        self.data.store(new.data, ord);
    }

    /// Compare-and-swap `current` for `new`; on failure returns the
    /// observed value in [`CompareExchangeError::current`].
    pub fn compare_exchange<'g>(
        &self,
        current: Shared<'_, T>,
        new: Shared<'_, T>,
        success: Ordering,
        failure: Ordering,
        _guard: &'g Guard,
    ) -> Result<Shared<'g, T>, CompareExchangeError<'g, T>> {
        match self
            .data
            .compare_exchange(current.data, new.data, success, failure)
        {
            Ok(prev) => Ok(Shared {
                data: prev,
                _marker: PhantomData,
            }),
            Err(observed) => Err(CompareExchangeError {
                current: Shared {
                    data: observed,
                    _marker: PhantomData,
                },
            }),
        }
    }
}

impl<T> fmt::Debug for Atomic<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // idf-lint: allow(atomics-audit) -- Debug formatting of the raw pointer; diagnostic only
        write!(f, "Atomic({:#x})", self.data.load(Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::Ordering::SeqCst;
    use std::sync::{
        atomic::{AtomicBool, AtomicUsize as Counter},
        Arc,
    };

    #[test]
    fn tag_roundtrip() {
        let b = Box::into_raw(Box::new(42u64));
        let s: Shared<'_, u64> = Shared::from(b as *const u64);
        assert_eq!(s.tag(), 0);
        let t = s.with_tag(1);
        assert_eq!(t.tag(), 1);
        assert_eq!(t.as_raw(), b as *const u64);
        assert!(!t.is_null());
        assert!(Shared::<u64>::null().is_null());
        // SAFETY: `b` came from `Box::into_raw` above and is freed once.
        unsafe { drop(Box::from_raw(b)) };
    }

    #[test]
    fn cas_success_and_failure() {
        let g = pin();
        let a = Box::into_raw(Box::new(1u64)) as *const u64;
        let b = Box::into_raw(Box::new(2u64)) as *const u64;
        let cell: Atomic<u64> = Atomic::null();
        cell.store(Shared::from(a), SeqCst);
        let cur = cell.load(SeqCst, &g);
        assert!(cell
            .compare_exchange(cur, Shared::from(b), SeqCst, SeqCst, &g)
            .is_ok());
        let Err(err) = cell.compare_exchange(cur, Shared::from(a), SeqCst, SeqCst, &g) else {
            panic!("stale CAS must fail")
        };
        assert_eq!(err.current.as_raw(), b);
        // SAFETY: `a` and `b` came from `Box::into_raw` above; the cell holds
        // only copies of the addresses, so each box is freed exactly once.
        unsafe {
            drop(Box::from_raw(a as *mut u64));
            drop(Box::from_raw(b as *mut u64));
        }
    }

    #[test]
    fn defer_waits_for_all_guards() {
        let ran = Arc::new(AtomicBool::new(false));
        let outer = pin();
        {
            let inner = pin();
            let r = Arc::clone(&ran);
            inner.defer(move || r.store(true, SeqCst));
            drop(inner);
        }
        assert!(!ran.load(SeqCst), "outer guard still active");
        drop(outer);
        assert!(ran.load(SeqCst), "drained at quiescence");
    }

    #[test]
    fn unprotected_defers_run_inline() {
        let n = Counter::new(0);
        let n_ref: &'static Counter = Box::leak(Box::new(n));
        // SAFETY: nothing in this test dereferences retired pointers; the
        // unprotected guard is only used to observe inline defer execution.
        let g = unsafe { unprotected() };
        g.defer(move || {
            n_ref.fetch_add(1, SeqCst);
        });
        assert_eq!(n_ref.load(SeqCst), 1);
    }
}
