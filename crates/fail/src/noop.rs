//! The no-op half (`failpoints` feature disabled).
//!
//! Every public item of `registry.rs` exists here with the same
//! signature so downstream code and tests compile unchanged in either
//! configuration — the `idf-lint` `api-parity` rule enforces the match.
//! Configuration calls are accepted and discarded; [`eval`] compiles to
//! an inlined `Ok(())` with zero cost at the call site.

use std::time::Duration;

/// What a triggered failpoint does (never triggers in a no-op build).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FailAction {
    /// Return `Err(message)` from [`eval`].
    Error(String),
    /// Panic with the given message.
    Panic(String),
    /// Sleep for the given duration, then return `Ok(())`.
    Delay(Duration),
}

/// Per-site trigger configuration. Carried for API parity; a no-op
/// build never consults it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FailConfig {
    action: FailAction,
    skip: u64,
    times: Option<u64>,
}

impl FailConfig {
    /// Trigger by returning `Err(message)`.
    pub fn error(message: impl Into<String>) -> Self {
        Self::new(FailAction::Error(message.into()))
    }

    /// Trigger by panicking with `message`.
    pub fn panic(message: impl Into<String>) -> Self {
        Self::new(FailAction::Panic(message.into()))
    }

    /// Trigger by sleeping `millis` milliseconds.
    pub fn delay(millis: u64) -> Self {
        Self::new(FailAction::Delay(Duration::from_millis(millis)))
    }

    /// Build a config from a raw [`FailAction`].
    pub fn new(action: FailAction) -> Self {
        Self {
            action,
            skip: 0,
            times: None,
        }
    }

    /// Let the first `n` evaluations pass before triggering.
    pub fn skip(mut self, n: u64) -> Self {
        self.skip = n;
        self
    }

    /// Trigger at most `n` times, then behave as if unconfigured.
    pub fn times(mut self, n: u64) -> Self {
        self.times = Some(n);
        self
    }
}

/// Configure `site` to trigger per `config` (no-op build: discarded).
pub fn configure(site: impl Into<String>, config: FailConfig) {
    let _ = site.into();
    let _ = config;
}

/// Remove the configuration for `site` (no-op build: always `false`).
pub fn remove(site: &str) -> bool {
    let _ = site;
    false
}

/// Remove every configured site (no-op build: nothing to remove).
pub fn reset() {}

/// Number of evaluations of `site` so far (no-op build: always `None`).
pub fn hit_count(site: &str) -> Option<u64> {
    let _ = site;
    None
}

/// Evaluate the failpoint named `site` (no-op build: always `Ok(())`).
#[inline(always)]
pub fn eval(site: &str) -> Result<(), String> {
    let _ = site;
    Ok(())
}

/// RAII handle that configures a site on construction and removes it
/// on drop (no-op build: holds the name, does nothing).
#[derive(Debug)]
pub struct FailGuard {
    site: String,
}

impl FailGuard {
    /// Configure `site` with `config`; the configuration is removed
    /// when the returned guard drops.
    pub fn new(site: impl Into<String>, config: FailConfig) -> Self {
        let _ = config;
        Self { site: site.into() }
    }

    /// The site this guard controls.
    pub fn site(&self) -> &str {
        &self.site
    }
}
