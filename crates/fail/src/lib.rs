//! Deterministic fault-injection (failpoint) registry.
//!
//! Production code declares *named sites* and calls [`eval`] at each one.
//! Tests configure a site to return an error, panic, or sleep — exercising
//! failure paths that are otherwise unreachable without real hardware
//! faults. With the `failpoints` feature disabled, [`eval`] compiles to an
//! inlined `Ok(())` and the registry does not exist.
//!
//! The fast path for an *unconfigured* registry is a single relaxed atomic
//! load, so sites may be placed on hot paths (per-row reads, per-probe
//! loops) without measurable cost.
//!
//! # Example
//!
//! ```
//! use idf_fail::{FailConfig, FailGuard};
//!
//! // Production code:
//! fn read_block() -> Result<u64, String> {
//!     idf_fail::eval("store::read_block")?;
//!     Ok(42)
//! }
//!
//! // Test code: fail the first call, then recover.
//! let guard = FailGuard::new("store::read_block", FailConfig::error("disk gone").times(1));
//! assert!(read_block().is_err());
//! assert_eq!(read_block(), Ok(42));
//! drop(guard); // site removed
//! ```

#![deny(missing_docs)]

#[cfg(feature = "failpoints")]
mod registry {
    use std::collections::HashMap;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Mutex, OnceLock, PoisonError};
    use std::time::Duration;

    /// What a triggered failpoint does.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub enum FailAction {
        /// Return `Err(message)` from [`eval`](super::eval).
        Error(String),
        /// Panic with the given message.
        Panic(String),
        /// Sleep for the given duration, then return `Ok(())`.
        Delay(Duration),
    }

    /// Per-site trigger configuration: an action plus optional `skip` /
    /// `times` counters for deterministic "fail the Nth call" schedules.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct FailConfig {
        action: FailAction,
        skip: u64,
        times: Option<u64>,
    }

    impl FailConfig {
        /// Trigger by returning `Err(message)`.
        pub fn error(message: impl Into<String>) -> Self {
            Self::new(FailAction::Error(message.into()))
        }

        /// Trigger by panicking with `message`.
        pub fn panic(message: impl Into<String>) -> Self {
            Self::new(FailAction::Panic(message.into()))
        }

        /// Trigger by sleeping `millis` milliseconds.
        pub fn delay(millis: u64) -> Self {
            Self::new(FailAction::Delay(Duration::from_millis(millis)))
        }

        /// Build a config from a raw [`FailAction`].
        pub fn new(action: FailAction) -> Self {
            Self {
                action,
                skip: 0,
                times: None,
            }
        }

        /// Let the first `n` evaluations pass before triggering.
        pub fn skip(mut self, n: u64) -> Self {
            self.skip = n;
            self
        }

        /// Trigger at most `n` times, then behave as if unconfigured.
        pub fn times(mut self, n: u64) -> Self {
            self.times = Some(n);
            self
        }
    }

    struct SiteState {
        config: FailConfig,
        hits: u64,
    }

    /// Number of configured sites; `0` means every `eval` takes the
    /// one-atomic-load fast path.
    static ACTIVE: AtomicUsize = AtomicUsize::new(0);

    fn registry() -> &'static Mutex<HashMap<String, SiteState>> {
        static REGISTRY: OnceLock<Mutex<HashMap<String, SiteState>>> = OnceLock::new();
        REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
    }

    fn lock() -> std::sync::MutexGuard<'static, HashMap<String, SiteState>> {
        // The registry mutex is only ever held for map bookkeeping (actions
        // run outside the lock), so a panic mid-update cannot corrupt it.
        registry().lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Configure `site` to trigger per `config`, replacing any previous
    /// configuration for the same site.
    pub fn configure(site: impl Into<String>, config: FailConfig) {
        let mut map = lock();
        if map
            .insert(site.into(), SiteState { config, hits: 0 })
            .is_none()
        {
            ACTIVE.fetch_add(1, Ordering::Release);
        }
    }

    /// Remove the configuration for `site`. Returns `true` if it existed.
    pub fn remove(site: &str) -> bool {
        let mut map = lock();
        if map.remove(site).is_some() {
            ACTIVE.fetch_sub(1, Ordering::Release);
            true
        } else {
            false
        }
    }

    /// Remove every configured site.
    pub fn reset() {
        let mut map = lock();
        let n = map.len();
        map.clear();
        ACTIVE.fetch_sub(n, Ordering::Release);
    }

    /// Number of evaluations of `site` so far (including non-triggering
    /// ones), or `None` if the site is not configured.
    pub fn hit_count(site: &str) -> Option<u64> {
        lock().get(site).map(|s| s.hits)
    }

    /// Evaluate the failpoint named `site`.
    ///
    /// Returns `Ok(())` unless a test configured the site to trigger, in
    /// which case the configured action runs: `Error` returns the message
    /// as `Err`, `Panic` panics, `Delay` sleeps then returns `Ok(())`.
    pub fn eval(site: &str) -> Result<(), String> {
        if ACTIVE.load(Ordering::Acquire) == 0 {
            return Ok(());
        }
        let action = {
            let mut map = lock();
            let Some(state) = map.get_mut(site) else {
                return Ok(());
            };
            state.hits += 1;
            if state.config.skip > 0 {
                state.config.skip -= 1;
                return Ok(());
            }
            match state.config.times {
                Some(0) => return Ok(()),
                Some(ref mut n) => *n -= 1,
                None => {}
            }
            state.config.action.clone()
        };
        // Run the action outside the registry lock so a panicking or
        // sleeping site never blocks other sites.
        match action {
            FailAction::Error(msg) => Err(msg),
            FailAction::Panic(msg) => panic!("failpoint {site}: {msg}"),
            FailAction::Delay(d) => {
                std::thread::sleep(d);
                Ok(())
            }
        }
    }

    /// RAII handle that configures a site on construction and removes it
    /// on drop, so a failing test cannot leak configuration into others.
    #[derive(Debug)]
    pub struct FailGuard {
        site: String,
    }

    impl FailGuard {
        /// Configure `site` with `config`; the configuration is removed
        /// when the returned guard drops.
        pub fn new(site: impl Into<String>, config: FailConfig) -> Self {
            let site = site.into();
            configure(site.clone(), config);
            Self { site }
        }

        /// The site this guard controls.
        pub fn site(&self) -> &str {
            &self.site
        }
    }

    impl Drop for FailGuard {
        fn drop(&mut self) {
            remove(&self.site);
        }
    }
}

#[cfg(feature = "failpoints")]
pub use registry::{configure, eval, hit_count, remove, reset, FailAction, FailConfig, FailGuard};

/// Evaluate the failpoint named `site` (no-op build: always `Ok(())`).
#[cfg(not(feature = "failpoints"))]
#[inline(always)]
pub fn eval(_site: &str) -> Result<(), String> {
    Ok(())
}

#[cfg(all(test, feature = "failpoints"))]
mod tests {
    use super::*;
    use std::sync::{Mutex, PoisonError};

    /// The registry is process-global; serialize tests that touch it.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn serial() -> std::sync::MutexGuard<'static, ()> {
        TEST_LOCK.lock().unwrap_or_else(PoisonError::into_inner)
    }

    #[test]
    fn unconfigured_site_is_ok() {
        let _s = serial();
        assert_eq!(eval("nope"), Ok(()));
    }

    #[test]
    fn error_action_triggers_and_guard_cleans_up() {
        let _s = serial();
        {
            let _g = FailGuard::new("t::err", FailConfig::error("boom"));
            assert_eq!(eval("t::err"), Err("boom".to_string()));
            assert_eq!(eval("t::err"), Err("boom".to_string()));
        }
        assert_eq!(eval("t::err"), Ok(()));
    }

    #[test]
    fn skip_and_times_schedule() {
        let _s = serial();
        let _g = FailGuard::new("t::sched", FailConfig::error("x").skip(2).times(1));
        assert_eq!(eval("t::sched"), Ok(()));
        assert_eq!(eval("t::sched"), Ok(()));
        assert_eq!(eval("t::sched"), Err("x".to_string()));
        assert_eq!(eval("t::sched"), Ok(()));
        assert_eq!(hit_count("t::sched"), Some(4));
    }

    #[test]
    fn panic_action_panics_with_site_name() {
        let _s = serial();
        let _g = FailGuard::new("t::panic", FailConfig::panic("kaboom"));
        let err = std::panic::catch_unwind(|| {
            let _ = eval("t::panic");
        })
        .unwrap_err();
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("t::panic"), "got: {msg}");
        assert!(msg.contains("kaboom"), "got: {msg}");
    }

    #[test]
    fn delay_action_sleeps() {
        let _s = serial();
        let _g = FailGuard::new("t::delay", FailConfig::delay(20));
        let t0 = std::time::Instant::now();
        assert_eq!(eval("t::delay"), Ok(()));
        assert!(t0.elapsed() >= std::time::Duration::from_millis(15));
    }

    #[test]
    fn reconfigure_replaces_and_reset_clears() {
        let _s = serial();
        configure("t::re", FailConfig::error("a"));
        configure("t::re", FailConfig::error("b"));
        assert_eq!(eval("t::re"), Err("b".to_string()));
        reset();
        assert_eq!(eval("t::re"), Ok(()));
        assert!(!remove("t::re"));
    }
}
