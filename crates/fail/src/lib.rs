//! Deterministic fault-injection (failpoint) registry.
//!
//! Production code declares *named sites* and calls [`eval`] at each one.
//! Tests configure a site to return an error, panic, or sleep — exercising
//! failure paths that are otherwise unreachable without real hardware
//! faults. With the `failpoints` feature disabled, [`eval`] compiles to an
//! inlined `Ok(())` and the registry does not exist.
//!
//! The fast path for an *unconfigured* registry is a single relaxed atomic
//! load, so sites may be placed on hot paths (per-row reads, per-probe
//! loops) without measurable cost.
//!
//! The crate body lives in two feature halves — `registry.rs` (real) and
//! `noop.rs` (inert) — with identical public APIs, so downstream code and
//! tests never need `#[cfg]` guards. `idf-lint`'s `api-parity` rule diffs
//! the two files and fails when they drift.
//!
//! # Example
//!
//! ```
//! use idf_fail::{FailConfig, FailGuard};
//!
//! // Production code:
//! fn read_block() -> Result<u64, String> {
//!     idf_fail::eval("store::read_block")?;
//!     Ok(42)
//! }
//!
//! // Test code: fail the first call, then recover.
//! let guard = FailGuard::new("store::read_block", FailConfig::error("disk gone").times(1));
//! assert!(read_block().is_err());
//! assert_eq!(read_block(), Ok(42));
//! drop(guard); // site removed
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

#[cfg(feature = "failpoints")]
mod registry;

#[cfg(feature = "failpoints")]
pub use registry::{configure, eval, hit_count, remove, reset, FailAction, FailConfig, FailGuard};

#[cfg(not(feature = "failpoints"))]
mod noop;

#[cfg(not(feature = "failpoints"))]
pub use noop::{configure, eval, hit_count, remove, reset, FailAction, FailConfig, FailGuard};

#[cfg(all(test, feature = "failpoints"))]
mod tests {
    use super::*;
    use std::sync::{Mutex, PoisonError};

    /// The registry is process-global; serialize tests that touch it.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn serial() -> std::sync::MutexGuard<'static, ()> {
        TEST_LOCK.lock().unwrap_or_else(PoisonError::into_inner)
    }

    #[test]
    fn unconfigured_site_is_ok() {
        let _s = serial();
        assert_eq!(eval("nope"), Ok(()));
    }

    #[test]
    fn error_action_triggers_and_guard_cleans_up() {
        let _s = serial();
        {
            let _g = FailGuard::new("t::err", FailConfig::error("boom"));
            assert_eq!(eval("t::err"), Err("boom".to_string()));
            assert_eq!(eval("t::err"), Err("boom".to_string()));
        }
        assert_eq!(eval("t::err"), Ok(()));
    }

    #[test]
    fn skip_and_times_schedule() {
        let _s = serial();
        let _g = FailGuard::new("t::sched", FailConfig::error("x").skip(2).times(1));
        assert_eq!(eval("t::sched"), Ok(()));
        assert_eq!(eval("t::sched"), Ok(()));
        assert_eq!(eval("t::sched"), Err("x".to_string()));
        assert_eq!(eval("t::sched"), Ok(()));
        assert_eq!(hit_count("t::sched"), Some(4));
    }

    #[test]
    fn panic_action_panics_with_site_name() {
        let _s = serial();
        let _g = FailGuard::new("t::panic", FailConfig::panic("kaboom"));
        let err = std::panic::catch_unwind(|| {
            let _ = eval("t::panic");
        })
        .unwrap_err();
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("t::panic"), "got: {msg}");
        assert!(msg.contains("kaboom"), "got: {msg}");
    }

    #[test]
    fn delay_action_sleeps() {
        let _s = serial();
        let _g = FailGuard::new("t::delay", FailConfig::delay(20));
        let t0 = std::time::Instant::now();
        assert_eq!(eval("t::delay"), Ok(()));
        assert!(t0.elapsed() >= std::time::Duration::from_millis(15));
    }

    #[test]
    fn reconfigure_replaces_and_reset_clears() {
        let _s = serial();
        configure("t::re", FailConfig::error("a"));
        configure("t::re", FailConfig::error("b"));
        assert_eq!(eval("t::re"), Err("b".to_string()));
        reset();
        assert_eq!(eval("t::re"), Ok(()));
        assert!(!remove("t::re"));
    }
}
