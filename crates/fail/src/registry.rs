//! The real failpoint registry (`failpoints` feature enabled).
//!
//! Keep this file's public surface in lockstep with `noop.rs` — the
//! `idf-lint` `api-parity` rule diffs the two and fails the build when a
//! `pub fn` exists in one half only.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock, PoisonError};
use std::time::Duration;

/// What a triggered failpoint does.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FailAction {
    /// Return `Err(message)` from [`eval`].
    Error(String),
    /// Panic with the given message.
    Panic(String),
    /// Sleep for the given duration, then return `Ok(())`.
    Delay(Duration),
}

/// Per-site trigger configuration: an action plus optional `skip` /
/// `times` counters for deterministic "fail the Nth call" schedules.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FailConfig {
    action: FailAction,
    skip: u64,
    times: Option<u64>,
}

impl FailConfig {
    /// Trigger by returning `Err(message)`.
    pub fn error(message: impl Into<String>) -> Self {
        Self::new(FailAction::Error(message.into()))
    }

    /// Trigger by panicking with `message`.
    pub fn panic(message: impl Into<String>) -> Self {
        Self::new(FailAction::Panic(message.into()))
    }

    /// Trigger by sleeping `millis` milliseconds.
    pub fn delay(millis: u64) -> Self {
        Self::new(FailAction::Delay(Duration::from_millis(millis)))
    }

    /// Build a config from a raw [`FailAction`].
    pub fn new(action: FailAction) -> Self {
        Self {
            action,
            skip: 0,
            times: None,
        }
    }

    /// Let the first `n` evaluations pass before triggering.
    pub fn skip(mut self, n: u64) -> Self {
        self.skip = n;
        self
    }

    /// Trigger at most `n` times, then behave as if unconfigured.
    pub fn times(mut self, n: u64) -> Self {
        self.times = Some(n);
        self
    }
}

struct SiteState {
    config: FailConfig,
    hits: u64,
}

/// Number of configured sites; `0` means every `eval` takes the
/// one-atomic-load fast path.
static ACTIVE: AtomicUsize = AtomicUsize::new(0);

fn registry() -> &'static Mutex<HashMap<String, SiteState>> {
    static REGISTRY: OnceLock<Mutex<HashMap<String, SiteState>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
}

fn lock() -> std::sync::MutexGuard<'static, HashMap<String, SiteState>> {
    // The registry mutex is only ever held for map bookkeeping (actions
    // run outside the lock), so a panic mid-update cannot corrupt it.
    registry().lock().unwrap_or_else(PoisonError::into_inner)
}

/// Configure `site` to trigger per `config`, replacing any previous
/// configuration for the same site.
pub fn configure(site: impl Into<String>, config: FailConfig) {
    let mut map = lock();
    if map
        .insert(site.into(), SiteState { config, hits: 0 })
        .is_none()
    {
        ACTIVE.fetch_add(1, Ordering::Release);
    }
}

/// Remove the configuration for `site`. Returns `true` if it existed.
pub fn remove(site: &str) -> bool {
    let mut map = lock();
    if map.remove(site).is_some() {
        ACTIVE.fetch_sub(1, Ordering::Release);
        true
    } else {
        false
    }
}

/// Remove every configured site.
pub fn reset() {
    let mut map = lock();
    let n = map.len();
    map.clear();
    ACTIVE.fetch_sub(n, Ordering::Release);
}

/// Number of evaluations of `site` so far (including non-triggering
/// ones), or `None` if the site is not configured.
pub fn hit_count(site: &str) -> Option<u64> {
    lock().get(site).map(|s| s.hits)
}

/// Evaluate the failpoint named `site`.
///
/// Returns `Ok(())` unless a test configured the site to trigger, in
/// which case the configured action runs: `Error` returns the message
/// as `Err`, `Panic` panics, `Delay` sleeps then returns `Ok(())`.
pub fn eval(site: &str) -> Result<(), String> {
    if ACTIVE.load(Ordering::Acquire) == 0 {
        return Ok(());
    }
    let action = {
        let mut map = lock();
        let Some(state) = map.get_mut(site) else {
            return Ok(());
        };
        state.hits += 1;
        if state.config.skip > 0 {
            state.config.skip -= 1;
            return Ok(());
        }
        match state.config.times {
            Some(0) => return Ok(()),
            Some(ref mut n) => *n -= 1,
            None => {}
        }
        state.config.action.clone()
    };
    // Run the action outside the registry lock so a panicking or
    // sleeping site never blocks other sites.
    match action {
        FailAction::Error(msg) => Err(msg),
        FailAction::Panic(msg) => panic!("failpoint {site}: {msg}"),
        FailAction::Delay(d) => {
            std::thread::sleep(d);
            Ok(())
        }
    }
}

/// RAII handle that configures a site on construction and removes it
/// on drop, so a failing test cannot leak configuration into others.
#[derive(Debug)]
pub struct FailGuard {
    site: String,
}

impl FailGuard {
    /// Configure `site` with `config`; the configuration is removed
    /// when the returned guard drops.
    pub fn new(site: impl Into<String>, config: FailConfig) -> Self {
        let site = site.into();
        configure(site.clone(), config);
        Self { site }
    }

    /// The site this guard controls.
    pub fn site(&self) -> &str {
        &self.site
    }
}

impl Drop for FailGuard {
    fn drop(&mut self) {
        remove(&self.site);
    }
}
