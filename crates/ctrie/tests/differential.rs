//! Randomized differential testing: the lock-free cTrie, the persistent
//! HAMT, and `std::collections::HashMap` must agree on every operation
//! sequence — including interleaved snapshots, which the HashMap model
//! handles by cloning. Seeded generation keeps every case reproducible:
//! a failure message names the seed that replays it.

use std::collections::HashMap;

use idf_ctrie::{CTrie, Hamt};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One step of a generated workload.
#[derive(Debug, Clone)]
enum Op {
    Insert(u16, u32),
    Remove(u16),
    Lookup(u16),
    Snapshot,
    /// Check a key in the most recent snapshot.
    SnapshotLookup(u16),
    Len,
}

fn random_op(rng: &mut StdRng) -> Op {
    // Weights mirror the original property test: 4/2/3/1/1/1.
    match rng.gen_range(0..12) {
        0..=3 => Op::Insert(rng.gen_range(0..512u16), rng.gen_range(0..u32::MAX)),
        4..=5 => Op::Remove(rng.gen_range(0..512u16)),
        6..=8 => Op::Lookup(rng.gen_range(0..512u16)),
        9 => Op::Snapshot,
        10 => Op::SnapshotLookup(rng.gen_range(0..512u16)),
        _ => Op::Len,
    }
}

#[test]
fn ctrie_hamt_hashmap_agree() {
    for seed in 0..64u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let n_ops = rng.gen_range(1..400usize);
        let trie: CTrie<u16, u32> = CTrie::new();
        let hamt: Hamt<u16, u32> = Hamt::new();
        let mut model: HashMap<u16, u32> = HashMap::new();

        let mut trie_snap: Option<CTrie<u16, u32>> = None;
        let mut hamt_snap = None;
        let mut model_snap: Option<HashMap<u16, u32>> = None;

        for step in 0..n_ops {
            match random_op(&mut rng) {
                Op::Insert(k, v) => {
                    let a = trie.insert(k, v);
                    let b = hamt.insert(k, v);
                    let c = model.insert(k, v);
                    assert_eq!(a, c, "seed {seed}, step {step}: ctrie insert({k})");
                    assert_eq!(b, c, "seed {seed}, step {step}: hamt insert({k})");
                }
                Op::Remove(k) => {
                    let a = trie.remove(&k);
                    let b = hamt.remove(&k);
                    let c = model.remove(&k);
                    assert_eq!(a, c, "seed {seed}, step {step}: ctrie remove({k})");
                    assert_eq!(b, c, "seed {seed}, step {step}: hamt remove({k})");
                }
                Op::Lookup(k) => {
                    let c = model.get(&k).copied();
                    assert_eq!(
                        trie.lookup(&k),
                        c,
                        "seed {seed}, step {step}: ctrie lookup({k})"
                    );
                    assert_eq!(
                        hamt.lookup(&k),
                        c,
                        "seed {seed}, step {step}: hamt lookup({k})"
                    );
                }
                Op::Snapshot => {
                    trie_snap = Some(trie.read_only_snapshot());
                    hamt_snap = Some(hamt.snapshot());
                    model_snap = Some(model.clone());
                }
                Op::SnapshotLookup(k) => {
                    if let (Some(ts), Some(hs), Some(ms)) = (&trie_snap, &hamt_snap, &model_snap) {
                        let c = ms.get(&k).copied();
                        assert_eq!(ts.lookup(&k), c, "seed {seed}: snap ctrie lookup({k})");
                        assert_eq!(hs.lookup(&k), c, "seed {seed}: snap hamt lookup({k})");
                    }
                }
                Op::Len => {
                    assert_eq!(
                        trie.len(),
                        model.len(),
                        "seed {seed}, step {step}: ctrie len"
                    );
                    assert_eq!(
                        hamt.len(),
                        model.len(),
                        "seed {seed}, step {step}: hamt len"
                    );
                }
            }
        }
        // Final full-content comparison.
        let mut trie_all: Vec<(u16, u32)> = trie.iter().collect();
        trie_all.sort_unstable();
        let mut hamt_all = hamt.entries();
        hamt_all.sort_unstable();
        let mut model_all: Vec<(u16, u32)> = model.into_iter().collect();
        model_all.sort_unstable();
        assert_eq!(trie_all, model_all, "seed {seed}: ctrie final contents");
        assert_eq!(hamt_all, model_all, "seed {seed}: hamt final contents");
    }
}

#[test]
fn writable_snapshot_fully_isolates() {
    fn pairs(rng: &mut StdRng, max: usize) -> Vec<(u16, u32)> {
        let n = rng.gen_range(1..max);
        (0..n)
            .map(|_| (rng.gen_range(0..1024u16), rng.gen_range(0..u32::MAX)))
            .collect()
    }
    for seed in 0..24u64 {
        let mut rng = StdRng::seed_from_u64(0x5eed_0000 + seed);
        let base = pairs(&mut rng, 200);
        let after_a = pairs(&mut rng, 100);
        let after_b = pairs(&mut rng, 100);

        let trie: CTrie<u16, u32> = CTrie::new();
        let mut model: HashMap<u16, u32> = HashMap::new();
        for (k, v) in base {
            trie.insert(k, v);
            model.insert(k, v);
        }
        let fork = trie.snapshot();
        let mut fork_model = model.clone();
        for (k, v) in after_a {
            trie.insert(k, v);
            model.insert(k, v);
        }
        for (k, v) in after_b {
            fork.insert(k, v);
            fork_model.insert(k, v);
        }
        for k in 0u16..1024 {
            assert_eq!(
                trie.lookup(&k),
                model.get(&k).copied(),
                "seed {seed}, key {k}"
            );
            assert_eq!(
                fork.lookup(&k),
                fork_model.get(&k).copied(),
                "seed {seed}, fork key {k}"
            );
        }
    }
}

#[test]
fn insert_returns_previous_value_chains() {
    // The Indexed DataFrame depends on insert returning the previous
    // binding to thread its backward pointers; verify the chain of
    // returned values reconstructs insertion order per key.
    for seed in 0..32u64 {
        let mut rng = StdRng::seed_from_u64(0xc4a1_0000 + seed);
        let n = rng.gen_range(1..300usize);
        let trie: CTrie<u8, u64> = CTrie::new();
        let mut last_for_key: HashMap<u8, u64> = HashMap::new();
        for seq in 0..n {
            let k = rng.gen_range(0..256u16) as u8;
            let prev = trie.insert(k, seq as u64);
            assert_eq!(
                prev,
                last_for_key.insert(k, seq as u64),
                "seed {seed}, step {seq}, key {k}"
            );
        }
    }
}
