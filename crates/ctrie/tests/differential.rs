//! Property-based differential testing: the lock-free cTrie, the
//! persistent HAMT, and `std::collections::HashMap` must agree on every
//! operation sequence — including interleaved snapshots, which the
//! HashMap model handles by cloning.

use std::collections::HashMap;

use idf_ctrie::{CTrie, Hamt};
use proptest::prelude::*;

/// One step of a generated workload.
#[derive(Debug, Clone)]
enum Op {
    Insert(u16, u32),
    Remove(u16),
    Lookup(u16),
    Snapshot,
    /// Check a key in the most recent snapshot.
    SnapshotLookup(u16),
    Len,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (any::<u16>(), any::<u32>()).prop_map(|(k, v)| Op::Insert(k % 512, v)),
        2 => any::<u16>().prop_map(|k| Op::Remove(k % 512)),
        3 => any::<u16>().prop_map(|k| Op::Lookup(k % 512)),
        1 => Just(Op::Snapshot),
        1 => any::<u16>().prop_map(|k| Op::SnapshotLookup(k % 512)),
        1 => Just(Op::Len),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn ctrie_hamt_hashmap_agree(ops in proptest::collection::vec(op_strategy(), 1..400)) {
        let trie: CTrie<u16, u32> = CTrie::new();
        let hamt: Hamt<u16, u32> = Hamt::new();
        let mut model: HashMap<u16, u32> = HashMap::new();

        let mut trie_snap: Option<CTrie<u16, u32>> = None;
        let mut hamt_snap = None;
        let mut model_snap: Option<HashMap<u16, u32>> = None;

        for op in ops {
            match op {
                Op::Insert(k, v) => {
                    let a = trie.insert(k, v);
                    let b = hamt.insert(k, v);
                    let c = model.insert(k, v);
                    prop_assert_eq!(a, c);
                    prop_assert_eq!(b, c);
                }
                Op::Remove(k) => {
                    let a = trie.remove(&k);
                    let b = hamt.remove(&k);
                    let c = model.remove(&k);
                    prop_assert_eq!(a, c);
                    prop_assert_eq!(b, c);
                }
                Op::Lookup(k) => {
                    let c = model.get(&k).copied();
                    prop_assert_eq!(trie.lookup(&k), c);
                    prop_assert_eq!(hamt.lookup(&k), c);
                }
                Op::Snapshot => {
                    trie_snap = Some(trie.read_only_snapshot());
                    hamt_snap = Some(hamt.snapshot());
                    model_snap = Some(model.clone());
                }
                Op::SnapshotLookup(k) => {
                    if let (Some(ts), Some(hs), Some(ms)) =
                        (&trie_snap, &hamt_snap, &model_snap)
                    {
                        let c = ms.get(&k).copied();
                        prop_assert_eq!(ts.lookup(&k), c);
                        prop_assert_eq!(hs.lookup(&k), c);
                    }
                }
                Op::Len => {
                    prop_assert_eq!(trie.len(), model.len());
                    prop_assert_eq!(hamt.len(), model.len());
                }
            }
        }
        // Final full-content comparison.
        let mut trie_all: Vec<(u16, u32)> = trie.iter().collect();
        trie_all.sort_unstable();
        let mut hamt_all = hamt.entries();
        hamt_all.sort_unstable();
        let mut model_all: Vec<(u16, u32)> = model.into_iter().collect();
        model_all.sort_unstable();
        prop_assert_eq!(trie_all, model_all.clone());
        prop_assert_eq!(hamt_all, model_all);
    }

    #[test]
    fn writable_snapshot_fully_isolates(
        base in proptest::collection::vec((any::<u16>(), any::<u32>()), 1..200),
        after_a in proptest::collection::vec((any::<u16>(), any::<u32>()), 1..100),
        after_b in proptest::collection::vec((any::<u16>(), any::<u32>()), 1..100),
    ) {
        let trie: CTrie<u16, u32> = CTrie::new();
        let mut model: HashMap<u16, u32> = HashMap::new();
        for (k, v) in base {
            trie.insert(k, v);
            model.insert(k, v);
        }
        let fork = trie.snapshot();
        let mut fork_model = model.clone();
        for (k, v) in after_a {
            trie.insert(k, v);
            model.insert(k, v);
        }
        for (k, v) in after_b {
            fork.insert(k, v);
            fork_model.insert(k, v);
        }
        for k in 0u16..1024 {
            prop_assert_eq!(trie.lookup(&k), model.get(&k).copied());
            prop_assert_eq!(fork.lookup(&k), fork_model.get(&k).copied());
        }
    }

    #[test]
    fn insert_returns_previous_value_chains(
        keys in proptest::collection::vec(any::<u8>(), 1..300)
    ) {
        // The Indexed DataFrame depends on insert returning the previous
        // binding to thread its backward pointers; verify the chain of
        // returned values reconstructs insertion order per key.
        let trie: CTrie<u8, u64> = CTrie::new();
        let mut last_for_key: HashMap<u8, u64> = HashMap::new();
        for (seq, k) in keys.iter().enumerate() {
            let prev = trie.insert(*k, seq as u64);
            prop_assert_eq!(prev, last_for_key.insert(*k, seq as u64));
        }
    }
}
