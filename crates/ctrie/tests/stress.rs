//! Multithreaded stress tests for the lock-free cTrie: mixed workloads,
//! snapshot storms, and cross-thread visibility. These are the tests that
//! would catch reclamation and GCAS/RDCSS races.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use idf_ctrie::CTrie;

#[test]
fn mixed_insert_remove_lookup_across_threads() {
    let t = Arc::new(CTrie::<u64, u64>::new());
    const KEYS: u64 = 512;
    const OPS: u64 = 30_000;
    let threads: Vec<_> = (0..4u64)
        .map(|tid| {
            let t = Arc::clone(&t);
            std::thread::spawn(move || {
                // Each thread owns a disjoint key range for removals, so
                // per-key effects stay verifiable; lookups roam everywhere.
                let base = tid * KEYS;
                for i in 0..OPS {
                    let k = base + (i * 31 % KEYS);
                    match i % 4 {
                        0 | 1 => {
                            t.insert(k, i);
                        }
                        2 => {
                            t.remove(&k);
                        }
                        _ => {
                            // Any observed value must come from this range.
                            if let Some(v) = t.lookup(&k) {
                                assert!(v < OPS);
                            }
                        }
                    }
                }
            })
        })
        .collect();
    for th in threads {
        th.join().unwrap();
    }
    // Post-quiescence sanity: structure still fully functional.
    t.insert(999_999, 1);
    assert_eq!(t.lookup(&999_999), Some(1));
    let n = t.len();
    assert_eq!(t.iter().count(), n);
}

#[test]
fn snapshot_storm_under_writes() {
    let t = Arc::new(CTrie::<u64, u64>::new());
    for i in 0..1_000 {
        t.insert(i, 0);
    }
    let stop = Arc::new(AtomicBool::new(false));
    let writers: Vec<_> = (0..2u64)
        .map(|tid| {
            let t = Arc::clone(&t);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut round = 1u64;
                while !stop.load(Ordering::Relaxed) {
                    for k in (tid * 500)..(tid * 500 + 500) {
                        t.insert(k, round);
                    }
                    round += 1;
                }
            })
        })
        .collect();
    // Snapshot storm: every snapshot must be internally consistent — all
    // 1000 keys present (writers only overwrite, never remove).
    for _ in 0..200 {
        let snap = t.read_only_snapshot();
        let mut seen = 0;
        for k in 0..1_000 {
            if snap.lookup(&k).is_some() {
                seen += 1;
            }
        }
        assert_eq!(seen, 1_000, "snapshot lost keys");
    }
    stop.store(true, Ordering::Relaxed);
    for w in writers {
        w.join().unwrap();
    }
}

#[test]
fn writable_snapshots_fork_under_concurrency() {
    let t = Arc::new(CTrie::<u64, u64>::new());
    for i in 0..5_000 {
        t.insert(i, i);
    }
    let forks: Vec<_> = (0..4u64)
        .map(|tid| {
            let t = Arc::clone(&t);
            std::thread::spawn(move || {
                let fork = t.snapshot();
                // Each fork gets private keys; the shared prefix must stay.
                for i in 0..1_000 {
                    fork.insert(1_000_000 + tid * 10_000 + i, tid);
                }
                for i in (0..5_000).step_by(97) {
                    assert_eq!(fork.lookup(&i), Some(i));
                }
                assert_eq!(fork.lookup(&(1_000_000 + tid * 10_000)), Some(tid));
                // Other forks' keys are invisible here.
                let other = 1_000_000 + ((tid + 1) % 4) * 10_000;
                assert_eq!(fork.lookup(&other), None);
                fork.len()
            })
        })
        .collect();
    for f in forks {
        assert_eq!(f.join().unwrap(), 6_000);
    }
    // The original never saw any fork's writes.
    assert_eq!(t.len(), 5_000);
}

#[test]
fn iterator_stays_consistent_during_churn() {
    let t = Arc::new(CTrie::<u64, u64>::new());
    for i in 0..10_000 {
        t.insert(i, i);
    }
    let stop = Arc::new(AtomicBool::new(false));
    let churn = {
        let t = Arc::clone(&t);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut i = 10_000u64;
            while !stop.load(Ordering::Relaxed) {
                t.insert(i, i);
                t.remove(&(i - 10_000));
                i += 1;
            }
        })
    };
    for _ in 0..50 {
        // Inserts and removes alternate, so an atomic snapshot sees
        // either 10k or 10k+1 live keys (between the insert and the
        // paired remove) — never less, never more.
        let n = t.iter().count();
        assert!(
            n == 10_000 || n == 10_001,
            "snapshot saw inconsistent count {n}"
        );
    }
    stop.store(true, Ordering::Relaxed);
    churn.join().unwrap();
}

#[test]
fn heavy_collision_chains_under_concurrency() {
    use std::hash::{BuildHasher, Hasher};
    #[derive(Clone, Copy, Default)]
    struct Mod8;
    struct Mod8Hasher(u64);
    impl Hasher for Mod8Hasher {
        fn finish(&self) -> u64 {
            self.0 % 8
        }
        fn write(&mut self, _: &[u8]) {}
        fn write_u64(&mut self, v: u64) {
            self.0 = v;
        }
    }
    impl BuildHasher for Mod8 {
        type Hasher = Mod8Hasher;
        fn build_hasher(&self) -> Mod8Hasher {
            Mod8Hasher(0)
        }
    }
    // All keys collide into 8 hash buckets → deep L-node usage.
    let t = Arc::new(CTrie::<u64, u64, Mod8>::with_hasher(Mod8));
    let threads: Vec<_> = (0..4u64)
        .map(|tid| {
            let t = Arc::clone(&t);
            std::thread::spawn(move || {
                for i in 0..500 {
                    let k = tid * 1000 + i;
                    t.insert(k, k);
                    assert_eq!(t.lookup(&k), Some(k));
                }
            })
        })
        .collect();
    for th in threads {
        th.join().unwrap();
    }
    assert_eq!(t.len(), 2_000);
    for tid in 0..4u64 {
        for i in 0..500 {
            let k = tid * 1000 + i;
            assert_eq!(t.lookup(&k), Some(k));
        }
    }
}
