//! The lock-free concurrent trie with non-blocking snapshots.
//!
//! Faithful port of the algorithm of Prokopec et al. (PPoPP 2012):
//!
//! * **GCAS** (generation-compare-and-swap) replaces an I-node's main node
//!   only if the trie root's generation still matches the I-node's
//!   generation at commit time; otherwise the proposal is rolled back and
//!   the operation retries from the (renewed) root.
//! * **RDCSS** (restricted double-compare single-swap) swings the root to a
//!   new generation atomically with respect to in-flight GCAS commits — the
//!   double compare covers the root pointer *and* the root I-node's main.
//! * **Lazy copy-on-write**: after a snapshot, both tries hold fresh root
//!   generations; writers copy stale-generation I-nodes on the way down.
//!
//! See [`crate::node`] for the strong-count ownership protocol used in place
//! of the JVM garbage collector.

use std::borrow::Borrow;
use std::hash::{BuildHasher, Hash};
// idf-lint: allow(atomics-audit) -- root RDCSS protocol: the CAS, the descriptor commit flag and snapshot reads need one total order
use std::sync::atomic::{AtomicBool, Ordering::SeqCst};
use std::sync::Arc;

use crossbeam_epoch::{self as epoch, Atomic, Guard, Shared};

use crate::gen::Gen;
use crate::hash::FxBuildHasher;
use crate::iter::Iter;
use crate::node::{
    arc_clone_from_shared, arc_from_shared, arc_into_shared, defer_drop_arc, dual, Branch, CNode,
    INode, MainKind, MainNode, SNode, SendPtr, PREV_FAILED, PREV_PENDING, ROOT_DESC, ROOT_INODE, W,
};
use crate::{SnapshotMap, SnapshotReader};

/// Outcome of a recursive operation: either a result or "retry from root".
enum Op<T> {
    Done(T),
    Restart,
}

/// RDCSS descriptor installed in the root cell (tagged [`ROOT_DESC`]).
struct Descriptor<K, V> {
    /// The root I-node the descriptor replaces.
    ov: Arc<INode<K, V>>,
    /// The main node `ov` must still hold for the swap to commit
    /// (compared by address).
    exp: Arc<MainNode<K, V>>,
    /// The replacement root I-node.
    nv: Arc<INode<K, V>>,
    committed: AtomicBool,
}

/// A concurrent hash trie with lock-free updates and O(1) snapshots.
///
/// See the [crate docs](crate) for an overview and examples.
pub struct CTrie<K, V, S = FxBuildHasher> {
    /// Tagged cell: [`ROOT_INODE`] → `*const INode<K, V>`,
    /// [`ROOT_DESC`] → `*const Descriptor<K, V>`. Owns one strong count.
    root: Atomic<u64>,
    read_only: bool,
    hasher: S,
    _marker: std::marker::PhantomData<(K, V)>,
}

// SAFETY: all shared mutation goes through atomic cells with the ownership
// protocol documented in `node`; `K`/`V` cross threads via `Arc`.
unsafe impl<K: Send + Sync, V: Send + Sync, S: Send + Sync> Send for CTrie<K, V, S> {}
// SAFETY: same argument as Send — concurrent readers/writers synchronize
// exclusively through the atomic root cell and GCAS, never through `&mut`.
unsafe impl<K: Send + Sync, V: Send + Sync, S: Send + Sync> Sync for CTrie<K, V, S> {}

impl<K, V> CTrie<K, V, FxBuildHasher>
where
    K: Eq + Hash + Clone + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
{
    /// Create an empty trie with the default (Fx) hasher.
    pub fn new() -> Self {
        Self::with_hasher(FxBuildHasher)
    }
}

impl<K, V> Default for CTrie<K, V, FxBuildHasher>
where
    K: Eq + Hash + Clone + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
{
    fn default() -> Self {
        Self::new()
    }
}

impl<K, V, S> CTrie<K, V, S>
where
    K: Eq + Hash + Clone + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
    S: BuildHasher + Clone + Send + Sync + 'static,
{
    /// Create an empty trie with a custom hasher.
    pub fn with_hasher(hasher: S) -> Self {
        let gen = Gen::fresh();
        let empty = MainNode::cnode(CNode {
            bitmap: 0,
            array: Vec::new(),
            gen,
        });
        let root = Arc::new(INode::new(empty, gen));
        CTrie {
            root: Self::root_cell(root, ROOT_INODE),
            read_only: false,
            hasher,
            _marker: std::marker::PhantomData,
        }
    }

    fn root_cell(inode: Arc<INode<K, V>>, tag: usize) -> Atomic<u64> {
        let cell = Atomic::null();
        let shared: Shared<'_, u64> =
            Shared::from(Arc::into_raw(inode).cast::<u64>()).with_tag(tag);
        cell.store(shared, SeqCst);
        cell
    }

    fn hash_key<Q: ?Sized + Hash>(&self, key: &Q) -> u64 {
        self.hasher.hash_one(key)
    }

    /// Whether this handle is a read-only snapshot.
    pub fn is_read_only(&self) -> bool {
        self.read_only
    }

    // ------------------------------------------------------------------
    // Root access (RDCSS)
    // ------------------------------------------------------------------

    /// Read the root I-node, resolving (or aborting) any in-flight RDCSS.
    fn read_root<'g>(&self, abort: bool, g: &'g Guard) -> (Shared<'g, u64>, &'g INode<K, V>) {
        loop {
            let r = self.root.load(SeqCst, g);
            if r.tag() == ROOT_DESC {
                self.rdcss_complete(abort, g);
                continue;
            }
            // SAFETY: tag ROOT_INODE ⇒ the cell holds a live INode; the
            // guard keeps it alive for 'g.
            let inode = unsafe { &*(r.with_tag(0).as_raw() as *const INode<K, V>) };
            return (r, inode);
        }
    }

    /// Attempt the restricted double-compare single-swap of the root:
    /// `root: ov → nv` iff `ov.main == exp` still holds.
    fn rdcss_root(
        &self,
        ov: Shared<'_, u64>,
        exp: Arc<MainNode<K, V>>,
        nv: Arc<INode<K, V>>,
        g: &Guard,
    ) -> bool {
        // SAFETY: ov was read from the root cell under `g` with tag
        // ROOT_INODE.
        let ov_arc = unsafe {
            arc_clone_from_shared::<INode<K, V>>(Shared::from(
                ov.with_tag(0).as_raw() as *const INode<K, V>
            ))
        };
        let desc = Arc::new(Descriptor {
            ov: ov_arc,
            exp,
            nv,
            committed: AtomicBool::new(false),
        });
        let desc_probe = Arc::clone(&desc);
        let desc_shared: Shared<'_, u64> =
            Shared::from(Arc::into_raw(desc).cast::<u64>()).with_tag(ROOT_DESC);
        match self
            .root
            .compare_exchange(ov, desc_shared, SeqCst, SeqCst, g)
        {
            Ok(_) => {
                // SAFETY: the CAS succeeded, so the cell's former strong
                // count of `ov` is orphaned and ours to release; readers
                // pinned by older guards still hold it until the epoch
                // flips, which defer_drop_root respects.
                unsafe { Self::defer_drop_root(g, ov) };
                self.rdcss_complete(false, g);
                desc_probe.committed.load(SeqCst)
            }
            Err(_) => {
                // SAFETY: the CAS failed, so no other thread ever saw
                // `desc_shared`; the strong count minted by Arc::into_raw
                // above is exclusively ours to reclaim, immediately.
                unsafe {
                    drop(Arc::from_raw(
                        desc_shared.with_tag(0).as_raw() as *const Descriptor<K, V>
                    ));
                }
                false
            }
        }
    }

    /// Resolve a root descriptor: commit to `nv`, or roll back to `ov`
    /// (always roll back when `abort`).
    fn rdcss_complete(&self, abort: bool, g: &Guard) {
        loop {
            let r = self.root.load(SeqCst, g);
            if r.tag() != ROOT_DESC {
                return;
            }
            // SAFETY: tag ROOT_DESC ⇒ live Descriptor, pinned by `g`.
            let d = unsafe { &*(r.with_tag(0).as_raw() as *const Descriptor<K, V>) };
            let install = |target: Arc<INode<K, V>>| -> bool {
                let shared: Shared<'_, u64> =
                    Shared::from(Arc::into_raw(target).cast::<u64>()).with_tag(ROOT_INODE);
                match self.root.compare_exchange(r, shared, SeqCst, SeqCst, g) {
                    Ok(_) => {
                        // SAFETY: CAS success orphans the descriptor's
                        // strong count held by the cell; defer its drop
                        // past every pinned reader.
                        unsafe { Self::defer_drop_root(g, r) };
                        true
                    }
                    Err(_) => {
                        // SAFETY: CAS failure means `shared` was never
                        // published; the count from Arc::into_raw above
                        // is still exclusively ours.
                        unsafe {
                            drop(Arc::from_raw(
                                shared.with_tag(0).as_raw() as *const INode<K, V>
                            ));
                        }
                        false
                    }
                }
            };
            if abort {
                install(Arc::clone(&d.ov));
                continue; // re-check: another descriptor may land
            }
            let old_main = self.gcas_read(&d.ov, g);
            if std::ptr::eq(old_main.as_raw(), Arc::as_ptr(&d.exp)) {
                let nv = Arc::clone(&d.nv);
                let committed = &d.committed as *const AtomicBool;
                if install(nv) {
                    // SAFETY: `d` stays alive under `g` even though its
                    // count was deferred-dropped.
                    unsafe { (*committed).store(true, SeqCst) };
                    return;
                }
            } else if install(Arc::clone(&d.ov)) {
                return;
            }
        }
    }

    /// Defer-release the strong count carried by a root-cell pointer
    /// (either an I-node or a descriptor, per its tag).
    ///
    /// # Safety
    /// Caller must own the count and the pointer must be disconnected.
    unsafe fn defer_drop_root(g: &Guard, r: Shared<'_, u64>) {
        let raw = r.with_tag(0).as_raw();
        if r.tag() == ROOT_DESC {
            let p = SendPtr::new(raw as *const Descriptor<K, V>);
            g.defer(move || drop(Arc::from_raw(p.into_raw())));
        } else {
            let p = SendPtr::new(raw as *const INode<K, V>);
            g.defer(move || drop(Arc::from_raw(p.into_raw())));
        }
    }

    // ------------------------------------------------------------------
    // GCAS
    // ------------------------------------------------------------------

    /// Read `inode`'s committed main node, helping resolve pending GCAS.
    fn gcas_read<'g>(&self, inode: &INode<K, V>, g: &'g Guard) -> Shared<'g, MainNode<K, V>> {
        let m = inode.main.load(SeqCst, g);
        // SAFETY: main is never null and pinned by `g`.
        let prev = unsafe { m.deref() }.prev.load(SeqCst, g);
        if prev.is_null() {
            m
        } else {
            self.gcas_commit(inode, m, g)
        }
    }

    /// Drive a pending GCAS on `inode` to completion (commit or roll back)
    /// and return the resulting committed main node.
    fn gcas_commit<'g>(
        &self,
        inode: &INode<K, V>,
        mut m: Shared<'g, MainNode<K, V>>,
        g: &'g Guard,
    ) -> Shared<'g, MainNode<K, V>> {
        loop {
            // SAFETY: pinned by `g`.
            let mref = unsafe { m.deref() };
            let prev = mref.prev.load(SeqCst, g);
            if prev.is_null() {
                return m; // committed
            }
            // Reading the root both aborts competing RDCSS and fetches the
            // current generation for the validity check.
            let (_, root) = self.read_root(true, g);
            if prev.tag() == PREV_FAILED {
                // Roll back: inode.main: m → old.
                let old = prev.with_tag(0);
                // SAFETY: `old` is kept live by `m.prev`'s strong count
                // (released only by m's Drop); the cell needs its own
                // count, minted here before the CAS can publish it.
                unsafe { Arc::increment_strong_count(old.as_raw()) };
                match inode.main.compare_exchange(m, old, SeqCst, SeqCst, g) {
                    Ok(_) => {
                        // SAFETY: the CAS orphaned the cell's count of
                        // `m`; defer its release past pinned readers.
                        unsafe { defer_drop_arc(g, m) };
                        m = old;
                        continue;
                    }
                    Err(e) => {
                        // SAFETY: the CAS failed, so the speculative
                        // count minted above was never published and is
                        // exclusively ours to undo.
                        unsafe { drop(Arc::from_raw(old.as_raw())) };
                        m = e.current;
                        continue;
                    }
                }
            }
            // Pending: commit iff our generation is still current and this
            // handle may write; otherwise poison it as failed.
            if root.gen == inode.gen && !self.read_only {
                match mref
                    .prev
                    .compare_exchange(prev, Shared::null(), SeqCst, SeqCst, g)
                {
                    Ok(_) => {
                        // SAFETY: clearing `prev` orphans its strong
                        // count of the old main; defer its release past
                        // pinned readers.
                        unsafe { defer_drop_arc(g, prev) };
                        return m;
                    }
                    Err(_) => continue,
                }
            } else {
                let _ =
                    mref.prev
                        .compare_exchange(prev, prev.with_tag(PREV_FAILED), SeqCst, SeqCst, g);
                continue;
            }
        }
    }

    /// Propose replacing `inode`'s main node `old` with `new`.
    /// Returns true iff the proposal committed.
    fn gcas(
        &self,
        inode: &INode<K, V>,
        old: Shared<'_, MainNode<K, V>>,
        new: Arc<MainNode<K, V>>,
        g: &Guard,
    ) -> bool {
        // Point new.prev at old (pending), giving the prev cell its count.
        // SAFETY: `old` is live — it is the current main node of `inode`,
        // held by the cell's own strong count while we are pinned.
        unsafe { Arc::increment_strong_count(old.as_raw()) };
        new.prev.store(old.with_tag(PREV_PENDING), SeqCst);
        let new_shared = arc_into_shared(new);
        match inode
            .main
            .compare_exchange(old, new_shared, SeqCst, SeqCst, g)
        {
            Ok(_) => {
                // SAFETY: the CAS orphaned the cell's count of `old`
                // (rollback takes a fresh count if needed); defer its
                // release past pinned readers.
                unsafe { defer_drop_arc(g, old) };
                self.gcas_commit(inode, new_shared, g);
                // Committed iff the proposal survived with prev cleared.
                // SAFETY: `new_shared` is the cell's current-or-recent
                // main node, pinned by `g`.
                unsafe { new_shared.deref() }.prev.load(SeqCst, g).is_null()
            }
            Err(_) => {
                // SAFETY: the CAS failed, so `new` was never published;
                // the count from arc_into_shared is exclusively ours to
                // reclaim (its Drop releases prev's count of `old`).
                unsafe { drop(arc_from_shared(new_shared)) };
                false
            }
        }
    }

    // ------------------------------------------------------------------
    // Generation renewal (copy-on-write after snapshots)
    // ------------------------------------------------------------------

    /// Copy an I-node into generation `gen`, sharing its main node.
    fn copy_to_gen(&self, inode: &INode<K, V>, gen: Gen, g: &Guard) -> Arc<INode<K, V>> {
        let main = self.gcas_read(inode, g);
        // SAFETY: main is live under `g`.
        let main_arc = unsafe { arc_clone_from_shared(main) };
        Arc::new(INode::new(main_arc, gen))
    }

    /// Copy a C-node into generation `gen`, copying child I-nodes.
    fn renewed(&self, cn: &CNode<K, V>, gen: Gen, g: &Guard) -> CNode<K, V> {
        let array = cn
            .array
            .iter()
            .map(|b| match b {
                Branch::I(i) => Branch::I(self.copy_to_gen(i, gen, g)),
                Branch::S(s) => Branch::S(Arc::clone(s)),
            })
            .collect();
        CNode {
            bitmap: cn.bitmap,
            array,
            gen,
        }
    }

    /// Contract a single-singleton C-node into a tomb (if below the root).
    fn contracted(cn: CNode<K, V>, level: u32) -> Arc<MainNode<K, V>> {
        if level > 0 && cn.array.len() == 1 {
            if let Branch::S(sn) = &cn.array[0] {
                return MainNode::tomb(Arc::clone(sn));
            }
        }
        MainNode::cnode(cn)
    }

    /// Compress: resurrect tombed children and contract.
    fn compressed(&self, cn: &CNode<K, V>, level: u32, gen: Gen, g: &Guard) -> Arc<MainNode<K, V>> {
        let array = cn
            .array
            .iter()
            .map(|b| match b {
                Branch::I(i) => {
                    let m = self.gcas_read(i, g);
                    // SAFETY: pinned by `g`.
                    match &unsafe { m.deref() }.kind {
                        MainKind::T(sn) => Branch::S(Arc::clone(sn)),
                        _ => Branch::I(Arc::clone(i)),
                    }
                }
                Branch::S(s) => Branch::S(Arc::clone(s)),
            })
            .collect();
        Self::contracted(
            CNode {
                bitmap: cn.bitmap,
                array,
                gen,
            },
            level,
        )
    }

    /// Replace `inode`'s C-node main with its compression.
    fn clean(&self, inode: &INode<K, V>, level: u32, g: &Guard) {
        let m = self.gcas_read(inode, g);
        // SAFETY: pinned by `g`.
        if let MainKind::C(cn) = &unsafe { m.deref() }.kind {
            let comp = self.compressed(cn, level, inode.gen, g);
            let _ = self.gcas(inode, m, comp, g);
        }
    }

    // ------------------------------------------------------------------
    // Insert
    // ------------------------------------------------------------------

    /// Insert `key → value`; returns the previously bound value if any.
    ///
    /// The Indexed DataFrame relies on the returned value to thread its
    /// backward-pointer list: the previous packed row pointer becomes the
    /// new row's back link.
    ///
    /// # Panics
    /// Panics if called on a read-only snapshot.
    pub fn insert(&self, key: K, value: V) -> Option<V> {
        assert!(!self.read_only, "insert on a read-only cTrie snapshot");
        let hash = self.hash_key(&key);
        let g = &epoch::pin();
        loop {
            let (_, root) = self.read_root(false, g);
            match self.rec_insert(root, hash, &key, &value, 0, None, root.gen, g) {
                Op::Done(old) => return old,
                Op::Restart => continue,
            }
        }
    }

    /// Bulk-load `entries` into an empty (or existing) trie.
    ///
    /// Equivalent to calling [`CTrie::insert`] once per entry but pins the
    /// epoch a single time for the whole load, which is what makes
    /// checkpoint-restore (rebuilding a partition index from a serialized
    /// key → pointer dump) markedly cheaper than replaying every append.
    /// Later duplicates of a key overwrite earlier ones, matching the
    /// sequential-insert semantics.
    ///
    /// # Panics
    /// Panics if called on a read-only snapshot.
    pub fn from_entries<I>(&self, entries: I)
    where
        I: IntoIterator<Item = (K, V)>,
    {
        assert!(
            !self.read_only,
            "from_entries on a read-only cTrie snapshot"
        );
        let g = &epoch::pin();
        for (key, value) in entries {
            let hash = self.hash_key(&key);
            loop {
                let (_, root) = self.read_root(false, g);
                match self.rec_insert(root, hash, &key, &value, 0, None, root.gen, g) {
                    Op::Done(_) => break,
                    Op::Restart => continue,
                }
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn rec_insert(
        &self,
        inode: &INode<K, V>,
        hash: u64,
        key: &K,
        value: &V,
        level: u32,
        parent: Option<&INode<K, V>>,
        startgen: Gen,
        g: &Guard,
    ) -> Op<Option<V>> {
        loop {
            let m = self.gcas_read(inode, g);
            // SAFETY: pinned by `g`.
            let mref = unsafe { m.deref() };
            match &mref.kind {
                MainKind::C(cn) => {
                    let (flag, pos) = CNode::<K, V>::flag_pos(hash, level, cn.bitmap);
                    if cn.bitmap & flag == 0 {
                        // Slot empty: splice in a singleton (renewing the
                        // C-node into our generation first if stale).
                        let sn = Arc::new(SNode::new(hash, key.clone(), value.clone()));
                        let base = if cn.gen == inode.gen {
                            cn.inserted(pos, flag, Branch::S(sn), inode.gen)
                        } else {
                            self.renewed(cn, inode.gen, g).inserted(
                                pos,
                                flag,
                                Branch::S(sn),
                                inode.gen,
                            )
                        };
                        if self.gcas(inode, m, MainNode::cnode(base), g) {
                            return Op::Done(None);
                        }
                        return Op::Restart;
                    }
                    match &cn.array[pos] {
                        Branch::I(child) => {
                            if child.gen == startgen {
                                let child = Arc::clone(child);
                                return self.rec_insert(
                                    &child,
                                    hash,
                                    key,
                                    value,
                                    level + W,
                                    Some(inode),
                                    startgen,
                                    g,
                                );
                            }
                            // Stale child: renew this level, then retry it.
                            let rn = self.renewed(cn, startgen, g);
                            if self.gcas(inode, m, MainNode::cnode(rn), g) {
                                continue;
                            }
                            return Op::Restart;
                        }
                        Branch::S(sn) => {
                            if sn.hash == hash && sn.key == *key {
                                // Same key: replace the binding.
                                let nsn = Arc::new(SNode::new(hash, key.clone(), value.clone()));
                                let base = if cn.gen == inode.gen {
                                    cn.updated(pos, Branch::S(nsn), inode.gen)
                                } else {
                                    self.renewed(cn, inode.gen, g).updated(
                                        pos,
                                        Branch::S(nsn),
                                        inode.gen,
                                    )
                                };
                                let old = sn.value.clone();
                                if self.gcas(inode, m, MainNode::cnode(base), g) {
                                    return Op::Done(Some(old));
                                }
                                return Op::Restart;
                            }
                            // Different key in this slot: grow a subtree.
                            let nsn = Arc::new(SNode::new(hash, key.clone(), value.clone()));
                            let sub = dual(Arc::clone(sn), nsn, level + W, inode.gen);
                            let child = Arc::new(INode::new(sub, inode.gen));
                            let base = if cn.gen == inode.gen {
                                cn.updated(pos, Branch::I(child), inode.gen)
                            } else {
                                self.renewed(cn, inode.gen, g).updated(
                                    pos,
                                    Branch::I(child),
                                    inode.gen,
                                )
                            };
                            if self.gcas(inode, m, MainNode::cnode(base), g) {
                                return Op::Done(None);
                            }
                            return Op::Restart;
                        }
                    }
                }
                MainKind::T(_) => {
                    if let Some(p) = parent {
                        self.clean(p, level - W, g);
                    }
                    return Op::Restart;
                }
                MainKind::L(ln) => {
                    let old = ln.get(key).map(|sn| sn.value.clone());
                    let nln = ln.inserted(Arc::new(SNode::new(hash, key.clone(), value.clone())));
                    if self.gcas(inode, m, MainNode::lnode(nln), g) {
                        return Op::Done(old);
                    }
                    return Op::Restart;
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Lookup
    // ------------------------------------------------------------------

    /// Look up the value bound to `key`.
    pub fn lookup(&self, key: &K) -> Option<V> {
        self.lookup_with(key, V::clone)
    }

    /// Look up `key` and project the bound value through `f` without
    /// cloning it first.
    pub fn lookup_with<R>(&self, key: &K, f: impl FnOnce(&V) -> R) -> Option<R> {
        self.lookup_with_borrowed(key, f)
    }

    /// Look up through any borrowed form of the key type, so callers can
    /// probe without materialising an owned `K` (e.g. a `CTrie<String, _>`
    /// probed with a `&str`). Mirrors `HashMap::get`'s `Borrow` contract:
    /// `Q`'s `Hash` and `Eq` must agree with `K`'s.
    pub fn lookup_borrowed<Q>(&self, key: &Q) -> Option<V>
    where
        K: Borrow<Q>,
        Q: ?Sized + Hash + Eq,
    {
        self.lookup_with_borrowed(key, V::clone)
    }

    /// [`Self::lookup_borrowed`] with a projection applied in place of the
    /// final clone — the zero-allocation probe entry point.
    pub fn lookup_with_borrowed<Q, R>(&self, key: &Q, f: impl FnOnce(&V) -> R) -> Option<R>
    where
        K: Borrow<Q>,
        Q: ?Sized + Hash + Eq,
    {
        let hash = self.hash_key(key);
        let g = &epoch::pin();
        let mut f = Some(f);
        loop {
            let (_, root) = self.read_root(false, g);
            match self.rec_lookup(root, hash, key, 0, None, root.gen, &mut f, g) {
                Op::Done(r) => return r,
                Op::Restart => continue,
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn rec_lookup<Q, R>(
        &self,
        inode: &INode<K, V>,
        hash: u64,
        key: &Q,
        level: u32,
        parent: Option<&INode<K, V>>,
        startgen: Gen,
        f: &mut Option<impl FnOnce(&V) -> R>,
        g: &Guard,
    ) -> Op<Option<R>>
    where
        K: Borrow<Q>,
        Q: ?Sized + Hash + Eq,
    {
        loop {
            let m = self.gcas_read(inode, g);
            // SAFETY: pinned by `g`.
            let mref = unsafe { m.deref() };
            match &mref.kind {
                MainKind::C(cn) => {
                    let (flag, pos) = CNode::<K, V>::flag_pos(hash, level, cn.bitmap);
                    if cn.bitmap & flag == 0 {
                        return Op::Done(None);
                    }
                    match &cn.array[pos] {
                        Branch::I(child) => {
                            if self.read_only || child.gen == startgen {
                                let child = Arc::clone(child);
                                return self.rec_lookup(
                                    &child,
                                    hash,
                                    key,
                                    level + W,
                                    Some(inode),
                                    startgen,
                                    f,
                                    g,
                                );
                            }
                            let rn = self.renewed(cn, startgen, g);
                            if self.gcas(inode, m, MainNode::cnode(rn), g) {
                                continue;
                            }
                            return Op::Restart;
                        }
                        Branch::S(sn) => {
                            if sn.hash == hash && sn.key.borrow() == key {
                                // idf-lint: allow(hot-path-panic) -- lookup_with invariant: the projection is taken once per call
                                let func = f.take().expect("projection applied twice");
                                return Op::Done(Some(func(&sn.value)));
                            }
                            return Op::Done(None);
                        }
                    }
                }
                MainKind::T(sn) => {
                    if self.read_only {
                        // Snapshots never clean; answer straight from the tomb.
                        if sn.hash == hash && sn.key.borrow() == key {
                            // idf-lint: allow(hot-path-panic) -- lookup_with invariant: the projection is taken once per call
                            let func = f.take().expect("projection applied twice");
                            return Op::Done(Some(func(&sn.value)));
                        }
                        return Op::Done(None);
                    }
                    if let Some(p) = parent {
                        self.clean(p, level - W, g);
                    }
                    return Op::Restart;
                }
                MainKind::L(ln) => {
                    let r = ln.get(key).map(|sn| {
                        // idf-lint: allow(hot-path-panic) -- lookup_with invariant: the projection is taken once per call
                        let func = f.take().expect("projection applied twice");
                        func(&sn.value)
                    });
                    return Op::Done(r);
                }
            }
        }
    }

    /// Whether `key` has a binding.
    pub fn contains_key(&self, key: &K) -> bool {
        self.lookup_with(key, |_| ()).is_some()
    }

    // ------------------------------------------------------------------
    // Remove
    // ------------------------------------------------------------------

    /// Remove the binding for `key`, returning the removed value if any.
    ///
    /// # Panics
    /// Panics if called on a read-only snapshot.
    pub fn remove(&self, key: &K) -> Option<V> {
        assert!(!self.read_only, "remove on a read-only cTrie snapshot");
        let hash = self.hash_key(key);
        let g = &epoch::pin();
        loop {
            let (_, root) = self.read_root(false, g);
            match self.rec_remove(root, hash, key, 0, None, root.gen, g) {
                Op::Done(r) => return r,
                Op::Restart => continue,
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn rec_remove(
        &self,
        inode: &INode<K, V>,
        hash: u64,
        key: &K,
        level: u32,
        parent: Option<&INode<K, V>>,
        startgen: Gen,
        g: &Guard,
    ) -> Op<Option<V>> {
        let m = self.gcas_read(inode, g);
        // SAFETY: pinned by `g`.
        let mref = unsafe { m.deref() };
        let res = match &mref.kind {
            MainKind::C(cn) => {
                let (flag, pos) = CNode::<K, V>::flag_pos(hash, level, cn.bitmap);
                if cn.bitmap & flag == 0 {
                    return Op::Done(None);
                }
                match &cn.array[pos] {
                    Branch::I(child) => {
                        if child.gen == startgen {
                            let child = Arc::clone(child);
                            self.rec_remove(&child, hash, key, level + W, Some(inode), startgen, g)
                        } else {
                            let rn = self.renewed(cn, startgen, g);
                            if self.gcas(inode, m, MainNode::cnode(rn), g) {
                                self.rec_remove(inode, hash, key, level, parent, startgen, g)
                            } else {
                                Op::Restart
                            }
                        }
                    }
                    Branch::S(sn) => {
                        if sn.hash == hash && sn.key == *key {
                            let ncn = cn.removed(pos, flag, inode.gen);
                            let cand = Self::contracted(ncn, level);
                            if self.gcas(inode, m, cand, g) {
                                Op::Done(Some(sn.value.clone()))
                            } else {
                                Op::Restart
                            }
                        } else {
                            Op::Done(None)
                        }
                    }
                }
            }
            MainKind::T(_) => {
                if let Some(p) = parent {
                    self.clean(p, level - W, g);
                }
                Op::Restart
            }
            MainKind::L(ln) => match ln.get(key) {
                None => Op::Done(None),
                Some(sn) => {
                    let old = sn.value.clone();
                    let nln = ln.removed(key);
                    let cand = if nln.entries.len() == 1 {
                        MainNode::tomb(Arc::clone(&nln.entries[0]))
                    } else {
                        MainNode::lnode(nln)
                    };
                    if self.gcas(inode, m, cand, g) {
                        Op::Done(Some(old))
                    } else {
                        Op::Restart
                    }
                }
            },
        };
        // After a successful removal, contract a tombed child into its parent.
        if let (Op::Done(Some(_)), Some(p)) = (&res, parent) {
            let now = self.gcas_read(inode, g);
            // SAFETY: pinned by `g`.
            if matches!(&unsafe { now.deref() }.kind, MainKind::T(_)) {
                self.clean_parent(inode, p, hash, level - W, startgen, g);
            }
        }
        res
    }

    /// Contract `tombed` (an I-node whose main is a tomb) into `parent`.
    fn clean_parent(
        &self,
        tombed: &INode<K, V>,
        parent: &INode<K, V>,
        hash: u64,
        parent_level: u32,
        startgen: Gen,
        g: &Guard,
    ) {
        loop {
            let pm = self.gcas_read(parent, g);
            // SAFETY: pinned by `g`.
            let MainKind::C(cn) = &unsafe { pm.deref() }.kind else {
                return;
            };
            let (flag, pos) = CNode::<K, V>::flag_pos(hash, parent_level, cn.bitmap);
            if cn.bitmap & flag == 0 {
                return;
            }
            let Branch::I(sub) = &cn.array[pos] else {
                return;
            };
            if !std::ptr::eq(Arc::as_ptr(sub), tombed as *const _) {
                return;
            }
            let tm = self.gcas_read(tombed, g);
            // SAFETY: pinned by `g`.
            if let MainKind::T(sn) = &unsafe { tm.deref() }.kind {
                let ncn = cn.updated(pos, Branch::S(Arc::clone(sn)), parent.gen);
                let cand = Self::contracted(ncn, parent_level);
                if self.gcas(parent, pm, cand, g) {
                    return;
                }
                let (_, root) = self.read_root(false, g);
                if root.gen != startgen {
                    return; // a snapshot intervened; leave it to future ops
                }
                continue;
            }
            return;
        }
    }

    // ------------------------------------------------------------------
    // Snapshots
    // ------------------------------------------------------------------

    /// Take a writable O(1) snapshot. Both tries copy-on-write lazily.
    pub fn snapshot(&self) -> CTrie<K, V, S> {
        let g = &epoch::pin();
        loop {
            let (root_shared, root) = self.read_root(false, g);
            let main = self.gcas_read(root, g);
            // SAFETY: pinned by `g`.
            let main_arc = unsafe { arc_clone_from_shared(main) };
            let nv = Arc::new(INode::new(Arc::clone(&main_arc), Gen::fresh()));
            if self.rdcss_root(root_shared, Arc::clone(&main_arc), nv, g) {
                let snap_root = Arc::new(INode::new(main_arc, Gen::fresh()));
                return CTrie {
                    root: Self::root_cell(snap_root, ROOT_INODE),
                    read_only: false,
                    hasher: self.hasher.clone(),
                    _marker: std::marker::PhantomData,
                };
            }
        }
    }

    /// Take a read-only O(1) snapshot. Cheaper than [`Self::snapshot`]: the
    /// frozen trie shares the old root directly and never copies.
    pub fn read_only_snapshot(&self) -> CTrie<K, V, S> {
        let g = &epoch::pin();
        if self.read_only {
            // Already frozen; share the root as-is.
            let (root_shared, _) = self.read_root(false, g);
            // SAFETY: root_shared holds a live I-node under `g`.
            let root_arc = unsafe {
                arc_clone_from_shared::<INode<K, V>>(Shared::from(
                    root_shared.with_tag(0).as_raw() as *const INode<K, V>
                ))
            };
            return CTrie {
                root: Self::root_cell(root_arc, ROOT_INODE),
                read_only: true,
                hasher: self.hasher.clone(),
                _marker: std::marker::PhantomData,
            };
        }
        loop {
            let (root_shared, root) = self.read_root(false, g);
            let main = self.gcas_read(root, g);
            // SAFETY: pinned by `g`.
            let main_arc = unsafe { arc_clone_from_shared(main) };
            let nv = Arc::new(INode::new(main_arc, Gen::fresh()));
            // SAFETY: root_shared holds a live I-node under `g`.
            let old_root = unsafe {
                arc_clone_from_shared::<INode<K, V>>(Shared::from(
                    root_shared.with_tag(0).as_raw() as *const INode<K, V>
                ))
            };
            // SAFETY: `main` is pinned by `g`; mint a fresh count for the
            // RDCSS expected value.
            let exp = unsafe { arc_clone_from_shared(main) };
            if self.rdcss_root(root_shared, exp, nv, g) {
                return CTrie {
                    root: Self::root_cell(old_root, ROOT_INODE),
                    read_only: true,
                    hasher: self.hasher.clone(),
                    _marker: std::marker::PhantomData,
                };
            }
        }
    }

    /// Number of bindings. O(n): walks a read-only snapshot.
    pub fn len(&self) -> usize {
        self.iter().count()
    }

    /// Whether the trie is empty.
    pub fn is_empty(&self) -> bool {
        self.iter().next().is_none()
    }

    /// Iterate over a point-in-time view of the bindings (unordered).
    pub fn iter(&self) -> Iter<K, V, S> {
        Iter::new(self.read_only_snapshot())
    }

    pub(crate) fn root_main_arc(&self) -> Arc<MainNode<K, V>> {
        let g = &epoch::pin();
        let (_, root) = self.read_root(false, g);
        let main = self.gcas_read(root, g);
        // SAFETY: pinned by `g`.
        unsafe { arc_clone_from_shared(main) }
    }

    /// Resolve an I-node's committed main during iteration.
    pub(crate) fn resolve_main(&self, inode: &INode<K, V>) -> Arc<MainNode<K, V>> {
        let g = &epoch::pin();
        let main = self.gcas_read(inode, g);
        // SAFETY: pinned by `g`.
        unsafe { arc_clone_from_shared(main) }
    }
}

impl<K, V, S> Drop for CTrie<K, V, S> {
    fn drop(&mut self) {
        // SAFETY: `&mut self`; release the root cell's count.
        unsafe {
            let g = epoch::unprotected();
            let r = self.root.load(SeqCst, g);
            if r.is_null() {
                return;
            }
            let raw = r.with_tag(0).as_raw();
            if r.tag() == ROOT_DESC {
                drop(Arc::from_raw(raw as *const Descriptor<K, V>));
            } else {
                drop(Arc::from_raw(raw as *const INode<K, V>));
            }
        }
    }
}

impl<K, V, S> SnapshotMap<K, V> for CTrie<K, V, S>
where
    K: Eq + Hash + Clone + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
    S: BuildHasher + Clone + Send + Sync + 'static,
{
    fn insert(&self, key: K, value: V) -> Option<V> {
        CTrie::insert(self, key, value)
    }

    fn lookup(&self, key: &K) -> Option<V> {
        CTrie::lookup(self, key)
    }

    fn remove(&self, key: &K) -> Option<V> {
        CTrie::remove(self, key)
    }

    fn snapshot_reader(&self) -> Box<dyn SnapshotReader<K, V>> {
        Box::new(self.read_only_snapshot())
    }

    fn count(&self) -> usize {
        self.len()
    }
}

impl<K, V, S> SnapshotReader<K, V> for CTrie<K, V, S>
where
    K: Eq + Hash + Clone + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
    S: BuildHasher + Clone + Send + Sync + 'static,
{
    fn lookup(&self, key: &K) -> Option<V> {
        CTrie::lookup(self, key)
    }

    fn count(&self) -> usize {
        self.len()
    }

    fn entries(&self) -> Vec<(K, V)> {
        self.iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hasher;

    #[test]
    fn insert_lookup_roundtrip() {
        let t: CTrie<u64, String> = CTrie::new();
        assert_eq!(t.lookup(&1), None);
        assert_eq!(t.insert(1, "one".into()), None);
        assert_eq!(t.lookup(&1), Some("one".into()));
        assert_eq!(t.insert(1, "uno".into()), Some("one".into()));
        assert_eq!(t.lookup(&1), Some("uno".into()));
    }

    #[test]
    #[cfg_attr(miri, ignore = "loop/thread count too heavy for the interpreter")]
    fn many_keys() {
        let t: CTrie<u64, u64> = CTrie::new();
        for i in 0..10_000 {
            assert_eq!(t.insert(i, i * 2), None);
        }
        for i in 0..10_000 {
            assert_eq!(t.lookup(&i), Some(i * 2), "key {i}");
        }
        assert_eq!(t.lookup(&10_000), None);
        assert_eq!(t.len(), 10_000);
    }

    #[test]
    #[cfg_attr(miri, ignore = "loop/thread count too heavy for the interpreter")]
    fn from_entries_matches_sequential_inserts() {
        let bulk: CTrie<u64, u64> = CTrie::new();
        bulk.from_entries((0..5000).map(|i| (i, i * 3)));
        let seq: CTrie<u64, u64> = CTrie::new();
        for i in 0..5000 {
            seq.insert(i, i * 3);
        }
        assert_eq!(bulk.len(), seq.len());
        for i in 0..5000 {
            assert_eq!(bulk.lookup(&i), Some(i * 3), "key {i}");
        }
        // Later duplicates overwrite earlier ones, like repeated insert.
        bulk.from_entries([(7u64, 1u64), (7, 2)]);
        assert_eq!(bulk.lookup(&7), Some(2));
    }

    #[test]
    fn remove_returns_old_and_unbinds() {
        let t: CTrie<u64, u64> = CTrie::new();
        for i in 0..1000 {
            t.insert(i, i);
        }
        for i in 0..1000 {
            assert_eq!(t.remove(&i), Some(i));
            assert_eq!(t.lookup(&i), None);
            assert_eq!(t.remove(&i), None);
        }
        assert!(t.is_empty());
    }

    #[test]
    #[cfg_attr(miri, ignore = "loop/thread count too heavy for the interpreter")]
    fn remove_contracts_structure() {
        let t: CTrie<u64, u64> = CTrie::new();
        for i in 0..5000 {
            t.insert(i, i);
        }
        for i in 0..4999 {
            t.remove(&i);
        }
        assert_eq!(t.len(), 1);
        assert_eq!(t.lookup(&4999), Some(4999));
    }

    #[test]
    #[cfg_attr(miri, ignore = "loop/thread count too heavy for the interpreter")]
    fn borrowed_lookup_never_builds_an_owned_key() {
        let t: CTrie<String, u64> = CTrie::new();
        for i in 0..1000u64 {
            t.insert(format!("key-{i}"), i);
        }
        // Probe with `&str` — no `String` is allocated on the lookup path.
        assert_eq!(t.lookup_borrowed("key-7"), Some(7));
        assert_eq!(t.lookup_borrowed("key-999"), Some(999));
        assert_eq!(t.lookup_borrowed("missing"), None);
        assert_eq!(t.lookup_with_borrowed("key-41", |v| v + 1), Some(42));
        // Snapshots answer through the same borrowed path.
        let snap = t.read_only_snapshot();
        t.insert("key-7".to_string(), 70);
        assert_eq!(snap.lookup_borrowed("key-7"), Some(7));
        assert_eq!(t.lookup_borrowed("key-7"), Some(70));
    }

    #[test]
    fn lookup_with_projects_without_clone() {
        let t: CTrie<u64, Vec<u64>> = CTrie::new();
        t.insert(7, vec![1, 2, 3]);
        assert_eq!(t.lookup_with(&7, |v| v.len()), Some(3));
        assert_eq!(t.lookup_with(&8, |v| v.len()), None);
    }

    #[test]
    fn read_only_snapshot_is_point_in_time() {
        let t: CTrie<u64, u64> = CTrie::new();
        for i in 0..100 {
            t.insert(i, i);
        }
        let snap = t.read_only_snapshot();
        for i in 100..200 {
            t.insert(i, i);
        }
        t.remove(&0);
        assert_eq!(snap.lookup(&0), Some(0));
        assert_eq!(snap.lookup(&150), None);
        assert_eq!(snap.len(), 100);
        assert_eq!(t.len(), 199);
    }

    #[test]
    fn writable_snapshot_diverges() {
        let t: CTrie<u64, u64> = CTrie::new();
        for i in 0..100 {
            t.insert(i, i);
        }
        let snap = t.snapshot();
        t.insert(1000, 1);
        snap.insert(2000, 2);
        assert_eq!(t.lookup(&1000), Some(1));
        assert_eq!(t.lookup(&2000), None);
        assert_eq!(snap.lookup(&2000), Some(2));
        assert_eq!(snap.lookup(&1000), None);
        // shared prefix still visible in both
        for i in 0..100 {
            assert_eq!(t.lookup(&i), Some(i));
            assert_eq!(snap.lookup(&i), Some(i));
        }
    }

    #[test]
    #[should_panic(expected = "read-only")]
    fn read_only_snapshot_rejects_insert() {
        let t: CTrie<u64, u64> = CTrie::new();
        t.read_only_snapshot().insert(1, 1);
    }

    #[test]
    fn chained_snapshots() {
        let t: CTrie<u64, u64> = CTrie::new();
        t.insert(1, 1);
        let s1 = t.snapshot();
        t.insert(2, 2);
        let s2 = t.snapshot();
        t.insert(3, 3);
        let s3 = t.read_only_snapshot();
        assert_eq!(s1.len(), 1);
        assert_eq!(s2.len(), 2);
        assert_eq!(s3.len(), 3);
        assert_eq!(t.len(), 3);
    }

    #[test]
    #[cfg_attr(miri, ignore = "loop/thread count too heavy for the interpreter")]
    fn string_keys() {
        let t: CTrie<String, u64> = CTrie::new();
        for i in 0..1000 {
            t.insert(format!("key-{i}"), i);
        }
        for i in 0..1000 {
            assert_eq!(t.lookup(&format!("key-{i}")), Some(i));
        }
    }

    /// A hasher that collides everything, forcing L-node paths.
    #[derive(Clone, Copy, Default)]
    struct CollideAll;
    struct CollideHasher;
    impl Hasher for CollideHasher {
        fn finish(&self) -> u64 {
            42
        }
        fn write(&mut self, _: &[u8]) {}
    }
    impl BuildHasher for CollideAll {
        type Hasher = CollideHasher;
        fn build_hasher(&self) -> CollideHasher {
            CollideHasher
        }
    }

    #[test]
    fn full_hash_collisions_use_lnodes() {
        let t: CTrie<u64, u64, CollideAll> = CTrie::with_hasher(CollideAll);
        for i in 0..64 {
            assert_eq!(t.insert(i, i * 10), None);
        }
        for i in 0..64 {
            assert_eq!(t.lookup(&i), Some(i * 10));
        }
        assert_eq!(t.insert(5, 999), Some(50));
        for i in 0..64 {
            let expect = if i == 5 { 999 } else { i * 10 };
            assert_eq!(t.remove(&i), Some(expect));
        }
        assert!(t.is_empty());
    }

    #[test]
    fn collision_snapshot_isolation() {
        let t: CTrie<u64, u64, CollideAll> = CTrie::with_hasher(CollideAll);
        for i in 0..16 {
            t.insert(i, i);
        }
        let snap = t.read_only_snapshot();
        for i in 16..32 {
            t.insert(i, i);
        }
        assert_eq!(snap.len(), 16);
        assert_eq!(t.len(), 32);
    }

    #[test]
    #[cfg_attr(miri, ignore = "loop/thread count too heavy for the interpreter")]
    fn concurrent_inserts_disjoint_ranges() {
        let t = Arc::new(CTrie::<u64, u64>::new());
        let threads: Vec<_> = (0..8u64)
            .map(|tid| {
                let t = Arc::clone(&t);
                std::thread::spawn(move || {
                    for i in 0..2000 {
                        let k = tid * 1_000_000 + i;
                        assert_eq!(t.insert(k, k + 1), None);
                    }
                })
            })
            .collect();
        for th in threads {
            th.join().unwrap();
        }
        assert_eq!(t.len(), 16_000);
        for tid in 0..8u64 {
            for i in 0..2000 {
                let k = tid * 1_000_000 + i;
                assert_eq!(t.lookup(&k), Some(k + 1));
            }
        }
    }

    #[test]
    #[cfg_attr(miri, ignore = "loop/thread count too heavy for the interpreter")]
    fn concurrent_inserts_same_keys_last_writer_wins() {
        let t = Arc::new(CTrie::<u64, u64>::new());
        let threads: Vec<_> = (0..4u64)
            .map(|tid| {
                let t = Arc::clone(&t);
                std::thread::spawn(move || {
                    for i in 0..1000 {
                        t.insert(i, tid);
                    }
                })
            })
            .collect();
        for th in threads {
            th.join().unwrap();
        }
        assert_eq!(t.len(), 1000);
        for i in 0..1000 {
            let v = t.lookup(&i).unwrap();
            assert!(v < 4);
        }
    }

    #[test]
    #[cfg_attr(miri, ignore = "loop/thread count too heavy for the interpreter")]
    fn concurrent_snapshot_under_writes() {
        const TOTAL: u64 = 100_000;
        let t = Arc::new(CTrie::<u64, u64>::new());
        let writer = {
            let t = Arc::clone(&t);
            std::thread::spawn(move || {
                for i in 0..TOTAL {
                    t.insert(i, i);
                }
            })
        };
        let mut last = 0usize;
        while last < TOTAL as usize {
            let snap = t.read_only_snapshot();
            let n = snap.len();
            assert!(n >= last, "snapshot sizes must be monotone: {n} < {last}");
            // Writer inserts keys in order, so a consistent snapshot holds
            // exactly the prefix 0..n. Verify a bounded sample plus the
            // boundaries.
            for k in (0..n as u64).step_by(1 + n / 64) {
                assert_eq!(
                    snap.lookup(&k),
                    Some(k),
                    "snapshot of size {n} missing key {k}"
                );
            }
            if n > 0 {
                assert_eq!(snap.lookup(&(n as u64 - 1)), Some(n as u64 - 1));
            }
            assert_eq!(
                snap.lookup(&(n as u64)),
                None,
                "snapshot of size {n} leaked key {n}"
            );
            last = n;
        }
        writer.join().unwrap();
        assert_eq!(t.len() as u64, TOTAL);
    }

    #[test]
    #[cfg_attr(miri, ignore = "loop/thread count too heavy for the interpreter")]
    fn concurrent_removes_and_inserts() {
        let t = Arc::new(CTrie::<u64, u64>::new());
        for i in 0..10_000 {
            t.insert(i, i);
        }
        let remover = {
            let t = Arc::clone(&t);
            std::thread::spawn(move || {
                let mut removed = 0;
                for i in 0..10_000 {
                    if t.remove(&i).is_some() {
                        removed += 1;
                    }
                }
                removed
            })
        };
        let inserter = {
            let t = Arc::clone(&t);
            std::thread::spawn(move || {
                for i in 10_000..20_000u64 {
                    t.insert(i, i);
                }
            })
        };
        assert_eq!(remover.join().unwrap(), 10_000);
        inserter.join().unwrap();
        assert_eq!(t.len(), 10_000);
        for i in 10_000..20_000u64 {
            assert_eq!(t.lookup(&i), Some(i));
        }
    }
}
