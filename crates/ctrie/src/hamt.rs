//! A persistent hash array mapped trie behind a lock: the *reference*
//! implementation used to differentially test the lock-free [`crate::CTrie`]
//! and as an ablation baseline in the benchmark harness.
//!
//! Every update path-copies the affected spine and swaps the root `Arc`
//! under a write lock; readers clone the root `Arc` under a read lock and
//! traverse entirely lock-free thereafter. Snapshots are O(1) root clones.
//! Observable semantics are identical to the cTrie — the property-based
//! tests in `tests/differential.rs` assert exactly that.

use std::hash::{BuildHasher, Hash};
use std::sync::Arc;

use parking_lot::RwLock;

use crate::hash::FxBuildHasher;
use crate::{SnapshotMap, SnapshotReader};

const W: u32 = 5;
const LEVEL_MASK: u64 = (1 << W) - 1;
const HASH_BITS: u32 = 64;

enum Node<K, V> {
    Branch {
        bitmap: u32,
        children: Vec<Arc<Node<K, V>>>,
    },
    Leaf {
        hash: u64,
        key: K,
        value: V,
    },
    /// Full 64-bit hash collisions.
    Collision {
        hash: u64,
        entries: Vec<(K, V)>,
    },
}

impl<K: Eq + Clone, V: Clone> Node<K, V> {
    fn empty() -> Arc<Self> {
        Arc::new(Node::Branch {
            bitmap: 0,
            children: Vec::new(),
        })
    }

    fn lookup(&self, hash: u64, key: &K, level: u32) -> Option<&V> {
        match self {
            Node::Branch { bitmap, children } => {
                let idx = ((hash >> level) & LEVEL_MASK) as u32;
                let flag = 1u32 << idx;
                if bitmap & flag == 0 {
                    return None;
                }
                let pos = (bitmap & flag.wrapping_sub(1)).count_ones() as usize;
                children[pos].lookup(hash, key, level + W)
            }
            Node::Leaf {
                hash: h,
                key: k,
                value,
            } => {
                if *h == hash && k == key {
                    Some(value)
                } else {
                    None
                }
            }
            Node::Collision { hash: h, entries } => {
                if *h != hash {
                    return None;
                }
                entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
            }
        }
    }

    /// Returns (new node, previous value).
    fn inserted(&self, hash: u64, key: &K, value: &V, level: u32) -> (Arc<Self>, Option<V>) {
        match self {
            Node::Branch { bitmap, children } => {
                let idx = ((hash >> level) & LEVEL_MASK) as u32;
                let flag = 1u32 << idx;
                let pos = (bitmap & flag.wrapping_sub(1)).count_ones() as usize;
                if bitmap & flag == 0 {
                    let mut nc = Vec::with_capacity(children.len() + 1);
                    nc.extend_from_slice(&children[..pos]);
                    nc.push(Arc::new(Node::Leaf {
                        hash,
                        key: key.clone(),
                        value: value.clone(),
                    }));
                    nc.extend_from_slice(&children[pos..]);
                    (
                        Arc::new(Node::Branch {
                            bitmap: bitmap | flag,
                            children: nc,
                        }),
                        None,
                    )
                } else {
                    let (child, old) = children[pos].inserted(hash, key, value, level + W);
                    let mut nc = children.clone();
                    nc[pos] = child;
                    (
                        Arc::new(Node::Branch {
                            bitmap: *bitmap,
                            children: nc,
                        }),
                        old,
                    )
                }
            }
            Node::Leaf {
                hash: h,
                key: k,
                value: v,
            } => {
                if *h == hash && k == key {
                    let old = v.clone();
                    (
                        Arc::new(Node::Leaf {
                            hash,
                            key: key.clone(),
                            value: value.clone(),
                        }),
                        Some(old),
                    )
                } else if level >= HASH_BITS {
                    debug_assert_eq!(*h, hash, "collision node requires equal hashes");
                    (
                        Arc::new(Node::Collision {
                            hash,
                            entries: vec![(k.clone(), v.clone()), (key.clone(), value.clone())],
                        }),
                        None,
                    )
                } else {
                    // Split: push the existing leaf down and re-insert.
                    let idx = ((*h >> level) & LEVEL_MASK) as u32;
                    let existing = Arc::new(Node::Leaf {
                        hash: *h,
                        key: k.clone(),
                        value: v.clone(),
                    });
                    let branch = Node::Branch {
                        bitmap: 1u32 << idx,
                        children: vec![existing],
                    };
                    branch.inserted(hash, key, value, level)
                }
            }
            Node::Collision { hash: h, entries } => {
                debug_assert_eq!(*h, hash);
                let mut ne = entries.clone();
                let old = match ne.iter_mut().find(|(k, _)| k == key) {
                    Some(slot) => Some(std::mem::replace(&mut slot.1, value.clone())),
                    None => {
                        ne.push((key.clone(), value.clone()));
                        None
                    }
                };
                (
                    Arc::new(Node::Collision {
                        hash: *h,
                        entries: ne,
                    }),
                    old,
                )
            }
        }
    }

    /// Returns (replacement node or None if emptied, removed value).
    fn removed(&self, hash: u64, key: &K, level: u32) -> (Option<Arc<Self>>, Option<V>) {
        match self {
            Node::Branch { bitmap, children } => {
                let idx = ((hash >> level) & LEVEL_MASK) as u32;
                let flag = 1u32 << idx;
                if bitmap & flag == 0 {
                    return (None, None);
                }
                let pos = (bitmap & flag.wrapping_sub(1)).count_ones() as usize;
                let (replacement, old) = children[pos].removed(hash, key, level + W);
                if old.is_none() {
                    return (None, None);
                }
                match replacement {
                    Some(child) => {
                        let mut nc = children.clone();
                        nc[pos] = child;
                        (
                            Some(Arc::new(Node::Branch {
                                bitmap: *bitmap,
                                children: nc,
                            })),
                            old,
                        )
                    }
                    None => {
                        let nb = bitmap & !flag;
                        if nb == 0 && level > 0 {
                            (None, old)
                        } else {
                            let mut nc = Vec::with_capacity(children.len() - 1);
                            nc.extend_from_slice(&children[..pos]);
                            nc.extend_from_slice(&children[pos + 1..]);
                            (
                                Some(Arc::new(Node::Branch {
                                    bitmap: nb,
                                    children: nc,
                                })),
                                old,
                            )
                        }
                    }
                }
            }
            Node::Leaf {
                hash: h,
                key: k,
                value,
            } => {
                if *h == hash && k == key {
                    (None, Some(value.clone()))
                } else {
                    (None, None)
                }
            }
            Node::Collision { hash: h, entries } => {
                if *h != hash {
                    return (None, None);
                }
                let Some(pos) = entries.iter().position(|(k, _)| k == key) else {
                    return (None, None);
                };
                let old = entries[pos].1.clone();
                let mut ne = entries.clone();
                ne.remove(pos);
                let node = if let [(k, v)] = ne.as_slice() {
                    Arc::new(Node::Leaf {
                        hash: *h,
                        key: k.clone(),
                        value: v.clone(),
                    })
                } else {
                    Arc::new(Node::Collision {
                        hash: *h,
                        entries: ne,
                    })
                };
                (Some(node), Some(old))
            }
        }
    }

    fn count(&self) -> usize {
        match self {
            Node::Branch { children, .. } => children.iter().map(|c| c.count()).sum(),
            Node::Leaf { .. } => 1,
            Node::Collision { entries, .. } => entries.len(),
        }
    }

    fn collect_into(&self, out: &mut Vec<(K, V)>) {
        match self {
            Node::Branch { children, .. } => {
                for c in children {
                    c.collect_into(out);
                }
            }
            Node::Leaf { key, value, .. } => out.push((key.clone(), value.clone())),
            Node::Collision { entries, .. } => out.extend(entries.iter().cloned()),
        }
    }
}

/// A persistent HAMT with `Arc` structural sharing behind a root lock.
///
/// Readers take the read lock only long enough to clone the root `Arc`;
/// writers path-copy under the write lock. Snapshots are O(1).
pub struct Hamt<K, V, S = FxBuildHasher> {
    root: RwLock<Arc<Node<K, V>>>,
    hasher: S,
}

impl<K, V> Hamt<K, V, FxBuildHasher>
where
    K: Eq + Hash + Clone,
    V: Clone,
{
    /// Create an empty HAMT with the default hasher.
    pub fn new() -> Self {
        Self::with_hasher(FxBuildHasher)
    }
}

impl<K, V> Default for Hamt<K, V, FxBuildHasher>
where
    K: Eq + Hash + Clone,
    V: Clone,
{
    fn default() -> Self {
        Self::new()
    }
}

impl<K, V, S> Hamt<K, V, S>
where
    K: Eq + Hash + Clone,
    V: Clone,
    S: BuildHasher + Clone,
{
    /// Create an empty HAMT with a custom hasher.
    pub fn with_hasher(hasher: S) -> Self {
        Hamt {
            root: RwLock::new(Node::empty()),
            hasher,
        }
    }

    fn hash_key(&self, key: &K) -> u64 {
        self.hasher.hash_one(key)
    }

    /// Insert `key → value`, returning the previously bound value.
    pub fn insert(&self, key: K, value: V) -> Option<V> {
        let hash = self.hash_key(&key);
        let mut root = self.root.write();
        let (nroot, old) = root.inserted(hash, &key, &value, 0);
        *root = nroot;
        old
    }

    /// Look up the value bound to `key`.
    pub fn lookup(&self, key: &K) -> Option<V> {
        let hash = self.hash_key(key);
        let root = Arc::clone(&self.root.read());
        root.lookup(hash, key, 0).cloned()
    }

    /// Remove the binding for `key`, returning the removed value.
    pub fn remove(&self, key: &K) -> Option<V> {
        let hash = self.hash_key(key);
        let mut root = self.root.write();
        let (replacement, old) = root.removed(hash, key, 0);
        if old.is_some() {
            *root = replacement.unwrap_or_else(Node::empty);
        }
        old
    }

    /// O(1) point-in-time snapshot.
    pub fn snapshot(&self) -> HamtSnapshot<K, V, S> {
        HamtSnapshot {
            root: Arc::clone(&self.root.read()),
            hasher: self.hasher.clone(),
        }
    }

    /// Number of bindings (O(n)).
    pub fn len(&self) -> usize {
        self.root.read().count()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All bindings, unordered.
    pub fn entries(&self) -> Vec<(K, V)> {
        let mut out = Vec::new();
        self.root.read().collect_into(&mut out);
        out
    }
}

/// A frozen point-in-time view of a [`Hamt`].
pub struct HamtSnapshot<K, V, S = FxBuildHasher> {
    root: Arc<Node<K, V>>,
    hasher: S,
}

impl<K, V, S> HamtSnapshot<K, V, S>
where
    K: Eq + Hash + Clone,
    V: Clone,
    S: BuildHasher,
{
    /// Look up the value bound to `key` in the snapshot.
    pub fn lookup(&self, key: &K) -> Option<V> {
        self.root.lookup(self.hasher.hash_one(key), key, 0).cloned()
    }

    /// Number of bindings in the snapshot.
    pub fn len(&self) -> usize {
        self.root.count()
    }

    /// Whether the snapshot is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All bindings, unordered.
    pub fn entries(&self) -> Vec<(K, V)> {
        let mut out = Vec::new();
        self.root.collect_into(&mut out);
        out
    }
}

impl<K, V, S> SnapshotMap<K, V> for Hamt<K, V, S>
where
    K: Eq + Hash + Clone + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
    S: BuildHasher + Clone + Send + Sync + 'static,
{
    fn insert(&self, key: K, value: V) -> Option<V> {
        Hamt::insert(self, key, value)
    }

    fn lookup(&self, key: &K) -> Option<V> {
        Hamt::lookup(self, key)
    }

    fn remove(&self, key: &K) -> Option<V> {
        Hamt::remove(self, key)
    }

    fn snapshot_reader(&self) -> Box<dyn SnapshotReader<K, V>> {
        Box::new(self.snapshot())
    }

    fn count(&self) -> usize {
        self.len()
    }
}

impl<K, V, S> SnapshotReader<K, V> for HamtSnapshot<K, V, S>
where
    K: Eq + Hash + Clone + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
    S: BuildHasher + Clone + Send + Sync + 'static,
{
    fn lookup(&self, key: &K) -> Option<V> {
        HamtSnapshot::lookup(self, key)
    }

    fn count(&self) -> usize {
        self.len()
    }

    fn entries(&self) -> Vec<(K, V)> {
        HamtSnapshot::entries(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hasher;

    #[test]
    #[cfg_attr(miri, ignore = "loop/thread count too heavy for the interpreter")]
    fn insert_lookup_remove() {
        let h: Hamt<u64, u64> = Hamt::new();
        for i in 0..5000 {
            assert_eq!(h.insert(i, i + 1), None);
        }
        for i in 0..5000 {
            assert_eq!(h.lookup(&i), Some(i + 1));
        }
        assert_eq!(h.insert(7, 99), Some(8));
        for i in 0..5000 {
            assert!(h.remove(&i).is_some());
        }
        assert!(h.is_empty());
    }

    #[test]
    fn snapshot_isolation() {
        let h: Hamt<u64, u64> = Hamt::new();
        for i in 0..100 {
            h.insert(i, i);
        }
        let snap = h.snapshot();
        h.insert(500, 500);
        h.remove(&0);
        assert_eq!(snap.len(), 100);
        assert_eq!(snap.lookup(&0), Some(0));
        assert_eq!(snap.lookup(&500), None);
    }

    #[test]
    #[cfg_attr(miri, ignore = "loop/thread count too heavy for the interpreter")]
    fn entries_complete() {
        let h: Hamt<u64, u64> = Hamt::new();
        for i in 0..1000 {
            h.insert(i, i * 2);
        }
        let mut e = h.entries();
        e.sort_unstable();
        assert_eq!(e.len(), 1000);
        assert_eq!(e[999], (999, 1998));
    }

    /// All-collide hasher to force Collision nodes.
    #[derive(Clone, Copy, Default)]
    struct CollideAll;
    struct CollideHasher;
    impl Hasher for CollideHasher {
        fn finish(&self) -> u64 {
            7
        }
        fn write(&mut self, _: &[u8]) {}
    }
    impl BuildHasher for CollideAll {
        type Hasher = CollideHasher;
        fn build_hasher(&self) -> CollideHasher {
            CollideHasher
        }
    }

    #[test]
    fn collisions() {
        let h: Hamt<u64, u64, CollideAll> = Hamt::with_hasher(CollideAll);
        for i in 0..32 {
            assert_eq!(h.insert(i, i), None);
        }
        for i in 0..32 {
            assert_eq!(h.lookup(&i), Some(i));
        }
        assert_eq!(h.len(), 32);
        for i in 0..31 {
            assert_eq!(h.remove(&i), Some(i));
        }
        assert_eq!(h.lookup(&31), Some(31));
        assert_eq!(h.len(), 1);
    }

    #[test]
    #[cfg_attr(miri, ignore = "loop/thread count too heavy for the interpreter")]
    fn concurrent_readers_during_writes() {
        let h = std::sync::Arc::new(Hamt::<u64, u64>::new());
        let writer = {
            let h = std::sync::Arc::clone(&h);
            std::thread::spawn(move || {
                for i in 0..50_000u64 {
                    h.insert(i, i);
                }
            })
        };
        for _ in 0..20 {
            let snap = h.snapshot();
            let n = snap.len();
            for k in 0..n as u64 {
                assert_eq!(snap.lookup(&k), Some(k));
            }
        }
        writer.join().unwrap();
        assert_eq!(h.len(), 50_000);
    }
}
