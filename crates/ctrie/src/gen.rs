//! Generation tokens for snapshot-aware copy-on-write.
//!
//! Every I-node is stamped with the generation of the trie root that created
//! it. A snapshot installs a *fresh* generation at the root of both the
//! original and the snapshot; any writer that descends into an I-node whose
//! generation differs from the current root generation must first copy that
//! path into its own generation (lazy copy-on-write), and a GCAS on a
//! stale-generation I-node aborts. Tokens are never reused, so plain integer
//! equality is the analogue of the Scala implementation's reference equality
//! on `Gen` objects.

use std::sync::atomic::{AtomicU64, Ordering};

static NEXT_GEN: AtomicU64 = AtomicU64::new(1);

/// A unique generation token.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) struct Gen(u64);

impl Gen {
    /// Mint a fresh, never-before-seen generation.
    pub(crate) fn fresh() -> Self {
        // idf-lint: allow(atomics-audit) -- ID minting: atomicity alone guarantees uniqueness, no ordering needed
        Gen(NEXT_GEN.fetch_add(1, Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generations_are_unique() {
        let a = Gen::fresh();
        let b = Gen::fresh();
        assert_ne!(a, b);
        assert_eq!(a, a);
    }

    #[test]
    #[cfg_attr(miri, ignore = "loop/thread count too heavy for the interpreter")]
    fn generations_are_unique_across_threads() {
        let handles: Vec<_> = (0..8)
            .map(|_| std::thread::spawn(|| (0..1000).map(|_| Gen::fresh().0).collect::<Vec<_>>()))
            .collect();
        let mut all: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        let n = all.len();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), n);
    }
}
