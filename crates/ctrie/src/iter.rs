//! Iteration over a point-in-time view of a [`CTrie`].
//!
//! The iterator owns a *read-only snapshot*, so it observes a consistent
//! view no matter how the source trie is mutated concurrently. Traversal
//! clones `Arc`s of main nodes into an explicit stack, so no epoch guard is
//! held across `next()` calls.

use std::hash::{BuildHasher, Hash};
use std::sync::Arc;

use crate::hash::FxBuildHasher;
use crate::node::{Branch, MainKind, MainNode};
use crate::trie::CTrie;

/// An iterator over the `(key, value)` bindings of a trie snapshot.
/// Order is unspecified (hash order).
pub struct Iter<K, V, S = FxBuildHasher> {
    trie: CTrie<K, V, S>,
    /// Stack of (node, next child index) frames.
    stack: Vec<(Arc<MainNode<K, V>>, usize)>,
}

impl<K, V, S> Iter<K, V, S>
where
    K: Eq + Hash + Clone + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
    S: BuildHasher + Clone + Send + Sync + 'static,
{
    pub(crate) fn new(snapshot: CTrie<K, V, S>) -> Self {
        debug_assert!(snapshot.is_read_only());
        let root = snapshot.root_main_arc();
        Iter {
            trie: snapshot,
            stack: vec![(root, 0)],
        }
    }
}

impl<K, V, S> Iterator for Iter<K, V, S>
where
    K: Eq + Hash + Clone + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
    S: BuildHasher + Clone + Send + Sync + 'static,
{
    type Item = (K, V);

    fn next(&mut self) -> Option<(K, V)> {
        loop {
            let (node, idx) = {
                let top = self.stack.last()?;
                (Arc::clone(&top.0), top.1)
            };
            match &node.kind {
                MainKind::C(cn) => {
                    if idx >= cn.array.len() {
                        self.stack.pop();
                        continue;
                    }
                    if let Some(top) = self.stack.last_mut() {
                        top.1 += 1;
                    }
                    match &cn.array[idx] {
                        Branch::S(sn) => return Some((sn.key.clone(), sn.value.clone())),
                        Branch::I(inode) => {
                            let m = self.trie.resolve_main(inode);
                            self.stack.push((m, 0));
                            continue;
                        }
                    }
                }
                MainKind::T(sn) => {
                    self.stack.pop();
                    return Some((sn.key.clone(), sn.value.clone()));
                }
                MainKind::L(ln) => {
                    if idx >= ln.entries.len() {
                        self.stack.pop();
                        continue;
                    }
                    if let Some(top) = self.stack.last_mut() {
                        top.1 += 1;
                    }
                    let sn = &ln.entries[idx];
                    return Some((sn.key.clone(), sn.value.clone()));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::CTrie;

    #[test]
    #[cfg_attr(miri, ignore = "loop/thread count too heavy for the interpreter")]
    fn iterates_all_entries_once() {
        let t: CTrie<u64, u64> = CTrie::new();
        for i in 0..5000 {
            t.insert(i, i * 3);
        }
        let mut seen: Vec<(u64, u64)> = t.iter().collect();
        seen.sort_unstable();
        assert_eq!(seen.len(), 5000);
        for (i, (k, v)) in seen.into_iter().enumerate() {
            assert_eq!(k, i as u64);
            assert_eq!(v, k * 3);
        }
    }

    #[test]
    fn empty_trie_yields_nothing() {
        let t: CTrie<u64, u64> = CTrie::new();
        assert_eq!(t.iter().count(), 0);
    }

    #[test]
    fn iteration_isolated_from_concurrent_writes() {
        let t: CTrie<u64, u64> = CTrie::new();
        for i in 0..100 {
            t.insert(i, i);
        }
        let iter = t.iter();
        for i in 100..200 {
            t.insert(i, i);
        }
        assert_eq!(iter.count(), 100);
    }

    #[test]
    fn single_entry_after_removals_iterates() {
        let t: CTrie<u64, u64> = CTrie::new();
        for i in 0..100 {
            t.insert(i, i);
        }
        for i in 1..100 {
            t.remove(&i);
        }
        let all: Vec<_> = t.iter().collect();
        assert_eq!(all, vec![(0, 0)]);
    }
}
