//! A fast, dependency-free hasher.
//!
//! The trie's shape is determined directly by hash bits (5 bits per level),
//! so the hash must scatter well even for sequential integer keys — the
//! common case for the Indexed DataFrame, whose keys are row identifiers.
//! `FxHasher` is an FNV-1a byte loop with dedicated fast paths for integer
//! writes, finalised with the splitmix64 avalanche so every output bit
//! depends on every input bit.

use std::hash::{BuildHasher, Hasher};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// splitmix64 finalizer: full-avalanche mixing of a 64-bit value.
#[inline]
pub fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A fast non-cryptographic hasher (FNV-1a core, splitmix64 finalizer).
#[derive(Clone, Debug)]
pub struct FxHasher {
    state: u64,
}

impl Default for FxHasher {
    fn default() -> Self {
        FxHasher { state: FNV_OFFSET }
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        mix64(self.state)
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state = (self.state ^ u64::from(b)).wrapping_mul(FNV_PRIME);
        }
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.state = mix64(self.state ^ i);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.write_u64(u64::from(i));
    }

    #[inline]
    fn write_i64(&mut self, i: i64) {
        self.write_u64(i as u64);
    }

    #[inline]
    fn write_i32(&mut self, i: i32) {
        self.write_u64(i as u32 as u64);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.write_u64(i as u64);
    }
}

/// [`BuildHasher`] for [`FxHasher`]; the default hasher of [`crate::CTrie`].
#[derive(Clone, Copy, Default, Debug)]
pub struct FxBuildHasher;

impl BuildHasher for FxBuildHasher {
    type Hasher = FxHasher;

    #[inline]
    fn build_hasher(&self) -> FxHasher {
        FxHasher::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash_of<T: Hash>(v: T) -> u64 {
        FxBuildHasher.hash_one(&v)
    }

    #[test]
    fn sequential_keys_scatter_across_top_level() {
        // The trie uses the low 5 bits first; sequential keys must not all
        // land in one slot.
        let mut slots = [0usize; 32];
        for i in 0u64..1024 {
            slots[(hash_of(i) & 31) as usize] += 1;
        }
        let max = *slots.iter().max().unwrap();
        let min = *slots.iter().min().unwrap();
        assert!(min > 0, "some top-level slot never hit: {slots:?}");
        assert!(max < 4 * 32, "pathologically skewed: {slots:?}");
    }

    #[test]
    fn deterministic() {
        assert_eq!(hash_of(42u64), hash_of(42u64));
        assert_eq!(hash_of("hello"), hash_of("hello"));
    }

    #[test]
    fn distinct_inputs_rarely_collide() {
        let mut seen = std::collections::HashSet::new();
        for i in 0u64..100_000 {
            seen.insert(hash_of(i));
        }
        assert_eq!(seen.len(), 100_000);
    }

    #[test]
    fn string_hashing_differs_by_content() {
        assert_ne!(hash_of("a"), hash_of("b"));
        assert_ne!(hash_of("ab"), hash_of("ba"));
    }

    #[test]
    fn mix64_is_bijective_sample() {
        let mut seen = std::collections::HashSet::new();
        for i in 0u64..10_000 {
            assert!(seen.insert(mix64(i)));
        }
    }
}
