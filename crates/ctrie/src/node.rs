//! Node types of the concurrent trie and the ownership protocol that makes
//! lock-free reclamation safe without a tracing garbage collector.
//!
//! # Ownership protocol
//!
//! The Scala cTrie leans on the JVM garbage collector: nodes are shared
//! arbitrarily between a trie and its snapshots, and replaced nodes simply
//! become unreachable. Here we combine two mechanisms:
//!
//! * **`Arc` reference counting** for *structural sharing*: C-node branch
//!   arrays hold `Arc<INode>` / `Arc<SNode>`, so a snapshot and its parent
//!   can share arbitrary subtrees.
//! * **Epoch-based deferral** (`crossbeam_epoch`) for *safe publication*:
//!   atomic cells (`INode::main`, `MainNode::prev`, the trie root) store
//!   raw pointers obtained from [`Arc::into_raw`]. Each non-null cell owns
//!   exactly **one** strong count of its pointee. Readers traverse inside an
//!   epoch guard and never touch reference counts. When a CAS disconnects a
//!   pointer, the count it carried is released with [`Guard::defer`], i.e.
//!   only after every reader that could still observe it has unpinned.
//!
//! The invariant to keep in mind when reading the CAS code in
//! [`crate::trie`]: *a strong count is owned by whichever cell or local
//! variable currently holds the pointer; transferring a pointer transfers
//! the count; duplicating a pointer requires [`Arc::increment_strong_count`];
//! abandoning a published pointer requires a deferred decrement.*

use std::sync::atomic::Ordering;
use std::sync::Arc;

use crossbeam_epoch::{Atomic, Guard, Shared};

use crate::gen::Gen;

/// Bits consumed per trie level.
pub(crate) const W: u32 = 5;
/// Fan-out of a C-node (2^W).
pub(crate) const BRANCH_FACTOR: usize = 1 << W;
/// Mask extracting one level's worth of hash bits.
pub(crate) const LEVEL_MASK: u64 = (BRANCH_FACTOR - 1) as u64;
/// Total hash bits; beyond this depth, collisions go to L-nodes.
pub(crate) const HASH_BITS: u32 = 64;

/// `MainNode::prev` tag: proposed update, not yet committed.
pub(crate) const PREV_PENDING: usize = 0;
/// `MainNode::prev` tag: update lost the generation race; must roll back.
pub(crate) const PREV_FAILED: usize = 1;

/// Root-cell tag: the root points at an `INode`.
pub(crate) const ROOT_INODE: usize = 0;
/// Root-cell tag: the root points at an RDCSS `Descriptor`.
pub(crate) const ROOT_DESC: usize = 1;

/// A raw pointer that may be sent to another thread for deferred dropping.
pub(crate) struct SendPtr<T>(*const T);
// SAFETY: the pointee is only ever dropped through `Arc::from_raw`, and the
// callers bound their `T: Send + Sync`.
unsafe impl<T> Send for SendPtr<T> {}

impl<T> SendPtr<T> {
    pub(crate) fn new(p: *const T) -> Self {
        SendPtr(p)
    }

    /// Consume the wrapper (method call, so closures capture the whole
    /// struct rather than the non-`Send` field).
    pub(crate) fn into_raw(self) -> *const T {
        self.0
    }
}

/// Move an `Arc` into a raw `Shared` pointer, transferring its strong count
/// to the caller's chosen cell.
pub(crate) fn arc_into_shared<'g, T>(a: Arc<T>) -> Shared<'g, T> {
    Shared::from(Arc::into_raw(a))
}

/// Take back ownership of the strong count carried by `s`.
///
/// # Safety
/// `s` must carry exactly one strong count that the caller owns, and must
/// have originated from [`arc_into_shared`] (possibly with a tag).
pub(crate) unsafe fn arc_from_shared<T>(s: Shared<'_, T>) -> Arc<T> {
    Arc::from_raw(s.with_tag(0).as_raw())
}

/// Clone a new `Arc` out of a borrowed pointer without consuming its count.
///
/// # Safety
/// `s` must point at a live `Arc`-managed allocation (guaranteed while the
/// caller holds the epoch guard under which `s` was loaded).
pub(crate) unsafe fn arc_clone_from_shared<T>(s: Shared<'_, T>) -> Arc<T> {
    let raw = s.with_tag(0).as_raw();
    Arc::increment_strong_count(raw);
    Arc::from_raw(raw)
}

/// Release one strong count of `s` once all current readers have unpinned.
///
/// # Safety
/// The caller must own the count being released, and no new readers may be
/// able to acquire the pointer (it must already be disconnected).
pub(crate) unsafe fn defer_drop_arc<T: Send + Sync + 'static>(g: &Guard, s: Shared<'_, T>) {
    let p = SendPtr::new(s.with_tag(0).as_raw());
    g.defer(move || drop(Arc::from_raw(p.into_raw())));
}

/// A singleton node: one key/value binding plus its cached hash.
pub(crate) struct SNode<K, V> {
    pub(crate) hash: u64,
    pub(crate) key: K,
    pub(crate) value: V,
}

impl<K, V> SNode<K, V> {
    pub(crate) fn new(hash: u64, key: K, value: V) -> Self {
        SNode { hash, key, value }
    }
}

/// A branch of a C-node: either another level of the trie behind an
/// indirection node, or a single binding.
pub(crate) enum Branch<K, V> {
    I(Arc<INode<K, V>>),
    S(Arc<SNode<K, V>>),
}

impl<K, V> Clone for Branch<K, V> {
    fn clone(&self) -> Self {
        match self {
            Branch::I(i) => Branch::I(Arc::clone(i)),
            Branch::S(s) => Branch::S(Arc::clone(s)),
        }
    }
}

/// An indirection node. I-nodes are the only mutable cells in the trie:
/// every update is a CAS (via GCAS) on `main`. The `gen` stamp is compared
/// against the root generation to implement snapshot copy-on-write.
pub(crate) struct INode<K, V> {
    pub(crate) gen: Gen,
    /// Owns one strong count of the current main node. Never null.
    pub(crate) main: Atomic<MainNode<K, V>>,
}

impl<K, V> INode<K, V> {
    /// Create an I-node whose cell takes ownership of `main`'s count.
    pub(crate) fn new(main: Arc<MainNode<K, V>>, gen: Gen) -> Self {
        let cell = Atomic::null();
        // idf-lint: allow(atomics-audit) -- the cell is unpublished here; the parent's Release CAS publishes it
        cell.store(arc_into_shared(main), Ordering::Relaxed);
        INode { gen, main: cell }
    }
}

impl<K, V> Drop for INode<K, V> {
    fn drop(&mut self) {
        // SAFETY: `&mut self` proves no concurrent access; the cell owns one
        // count of its pointee.
        unsafe {
            let p = self
                .main
                // idf-lint: allow(atomics-audit) -- Drop holds &mut self: exclusive access, nothing to order against
                .load(Ordering::Relaxed, crossbeam_epoch::unprotected());
            if !p.is_null() {
                drop(Arc::from_raw(p.as_raw()));
            }
        }
    }
}

/// An array node holding up to [`BRANCH_FACTOR`] branches, compressed with a
/// bitmap. Immutable: all "updates" build a copy.
pub(crate) struct CNode<K, V> {
    pub(crate) bitmap: u32,
    pub(crate) array: Vec<Branch<K, V>>,
    pub(crate) gen: Gen,
}

impl<K, V> CNode<K, V> {
    /// Locate `hash`'s slot at `level`: returns `(flag, pos)` where `flag`
    /// is the bitmap bit and `pos` the compressed array position.
    #[inline]
    pub(crate) fn flag_pos(hash: u64, level: u32, bitmap: u32) -> (u32, usize) {
        let idx = ((hash >> level) & LEVEL_MASK) as u32;
        let flag = 1u32 << idx;
        let pos = (bitmap & flag.wrapping_sub(1)).count_ones() as usize;
        (flag, pos)
    }

    /// Copy with the branch at `pos` replaced.
    pub(crate) fn updated(&self, pos: usize, branch: Branch<K, V>, gen: Gen) -> CNode<K, V> {
        let mut array = self.array.clone();
        array[pos] = branch;
        CNode {
            bitmap: self.bitmap,
            array,
            gen,
        }
    }

    /// Copy with a new branch spliced in at `pos` under bitmap bit `flag`.
    pub(crate) fn inserted(
        &self,
        pos: usize,
        flag: u32,
        branch: Branch<K, V>,
        gen: Gen,
    ) -> CNode<K, V> {
        let mut array = Vec::with_capacity(self.array.len() + 1);
        array.extend_from_slice(&self.array[..pos]);
        array.push(branch);
        array.extend_from_slice(&self.array[pos..]);
        CNode {
            bitmap: self.bitmap | flag,
            array,
            gen,
        }
    }

    /// Copy with the branch at `pos` removed and bitmap bit `flag` cleared.
    pub(crate) fn removed(&self, pos: usize, flag: u32, gen: Gen) -> CNode<K, V> {
        let mut array = Vec::with_capacity(self.array.len() - 1);
        array.extend_from_slice(&self.array[..pos]);
        array.extend_from_slice(&self.array[pos + 1..]);
        CNode {
            bitmap: self.bitmap & !flag,
            array,
            gen,
        }
    }
}

/// A list node: bindings whose full 64-bit hashes collide. Always holds at
/// least two entries; a removal leaving one entry entombs it instead.
pub(crate) struct LNode<K, V> {
    pub(crate) entries: Vec<Arc<SNode<K, V>>>,
}

impl<K: Eq, V> LNode<K, V> {
    pub(crate) fn get<Q>(&self, key: &Q) -> Option<&Arc<SNode<K, V>>>
    where
        K: std::borrow::Borrow<Q>,
        Q: ?Sized + Eq,
    {
        self.entries.iter().find(|sn| sn.key.borrow() == key)
    }

    /// Copy with `key` bound to `sn` (replacing any existing binding).
    pub(crate) fn inserted(&self, sn: Arc<SNode<K, V>>) -> LNode<K, V> {
        let mut entries: Vec<_> = self
            .entries
            .iter()
            .filter(|e| e.key != sn.key)
            .cloned()
            .collect();
        entries.push(sn);
        LNode { entries }
    }

    /// Copy with `key` removed.
    pub(crate) fn removed(&self, key: &K) -> LNode<K, V> {
        LNode {
            entries: self
                .entries
                .iter()
                .filter(|e| e.key != *key)
                .cloned()
                .collect(),
        }
    }
}

/// The payload of a main node.
pub(crate) enum MainKind<K, V> {
    /// Branching node.
    C(CNode<K, V>),
    /// Tomb: a singleton awaiting contraction into its parent.
    T(Arc<SNode<K, V>>),
    /// Hash-collision list.
    L(LNode<K, V>),
}

/// A main node: the value of an I-node's cell, plus the GCAS `prev` field.
///
/// `prev` states:
/// * null — this main node is **committed**;
/// * tag [`PREV_PENDING`] — proposed over the pointed-to old main node;
/// * tag [`PREV_FAILED`] — the proposal lost a generation race and the
///   I-node must be rolled back to the pointed-to old main node.
///
/// When non-null, the `prev` cell owns one strong count of the old main
/// node, released by this node's `Drop`.
pub(crate) struct MainNode<K, V> {
    pub(crate) kind: MainKind<K, V>,
    pub(crate) prev: Atomic<MainNode<K, V>>,
}

impl<K, V> MainNode<K, V> {
    pub(crate) fn from_kind(kind: MainKind<K, V>) -> Arc<Self> {
        Arc::new(MainNode {
            kind,
            prev: Atomic::null(),
        })
    }

    pub(crate) fn cnode(c: CNode<K, V>) -> Arc<Self> {
        Self::from_kind(MainKind::C(c))
    }

    pub(crate) fn tomb(sn: Arc<SNode<K, V>>) -> Arc<Self> {
        Self::from_kind(MainKind::T(sn))
    }

    pub(crate) fn lnode(l: LNode<K, V>) -> Arc<Self> {
        Self::from_kind(MainKind::L(l))
    }
}

impl<K, V> Drop for MainNode<K, V> {
    fn drop(&mut self) {
        // SAFETY: `&mut self`; a non-null prev cell owns one count.
        unsafe {
            let p = self
                .prev
                // idf-lint: allow(atomics-audit) -- Drop holds &mut self: exclusive access, nothing to order against
                .load(Ordering::Relaxed, crossbeam_epoch::unprotected());
            if !p.is_null() {
                drop(Arc::from_raw(p.with_tag(0).as_raw()));
            }
        }
    }
}

/// Build the main node for two colliding singletons below `level`.
///
/// Recursively descends while the two hashes agree on each level's bits;
/// once the hash is exhausted the pair becomes an L-node.
pub(crate) fn dual<K, V>(
    x: Arc<SNode<K, V>>,
    y: Arc<SNode<K, V>>,
    level: u32,
    gen: Gen,
) -> Arc<MainNode<K, V>> {
    if level >= HASH_BITS {
        return MainNode::lnode(LNode {
            entries: vec![x, y],
        });
    }
    let xi = (x.hash >> level) & LEVEL_MASK;
    let yi = (y.hash >> level) & LEVEL_MASK;
    if xi != yi {
        let bitmap = (1u32 << xi) | (1u32 << yi);
        let array = if xi < yi {
            vec![Branch::S(x), Branch::S(y)]
        } else {
            vec![Branch::S(y), Branch::S(x)]
        };
        MainNode::cnode(CNode { bitmap, array, gen })
    } else {
        let inner = dual(x, y, level + W, gen);
        let child = Arc::new(INode::new(inner, gen));
        MainNode::cnode(CNode {
            bitmap: 1u32 << xi,
            array: vec![Branch::I(child)],
            gen,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_pos_orders_by_bitmap_rank() {
        // bitmap with bits 1 and 7 set; a hash hitting index 4 should have
        // pos 1 (one set bit below it).
        let bitmap = (1u32 << 1) | (1u32 << 7);
        let hash = 4u64; // level 0 index = 4
        let (flag, pos) = CNode::<u64, u64>::flag_pos(hash, 0, bitmap);
        assert_eq!(flag, 1 << 4);
        assert_eq!(pos, 1);
    }

    #[test]
    fn flag_pos_uses_level_shift() {
        let hash = 0b0_00011_00001u64; // level 0 idx 1, level 5 idx 3
        let (flag0, _) = CNode::<u64, u64>::flag_pos(hash, 0, 0);
        let (flag5, _) = CNode::<u64, u64>::flag_pos(hash, 5, 0);
        assert_eq!(flag0, 1 << 1);
        assert_eq!(flag5, 1 << 3);
    }

    #[test]
    fn cnode_insert_remove_roundtrip() {
        let gen = Gen::fresh();
        let sn1 = Arc::new(SNode::new(1, 1u64, 10u64));
        let sn2 = Arc::new(SNode::new(2, 2u64, 20u64));
        let c0 = CNode {
            bitmap: 1 << 1,
            array: vec![Branch::S(sn1)],
            gen,
        };
        let c1 = c0.inserted(1, 1 << 2, Branch::S(sn2), gen);
        assert_eq!(c1.array.len(), 2);
        assert_eq!(c1.bitmap, (1 << 1) | (1 << 2));
        let c2 = c1.removed(0, 1 << 1, gen);
        assert_eq!(c2.array.len(), 1);
        assert_eq!(c2.bitmap, 1 << 2);
        match &c2.array[0] {
            Branch::S(s) => assert_eq!(s.value, 20),
            Branch::I(_) => panic!("expected singleton"),
        }
    }

    #[test]
    fn dual_splits_on_first_differing_level() {
        let gen = Gen::fresh();
        let a = Arc::new(SNode::new(0b00001, 1u64, 1u64));
        let b = Arc::new(SNode::new(0b00010, 2u64, 2u64));
        let m = dual(a, b, 0, gen);
        match &m.kind {
            MainKind::C(c) => assert_eq!(c.array.len(), 2),
            _ => panic!("expected cnode"),
        }
    }

    #[test]
    fn dual_descends_on_shared_prefix() {
        let gen = Gen::fresh();
        // Same low 5 bits, differ at the next level.
        let a = Arc::new(SNode::new(0b00001_00111, 1u64, 1u64));
        let b = Arc::new(SNode::new(0b00010_00111, 2u64, 2u64));
        let m = dual(a, b, 0, gen);
        match &m.kind {
            MainKind::C(c) => {
                assert_eq!(c.array.len(), 1);
                assert!(matches!(c.array[0], Branch::I(_)));
            }
            _ => panic!("expected cnode"),
        }
    }

    #[test]
    fn dual_full_collision_becomes_lnode() {
        let gen = Gen::fresh();
        let a = Arc::new(SNode::new(u64::MAX, 1u64, 1u64));
        let b = Arc::new(SNode::new(u64::MAX, 2u64, 2u64));
        let m = dual(a, b, 0, gen);
        fn find_lnode<K, V>(m: &MainNode<K, V>, depth: u32) -> bool {
            match &m.kind {
                MainKind::L(l) => l.entries.len() == 2,
                MainKind::C(c) => {
                    assert!(depth < 20, "unbounded descent");
                    match &c.array[0] {
                        Branch::I(i) => {
                            // SAFETY: this test is single-threaded, so no
                            // node can be retired concurrently; the unprotected
                            // guard and the raw deref both stay valid.
                            let g = unsafe { crossbeam_epoch::unprotected() };
                            let p = i.main.load(Ordering::Relaxed, g);
                            // SAFETY: `p` was just loaded from a live INode and
                            // nothing frees it in this single-threaded test.
                            find_lnode(unsafe { p.deref() }, depth + 1)
                        }
                        Branch::S(_) => false,
                    }
                }
                MainKind::T(_) => false,
            }
        }
        assert!(find_lnode(&m, 0));
    }

    #[test]
    fn lnode_insert_replaces_same_key() {
        let l = LNode {
            entries: vec![
                Arc::new(SNode::new(9, 1u64, 10u64)),
                Arc::new(SNode::new(9, 2u64, 20u64)),
            ],
        };
        let l2 = l.inserted(Arc::new(SNode::new(9, 1u64, 11u64)));
        assert_eq!(l2.entries.len(), 2);
        assert_eq!(l2.get(&1).unwrap().value, 11);
        let l3 = l2.removed(&2);
        assert_eq!(l3.entries.len(), 1);
    }

    #[test]
    fn arc_shared_roundtrip_preserves_count() {
        let a = MainNode::<u64, u64>::lnode(LNode { entries: vec![] });
        let inner = Arc::clone(&a);
        let s = arc_into_shared(inner);
        // SAFETY: `s` was produced by `arc_into_shared` one line up and is
        // reclaimed exactly once here.
        let back = unsafe { arc_from_shared(s) };
        assert_eq!(Arc::strong_count(&a), 2);
        drop(back);
        assert_eq!(Arc::strong_count(&a), 1);
    }
}
