//! # idf-ctrie — concurrent hash tries with efficient non-blocking snapshots
//!
//! A Rust implementation of the **cTrie** of Prokopec et al. (*Concurrent
//! Tries with Efficient Non-Blocking Snapshots*, PPoPP 2012) — the index
//! structure used by the Indexed DataFrame (Uta et al., SIGMOD 2019).
//!
//! The trie is a lock-free hash array mapped trie:
//!
//! * **Lock-free reads and writes.** All mutation is CAS-based on
//!   indirection nodes (I-nodes); failed operations retry from the
//!   root. Memory reclamation combines `Arc` reference counting for
//!   structural sharing with [`crossbeam_epoch`] deferral so that readers
//!   can traverse without touching reference counts.
//! * **O(1) snapshots.** [`CTrie::snapshot`] and
//!   [`CTrie::read_only_snapshot`] swap the root via an RDCSS
//!   (restricted double-compare single-swap) descriptor and stamp a fresh
//!   *generation*; both tries then lazily copy-on-write any path a writer
//!   touches. Generation-compare-and-swap (GCAS) guarantees that an update
//!   racing with a snapshot either commits entirely before it or aborts and
//!   retries on the new generation — readers of a snapshot always observe a
//!   point-in-time view.
//! * **Linked values under one key are the caller's business.** The Indexed
//!   DataFrame stores *packed row pointers* as values and threads its own
//!   backward-pointer lists through the row batches; [`CTrie::insert`]
//!   returns the previous value so the caller can link it.
//!
//! Two sibling implementations live here for differential testing and
//! ablation benchmarks:
//!
//! * [`CTrie`] — the lock-free trie with non-blocking snapshots (primary).
//! * [`hamt::Hamt`] — a persistent hash array mapped trie with `Arc`
//!   structural sharing behind a lock; identical observable semantics,
//!   used as the reference model.
//!
//! Both implement the [`SnapshotMap`] trait so the Indexed DataFrame can be
//! instantiated over either.
//!
//! ```
//! use idf_ctrie::CTrie;
//!
//! let trie: CTrie<u64, u64> = CTrie::new();
//! assert_eq!(trie.insert(1, 100), None);
//! assert_eq!(trie.insert(1, 200), Some(100)); // previous value returned
//! let snap = trie.read_only_snapshot();
//! trie.insert(2, 300);
//! assert_eq!(snap.lookup(&2), None); // snapshot is a point-in-time view
//! assert_eq!(trie.lookup(&2), Some(300));
//! ```

#![deny(missing_docs)]

mod gen;
pub mod hamt;
pub mod hash;
mod iter;
mod node;
mod trie;

pub use hamt::Hamt;
pub use hash::{FxBuildHasher, FxHasher};
pub use iter::Iter;
pub use trie::CTrie;

/// A concurrent map with point-in-time snapshots.
///
/// Abstracts over the two index implementations ([`CTrie`], [`Hamt`]) so the
/// Indexed DataFrame partition can be instantiated over either; the paper's
/// system uses the cTrie, and the HAMT serves as the differential-testing
/// reference and an ablation baseline.
pub trait SnapshotMap<K, V>: Send + Sync {
    /// Insert `key → value`, returning the previously bound value if any.
    fn insert(&self, key: K, value: V) -> Option<V>;
    /// Look up the value bound to `key`.
    fn lookup(&self, key: &K) -> Option<V>;
    /// Remove the binding for `key`, returning the removed value if any.
    fn remove(&self, key: &K) -> Option<V>;
    /// Take a read-only point-in-time snapshot.
    fn snapshot_reader(&self) -> Box<dyn SnapshotReader<K, V>>;
    /// Exact number of bindings (O(n)).
    fn count(&self) -> usize;
}

/// A read-only point-in-time view produced by [`SnapshotMap::snapshot_reader`].
pub trait SnapshotReader<K, V>: Send + Sync {
    /// Look up the value bound to `key` in the snapshot.
    fn lookup(&self, key: &K) -> Option<V>;
    /// Exact number of bindings in the snapshot (O(n)).
    fn count(&self) -> usize;
    /// All key/value pairs in the snapshot (unordered).
    fn entries(&self) -> Vec<(K, V)>;
}
