//! **BENCH-views** — materialized views maintained live from the SNB
//! update stream: per-person feed views (filter, aggregate, and join
//! classes) are created over the indexed SNB tables, the `idf-snb`
//! update stream mutates the graph underneath them, and the report
//! compares reading each view against cold re-execution of its defining
//! query, alongside the maintenance-lag distribution and full-refresh
//! cost. The numbers land in `BENCH_views.json` via `harness views`.

use std::time::Instant;

use idf_engine::error::{EngineError, Result};
use idf_engine::prelude::Session;
use idf_snb::gen::{generate, SnbConfig};
use idf_snb::load::register_indexed;
use idf_snb::stream::UpdateStream;
use idf_views::ViewsConfig;

/// Workload shape for one views benchmark run.
#[derive(Debug, Clone)]
pub struct ViewsBenchConfig {
    /// SNB scale factor of the seed dataset.
    pub snb_scale: f64,
    /// Update-stream events applied while the views are live.
    pub events: usize,
    /// Timed executions per measurement (median reported).
    pub reads: usize,
}

impl ViewsBenchConfig {
    /// The harness shape: `--scale` maps to a laptop-sized SNB seed.
    pub fn for_scale(scale: f64) -> ViewsBenchConfig {
        ViewsBenchConfig {
            snb_scale: (scale * 0.25).clamp(0.05, 4.0),
            events: ((scale * 1_500.0) as usize).max(300),
            reads: 30,
        }
    }
}

/// One view class measured against cold re-execution.
#[derive(Debug, Clone)]
pub struct ViewComparison {
    /// View name.
    pub name: String,
    /// View class (`filter`, `aggregate`, `join`).
    pub kind: &'static str,
    /// Rows in the materialized state at measurement time.
    pub rows: usize,
    /// Median latency of `SELECT * FROM <view>` (µs).
    pub view_read_us: f64,
    /// Median latency of re-running the defining query cold (µs).
    pub cold_exec_us: f64,
    /// `cold_exec_us / view_read_us`.
    pub speedup: f64,
    /// Median `REFRESH MATERIALIZED VIEW` wall time (µs) — the cost the
    /// incremental path avoids paying per read.
    pub refresh_us: f64,
}

/// The `BENCH_views.json` payload.
#[derive(Debug, Clone)]
pub struct ViewsBenchReport {
    /// SNB scale factor of the seed dataset.
    pub snb_scale: f64,
    /// Update-stream events applied while the views were live.
    pub events: usize,
    /// Sustained ingest rate with synchronous maintenance (events/s).
    pub ingest_events_per_sec: f64,
    /// Delta applications across all views during the stream phase.
    pub deltas_applied: u64,
    /// Commit-to-applied maintenance lag, median (µs; 0 without `obs`).
    pub lag_p50_us: f64,
    /// Maintenance lag, 95th percentile (µs; 0 without `obs`).
    pub lag_p95_us: f64,
    /// Maintenance lag, 99th percentile (µs; 0 without `obs`).
    pub lag_p99_us: f64,
    /// Per-view-class comparisons.
    pub comparisons: Vec<ViewComparison>,
    /// Largest per-class speedup (the headline number).
    pub best_speedup: f64,
    /// Smallest per-class speedup (the honest number).
    pub min_speedup: f64,
    /// Git commit the numbers were produced from.
    pub git_commit: String,
    /// ISO-8601 UTC timestamp of the run.
    pub timestamp: String,
}

impl crate::json::ToJson for ViewComparison {
    fn to_json(&self) -> crate::json::Json {
        use crate::json::Json;
        Json::obj([
            ("name", Json::Str(self.name.clone())),
            ("kind", Json::Str(self.kind.to_string())),
            ("rows", Json::Int(self.rows as i64)),
            ("view_read_us", Json::Num(self.view_read_us)),
            ("cold_exec_us", Json::Num(self.cold_exec_us)),
            ("speedup", Json::Num(self.speedup)),
            ("refresh_us", Json::Num(self.refresh_us)),
        ])
    }
}

impl crate::json::ToJson for ViewsBenchReport {
    fn to_json(&self) -> crate::json::Json {
        use crate::json::Json;
        Json::obj([
            ("snb_scale", Json::Num(self.snb_scale)),
            ("events", Json::Int(self.events as i64)),
            (
                "ingest_events_per_sec",
                Json::Num(self.ingest_events_per_sec),
            ),
            ("deltas_applied", Json::Int(self.deltas_applied as i64)),
            ("lag_p50_us", Json::Num(self.lag_p50_us)),
            ("lag_p95_us", Json::Num(self.lag_p95_us)),
            ("lag_p99_us", Json::Num(self.lag_p99_us)),
            (
                "comparisons",
                Json::Arr(self.comparisons.iter().map(|c| c.to_json()).collect()),
            ),
            ("best_speedup", Json::Num(self.best_speedup)),
            ("min_speedup", Json::Num(self.min_speedup)),
            ("git_commit", Json::Str(self.git_commit.clone())),
            ("timestamp", Json::Str(self.timestamp.clone())),
        ])
    }
}

/// The three feed views, one per maintainable class. The join view is
/// restricted to a 5% person sample (the demo's "tracked users") so its
/// output stays feed-sized rather than cross-product-sized.
const VIEWS: &[(&str, &str, &str)] = &[
    (
        "recent_messages",
        "filter",
        "SELECT id, creator_id, creation_date FROM message WHERE creator_id % 50 = 0",
    ),
    (
        "feed_counts",
        "aggregate",
        "SELECT creator_id, count(*), max(creation_date) FROM message_by_creator \
         GROUP BY creator_id",
    ),
    (
        "tracked_feeds",
        "join",
        "SELECT k.person1_id, m.id, m.creation_date FROM knows AS k \
         JOIN message_by_creator AS m ON k.person2_id = m.creator_id \
         WHERE k.person1_id % 20 = 0",
    ),
];

fn median_us(mut samples: Vec<u64>) -> f64 {
    samples.sort_unstable();
    if samples.is_empty() {
        return 0.0;
    }
    samples[samples.len() / 2] as f64 / 1e3
}

/// Median wall time of `runs` executions of `query`, in µs.
fn timed(session: &Session, query: &str, runs: usize) -> Result<f64> {
    let mut samples = Vec::with_capacity(runs);
    for _ in 0..runs.max(1) {
        let t0 = Instant::now();
        let chunk = session.sql(query)?.collect()?;
        samples.push(t0.elapsed().as_nanos() as u64);
        std::hint::black_box(chunk.len());
    }
    Ok(median_us(samples))
}

/// Run the views benchmark.
pub fn run(cfg: &ViewsBenchConfig) -> Result<ViewsBenchReport> {
    let data = generate(SnbConfig::with_scale(cfg.snb_scale))?;
    let session = Session::new();
    let tables = register_indexed(&session, &data)?;
    let _views = idf_views::install(&session, ViewsConfig::default());
    for (name, _, defining) in VIEWS {
        session
            .sql(&format!("CREATE MATERIALIZED VIEW {name} AS {defining}"))?
            .collect()?;
    }
    // Stream phase: live maintenance under the SNB update stream, with a
    // clean metrics window for the lag distribution.
    idf_obs::global().reset();
    let mut stream = UpdateStream::new(&data, 7);
    let t0 = Instant::now();
    for _ in 0..cfg.events {
        UpdateStream::apply(&stream.next_event(), &tables)?;
    }
    let ingest_secs = t0.elapsed().as_secs_f64();
    let metrics = idf_obs::global();
    let deltas_applied = metrics.view_deltas_applied.get();
    let lag_p50_us = metrics.view_maintenance_lag_ns.percentile(50.0) as f64 / 1e3;
    let lag_p95_us = metrics.view_maintenance_lag_ns.percentile(95.0) as f64 / 1e3;
    let lag_p99_us = metrics.view_maintenance_lag_ns.percentile(99.0) as f64 / 1e3;
    // Read phase: view scans vs cold re-execution of the defining query.
    let mut comparisons = Vec::new();
    for (name, kind, defining) in VIEWS {
        let rows = session
            .sql(&format!("SELECT * FROM {name}"))?
            .collect()?
            .len();
        let view_read_us = timed(&session, &format!("SELECT * FROM {name}"), cfg.reads)?;
        let cold_exec_us = timed(&session, defining, cfg.reads)?;
        let mut refresh_ns = Vec::new();
        for _ in 0..3 {
            let t0 = Instant::now();
            session
                .sql(&format!("REFRESH MATERIALIZED VIEW {name}"))?
                .collect()?;
            refresh_ns.push(t0.elapsed().as_nanos() as u64);
        }
        comparisons.push(ViewComparison {
            name: name.to_string(),
            kind,
            rows,
            view_read_us,
            cold_exec_us,
            speedup: if view_read_us > 0.0 {
                cold_exec_us / view_read_us
            } else {
                0.0
            },
            refresh_us: median_us(refresh_ns),
        });
    }
    let best_speedup = comparisons.iter().map(|c| c.speedup).fold(0.0, f64::max);
    let min_speedup = comparisons
        .iter()
        .map(|c| c.speedup)
        .fold(f64::INFINITY, f64::min);
    if comparisons.is_empty() {
        return Err(EngineError::exec("views bench produced no comparisons"));
    }
    Ok(ViewsBenchReport {
        snb_scale: cfg.snb_scale,
        events: cfg.events,
        ingest_events_per_sec: if ingest_secs > 0.0 {
            cfg.events as f64 / ingest_secs
        } else {
            0.0
        },
        deltas_applied,
        lag_p50_us,
        lag_p95_us,
        lag_p99_us,
        comparisons,
        best_speedup,
        min_speedup,
        git_commit: crate::meta::git_commit(),
        timestamp: crate::meta::iso_timestamp(),
    })
}

/// Human-readable rendering of a report.
pub fn render(report: &ViewsBenchReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "BENCH-views: SNB scale {}, {} stream events, {} deltas applied\n",
        report.snb_scale, report.events, report.deltas_applied
    ));
    out.push_str(&format!(
        "ingest {:.0} events/s | maintenance lag µs p50 {:.1} p95 {:.1} p99 {:.1}\n",
        report.ingest_events_per_sec, report.lag_p50_us, report.lag_p95_us, report.lag_p99_us
    ));
    out.push_str(&format!(
        "{:<16} {:>9} {:>7} {:>13} {:>13} {:>8} {:>12}\n",
        "view", "kind", "rows", "view read µs", "cold exec µs", "speedup", "refresh µs"
    ));
    for c in &report.comparisons {
        out.push_str(&format!(
            "{:<16} {:>9} {:>7} {:>13.1} {:>13.1} {:>7.1}x {:>12.1}\n",
            c.name, c.kind, c.rows, c.view_read_us, c.cold_exec_us, c.speedup, c.refresh_us
        ));
    }
    out.push_str(&format!(
        "best speedup {:.1}x, min speedup {:.1}x\n",
        report.best_speedup, report.min_speedup
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Smoke-scale end-to-end run: all three view classes materialize,
    /// maintain through the stream, and read faster than cold execution.
    #[test]
    fn views_bench_smoke() {
        let cfg = ViewsBenchConfig {
            snb_scale: 0.05,
            events: 60,
            reads: 3,
        };
        let report = run(&cfg).unwrap();
        assert_eq!(report.comparisons.len(), 3);
        for c in &report.comparisons {
            assert!(c.view_read_us > 0.0, "{}: no view read timing", c.name);
            assert!(c.cold_exec_us > 0.0, "{}: no cold timing", c.name);
            assert!(c.speedup > 0.0, "{}: no speedup computed", c.name);
        }
        assert!(report.best_speedup >= report.min_speedup);
        let json = crate::json::to_string_pretty(&report);
        assert!(json.contains("\"comparisons\""));
        assert!(!render(&report).is_empty());
    }
}
