//! Shared benchmark setup: one generated dataset registered into two
//! sessions — vanilla (cached columnar) and indexed — so every experiment
//! runs the *same query text* against both, exactly as the paper's demo
//! does.

use idf_engine::error::Result;
use idf_engine::prelude::Session;
use idf_snb::{generate, register, IndexedTables, Mode, SnbConfig, SnbData};

/// A dual-mode workload environment.
pub struct Workload {
    /// The generated dataset.
    pub data: SnbData,
    /// Session with vanilla cached tables.
    pub vanilla: Session,
    /// Session with indexed tables.
    pub indexed: Session,
    /// Handles to the indexed tables (for append workloads).
    pub tables: IndexedTables,
}

impl Workload {
    /// Generate at `scale_factor` and register both modes.
    pub fn new(scale_factor: f64) -> Result<Workload> {
        Self::with_config(SnbConfig::with_scale(scale_factor))
    }

    /// Generate with an explicit config and register both modes.
    pub fn with_config(config: SnbConfig) -> Result<Workload> {
        let data = generate(config)?;
        let vanilla = Session::new();
        register(&vanilla, &data, Mode::Vanilla)?;
        let indexed = Session::new();
        let tables =
            register(&indexed, &data, Mode::Indexed)?.expect("indexed mode returns table handles");
        Ok(Workload {
            data,
            vanilla,
            indexed,
            tables,
        })
    }

    /// Run `sql` in both sessions, returning (indexed rows, vanilla rows);
    /// asserts row counts agree.
    pub fn check_agreement(&self, sql: &str) -> Result<usize> {
        let a = self.indexed.sql(sql)?.count()?;
        let b = self.vanilla.sql(sql)?.count()?;
        assert_eq!(a, b, "modes diverged on: {sql}");
        Ok(a)
    }
}

/// Time `sql` in both sessions and package the comparison.
pub fn compare_sql(w: &Workload, label: &str, sql: &str, runs: usize) -> Result<crate::Comparison> {
    let indexed_df = w.indexed.sql(sql)?;
    let vanilla_df = w.vanilla.sql(sql)?;
    let rows_indexed = indexed_df.count()?;
    let rows_vanilla = vanilla_df.count()?;
    assert_eq!(
        rows_indexed, rows_vanilla,
        "modes diverged on {label}: {sql}"
    );
    let indexed_ms = crate::median_ms(runs, || indexed_df.collect().expect("indexed query failed"));
    let vanilla_ms = crate::median_ms(runs, || vanilla_df.collect().expect("vanilla query failed"));
    Ok(crate::Comparison {
        label: label.to_string(),
        indexed_ms,
        vanilla_ms,
        rows: rows_indexed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_builds_and_agrees() {
        let w = Workload::new(0.05).unwrap();
        let n = w
            .check_agreement("SELECT count(*) FROM knows WHERE person1_id = 3")
            .unwrap();
        assert_eq!(n, 1);
        let c = compare_sql(&w, "probe", "SELECT * FROM person WHERE id = 5", 3).unwrap();
        assert_eq!(c.rows, 1);
        assert!(c.indexed_ms > 0.0 && c.vanilla_ms > 0.0);
    }
}
