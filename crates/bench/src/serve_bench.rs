//! **BENCH-serve** — closed-loop load against the `idf-serve` service
//! layer: N concurrent wire clients issuing a mixed
//! lookup/append/join/DDL workload against one shared indexed table.
//!
//! Sweeps the client count up to the configured maximum (≥ 32 for the
//! acceptance shape), reporting per-step p50/p99/p999 latency and
//! queries/s, the saturation throughput across the sweep, and the
//! graceful-drain cost at teardown. The numbers land in
//! `BENCH_serve.json` via `harness serve`.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use idf_core::prelude::*;
use idf_engine::config::EngineConfig;
use idf_engine::error::{EngineError, Result};
use idf_engine::prelude::Session;
use idf_serve::{Client, ClientError, ErrorCode, ServeConfig, Server};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Workload shape for one service-layer load run.
#[derive(Debug, Clone)]
pub struct ServeBenchConfig {
    /// Maximum concurrent clients (the last sweep step).
    pub max_clients: usize,
    /// Seconds each sweep step runs.
    pub step_secs: f64,
    /// Distinct keys preloaded into the shared table.
    pub n_keys: usize,
    /// Query-executing worker threads in the server pool.
    pub workers: usize,
}

impl ServeBenchConfig {
    /// The harness shape: 32 clients, `scale 2.0` ⇒ 250 k preloaded keys.
    pub fn for_scale(scale: f64) -> ServeBenchConfig {
        ServeBenchConfig {
            max_clients: 32,
            step_secs: 4.0,
            n_keys: ((scale * 125_000.0) as usize).max(1_000),
            workers: idf_engine::config::default_parallelism().clamp(2, 16),
        }
    }
}

/// One sweep step: `clients` concurrent closed-loop clients.
#[derive(Debug, Clone)]
pub struct ServeStep {
    /// Concurrent clients in this step.
    pub clients: usize,
    /// Queries completed successfully.
    pub queries: u64,
    /// Typed `ServerBusy`/`QuotaExceeded` rejections (legal under load,
    /// counted separately from errors).
    pub rejects: u64,
    /// Unexpected failures (any other error frame, or transport loss).
    pub errors: u64,
    /// Completed queries per second.
    pub qps: f64,
    /// Median query latency (µs), measured send-to-`End` at the client.
    pub p50_us: f64,
    /// 99th-percentile latency (µs).
    pub p99_us: f64,
    /// 99.9th-percentile latency (µs).
    pub p999_us: f64,
    /// Per-query-class breakdown (lookup/append/join/ddl), so a slow
    /// class cannot hide inside the aggregate tail.
    pub classes: Vec<ClassStats>,
}

impl crate::json::ToJson for ServeStep {
    fn to_json(&self) -> crate::json::Json {
        use crate::json::Json;
        Json::obj([
            ("clients", Json::Int(self.clients as i64)),
            ("queries", Json::Int(self.queries as i64)),
            ("rejects", Json::Int(self.rejects as i64)),
            ("errors", Json::Int(self.errors as i64)),
            ("qps", Json::Num(self.qps)),
            ("p50_us", Json::Num(self.p50_us)),
            ("p99_us", Json::Num(self.p99_us)),
            ("p999_us", Json::Num(self.p999_us)),
            (
                "classes",
                Json::Arr(self.classes.iter().map(|c| c.to_json()).collect()),
            ),
        ])
    }
}

/// Latency profile of one query class within a step.
#[derive(Debug, Clone)]
pub struct ClassStats {
    /// Class label: `lookup`, `append`, `join`, or `ddl`.
    pub name: &'static str,
    /// Queries of this class completed in the step.
    pub queries: u64,
    /// Median latency (µs).
    pub p50_us: f64,
    /// 99th-percentile latency (µs).
    pub p99_us: f64,
}

impl crate::json::ToJson for ClassStats {
    fn to_json(&self) -> crate::json::Json {
        use crate::json::Json;
        Json::obj([
            ("name", Json::Str(self.name.to_string())),
            ("queries", Json::Int(self.queries as i64)),
            ("p50_us", Json::Num(self.p50_us)),
            ("p99_us", Json::Num(self.p99_us)),
        ])
    }
}

/// Results of one service-layer load run (the `BENCH_serve.json` payload).
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Preloaded distinct keys in the shared table.
    pub keys: usize,
    /// Server worker threads.
    pub workers: usize,
    /// Seconds per sweep step.
    pub step_secs: f64,
    /// The client-count sweep, ascending.
    pub steps: Vec<ServeStep>,
    /// Highest queries/s observed across the sweep (the saturation
    /// throughput of this configuration).
    pub saturation_qps: f64,
    /// In-flight queries cancelled by the graceful drain (0 for a clean
    /// teardown of an idle server).
    pub drain_cancelled: usize,
    /// Wall-clock drain time in milliseconds.
    pub drain_ms: f64,
    /// Git commit the numbers were produced from.
    pub git_commit: String,
    /// ISO-8601 UTC timestamp of the run.
    pub timestamp: String,
}

impl crate::json::ToJson for ServeReport {
    fn to_json(&self) -> crate::json::Json {
        use crate::json::Json;
        Json::obj([
            ("keys", Json::Int(self.keys as i64)),
            ("workers", Json::Int(self.workers as i64)),
            ("step_secs", Json::Num(self.step_secs)),
            (
                "steps",
                Json::Arr(self.steps.iter().map(|s| s.to_json()).collect()),
            ),
            ("saturation_qps", Json::Num(self.saturation_qps)),
            ("drain_cancelled", Json::Int(self.drain_cancelled as i64)),
            ("drain_ms", Json::Num(self.drain_ms)),
            ("git_commit", Json::Str(self.git_commit.clone())),
            ("timestamp", Json::Str(self.timestamp.clone())),
        ])
    }
}

/// Latency percentile over raw nanosecond samples (the 64-bucket obs
/// histogram is too coarse for p999, so the bench keeps every sample).
fn percentile_us(sorted_ns: &[u64], q: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let rank = ((sorted_ns.len() - 1) as f64 * q).round() as usize;
    sorted_ns[rank.min(sorted_ns.len() - 1)] as f64 / 1_000.0
}

const CLASS_LOOKUP: usize = 0;
const CLASS_APPEND: usize = 1;
const CLASS_JOIN: usize = 2;
const CLASS_DDL: usize = 3;
const CLASS_NAMES: [&str; 4] = ["lookup", "append", "join", "ddl"];

/// What one client thread observed during a step, bucketed by class.
struct ClientTally {
    samples_ns: [Vec<u64>; 4],
    rejects: u64,
    errors: u64,
}

/// One closed-loop client: issue mixed queries until `stop`, recording
/// send-to-`End` latency per query.
fn client_loop(
    addr: std::net::SocketAddr,
    id: usize,
    n_keys: usize,
    stop: &AtomicBool,
) -> ClientTally {
    let mut tally = ClientTally {
        samples_ns: Default::default(),
        rejects: 0,
        errors: 0,
    };
    let mut client = match Client::connect(addr, format!("tenant-{}", id % 4)) {
        Ok(client) => client,
        Err(_) => {
            tally.errors += 1;
            return tally;
        }
    };
    let mut rng = StdRng::seed_from_u64(0xbe9c + id as u64);
    let mut ddl_round = 0usize;
    while !stop.load(Ordering::Relaxed) {
        let key = rng.gen_range(0..n_keys as i64);
        let roll: u32 = rng.gen_range(0..100);
        let (class, sql) = if roll < 60 {
            // Point lookup on the indexed column.
            (
                CLASS_LOOKUP,
                format!("SELECT v FROM events WHERE id = {key}"),
            )
        } else if roll < 80 {
            // Fine-grained append through the wire.
            (
                CLASS_APPEND,
                format!("INSERT INTO events VALUES ({key}, 'upd', {roll})"),
            )
        } else if roll < 95 {
            // Index-powered equi-join against the small side table.
            (
                CLASS_JOIN,
                format!(
                    "SELECT e.v, t.tag FROM events e JOIN tags t ON e.id = t.event_id \
                     WHERE e.id = {}",
                    key % 64
                ),
            )
        } else {
            // DDL churn: create, populate, drop a scratch table.
            ddl_round += 1;
            let name = format!("scratch_{id}_{ddl_round}");
            let t0 = Instant::now();
            let created = client.query(&format!("CREATE TABLE {name} (id BIGINT, v BIGINT)"));
            let ok = created.is_ok()
                && client
                    .query(&format!("INSERT INTO {name} VALUES ({key}, 1)"))
                    .is_ok()
                && client.query(&format!("DROP TABLE {name}")).is_ok();
            if ok {
                tally.samples_ns[CLASS_DDL].push(t0.elapsed().as_nanos() as u64);
            } else {
                tally.errors += 1;
            }
            continue;
        };
        let t0 = Instant::now();
        match client.query(&sql) {
            Ok(_) => tally.samples_ns[class].push(t0.elapsed().as_nanos() as u64),
            Err(ClientError::Server(frame))
                if matches!(frame.code, ErrorCode::ServerBusy | ErrorCode::QuotaExceeded) =>
            {
                tally.rejects += 1
            }
            Err(_) => {
                tally.errors += 1;
                // The connection may be gone; reconnect once per error.
                match Client::connect(addr, format!("tenant-{}", id % 4)) {
                    Ok(fresh) => client = fresh,
                    Err(_) => break,
                }
            }
        }
    }
    tally
}

/// Build the shared state, run the client sweep, drain, and report.
pub fn run(config: &ServeBenchConfig) -> Result<ServeReport> {
    let engine_config = EngineConfig {
        total_memory_limit: Some(2 << 30),
        ..EngineConfig::default()
    };
    let session = Session::with_config(engine_config);
    // DDL over the wire mints indexed tables: the whole run exercises
    // the paper's indexed path end to end.
    install_indexed_ddl(&session, IndexConfig::default());
    session.sql("CREATE TABLE events (id BIGINT, name VARCHAR, v BIGINT)")?;
    session.sql("CREATE TABLE tags (event_id BIGINT, tag VARCHAR)")?;
    // Preload through the library API (the wire would dominate setup).
    let events = session.catalog().get("events")?;
    let mut batch: Vec<Vec<idf_engine::types::Value>> = Vec::with_capacity(4096);
    use idf_engine::types::Value;
    for key in 0..config.n_keys as i64 {
        batch.push(vec![
            Value::Int64(key),
            Value::Utf8(format!("k{key}")),
            Value::Int64(key),
        ]);
        if batch.len() == 4096 {
            events.append_rows(&batch)?;
            batch.clear();
        }
    }
    if !batch.is_empty() {
        events.append_rows(&batch)?;
    }
    let tags = session.catalog().get("tags")?;
    let tag_rows: Vec<Vec<Value>> = (0..64)
        .map(|i| vec![Value::Int64(i), Value::Utf8(format!("tag{}", i % 8))])
        .collect();
    tags.append_rows(&tag_rows)?;

    let serve_config = ServeConfig {
        workers: config.workers,
        queue_depth: (config.max_clients * 2).max(64),
        tenant_max_in_flight: config.max_clients.max(8),
        drain_deadline: Duration::from_secs(10),
        ..ServeConfig::default()
    };
    let server = Server::bind(session.clone(), "127.0.0.1:0", serve_config)?;
    let addr = server.local_addr();

    // Client sweep: contention shape changes with client count; the
    // saturation point is the best qps across the sweep.
    let mut sweep: Vec<usize> = vec![1, (config.max_clients / 4).max(2), config.max_clients];
    sweep.dedup();
    let mut steps = Vec::with_capacity(sweep.len());
    for &clients in &sweep {
        eprintln!(
            "# BENCH-serve: {clients} clients for {:.1}s...",
            config.step_secs
        );
        let stop = Arc::new(AtomicBool::new(false));
        let t0 = Instant::now();
        let tallies: Vec<ClientTally> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..clients)
                .map(|id| {
                    let stop = Arc::clone(&stop);
                    scope.spawn(move || client_loop(addr, id, config.n_keys, &stop))
                })
                .collect();
            std::thread::sleep(Duration::from_secs_f64(config.step_secs));
            stop.store(true, Ordering::Relaxed);
            handles
                .into_iter()
                .map(|h| {
                    h.join().unwrap_or(ClientTally {
                        samples_ns: Default::default(),
                        rejects: 0,
                        errors: 1,
                    })
                })
                .collect()
        });
        let elapsed = t0.elapsed().as_secs_f64();
        let classes: Vec<ClassStats> = (0..CLASS_NAMES.len())
            .map(|class| {
                let mut samples: Vec<u64> = tallies
                    .iter()
                    .flat_map(|t| t.samples_ns[class].iter().copied())
                    .collect();
                samples.sort_unstable();
                ClassStats {
                    name: CLASS_NAMES[class],
                    queries: samples.len() as u64,
                    p50_us: percentile_us(&samples, 0.50),
                    p99_us: percentile_us(&samples, 0.99),
                }
            })
            .collect();
        let mut samples: Vec<u64> = tallies
            .iter()
            .flat_map(|t| t.samples_ns.iter().flatten().copied())
            .collect();
        samples.sort_unstable();
        let queries = samples.len() as u64;
        steps.push(ServeStep {
            clients,
            queries,
            rejects: tallies.iter().map(|t| t.rejects).sum(),
            errors: tallies.iter().map(|t| t.errors).sum(),
            qps: queries as f64 / elapsed.max(f64::MIN_POSITIVE),
            p50_us: percentile_us(&samples, 0.50),
            p99_us: percentile_us(&samples, 0.99),
            p999_us: percentile_us(&samples, 0.999),
            classes,
        });
    }
    let drain_t0 = Instant::now();
    let report = server.shutdown();
    let drain_ms = drain_t0.elapsed().as_secs_f64() * 1_000.0;

    let errors: u64 = steps.iter().map(|s| s.errors).sum();
    if errors > 0 {
        return Err(EngineError::exec(format!(
            "BENCH-serve saw {errors} unexpected client errors"
        )));
    }
    let saturation_qps = steps.iter().map(|s| s.qps).fold(0.0, f64::max);
    Ok(ServeReport {
        keys: config.n_keys,
        workers: config.workers,
        step_secs: config.step_secs,
        steps,
        saturation_qps,
        drain_cancelled: report.cancelled,
        drain_ms,
        git_commit: crate::meta::git_commit(),
        timestamp: crate::meta::iso_timestamp(),
    })
}

/// Human-readable rendering for the terminal.
pub fn render(report: &ServeReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "BENCH-serve: {} keys, {} server workers, {:.1}s per step\n",
        report.keys, report.workers, report.step_secs
    ));
    out.push_str("clients |  queries |      qps |  p50 µs |  p99 µs | p999 µs | rejects\n");
    for s in &report.steps {
        out.push_str(&format!(
            "{:>7} | {:>8} | {:>8.0} | {:>7.0} | {:>7.0} | {:>7.0} | {:>7}\n",
            s.clients, s.queries, s.qps, s.p50_us, s.p99_us, s.p999_us, s.rejects
        ));
        for c in &s.classes {
            out.push_str(&format!(
                "        | {:>8} {:<6} p50 {:>8.0} µs, p99 {:>8.0} µs\n",
                c.queries, c.name, c.p50_us, c.p99_us
            ));
        }
    }
    out.push_str(&format!(
        "saturation: {:.0} queries/s; drain: {:.1} ms, {} cancelled\n",
        report.saturation_qps, report.drain_ms, report.drain_cancelled
    ));
    out
}

#[cfg(test)]
mod tests {
    use idf_core::prelude::*;
    use idf_engine::prelude::Session;

    #[test]
    fn workload_join_planned_through_the_index() {
        let session = Session::new();
        install_indexed_ddl(&session, IndexConfig::default());
        session
            .sql("CREATE TABLE events (id BIGINT, name VARCHAR, v BIGINT)")
            .unwrap();
        session
            .sql("CREATE TABLE tags (event_id BIGINT, tag VARCHAR)")
            .unwrap();
        session
            .sql("INSERT INTO events VALUES (1, 'a', 10), (2, 'b', 20)")
            .unwrap();
        session
            .sql("INSERT INTO tags VALUES (1, 'hot'), (2, 'cold')")
            .unwrap();
        let plan = session
            .sql(
                "SELECT e.v, t.tag FROM events e JOIN tags t \
                 ON e.id = t.event_id WHERE e.id = 1",
            )
            .unwrap()
            .explain()
            .unwrap();
        assert!(
            plan.contains("IndexedJoin"),
            "join missed the index:\n{plan}"
        );
    }
}
