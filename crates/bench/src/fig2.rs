//! **Figure 2** — *"Indexed DataFrame vs. vanilla Spark"*: the six SQL
//! operators of the paper's microbenchmark, applied to the
//! `person_knows_person` table (the join pairs it with `person`), all on
//! cached data in both modes.
//!
//! Expected shape (paper §3): *join* and *equality filter* are
//! significantly faster on the Indexed DataFrame; *projection* is the one
//! operator significantly slower (row-major cache vs columnar cache);
//! *filter*, *aggregation* and *scan* are broadly comparable.

use idf_engine::error::Result;

use crate::workload::{compare_sql, Workload};
use crate::Comparison;

/// The six operators, as (label, SQL) pairs parameterized by a key.
pub fn operator_queries(key: i64, date_cutoff: i64) -> Vec<(&'static str, String)> {
    vec![
        (
            "Join",
            "SELECT count(*) FROM knows k JOIN person p ON k.person1_id = p.id"
                .to_string(),
        ),
        (
            "Filter Equality",
            format!("SELECT * FROM knows WHERE person1_id = {key}"),
        ),
        (
            "Filter",
            format!("SELECT count(*) FROM knows WHERE creation_date > {date_cutoff}"),
        ),
        (
            "Aggregation",
            "SELECT person1_id, count(*) AS degree FROM knows GROUP BY person1_id"
                .to_string(),
        ),
        // Projection/scan force value materialization with a sum, so both
        // modes pay for reading cells rather than Arc-cloning cached
        // chunks: projection touches one column, scan touches all three.
        ("Projection", "SELECT sum(person2_id) AS s FROM knows".to_string()),
        (
            "Scan",
            "SELECT sum(person1_id) AS a, sum(person2_id) AS b,                     sum(CAST(creation_date AS BIGINT)) AS c, count(*) AS n FROM knows"
                .to_string(),
        ),
    ]
}

/// Run the Figure 2 microbenchmark.
pub fn run(w: &Workload, runs: usize) -> Result<Vec<Comparison>> {
    let key = w.data.max_person_id / 2;
    let cutoff = idf_snb::gen::EPOCH_MS + 180 * idf_snb::gen::DAY_MS;
    operator_queries(key, cutoff)
        .into_iter()
        .map(|(label, sql)| compare_sql(w, label, &sql, runs))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_operators_run_and_agree() {
        let w = Workload::new(0.05).unwrap();
        let rows = run(&w, 1).unwrap();
        assert_eq!(rows.len(), 6);
        for c in &rows {
            assert!(c.indexed_ms > 0.0 && c.vanilla_ms > 0.0, "{c:?}");
        }
        // The join output must equal the knows row count (FK integrity).
        let join = &rows[0];
        assert_eq!(join.label, "Join");
    }
}
