//! **BENCH-compact** — the DML + background-compaction loop under a
//! sustained update-heavy workload (days-equivalent churn compressed):
//!
//! * resident row-batch memory with no compaction (monotone growth) vs
//!   with the background compactor running (flat steady state),
//! * backward-pointer chain-walk p99 before vs after a rewrite,
//! * point-lookup latency while the compactor is actively rewriting vs
//!   quiesced,
//! * a real SIGKILL landing mid-compaction, with the recovered store
//!   compared bit-for-bit against an in-memory oracle that replays the
//!   same deterministic DML stream.
//!
//! The numbers land in `BENCH_compact.json` via `harness compact`. The
//! crash leg re-executes the current binary with [`CRASH_DIR_ENV`] set
//! (the same self-exec trick as the `kill_reopen` durability test), so
//! any binary that calls [`run`] must invoke [`crash_child_entry`]
//! before doing anything else.

use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

use idf_compact::CompactConfig;
use idf_core::prelude::*;
use idf_core::source::IndexedSource;
use idf_core::table::IndexedTable;
use idf_durable::{DurableSession, TempDir};
use idf_engine::config::{DurabilityLevel, EngineConfig};
use idf_engine::error::{EngineError, Result};
use idf_engine::prelude::Session;
use idf_engine::types::Value;

/// When set, the process is a crash-leg child: it churns a durable
/// store, then loops `COMPACT` until SIGKILLed (see [`crash_child_entry`]).
pub const CRASH_DIR_ENV: &str = "IDF_COMPACT_BENCH_CHILD";
const CRASH_KEYS_ENV: &str = "IDF_COMPACT_BENCH_KEYS";
const CRASH_ROUNDS_ENV: &str = "IDF_COMPACT_BENCH_ROUNDS";
/// The child re-exec target: a libtest filter naming the helper test in
/// this module. The `harness` binary ignores these args (its env check
/// runs first), so the same spawn works from both hosts.
const CRASH_CHILD_ARGS: &[&str] = &[
    "compact_bench::tests::compact_crash_child_helper",
    "--exact",
    "--nocapture",
];
/// The child publishes progress through these marker files (written
/// atomically via rename, so the parent never reads a torn value).
const CHURN_DONE_FILE: &str = "churn-done";
const COMPACTS_FILE: &str = "compacts";

/// Workload shape for one compaction benchmark run.
#[derive(Debug, Clone)]
pub struct CompactBenchConfig {
    /// Distinct keys in each churned table.
    pub keys: usize,
    /// Update waves applied to the un-compacted table.
    pub churn_rounds: usize,
    /// Update waves applied while the background compactor runs.
    pub steady_rounds: usize,
    /// Timed point lookups per latency measurement.
    pub lookups: usize,
    /// Distinct keys in the crash-leg child's durable table.
    pub crash_keys: usize,
    /// Update waves the crash-leg child applies before compacting.
    pub crash_rounds: usize,
    /// Whether to run the SIGKILL-during-compaction leg.
    pub crash: bool,
}

impl CompactBenchConfig {
    /// The harness shape: `scale 2.0` ⇒ 40 k keys × 8 update waves.
    pub fn for_scale(scale: f64) -> CompactBenchConfig {
        CompactBenchConfig {
            keys: ((scale * 20_000.0) as usize).max(2_000),
            churn_rounds: 8,
            steady_rounds: 16,
            lookups: ((scale * 2_000.0) as usize).max(500),
            crash_keys: ((scale * 1_000.0) as usize).max(400),
            crash_rounds: 5,
            crash: true,
        }
    }
}

/// Outcome of the SIGKILL-during-compaction leg (all zeros when the leg
/// is disabled, so the JSON shape is stable).
#[derive(Debug, Clone)]
pub struct CrashOutcome {
    /// Whether the leg ran.
    pub enabled: bool,
    /// `COMPACT` statements the child completed before the SIGKILL.
    pub compactions_before_kill: u64,
    /// Cold-open time of the surviving store (ms).
    pub recover_ms: f64,
    /// Visible rows in the recovered table.
    pub rows_recovered: usize,
    /// Recovered scan matched the oracle replay bit-for-bit ([`run`]
    /// fails outright on a mismatch, so a report always carries `true`
    /// here when `enabled`).
    pub oracle_matched: bool,
}

impl CrashOutcome {
    fn disabled() -> CrashOutcome {
        CrashOutcome {
            enabled: false,
            compactions_before_kill: 0,
            recover_ms: 0.0,
            rows_recovered: 0,
            oracle_matched: false,
        }
    }
}

impl crate::json::ToJson for CrashOutcome {
    fn to_json(&self) -> crate::json::Json {
        use crate::json::Json;
        Json::obj([
            ("enabled", Json::Bool(self.enabled)),
            (
                "compactions_before_kill",
                Json::Int(self.compactions_before_kill as i64),
            ),
            ("recover_ms", Json::Num(self.recover_ms)),
            ("rows_recovered", Json::Int(self.rows_recovered as i64)),
            ("oracle_matched", Json::Bool(self.oracle_matched)),
        ])
    }
}

/// The `BENCH_compact.json` payload.
#[derive(Debug, Clone)]
pub struct CompactBenchReport {
    /// Distinct keys in each churned table.
    pub keys: usize,
    /// Update waves applied to the un-compacted table.
    pub churn_rounds: usize,
    /// Row-batch bytes after the first un-compacted wave.
    pub mem_first_round_bytes: usize,
    /// Row-batch bytes after the last un-compacted wave.
    pub mem_last_round_bytes: usize,
    /// last / first without compaction (the leak the rewrite closes).
    pub mem_growth_no_compact: f64,
    /// Chain-walk length p99 probing the churned table (rows walked; 0
    /// without `obs`).
    pub chain_p99_pre: u64,
    /// Chain-walk length p99 probing the same table after `COMPACT`.
    pub chain_p99_post: u64,
    /// Point-lookup p99 on the churned (un-compacted) table (µs).
    pub lookup_pre_p99_us: f64,
    /// Manual `COMPACT` wall time (ms).
    pub compact_ms: f64,
    /// Superseded versions the rewrite reclaimed.
    pub rows_reclaimed: i64,
    /// Bytes the rewrite reclaimed.
    pub bytes_reclaimed: i64,
    /// Row-batch bytes after the rewrite.
    pub mem_after_compact_bytes: usize,
    /// Quiesced point-lookup median after the rewrite (µs).
    pub lookup_p50_us: f64,
    /// Quiesced point-lookup p99 after the rewrite (µs).
    pub lookup_p99_us: f64,
    /// Update waves applied while the background compactor ran.
    pub steady_rounds: usize,
    /// Row-batch bytes after the first steady-state wave.
    pub steady_mem_first_bytes: usize,
    /// Row-batch bytes after the last steady-state wave.
    pub steady_mem_last_bytes: usize,
    /// last / first with the compactor running (flat ⇒ ~1.0).
    pub steady_mem_growth: f64,
    /// Point-lookup median while the compactor was rewriting (µs).
    pub steady_lookup_p50_us: f64,
    /// Point-lookup p99 while the compactor was rewriting (µs).
    pub steady_lookup_p99_us: f64,
    /// Background survey cycles completed during the steady phase.
    pub background_cycles: u64,
    /// Background rewrites completed during the steady phase (0 without
    /// `obs`).
    pub background_runs: u64,
    /// Whether `idf-obs` was compiled in for this run.
    pub obs_enabled: bool,
    /// The SIGKILL-during-compaction leg.
    pub crash: CrashOutcome,
    /// Git commit the numbers were produced from.
    pub git_commit: String,
    /// ISO-8601 UTC timestamp of the run.
    pub timestamp: String,
}

impl crate::json::ToJson for CompactBenchReport {
    fn to_json(&self) -> crate::json::Json {
        use crate::json::Json;
        Json::obj([
            ("keys", Json::Int(self.keys as i64)),
            ("churn_rounds", Json::Int(self.churn_rounds as i64)),
            (
                "mem_first_round_bytes",
                Json::Int(self.mem_first_round_bytes as i64),
            ),
            (
                "mem_last_round_bytes",
                Json::Int(self.mem_last_round_bytes as i64),
            ),
            (
                "mem_growth_no_compact",
                Json::Num(self.mem_growth_no_compact),
            ),
            ("chain_p99_pre", Json::Int(self.chain_p99_pre as i64)),
            ("chain_p99_post", Json::Int(self.chain_p99_post as i64)),
            ("lookup_pre_p99_us", Json::Num(self.lookup_pre_p99_us)),
            ("compact_ms", Json::Num(self.compact_ms)),
            ("rows_reclaimed", Json::Int(self.rows_reclaimed)),
            ("bytes_reclaimed", Json::Int(self.bytes_reclaimed)),
            (
                "mem_after_compact_bytes",
                Json::Int(self.mem_after_compact_bytes as i64),
            ),
            ("lookup_p50_us", Json::Num(self.lookup_p50_us)),
            ("lookup_p99_us", Json::Num(self.lookup_p99_us)),
            ("steady_rounds", Json::Int(self.steady_rounds as i64)),
            (
                "steady_mem_first_bytes",
                Json::Int(self.steady_mem_first_bytes as i64),
            ),
            (
                "steady_mem_last_bytes",
                Json::Int(self.steady_mem_last_bytes as i64),
            ),
            ("steady_mem_growth", Json::Num(self.steady_mem_growth)),
            ("steady_lookup_p50_us", Json::Num(self.steady_lookup_p50_us)),
            ("steady_lookup_p99_us", Json::Num(self.steady_lookup_p99_us)),
            (
                "background_cycles",
                Json::Int(self.background_cycles as i64),
            ),
            ("background_runs", Json::Int(self.background_runs as i64)),
            ("obs_enabled", Json::Bool(self.obs_enabled)),
            ("crash", self.crash.to_json()),
            ("git_commit", Json::Str(self.git_commit.clone())),
            ("timestamp", Json::Str(self.timestamp.clone())),
        ])
    }
}

/// The benchmark table shape, `(k BIGINT, v BIGINT)` keyed on `k` — the
/// crash-leg child creates it through [`DurableSession::create_table`]
/// (SQL DDL makes plain in-memory tables), everything else through DDL.
fn churn_schema() -> idf_engine::schema::SchemaRef {
    use idf_engine::schema::{Field, Schema};
    use idf_engine::types::DataType;
    Arc::new(Schema::new(vec![
        Field::required("k", DataType::Int64),
        Field::new("v", DataType::Int64),
    ]))
}

/// The deterministic DML stream both the crash-leg child and the oracle
/// replay over an existing `(k, v)` table: seed `keys` rows, then per
/// round one half-table UPDATE wave and one single-key DELETE.
/// Statement order is the contract — the recovered store must equal a
/// full replay bit-for-bit.
fn churn_statements(table: &str, keys: usize, rounds: usize) -> Vec<String> {
    let mut stmts = Vec::new();
    let mut k = 0usize;
    while k < keys {
        let n = 500.min(keys - k);
        let values: Vec<String> = (k..k + n).map(|i| format!("({i}, {i})")).collect();
        stmts.push(format!("INSERT INTO {table} VALUES {}", values.join(", ")));
        k += n;
    }
    for r in 0..rounds {
        stmts.push(round_update(table, r));
        stmts.push(round_delete(table, r));
    }
    stmts
}

fn round_update(table: &str, round: usize) -> String {
    format!(
        "UPDATE {table} SET v = v + {} WHERE k % 2 = {}",
        round + 1,
        round % 2
    )
}

fn round_delete(table: &str, round: usize) -> String {
    format!("DELETE FROM {table} WHERE k = {round}")
}

fn sql(session: &Session, query: &str) -> Result<idf_engine::chunk::Chunk> {
    session.sql(query)?.collect()
}

/// The registered `IndexedTable` behind a DDL-created table (the same
/// catalog downcast the compactor's discovery uses).
fn table_handle(session: &Session, name: &str) -> Result<Arc<IndexedTable>> {
    let source = session.catalog().get(name)?;
    let indexed = source
        .as_any()
        .downcast_ref::<IndexedSource>()
        .ok_or_else(|| EngineError::exec(format!("{name} is not an indexed table")))?;
    Ok(Arc::clone(indexed.table()))
}

/// Per-probe point-lookup latencies (ns): a fresh snapshot plus one key
/// probe per sample, keys spread over the table with a Fibonacci-hash
/// stride. Deleted keys probe to an empty chunk, which is still a full
/// index walk.
fn probe_ns(table: &IndexedTable, keys: usize, probes: usize) -> Result<Vec<u64>> {
    let mut ns = Vec::with_capacity(probes);
    for i in 0..probes {
        let k = ((i as u64).wrapping_mul(2_654_435_761) % keys.max(1) as u64) as i64;
        let start = Instant::now();
        let chunk = table.snapshot().lookup_chunk(&Value::Int64(k), None)?;
        ns.push(start.elapsed().as_nanos() as u64);
        std::hint::black_box(chunk.len());
    }
    ns.sort_unstable();
    Ok(ns)
}

fn percentile_us(sorted_ns: &[u64], p: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let idx = ((p / 100.0) * (sorted_ns.len() - 1) as f64).round() as usize;
    sorted_ns[idx.min(sorted_ns.len() - 1)] as f64 / 1e3
}

fn write_atomic(dir: &Path, name: &str, value: &str) {
    let tmp = dir.join(format!("{name}.tmp"));
    let dst = dir.join(name);
    if std::fs::write(&tmp, value).is_ok() {
        let _ = std::fs::rename(&tmp, &dst);
    }
}

fn read_count(dir: &Path, name: &str) -> u64 {
    std::fs::read_to_string(dir.join(name))
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(0)
}

/// Crash-leg child entry. Returns `false` (a no-op) unless
/// [`CRASH_DIR_ENV`] is set; when set, churns a `Sync`-durability store
/// in that directory, marks the churn done, then loops `COMPACT` (with
/// periodic checkpoints) until the parent SIGKILLs it. Call this first
/// thing in any binary that hosts [`run`]; a `true` return means the
/// process was the child and should exit.
pub fn crash_child_entry() -> bool {
    let Ok(dir) = std::env::var(CRASH_DIR_ENV) else {
        return false;
    };
    let keys = std::env::var(CRASH_KEYS_ENV)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(400);
    let rounds = std::env::var(CRASH_ROUNDS_ENV)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(5);
    if let Err(e) = crash_child(&PathBuf::from(dir), keys, rounds) {
        eprintln!("compact bench crash child: {e}");
        std::process::exit(1);
    }
    true
}

fn durable_config(dir: &Path) -> EngineConfig {
    EngineConfig {
        data_dir: Some(dir.to_path_buf()),
        durability: DurabilityLevel::Sync,
        ..EngineConfig::default()
    }
}

fn crash_child(dir: &Path, keys: usize, rounds: usize) -> Result<()> {
    let sess = DurableSession::open(durable_config(dir))?;
    let _compactor = idf_compact::install(sess.session(), CompactConfig::default());
    sess.create_table("churn", churn_schema(), 0, IndexConfig::default())?;
    for stmt in churn_statements("churn", keys, rounds) {
        sess.sql(&stmt)?.collect()?;
    }
    sess.checkpoint(Some("churn"))?;
    write_atomic(dir, CHURN_DONE_FILE, "1");
    // Compact in a tight loop until killed; interleave checkpoints so
    // the SIGKILL can land mid-rewrite or mid-checkpoint-of-compacted
    // state. Bounded so an orphaned child cannot spin forever.
    let deadline = Instant::now() + Duration::from_secs(300);
    let mut compacts = 0u64;
    while Instant::now() < deadline {
        sess.sql("COMPACT churn")?.collect()?;
        compacts += 1;
        write_atomic(dir, COMPACTS_FILE, &compacts.to_string());
        if compacts.is_multiple_of(4) {
            sess.checkpoint(Some("churn"))?;
        }
    }
    Ok(())
}

/// Parent side of the crash leg: spawn the child, wait for it to finish
/// churning and complete at least two compactions, SIGKILL it, reopen
/// the store, and compare the full ordered scan bit-for-bit against an
/// in-memory oracle replaying the identical statement stream.
fn crash_leg(cfg: &CompactBenchConfig) -> Result<CrashOutcome> {
    let dir = TempDir::new("bench-compact-crash");
    let exe = std::env::current_exe()
        .map_err(|e| EngineError::exec(format!("current_exe for crash child: {e}")))?;
    let mut child = std::process::Command::new(exe)
        .args(CRASH_CHILD_ARGS)
        .env(CRASH_DIR_ENV, dir.path())
        .env(CRASH_KEYS_ENV, cfg.crash_keys.to_string())
        .env(CRASH_ROUNDS_ENV, cfg.crash_rounds.to_string())
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .map_err(|e| EngineError::exec(format!("spawn crash child: {e}")))?;
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        if read_count(dir.path(), CHURN_DONE_FILE) == 1
            && read_count(dir.path(), COMPACTS_FILE) >= 2
        {
            break;
        }
        if let Some(status) = child
            .try_wait()
            .map_err(|e| EngineError::exec(format!("crash child wait: {e}")))?
        {
            return Err(EngineError::exec(format!(
                "crash child exited early ({status})"
            )));
        }
        if Instant::now() >= deadline {
            let _ = child.kill();
            let _ = child.wait();
            return Err(EngineError::exec("crash child made no progress"));
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    child
        .kill()
        .map_err(|e| EngineError::exec(format!("SIGKILL crash child: {e}")))?;
    let _ = child.wait();
    let compactions = read_count(dir.path(), COMPACTS_FILE);

    let start = Instant::now();
    let sess = DurableSession::open(durable_config(dir.path()))?;
    let recover_ms = start.elapsed().as_secs_f64() * 1e3;

    // Oracle: the same statement stream replayed in memory. Compaction
    // and checkpoints are logically invisible, so the recovered store
    // must reproduce the replay exactly.
    let oracle = Session::new();
    install_indexed_ddl(&oracle, IndexConfig::default());
    sql(&oracle, "CREATE TABLE churn (k BIGINT, v BIGINT)")?;
    for stmt in churn_statements("churn", cfg.crash_keys, cfg.crash_rounds) {
        sql(&oracle, &stmt)?;
    }
    let scan = "SELECT k, v FROM churn ORDER BY k";
    let recovered = sess.sql(scan)?.collect()?.to_rows();
    let expected = sql(&oracle, scan)?.to_rows();
    if recovered != expected {
        return Err(EngineError::exec(format!(
            "crash recovery diverged from the oracle: {} recovered rows vs {} expected",
            recovered.len(),
            expected.len()
        )));
    }
    Ok(CrashOutcome {
        enabled: true,
        compactions_before_kill: compactions,
        recover_ms,
        rows_recovered: recovered.len(),
        oracle_matched: true,
    })
}

/// Run the full compaction benchmark.
pub fn run(cfg: &CompactBenchConfig) -> Result<CompactBenchReport> {
    if !idf_compact::enabled() {
        return Err(EngineError::exec(
            "BENCH-compact needs the `compact` feature (compiled out)",
        ));
    }
    let session = Session::new();
    install_indexed_ddl(&session, IndexConfig::default());
    // Aggressive policy so steady-state cycles keep up with the
    // compressed churn; the manual COMPACT path ignores it anyway.
    let compactor = idf_compact::install(
        &session,
        CompactConfig {
            interval: Duration::from_millis(2),
            min_dead_rows: 64,
            min_dead_ratio: 0.05,
            ..CompactConfig::default()
        },
    );

    // Phase 1: churn with no compaction — the memory leak baseline.
    sql(&session, "CREATE TABLE cold (k BIGINT, v BIGINT)")?;
    for stmt in churn_statements("cold", cfg.keys, 0) {
        sql(&session, &stmt)?;
    }
    let cold = table_handle(&session, "cold")?;
    let mut mem_per_round = Vec::with_capacity(cfg.churn_rounds);
    for r in 0..cfg.churn_rounds {
        sql(&session, &round_update("cold", r))?;
        sql(&session, &round_delete("cold", r))?;
        mem_per_round.push(cold.memory_stats().data_bytes);
    }
    let mem_first = mem_per_round.first().copied().unwrap_or(0);
    let mem_last = mem_per_round.last().copied().unwrap_or(0);

    // Phase 2: chain-walk and lookup latency on the churned table.
    idf_obs::global().chain_walk.reset();
    let pre_ns = probe_ns(&cold, cfg.keys, cfg.lookups)?;
    let chain_p99_pre = idf_obs::global().chain_walk.percentile(99.0);

    // Phase 3: the manual rewrite.
    let start = Instant::now();
    let report = sql(&session, "COMPACT cold")?;
    let compact_ms = start.elapsed().as_secs_f64() * 1e3;
    let (mut rows_reclaimed, mut bytes_reclaimed) = (0i64, 0i64);
    for row in report.to_rows() {
        if let Value::Int64(n) = row[1] {
            rows_reclaimed += n;
        }
        if let Value::Int64(n) = row[2] {
            bytes_reclaimed += n;
        }
    }
    let mem_after_compact = cold.memory_stats().data_bytes;

    // Phase 4: the same probes against the compacted table.
    idf_obs::global().chain_walk.reset();
    let post_ns = probe_ns(&cold, cfg.keys, cfg.lookups)?;
    let chain_p99_post = idf_obs::global().chain_walk.percentile(99.0);

    // Phase 5: steady state — same churn, background compactor running.
    sql(&session, "CREATE TABLE steady (k BIGINT, v BIGINT)")?;
    for stmt in churn_statements("steady", cfg.keys, 0) {
        sql(&session, &stmt)?;
    }
    let steady = table_handle(&session, "steady")?;
    compactor.register("steady", Arc::clone(&steady));
    let cycles0 = compactor.cycles();
    let runs0 = idf_obs::global().compaction_runs.get();
    compactor.start();
    let probes_per_round = (cfg.lookups / cfg.steady_rounds.max(1)).max(16);
    let mut steady_mem = Vec::with_capacity(cfg.steady_rounds);
    let mut during_ns = Vec::new();
    for r in 0..cfg.steady_rounds {
        sql(&session, &round_update("steady", r))?;
        sql(&session, &round_delete("steady", r))?;
        during_ns.extend(probe_ns(&steady, cfg.keys, probes_per_round)?);
        // Let the compactor catch up so the sample shows steady state,
        // not the instant after a wave landed.
        let settle = Instant::now() + Duration::from_millis(250);
        while steady.memory_stats().dead_rows >= 64 && Instant::now() < settle {
            std::thread::sleep(Duration::from_millis(1));
        }
        steady_mem.push(steady.memory_stats().data_bytes);
    }
    compactor.stop();
    compactor.deregister("steady");
    let background_cycles = compactor.cycles() - cycles0;
    let background_runs = idf_obs::global().compaction_runs.get() - runs0;
    during_ns.sort_unstable();
    let steady_first = steady_mem.first().copied().unwrap_or(0);
    let steady_last = steady_mem.last().copied().unwrap_or(0);

    // Phase 6: SIGKILL mid-compaction, recover, audit against the oracle.
    let crash = if cfg.crash {
        crash_leg(cfg)?
    } else {
        CrashOutcome::disabled()
    };

    Ok(CompactBenchReport {
        keys: cfg.keys,
        churn_rounds: cfg.churn_rounds,
        mem_first_round_bytes: mem_first,
        mem_last_round_bytes: mem_last,
        mem_growth_no_compact: mem_last as f64 / mem_first.max(1) as f64,
        chain_p99_pre,
        chain_p99_post,
        lookup_pre_p99_us: percentile_us(&pre_ns, 99.0),
        compact_ms,
        rows_reclaimed,
        bytes_reclaimed,
        mem_after_compact_bytes: mem_after_compact,
        lookup_p50_us: percentile_us(&post_ns, 50.0),
        lookup_p99_us: percentile_us(&post_ns, 99.0),
        steady_rounds: cfg.steady_rounds,
        steady_mem_first_bytes: steady_first,
        steady_mem_last_bytes: steady_last,
        steady_mem_growth: steady_last as f64 / steady_first.max(1) as f64,
        steady_lookup_p50_us: percentile_us(&during_ns, 50.0),
        steady_lookup_p99_us: percentile_us(&during_ns, 99.0),
        background_cycles,
        background_runs,
        obs_enabled: idf_obs::enabled(),
        crash,
        git_commit: crate::meta::git_commit(),
        timestamp: crate::meta::iso_timestamp(),
    })
}

/// Human-readable rendering of a report.
pub fn render(r: &CompactBenchReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "BENCH-compact ({} keys, {} churn waves + {} steady waves)\n",
        r.keys, r.churn_rounds, r.steady_rounds
    ));
    out.push_str(&format!(
        "memory KiB        churn-only {} -> {} ({:.2}x) | steady w/ compactor {} -> {} ({:.2}x)\n",
        r.mem_first_round_bytes / 1024,
        r.mem_last_round_bytes / 1024,
        r.mem_growth_no_compact,
        r.steady_mem_first_bytes / 1024,
        r.steady_mem_last_bytes / 1024,
        r.steady_mem_growth
    ));
    out.push_str(&format!(
        "chain walk p99    pre {} -> post {} rows | COMPACT {:.1} ms reclaimed {} rows / {} KiB (now {} KiB)\n",
        r.chain_p99_pre,
        r.chain_p99_post,
        r.compact_ms,
        r.rows_reclaimed,
        r.bytes_reclaimed / 1024,
        r.mem_after_compact_bytes / 1024
    ));
    out.push_str(&format!(
        "point lookup µs   churned p99 {:.1} | compacted p50 {:.1} p99 {:.1} | under compactor p50 {:.1} p99 {:.1}\n",
        r.lookup_pre_p99_us,
        r.lookup_p50_us,
        r.lookup_p99_us,
        r.steady_lookup_p50_us,
        r.steady_lookup_p99_us
    ));
    out.push_str(&format!(
        "background        {} cycles, {} rewrites\n",
        r.background_cycles, r.background_runs
    ));
    if r.crash.enabled {
        out.push_str(&format!(
            "SIGKILL leg       {} compactions before kill | reopen {:.1} ms | {} rows, oracle match: {}\n",
            r.crash.compactions_before_kill,
            r.crash.recover_ms,
            r.crash.rows_recovered,
            r.crash.oracle_matched
        ));
    } else {
        out.push_str("SIGKILL leg       skipped\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Crash-leg child body; a no-op unless the parent set
    /// [`CRASH_DIR_ENV`]. Not a test of its own (see `kill_reopen`).
    #[test]
    fn compact_crash_child_helper() {
        crash_child_entry();
    }

    /// Smoke-scale end-to-end run, including the real SIGKILL leg.
    #[test]
    fn compact_bench_smoke() {
        let cfg = CompactBenchConfig {
            keys: 400,
            churn_rounds: 5,
            steady_rounds: 6,
            lookups: 400,
            crash_keys: 200,
            crash_rounds: 3,
            crash: true,
        };
        let report = run(&cfg).unwrap();
        assert!(
            report.mem_growth_no_compact > 1.0,
            "un-compacted churn must grow: {report:?}"
        );
        assert!(report.rows_reclaimed > 0, "{report:?}");
        assert!(
            report.mem_after_compact_bytes < report.mem_last_round_bytes,
            "{report:?}"
        );
        assert!(
            report.steady_mem_growth < report.mem_growth_no_compact,
            "the compactor must flatten steady-state memory: {report:?}"
        );
        if idf_obs::enabled() {
            assert!(
                report.chain_p99_post < report.chain_p99_pre,
                "compaction must shorten chain walks: {report:?}"
            );
            assert!(report.background_runs > 0, "{report:?}");
        }
        assert!(report.lookup_p99_us > 0.0 && report.steady_lookup_p99_us > 0.0);
        assert!(report.crash.enabled && report.crash.oracle_matched);
        assert!(report.crash.compactions_before_kill >= 2);
        assert!(report.crash.rows_recovered > 0);
        let json = crate::json::to_string_pretty(&report);
        for key in [
            "mem_growth_no_compact",
            "chain_p99_post",
            "steady_lookup_p99_us",
            "oracle_matched",
        ] {
            assert!(json.contains(key), "{key} missing from {json}");
        }
        assert!(!render(&report).is_empty());
    }
}
