//! The paper-figure harness: prints the rows/series of every figure in the
//! paper's evaluation plus the ablations from DESIGN.md.
//!
//! ```text
//! harness fig2    [--scale S] [--runs N]     Figure 2 operator comparison
//! harness fig3    [--scale S] [--runs N]     Figure 3 SNB short reads
//! harness complex [--scale S] [--runs N]     CQ1-CQ3 complex reads (supplementary)
//! harness speedup [--runs N]                 §5 "up to 8×" scale sweep
//! harness memory  [--scale S]                ABL-MEM memory overhead
//! harness lookup  [--scale S]                BENCH-lookup point-lookup path (writes BENCH_lookup.json)
//! harness recovery [--scale S]               BENCH-recovery durability costs (writes BENCH_recovery.json)
//! harness serve   [--scale S] [--clients N] [--secs S]
//!                                            BENCH-serve wire-protocol load (writes BENCH_serve.json)
//! harness views   [--scale S]                BENCH-views materialized views on the update stream (writes BENCH_views.json)
//! harness compact [--scale S]                BENCH-compact DML churn + background compaction (writes BENCH_compact.json)
//! harness all     [--scale S] [--runs N]     everything above
//! ```
//!
//! Use `--release` for meaningful numbers.

use idf_bench::workload::Workload;
use idf_bench::{
    compact_bench, fig2, fig3, lookup, memory, recovery, render_comparisons, serve_bench, speedup,
    views_bench,
};

struct Args {
    command: String,
    scale: f64,
    runs: usize,
    clients: usize,
    secs: f64,
    json: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        command: "all".to_string(),
        scale: 2.0,
        runs: 5,
        clients: 32,
        secs: 4.0,
        json: false,
    };
    let mut it = std::env::args().skip(1);
    if let Some(cmd) = it.next() {
        args.command = cmd;
    }
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--scale" => {
                args.scale = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--scale expects a number"));
            }
            "--runs" => {
                args.runs = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--runs expects an integer"));
            }
            "--clients" => {
                args.clients = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--clients expects an integer"));
            }
            "--secs" => {
                args.secs = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--secs expects a number"));
            }
            "--json" => args.json = true,
            other => die(&format!("unknown flag {other}")),
        }
    }
    args
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!(
        "usage: harness [fig2|fig3|complex|speedup|memory|lookup|recovery|serve|views|compact|all] \
         [--scale S] [--runs N] [--clients N] [--secs S] [--json]"
    );
    std::process::exit(2);
}

fn main() {
    // Crash-leg child re-exec for BENCH-compact: when the env var is
    // set this process churns/compacts until SIGKILLed, never parsing
    // its args.
    if compact_bench::crash_child_entry() {
        return;
    }
    let args = parse_args();
    if cfg!(debug_assertions) {
        eprintln!("warning: debug build — run with --release for meaningful timings");
    }
    let run = |what: &str| -> Result<(), idf_engine::error::EngineError> {
        match what {
            "fig2" => {
                eprintln!(
                    "# FIG2: building scale {} dataset (both modes)...",
                    args.scale
                );
                let w = Workload::new(args.scale)?;
                let rows = fig2::run(&w, args.runs)?;
                if args.json {
                    println!("{}", idf_bench::json::to_string_pretty(&rows));
                } else {
                    println!(
                        "{}",
                        render_comparisons(
                            &format!(
                                "FIG2: SQL operators on person_knows_person \
                                 (scale {}, {} knows rows)",
                                args.scale,
                                w.data.knows.len()
                            ),
                            &rows
                        )
                    );
                }
            }
            "fig3" => {
                eprintln!(
                    "# FIG3: building scale {} dataset (both modes)...",
                    args.scale
                );
                let w = Workload::new(args.scale)?;
                let rows = fig3::run(&w, args.runs, 8)?;
                if args.json {
                    println!("{}", idf_bench::json::to_string_pretty(&rows));
                } else {
                    println!(
                        "{}",
                        render_comparisons(
                            &format!(
                                "FIG3: SNB simple reads SQ1-SQ7 (scale {}, 8 bindings \
                                 per query; SQ5/SQ6 cannot use the index)",
                                args.scale
                            ),
                            &rows
                        )
                    );
                }
            }
            "complex" => {
                eprintln!(
                    "# COMPLEX: building scale {} dataset (both modes)...",
                    args.scale
                );
                let w = Workload::new(args.scale)?;
                let rows = fig3::run_complex(&w, args.runs, 8)?;
                if args.json {
                    println!("{}", idf_bench::json::to_string_pretty(&rows));
                } else {
                    println!(
                        "{}",
                        render_comparisons(
                            &format!(
                                "COMPLEX: LDBC-IC-style reads CQ1-CQ3 (scale {},                                  8 bindings per query)",
                                args.scale
                            ),
                            &rows
                        )
                    );
                }
            }
            "speedup" => {
                eprintln!("# CLAIM-8X: sweeping scales...");
                let scales = [0.5, 1.0, 2.0, 4.0, 8.0];
                let points = speedup::run(&scales, args.runs)?;
                if args.json {
                    println!("{}", idf_bench::json::to_string_pretty(&points));
                } else {
                    println!("{}", speedup::render(&points));
                }
            }
            "lookup" => {
                eprintln!(
                    "# BENCH-lookup: building {} rows...",
                    ((args.scale * 125_000.0) as usize).max(1_000) * 4
                );
                let report = lookup::run(&lookup::LookupConfig::for_scale(args.scale))?;
                let json = idf_bench::json::to_string_pretty(&report);
                std::fs::write("BENCH_lookup.json", format!("{json}\n")).map_err(|e| {
                    idf_engine::error::EngineError::exec(format!("writing BENCH_lookup.json: {e}"))
                })?;
                eprintln!("# wrote BENCH_lookup.json");
                if args.json {
                    println!("{json}");
                } else {
                    println!("{}", lookup::render(&report));
                }
            }
            "recovery" => {
                let cfg = recovery::RecoveryConfig::for_scale(args.scale);
                eprintln!("# BENCH-recovery: {} row corpus...", cfg.rows);
                let report = recovery::run(&cfg)?;
                let json = idf_bench::json::to_string_pretty(&report);
                std::fs::write("BENCH_recovery.json", format!("{json}\n")).map_err(|e| {
                    idf_engine::error::EngineError::exec(format!(
                        "writing BENCH_recovery.json: {e}"
                    ))
                })?;
                eprintln!("# wrote BENCH_recovery.json");
                if args.json {
                    println!("{json}");
                } else {
                    println!("{}", recovery::render(&report));
                }
            }
            "serve" => {
                let mut cfg = serve_bench::ServeBenchConfig::for_scale(args.scale);
                cfg.max_clients = args.clients.max(1);
                cfg.step_secs = args.secs;
                eprintln!(
                    "# BENCH-serve: {} keys, sweeping up to {} clients...",
                    cfg.n_keys, cfg.max_clients
                );
                let report = serve_bench::run(&cfg)?;
                let json = idf_bench::json::to_string_pretty(&report);
                std::fs::write("BENCH_serve.json", format!("{json}\n")).map_err(|e| {
                    idf_engine::error::EngineError::exec(format!("writing BENCH_serve.json: {e}"))
                })?;
                eprintln!("# wrote BENCH_serve.json");
                if args.json {
                    println!("{json}");
                } else {
                    println!("{}", serve_bench::render(&report));
                }
            }
            "views" => {
                let cfg = views_bench::ViewsBenchConfig::for_scale(args.scale);
                eprintln!(
                    "# BENCH-views: SNB scale {}, {} stream events...",
                    cfg.snb_scale, cfg.events
                );
                let report = views_bench::run(&cfg)?;
                let json = idf_bench::json::to_string_pretty(&report);
                std::fs::write("BENCH_views.json", format!("{json}\n")).map_err(|e| {
                    idf_engine::error::EngineError::exec(format!("writing BENCH_views.json: {e}"))
                })?;
                eprintln!("# wrote BENCH_views.json");
                if args.json {
                    println!("{json}");
                } else {
                    println!("{}", views_bench::render(&report));
                }
            }
            "compact" => {
                let cfg = compact_bench::CompactBenchConfig::for_scale(args.scale);
                eprintln!(
                    "# BENCH-compact: {} keys, {} churn + {} steady waves...",
                    cfg.keys, cfg.churn_rounds, cfg.steady_rounds
                );
                let report = compact_bench::run(&cfg)?;
                let json = idf_bench::json::to_string_pretty(&report);
                std::fs::write("BENCH_compact.json", format!("{json}\n")).map_err(|e| {
                    idf_engine::error::EngineError::exec(format!("writing BENCH_compact.json: {e}"))
                })?;
                eprintln!("# wrote BENCH_compact.json");
                if args.json {
                    println!("{json}");
                } else {
                    println!("{}", compact_bench::render(&report));
                }
            }
            "memory" => {
                let rows = memory::run(args.scale)?;
                if args.json {
                    println!("{}", idf_bench::json::to_string_pretty(&rows));
                } else {
                    println!("{}", memory::render(&rows));
                }
            }
            other => die(&format!("unknown command {other}")),
        }
        Ok(())
    };
    let commands: Vec<String> = match args.command.as_str() {
        "all" => [
            "fig2", "fig3", "complex", "speedup", "memory", "lookup", "recovery", "serve", "views",
            "compact",
        ]
        .into_iter()
        .map(String::from)
        .collect(),
        single => vec![single.to_string()],
    };
    for c in &commands {
        if let Err(e) = run(c) {
            eprintln!("error running {c}: {e}");
            std::process::exit(1);
        }
        println!();
    }
}
