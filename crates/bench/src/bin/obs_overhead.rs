//! Obs-overhead probe: a fixed point-lookup loop that prints one number
//! — minimum ns per `get_rows_chunk` across rounds — to stdout. CI runs
//! this binary with `idf-obs` compiled in (default features) and compiled
//! out (`--no-default-features --features failpoints`), and fails if the
//! instrumented build regresses by more than the 5% budget.
//!
//! The min (not the median) is reported because shared CI runners add
//! tens of percent of scheduling noise on top of the real per-op cost;
//! the fastest round is the closest observation of the uncontended cost
//! and is what makes an A/B ratio between two binaries meaningful.
//!
//! ```bash
//! cargo run --release -p idf-bench --bin obs_overhead
//! cargo run --release -p idf-bench --bin obs_overhead --no-default-features --features failpoints
//! ```

use std::time::Instant;

use idf_bench::lookup::build_table;
use idf_engine::types::Value;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const KEYS: usize = 50_000;
const VERSIONS: usize = 4;
const WARMUP: usize = 20_000;
const PROBES: usize = 200_000;
const ROUNDS: usize = 9;

fn main() {
    let idf = build_table(KEYS, VERSIONS).expect("building the probe table");
    let mut rng = StdRng::seed_from_u64(0x0b5_0423);
    let mut probe = |n: usize| {
        let start = Instant::now();
        for _ in 0..n {
            let key = Value::Int64(rng.gen_range(0..KEYS as i64));
            let chunk = idf.get_rows_chunk(key).expect("probe failed");
            assert_eq!(chunk.len(), VERSIONS, "probe missed a resident key");
        }
        start.elapsed().as_nanos() as u64 / n as u64
    };
    let _ = probe(WARMUP);
    let mut rounds: Vec<u64> = (0..ROUNDS).map(|_| probe(PROBES)).collect();
    rounds.sort_unstable();
    eprintln!(
        "# obs_overhead: obs_enabled={} rounds={rounds:?} ns/op",
        idf_obs::enabled()
    );
    println!("{}", rounds[0]);
}
