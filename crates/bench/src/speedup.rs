//! **CLAIM-8X** — the paper's §5 headline: *"the Indexed DataFrame can
//! achieve up to 8X speed-ups relatively to the vanilla Spark
//! implementation"*. We sweep the dataset scale and report the
//! join/equality-filter speedups; the index's advantage grows with data
//! size (O(1) lookup vs O(n) work per query), so the headline number is a
//! function of scale — the harness shows where the curve crosses 8×.

use idf_engine::error::Result;

use crate::workload::{compare_sql, Workload};
use crate::Comparison;

/// One sweep point.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Scale factor used.
    pub scale: f64,
    /// Rows in the probed table.
    pub knows_rows: usize,
    /// Bulk join comparison (whole tables).
    pub join: Comparison,
    /// Equality-filter comparison.
    pub filter: Comparison,
    /// Interactive lookup-join: one person's neighborhood joined with the
    /// person table — the paper's dashboard query pattern.
    pub lookup_join: Comparison,
}

impl crate::json::ToJson for SweepPoint {
    fn to_json(&self) -> crate::json::Json {
        use crate::json::Json;
        Json::obj([
            ("scale", Json::Num(self.scale)),
            ("knows_rows", Json::Int(self.knows_rows as i64)),
            ("join", self.join.to_json()),
            ("filter", self.filter.to_json()),
            ("lookup_join", self.lookup_join.to_json()),
        ])
    }
}

/// Run the sweep over `scales`.
pub fn run(scales: &[f64], runs: usize) -> Result<Vec<SweepPoint>> {
    let mut out = Vec::new();
    for &scale in scales {
        let w = Workload::new(scale)?;
        let key = w.data.max_person_id / 2;
        let join = compare_sql(
            &w,
            "join",
            "SELECT count(*) FROM knows k JOIN person p ON k.person1_id = p.id",
            runs,
        )?;
        let filter = compare_sql(
            &w,
            "eq-filter",
            &format!("SELECT * FROM knows WHERE person1_id = {key}"),
            runs,
        )?;
        let lookup_join = compare_sql(
            &w,
            "lookup-join",
            &format!(
                "SELECT p.first_name, p.last_name, k.creation_date                  FROM knows k JOIN person p ON k.person2_id = p.id                  WHERE k.person1_id = {key}"
            ),
            runs,
        )?;
        out.push(SweepPoint {
            scale,
            knows_rows: w.data.knows.len(),
            join,
            filter,
            lookup_join,
        });
    }
    Ok(out)
}

/// Render the sweep as a table.
pub fn render(points: &[SweepPoint]) -> String {
    let headers = vec![
        "scale".to_string(),
        "knows rows".to_string(),
        "bulk-join speedup".to_string(),
        "eq-filter speedup".to_string(),
        "lookup-join speedup".to_string(),
    ];
    let body: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                format!("{}", p.scale),
                p.knows_rows.to_string(),
                format!("{:.2}x", p.join.speedup()),
                format!("{:.2}x", p.filter.speedup()),
                format!("{:.2}x", p.lookup_join.speedup()),
            ]
        })
        .collect();
    format!(
        "== CLAIM-8X: speedup vs scale ==\n{}",
        idf_engine::pretty::format_table(&headers, &body)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_runs() {
        let points = run(&[0.02, 0.05], 1).unwrap();
        assert_eq!(points.len(), 2);
        assert!(points[1].knows_rows > points[0].knows_rows);
        let table = render(&points);
        assert!(table.contains("bulk-join speedup"));
        assert!(table.contains("lookup-join speedup"));
    }
}
