//! Minimal JSON emission for harness output.
//!
//! The offline build environment has no `serde`/`serde_json`, and the
//! harness only ever *writes* JSON (never parses), so a small value tree
//! plus a pretty printer covers the whole need.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Integral number.
    Int(i64),
    /// Floating number (non-finite values render as `null`).
    Num(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object with insertion-ordered fields.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An object builder from `(name, value)` pairs.
    pub fn obj(fields: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Pretty-print with two-space indentation (the shape
    /// `serde_json::to_string_pretty` produced before the offline port).
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent);
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Num(n) => {
                if n.is_finite() {
                    let _ = write!(out, "{n}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    let _ = write!(out, "{pad}  ");
                    item.write(out, indent + 1);
                    out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
                }
                let _ = write!(out, "{pad}]");
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (k, v)) in fields.iter().enumerate() {
                    let _ = write!(out, "{pad}  ");
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                    out.push_str(if i + 1 < fields.len() { ",\n" } else { "\n" });
                }
                let _ = write!(out, "{pad}}}");
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Conversion into a [`Json`] tree (the harness's `Serialize` analogue).
pub trait ToJson {
    /// Build the JSON value for `self`.
    fn to_json(&self) -> Json;
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

/// Pretty-printed JSON for any [`ToJson`] value.
pub fn to_string_pretty<T: ToJson + ?Sized>(v: &T) -> String {
    v.to_json().pretty()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_and_nests() {
        let j = Json::obj([
            ("s", Json::Str("a\"b\\c\nd".into())),
            ("n", Json::Num(1.5)),
            ("i", Json::Int(-3)),
            ("bad", Json::Num(f64::NAN)),
            ("arr", Json::Arr(vec![Json::Bool(true), Json::Null])),
            ("empty", Json::Obj(vec![])),
        ]);
        let s = j.pretty();
        assert!(s.contains("\"a\\\"b\\\\c\\nd\""));
        assert!(s.contains("\"bad\": null"));
        assert!(s.contains("\"empty\": {}"));
        assert!(s.starts_with("{\n"));
        assert!(s.ends_with('}'));
    }

    #[test]
    fn arrays_indent() {
        let j = Json::Arr(vec![Json::obj([("x", Json::Int(1))])]);
        assert_eq!(j.pretty(), "[\n  {\n    \"x\": 1\n  }\n]");
    }
}
