//! **ABL-MEM** — the paper's §1 claim that the Indexed DataFrame has *"a
//! relatively low memory overhead in addition to the original data"*:
//! bytes of the indexed representation (row batches + index entries)
//! versus the vanilla columnar cache of the same rows.

use idf_core::prelude::*;
use idf_engine::error::Result;
use std::sync::Arc;

/// Memory comparison for one table.
#[derive(Debug, Clone)]
pub struct MemoryRow {
    /// Table label.
    pub table: String,
    /// Row count.
    pub rows: usize,
    /// Vanilla columnar cache bytes.
    pub columnar_bytes: usize,
    /// Indexed row-batch bytes (committed).
    pub row_batch_bytes: usize,
    /// Allocated (committed + open batch slack) bytes.
    pub reserved_bytes: usize,
    /// Distinct indexed keys.
    pub index_entries: usize,
    /// Estimated index bytes (entries × per-entry cost estimate).
    pub index_bytes_estimate: usize,
}

/// Estimated heap cost of one cTrie entry: S-node (hash + key Value + value
/// u64 ≈ 56 B) + Arc header (16 B) + amortized C-node slot share (~24 B).
pub const CTRIE_ENTRY_ESTIMATE: usize = 96;

impl MemoryRow {
    /// Overhead of the indexed representation relative to the columnar
    /// cache: (batches + index) / columnar.
    pub fn overhead_factor(&self) -> f64 {
        (self.row_batch_bytes + self.index_bytes_estimate) as f64
            / self.columnar_bytes.max(1) as f64
    }
}

impl crate::json::ToJson for MemoryRow {
    fn to_json(&self) -> crate::json::Json {
        use crate::json::Json;
        Json::obj([
            ("table", Json::Str(self.table.clone())),
            ("rows", Json::Int(self.rows as i64)),
            ("columnar_bytes", Json::Int(self.columnar_bytes as i64)),
            ("row_batch_bytes", Json::Int(self.row_batch_bytes as i64)),
            ("reserved_bytes", Json::Int(self.reserved_bytes as i64)),
            ("index_entries", Json::Int(self.index_entries as i64)),
            (
                "index_bytes_estimate",
                Json::Int(self.index_bytes_estimate as i64),
            ),
        ])
    }
}

/// Measure one generated dataset.
pub fn run(scale: f64) -> Result<Vec<MemoryRow>> {
    let data = idf_snb::generate(idf_snb::SnbConfig::with_scale(scale))?;
    let cases = [
        (
            "person",
            idf_snb::gen::person_schema(),
            &data.person,
            0usize,
        ),
        ("knows", idf_snb::gen::knows_schema(), &data.knows, 0),
        ("message", idf_snb::gen::message_schema(), &data.message, 0),
    ];
    let mut out = Vec::new();
    for (name, schema, chunk, key) in cases {
        let table =
            IndexedTable::from_chunk(Arc::clone(&schema), key, IndexConfig::default(), chunk)?;
        let m = table.memory_stats();
        out.push(MemoryRow {
            table: name.to_string(),
            rows: chunk.len(),
            columnar_bytes: chunk.byte_size(),
            row_batch_bytes: m.data_bytes,
            reserved_bytes: m.reserved_bytes,
            index_entries: m.index_entries,
            index_bytes_estimate: m.index_entries * CTRIE_ENTRY_ESTIMATE,
        });
    }
    Ok(out)
}

/// Render as the harness table.
pub fn render(rows: &[MemoryRow]) -> String {
    let headers = vec![
        "table".to_string(),
        "rows".to_string(),
        "columnar [KiB]".to_string(),
        "row batches [KiB]".to_string(),
        "index est. [KiB]".to_string(),
        "overhead".to_string(),
    ];
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.table.clone(),
                r.rows.to_string(),
                format!("{}", r.columnar_bytes / 1024),
                format!("{}", r.row_batch_bytes / 1024),
                format!("{}", r.index_bytes_estimate / 1024),
                format!("{:.2}x", r.overhead_factor()),
            ]
        })
        .collect();
    format!(
        "== ABL-MEM: memory overhead of the indexed representation ==\n{}",
        idf_engine::pretty::format_table(&headers, &body)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_rows_populated() {
        let rows = run(0.05).unwrap();
        assert_eq!(rows.len(), 3);
        for r in &rows {
            assert!(r.rows > 0);
            assert!(r.row_batch_bytes > 0);
            assert!(r.index_entries > 0);
            // "Relatively low memory overhead": within a small factor of
            // the columnar cache.
            assert!(
                r.overhead_factor() < 4.0,
                "{}: overhead {:.2} too large",
                r.table,
                r.overhead_factor()
            );
        }
    }
}
