//! **BENCH-recovery** — the durability layer's cost/benefit envelope:
//! WAL append throughput at each [`DurabilityLevel`], group-commit
//! latency under concurrent committers (p50/p99 plus the measured
//! fsync-coalescing factor), and recovery time restoring from a
//! checkpoint versus replaying the full WAL. The numbers land in
//! `BENCH_recovery.json` via `harness recovery`.

use std::sync::Mutex;
use std::time::Instant;

use idf_core::config::IndexConfig;
use idf_durable::{DurableSession, TempDir};
use idf_engine::chunk::Chunk;
use idf_engine::config::{DurabilityLevel, EngineConfig};
use idf_engine::error::Result;
use idf_engine::schema::{Field, Schema, SchemaRef};
use idf_engine::types::{DataType, Value};

/// Workload shape for one recovery benchmark run.
#[derive(Debug, Clone)]
pub struct RecoveryConfig {
    /// Rows in the recovery corpus (appended in chunks, one WAL record
    /// per chunk).
    pub rows: usize,
    /// Rows per appended chunk in the recovery corpus.
    pub chunk_rows: usize,
    /// Single-row appends timed per durability level.
    pub appends_per_level: usize,
    /// Concurrent committers in the group-commit measurement.
    pub writers: usize,
    /// Appends per committer in the group-commit measurement.
    pub appends_per_writer: usize,
}

impl RecoveryConfig {
    /// The harness shape: `scale 2.0` ⇒ a 1 M-row recovery corpus.
    pub fn for_scale(scale: f64) -> RecoveryConfig {
        RecoveryConfig {
            rows: ((scale * 500_000.0) as usize).max(20_000),
            chunk_rows: 10_000,
            appends_per_level: 1_500,
            writers: 8,
            appends_per_writer: 150,
        }
    }
}

/// Results of one recovery benchmark run (the `BENCH_recovery.json`
/// payload).
#[derive(Debug, Clone)]
pub struct RecoveryReport {
    /// Single-row append throughput with durability off (the baseline).
    pub none_rows_per_sec: f64,
    /// Single-row append throughput at `Async` (logged, not awaited).
    pub async_rows_per_sec: f64,
    /// Single-row append throughput at `Sync` (fsync before ack).
    pub sync_rows_per_sec: f64,
    /// Concurrent committers in the group-commit measurement.
    pub writers: usize,
    /// `Sync` commit latency median under concurrency (µs).
    pub group_commit_p50_us: f64,
    /// `Sync` commit latency 99th percentile under concurrency (µs).
    pub group_commit_p99_us: f64,
    /// Commits per fsync observed in the concurrent phase (1.0 means no
    /// coalescing; requires `obs`, 0.0 otherwise).
    pub commits_per_fsync: f64,
    /// Rows in the recovery corpus.
    pub rows: usize,
    /// Cold-open time replaying the whole corpus from the WAL (ms).
    pub replay_open_ms: f64,
    /// Cold-open time restoring the same corpus from a checkpoint (ms).
    pub checkpoint_open_ms: f64,
    /// replay / checkpoint open time (>1 ⇒ checkpoints pay off).
    pub checkpoint_speedup: f64,
    /// Git commit the numbers were produced from.
    pub git_commit: String,
    /// ISO-8601 UTC timestamp of the run.
    pub timestamp: String,
}

impl crate::json::ToJson for RecoveryReport {
    fn to_json(&self) -> crate::json::Json {
        use crate::json::Json;
        Json::obj([
            ("none_rows_per_sec", Json::Num(self.none_rows_per_sec)),
            ("async_rows_per_sec", Json::Num(self.async_rows_per_sec)),
            ("sync_rows_per_sec", Json::Num(self.sync_rows_per_sec)),
            ("writers", Json::Int(self.writers as i64)),
            ("group_commit_p50_us", Json::Num(self.group_commit_p50_us)),
            ("group_commit_p99_us", Json::Num(self.group_commit_p99_us)),
            ("commits_per_fsync", Json::Num(self.commits_per_fsync)),
            ("rows", Json::Int(self.rows as i64)),
            ("replay_open_ms", Json::Num(self.replay_open_ms)),
            ("checkpoint_open_ms", Json::Num(self.checkpoint_open_ms)),
            ("checkpoint_speedup", Json::Num(self.checkpoint_speedup)),
            ("git_commit", Json::Str(self.git_commit.clone())),
            ("timestamp", Json::Str(self.timestamp.clone())),
        ])
    }
}

fn schema() -> SchemaRef {
    std::sync::Arc::new(Schema::new(vec![
        Field::required("k", DataType::Int64),
        Field::new("v", DataType::Int64),
    ]))
}

fn engine_config(dir: &std::path::Path, level: DurabilityLevel) -> EngineConfig {
    EngineConfig {
        data_dir: Some(dir.to_path_buf()),
        durability: level,
        ..EngineConfig::default()
    }
}

fn create(sess: &DurableSession) -> Result<idf_core::api::IndexedDataFrame> {
    sess.create_table("t", schema(), 0, IndexConfig::default())
}

fn percentile_us(sorted_ns: &[u64], p: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let idx = ((p / 100.0) * (sorted_ns.len() - 1) as f64).round() as usize;
    sorted_ns[idx.min(sorted_ns.len() - 1)] as f64 / 1e3
}

/// Timed single-row appends against a fresh store at `level`.
fn append_throughput(level: DurabilityLevel, appends: usize) -> Result<f64> {
    let dir = TempDir::new("bench-wal-level");
    let sess = DurableSession::open(engine_config(dir.path(), level))?;
    let df = create(&sess)?;
    let start = Instant::now();
    for i in 0..appends as i64 {
        df.append_row(&[Value::Int64(i), Value::Int64(i)])?;
    }
    Ok(appends as f64 / start.elapsed().as_secs_f64())
}

/// `Sync` commit latencies under `writers` concurrent committers, plus
/// the commits-per-fsync coalescing factor.
fn group_commit(writers: usize, appends_per_writer: usize) -> Result<(Vec<u64>, f64)> {
    let dir = TempDir::new("bench-group");
    let sess = DurableSession::open(engine_config(dir.path(), DurabilityLevel::Sync))?;
    let df = create(&sess)?;
    let fsyncs0 = idf_obs::global().wal_fsyncs.get();
    let latencies: Mutex<Vec<u64>> = Mutex::new(Vec::new());
    std::thread::scope(|s| -> Result<()> {
        let handles: Vec<_> = (0..writers)
            .map(|w| {
                let df = df.clone();
                let latencies = &latencies;
                s.spawn(move || -> Result<()> {
                    let mut local = Vec::with_capacity(appends_per_writer);
                    for i in 0..appends_per_writer {
                        let v = (w * appends_per_writer + i) as i64;
                        let start = Instant::now();
                        df.append_row(&[Value::Int64(v), Value::Int64(v)])?;
                        local.push(start.elapsed().as_nanos() as u64);
                    }
                    latencies.lock().unwrap().extend(local);
                    Ok(())
                })
            })
            .collect();
        for h in handles {
            h.join().expect("group-commit writer panicked")?;
        }
        Ok(())
    })?;
    let commits = (writers * appends_per_writer) as f64;
    let fsyncs = idf_obs::global().wal_fsyncs.get() - fsyncs0;
    let commits_per_fsync = if idf_obs::enabled() && fsyncs > 0 {
        commits / fsyncs as f64
    } else {
        0.0
    };
    let mut ns = latencies.into_inner().unwrap();
    ns.sort_unstable();
    Ok((ns, commits_per_fsync))
}

/// Build the recovery corpus at `Async` (clean drop flushes the queue),
/// then time a cold open against the pure-WAL store and the checkpointed
/// store.
fn recovery_times(rows: usize, chunk_rows: usize) -> Result<(f64, f64)> {
    let dir = TempDir::new("bench-recovery");
    {
        let sess = DurableSession::open(engine_config(dir.path(), DurabilityLevel::Async))?;
        let df = create(&sess)?;
        let schema = schema();
        let mut v = 0i64;
        while (v as usize) < rows {
            let n = chunk_rows.min(rows - v as usize);
            let batch: Vec<Vec<Value>> = (v..v + n as i64)
                .map(|i| vec![Value::Int64(i % 100_000), Value::Int64(i)])
                .collect();
            df.table()
                .append_chunk(&Chunk::from_rows(&schema, &batch)?)?;
            v += n as i64;
        }
    }
    let start = Instant::now();
    let sess = DurableSession::open(engine_config(dir.path(), DurabilityLevel::Async))?;
    let replay_ms = start.elapsed().as_secs_f64() * 1e3;
    assert_eq!(sess.dataframe("t")?.row_count(), rows);
    sess.checkpoint(Some("t"))?;
    drop(sess);
    let start = Instant::now();
    let sess = DurableSession::open(engine_config(dir.path(), DurabilityLevel::Async))?;
    let checkpoint_ms = start.elapsed().as_secs_f64() * 1e3;
    assert_eq!(sess.dataframe("t")?.row_count(), rows);
    Ok((replay_ms, checkpoint_ms))
}

/// Run the full recovery benchmark.
pub fn run(cfg: &RecoveryConfig) -> Result<RecoveryReport> {
    let none = append_throughput(DurabilityLevel::None, cfg.appends_per_level)?;
    let asynch = append_throughput(DurabilityLevel::Async, cfg.appends_per_level)?;
    let sync = append_throughput(DurabilityLevel::Sync, cfg.appends_per_level)?;
    let (group_ns, commits_per_fsync) = group_commit(cfg.writers, cfg.appends_per_writer)?;
    let (replay_ms, checkpoint_ms) = recovery_times(cfg.rows, cfg.chunk_rows)?;
    Ok(RecoveryReport {
        none_rows_per_sec: none,
        async_rows_per_sec: asynch,
        sync_rows_per_sec: sync,
        writers: cfg.writers,
        group_commit_p50_us: percentile_us(&group_ns, 50.0),
        group_commit_p99_us: percentile_us(&group_ns, 99.0),
        commits_per_fsync,
        rows: cfg.rows,
        replay_open_ms: replay_ms,
        checkpoint_open_ms: checkpoint_ms,
        checkpoint_speedup: replay_ms / checkpoint_ms.max(f64::MIN_POSITIVE),
        git_commit: crate::meta::git_commit(),
        timestamp: crate::meta::iso_timestamp(),
    })
}

/// Human-readable rendering of a [`RecoveryReport`].
pub fn render(r: &RecoveryReport) -> String {
    format!(
        "BENCH-recovery (corpus {} rows, {} writers)\n\
         wal append rows/s     none {:>10.0} | async {:>10.0} | sync {:>10.0}\n\
         sync commit latency   p50 {:.1} us | p99 {:.1} us | {:.1} commits/fsync\n\
         cold open             replay {:.1} ms | checkpoint {:.1} ms | speedup {:.1}x",
        r.rows,
        r.writers,
        r.none_rows_per_sec,
        r.async_rows_per_sec,
        r.sync_rows_per_sec,
        r.group_commit_p50_us,
        r.group_commit_p99_us,
        r.commits_per_fsync,
        r.replay_open_ms,
        r.checkpoint_open_ms,
        r.checkpoint_speedup
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_run_produces_consistent_report() {
        let cfg = RecoveryConfig {
            rows: 2_000,
            chunk_rows: 500,
            appends_per_level: 50,
            writers: 4,
            appends_per_writer: 10,
        };
        let r = run(&cfg).unwrap();
        assert!(r.none_rows_per_sec > 0.0);
        assert!(r.async_rows_per_sec > 0.0);
        assert!(r.sync_rows_per_sec > 0.0);
        assert!(r.replay_open_ms > 0.0 && r.checkpoint_open_ms > 0.0);
        let json = crate::json::to_string_pretty(&r);
        for key in ["sync_rows_per_sec", "checkpoint_speedup", "rows"] {
            assert!(json.contains(key), "{key} missing from {json}");
        }
    }
}
