//! **Figure 3** — *"SNB SF300 Simple Read Queries on Indexed DataFrame vs.
//! Spark"* (log-scale in the paper): the seven short reads, each timed in
//! both modes over a set of parameter bindings.
//!
//! Expected shape (paper §3): the Indexed DataFrame speeds up all queries
//! *except* SQ5 and SQ6, which cannot make use of the index (they traverse
//! only unindexed forum access paths in our deployment — see
//! `idf_snb::load`).

use idf_engine::error::Result;
use idf_snb::{query, QueryParams};

use crate::workload::Workload;
use crate::{median_ms, Comparison};

/// Deterministic parameter bindings for a dataset.
pub fn params(w: &Workload, count: usize) -> Vec<QueryParams> {
    (0..count as u64)
        .map(|i| {
            QueryParams::nth(
                i,
                w.data.max_person_id,
                w.data.max_message_id,
                w.data.config.forums as i64,
            )
        })
        .collect()
}

/// Run SQ1–SQ7 in both modes; each measurement is the median over `runs`
/// executions of a whole parameter sweep.
pub fn run(w: &Workload, runs: usize, param_count: usize) -> Result<Vec<Comparison>> {
    let bindings = params(w, param_count);
    let mut out = Vec::with_capacity(7);
    for q in 1..=7 {
        // Pre-plan the dataframes once per binding and mode.
        let indexed: Vec<_> = bindings
            .iter()
            .map(|p| query(&w.indexed, q, p))
            .collect::<Result<_>>()?;
        let vanilla: Vec<_> = bindings
            .iter()
            .map(|p| query(&w.vanilla, q, p))
            .collect::<Result<_>>()?;
        let rows_indexed: usize = indexed.iter().map(|df| df.count()).sum::<Result<usize>>()?;
        let rows_vanilla: usize = vanilla.iter().map(|df| df.count()).sum::<Result<usize>>()?;
        assert_eq!(rows_indexed, rows_vanilla, "SQ{q} diverged");
        let indexed_ms = median_ms(runs, || {
            for df in &indexed {
                df.collect().expect("indexed SQ failed");
            }
        });
        let vanilla_ms = median_ms(runs, || {
            for df in &vanilla {
                df.collect().expect("vanilla SQ failed");
            }
        });
        out.push(Comparison {
            label: format!("SQ{q}"),
            indexed_ms,
            vanilla_ms,
            rows: rows_indexed,
        });
    }
    Ok(out)
}

/// The three LDBC-IC-style complex reads (CQ1–CQ3): the multi-hop
/// traversals the demo's dashboard also runs, exercising *chained* indexed
/// joins. Not part of the paper's Figure 3 — reported by
/// `harness complex` as supplementary evidence.
pub fn run_complex(w: &Workload, runs: usize, param_count: usize) -> Result<Vec<Comparison>> {
    use idf_snb::{cq1, cq2, cq3};
    type QueryFn =
        fn(&idf_engine::prelude::Session, &QueryParams) -> Result<idf_engine::dataframe::DataFrame>;
    let queries: [(&str, QueryFn); 3] = [("CQ1", cq1), ("CQ2", cq2), ("CQ3", cq3)];
    let bindings = params(w, param_count);
    let mut out = Vec::new();
    for (label, q) in queries {
        let indexed: Vec<_> = bindings
            .iter()
            .map(|p| q(&w.indexed, p))
            .collect::<Result<_>>()?;
        let vanilla: Vec<_> = bindings
            .iter()
            .map(|p| q(&w.vanilla, p))
            .collect::<Result<_>>()?;
        let rows_indexed: usize = indexed.iter().map(|df| df.count()).sum::<Result<usize>>()?;
        let rows_vanilla: usize = vanilla.iter().map(|df| df.count()).sum::<Result<usize>>()?;
        assert_eq!(rows_indexed, rows_vanilla, "{label} diverged");
        let indexed_ms = median_ms(runs, || {
            for df in &indexed {
                df.collect().expect("indexed CQ failed");
            }
        });
        let vanilla_ms = median_ms(runs, || {
            for df in &vanilla {
                df.collect().expect("vanilla CQ failed");
            }
        });
        out.push(Comparison {
            label: label.to_string(),
            indexed_ms,
            vanilla_ms,
            rows: rows_indexed,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complex_reads_run_and_agree() {
        let w = Workload::new(0.05).unwrap();
        let rows = run_complex(&w, 1, 2).unwrap();
        assert_eq!(rows.len(), 3);
    }

    #[test]
    fn all_short_reads_run_and_agree() {
        let w = Workload::new(0.05).unwrap();
        let rows = run(&w, 1, 2).unwrap();
        assert_eq!(rows.len(), 7);
        for (i, c) in rows.iter().enumerate() {
            assert_eq!(c.label, format!("SQ{}", i + 1));
            assert!(c.indexed_ms > 0.0);
        }
    }
}
