//! **BENCH-lookup** — the point-lookup hot path: single-key `getRows`
//! latency (p50/p99), batched multi-key probe throughput versus a loop of
//! single-key probes, and lookup latency while an append storm is running.
//!
//! This is the microbenchmark behind the paper's core latency pitch
//! (*"low-latency access to individual rows"*): the numbers land in
//! `BENCH_lookup.json` via `harness lookup`.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use idf_core::prelude::*;
use idf_engine::chunk::Chunk;
use idf_engine::error::Result;
use idf_engine::prelude::Session;
use idf_engine::schema::{Field, Schema};
use idf_engine::types::{DataType, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Workload shape for one lookup benchmark run.
#[derive(Debug, Clone)]
pub struct LookupConfig {
    /// Distinct keys in the table.
    pub n_keys: usize,
    /// Versions (chained appends) per key; total rows = keys × versions.
    pub versions: usize,
    /// Single-key probes for the latency histogram.
    pub single_probes: usize,
    /// Keys per batched probe.
    pub batch_size: usize,
    /// Batched probes (and loops) per throughput measurement.
    pub batches: usize,
    /// Single-key probes measured while the append storm runs.
    pub storm_probes: usize,
}

impl LookupConfig {
    /// The harness shape: `scale 2.0` ⇒ 250 k keys × 4 versions = 1 M rows.
    pub fn for_scale(scale: f64) -> LookupConfig {
        LookupConfig {
            n_keys: ((scale * 125_000.0) as usize).max(1_000),
            versions: 4,
            single_probes: 20_000,
            batch_size: 1_024,
            batches: 16,
            storm_probes: 10_000,
        }
    }
}

/// Delta of the process-global `idf-obs` storage counters across one
/// benchmark run (all zeros when the `obs` feature is compiled out, so
/// the JSON shape is stable either way).
#[derive(Debug, Clone)]
pub struct ObsSnapshot {
    /// Whether `idf-obs` was compiled in for this run.
    pub obs_enabled: bool,
    /// cTrie probe hits during the run.
    pub probe_hits: u64,
    /// cTrie probe misses during the run.
    pub probe_misses: u64,
    /// hits / (hits + misses); 0 when no probes were recorded.
    pub probe_hit_rate: f64,
    /// 99th-percentile backward-pointer chain-walk length (process
    /// lifetime — histograms cannot be delta'd).
    pub chain_walk_p99: u64,
    /// Rows committed through `publish_locked` during the run.
    pub append_rows: u64,
    /// Payload bytes appended during the run.
    pub append_bytes: u64,
}

/// Counters we diff around the workload: (probe_hits, probe_misses,
/// append_rows, append_bytes).
fn obs_counters() -> (u64, u64, u64, u64) {
    let m = idf_obs::global();
    (
        m.probe_hits.get(),
        m.probe_misses.get(),
        m.append_rows.get(),
        m.append_bytes.get(),
    )
}

impl ObsSnapshot {
    fn capture(base: (u64, u64, u64, u64)) -> ObsSnapshot {
        let (hits0, misses0, rows0, bytes0) = base;
        let (hits1, misses1, rows1, bytes1) = obs_counters();
        let hits = hits1.saturating_sub(hits0);
        let misses = misses1.saturating_sub(misses0);
        let probed = hits + misses;
        ObsSnapshot {
            obs_enabled: idf_obs::enabled(),
            probe_hits: hits,
            probe_misses: misses,
            probe_hit_rate: if probed == 0 {
                0.0
            } else {
                hits as f64 / probed as f64
            },
            chain_walk_p99: idf_obs::global().chain_walk.percentile(99.0),
            append_rows: rows1.saturating_sub(rows0),
            append_bytes: bytes1.saturating_sub(bytes0),
        }
    }
}

impl crate::json::ToJson for ObsSnapshot {
    fn to_json(&self) -> crate::json::Json {
        use crate::json::Json;
        Json::obj([
            ("obs_enabled", Json::Bool(self.obs_enabled)),
            ("probe_hits", Json::Int(self.probe_hits as i64)),
            ("probe_misses", Json::Int(self.probe_misses as i64)),
            ("probe_hit_rate", Json::Num(self.probe_hit_rate)),
            ("chain_walk_p99", Json::Int(self.chain_walk_p99 as i64)),
            ("append_rows", Json::Int(self.append_rows as i64)),
            ("append_bytes", Json::Int(self.append_bytes as i64)),
        ])
    }
}

/// Results of one lookup benchmark run (the `BENCH_lookup.json` payload).
#[derive(Debug, Clone)]
pub struct LookupReport {
    /// Total rows stored.
    pub rows: usize,
    /// Distinct keys.
    pub keys: usize,
    /// Versions per key.
    pub versions: usize,
    /// Quiescent single-key `getRows` median latency (µs).
    pub single_p50_us: f64,
    /// Quiescent single-key `getRows` 99th-percentile latency (µs).
    pub single_p99_us: f64,
    /// Keys per batched probe.
    pub batch_size: usize,
    /// `get_rows_batch` throughput (keys/s).
    pub batch_keys_per_sec: f64,
    /// Looped single-key `get_rows` throughput (keys/s).
    pub looped_keys_per_sec: f64,
    /// Single-key p50 while appends stream in (µs).
    pub storm_p50_us: f64,
    /// Single-key p99 while appends stream in (µs).
    pub storm_p99_us: f64,
    /// Rows the storm writer appended while probes ran.
    pub storm_appends: usize,
    /// `idf-obs` storage counters observed across the run.
    pub obs: ObsSnapshot,
    /// Git commit the numbers were produced from (`"unknown"` outside a
    /// checkout).
    pub git_commit: String,
    /// ISO-8601 UTC timestamp of the run.
    pub timestamp: String,
}

impl LookupReport {
    /// batched / looped throughput (>1 ⇒ batching wins).
    pub fn batch_speedup(&self) -> f64 {
        self.batch_keys_per_sec / self.looped_keys_per_sec.max(f64::MIN_POSITIVE)
    }
}

impl crate::json::ToJson for LookupReport {
    fn to_json(&self) -> crate::json::Json {
        use crate::json::Json;
        Json::obj([
            ("rows", Json::Int(self.rows as i64)),
            ("keys", Json::Int(self.keys as i64)),
            ("versions", Json::Int(self.versions as i64)),
            ("single_p50_us", Json::Num(self.single_p50_us)),
            ("single_p99_us", Json::Num(self.single_p99_us)),
            ("batch_size", Json::Int(self.batch_size as i64)),
            ("batch_keys_per_sec", Json::Num(self.batch_keys_per_sec)),
            ("looped_keys_per_sec", Json::Num(self.looped_keys_per_sec)),
            ("batch_speedup", Json::Num(self.batch_speedup())),
            ("storm_p50_us", Json::Num(self.storm_p50_us)),
            ("storm_p99_us", Json::Num(self.storm_p99_us)),
            ("storm_appends", Json::Int(self.storm_appends as i64)),
            ("obs", self.obs.to_json()),
            ("git_commit", Json::Str(self.git_commit.clone())),
            ("timestamp", Json::Str(self.timestamp.clone())),
        ])
    }
}

/// The benchmark table schema: `(k Int64, v Int64)` indexed on `k`.
pub fn build_table(n_keys: usize, versions: usize) -> Result<IndexedDataFrame> {
    let schema = Arc::new(Schema::new(vec![
        Field::new("k", DataType::Int64),
        Field::new("v", DataType::Int64),
    ]));
    let rows: Vec<Vec<Value>> = (0..versions as i64)
        .flat_map(|ver| {
            (0..n_keys as i64)
                .map(move |k| vec![Value::Int64(k), Value::Int64(ver * n_keys as i64 + k)])
        })
        .collect();
    let chunk = Chunk::from_rows(&schema, &rows)?;
    let table = Arc::new(IndexedTable::from_chunk(
        schema,
        0,
        IndexConfig::default(),
        &chunk,
    )?);
    Ok(IndexedDataFrame::from_table(Session::new(), table))
}

fn percentile_us(sorted_ns: &[u64], p: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let idx = ((p / 100.0) * (sorted_ns.len() - 1) as f64).round() as usize;
    sorted_ns[idx.min(sorted_ns.len() - 1)] as f64 / 1e3
}

/// Per-probe single-key latencies (ns, sorted ascending).
fn probe_latencies(
    idf: &IndexedDataFrame,
    n_keys: usize,
    probes: usize,
    rng: &mut StdRng,
) -> Result<Vec<u64>> {
    let mut ns = Vec::with_capacity(probes);
    for _ in 0..probes {
        let key = Value::Int64(rng.gen_range(0..n_keys as i64));
        let start = Instant::now();
        let chunk = idf.get_rows_chunk(key)?;
        ns.push(start.elapsed().as_nanos() as u64);
        assert!(!chunk.is_empty(), "probe missed a resident key");
    }
    ns.sort_unstable();
    Ok(ns)
}

/// Run the full lookup benchmark.
pub fn run(cfg: &LookupConfig) -> Result<LookupReport> {
    let obs_base = obs_counters();
    let idf = build_table(cfg.n_keys, cfg.versions)?;
    let mut rng = StdRng::seed_from_u64(0x1df_b00c);

    // Warm up, then the quiescent latency histogram.
    let _ = probe_latencies(&idf, cfg.n_keys, cfg.single_probes / 10 + 1, &mut rng)?;
    let single = probe_latencies(&idf, cfg.n_keys, cfg.single_probes, &mut rng)?;

    // Batched vs looped throughput over identical key sets.
    let key_sets: Vec<Vec<Value>> = (0..cfg.batches)
        .map(|_| {
            (0..cfg.batch_size)
                .map(|_| Value::Int64(rng.gen_range(0..cfg.n_keys as i64)))
                .collect()
        })
        .collect();
    let total_keys = (cfg.batches * cfg.batch_size) as f64;
    let start = Instant::now();
    for keys in &key_sets {
        let chunk = idf.get_rows_chunk_batch(keys)?;
        assert!(!chunk.is_empty());
    }
    let batch_keys_per_sec = total_keys / start.elapsed().as_secs_f64();
    let start = Instant::now();
    for keys in &key_sets {
        for key in keys {
            let chunk = idf.get_rows_chunk(key.clone())?;
            assert!(!chunk.is_empty());
        }
    }
    let looped_keys_per_sec = total_keys / start.elapsed().as_secs_f64();

    // Lookup latency during an append storm.
    let stop = AtomicBool::new(false);
    let appended = AtomicUsize::new(0);
    let mut storm = Vec::new();
    std::thread::scope(|s| -> Result<()> {
        let writer = s.spawn(|| -> Result<()> {
            let mut w = 0i64;
            while !stop.load(Ordering::Relaxed) {
                let key = (w as usize % cfg.n_keys) as i64;
                idf.append_row(&[Value::Int64(key), Value::Int64(w)])?;
                appended.fetch_add(1, Ordering::Relaxed);
                w += 1;
            }
            Ok(())
        });
        // Measure only while the storm is actually running: on a loaded
        // machine a short probe run can finish before the writer thread
        // is first scheduled. Bounded so a writer that errors out on its
        // first append cannot spin this forever.
        let warmup = std::time::Instant::now();
        while appended.load(Ordering::Relaxed) == 0
            && warmup.elapsed() < std::time::Duration::from_secs(2)
        {
            std::thread::yield_now();
        }
        let probed = probe_latencies(&idf, cfg.n_keys, cfg.storm_probes, &mut rng);
        stop.store(true, Ordering::Relaxed);
        writer.join().expect("storm writer panicked")?;
        storm = probed?;
        Ok(())
    })?;

    Ok(LookupReport {
        rows: cfg.n_keys * cfg.versions,
        keys: cfg.n_keys,
        versions: cfg.versions,
        single_p50_us: percentile_us(&single, 50.0),
        single_p99_us: percentile_us(&single, 99.0),
        batch_size: cfg.batch_size,
        batch_keys_per_sec,
        looped_keys_per_sec,
        storm_p50_us: percentile_us(&storm, 50.0),
        storm_p99_us: percentile_us(&storm, 99.0),
        storm_appends: appended.load(Ordering::Relaxed),
        obs: ObsSnapshot::capture(obs_base),
        git_commit: crate::meta::git_commit(),
        timestamp: crate::meta::iso_timestamp(),
    })
}

/// Render as the harness table.
pub fn render(r: &LookupReport) -> String {
    let headers = vec!["metric".to_string(), "value".to_string()];
    let body = vec![
        vec![
            "rows (keys × versions)".into(),
            format!("{} ({} × {})", r.rows, r.keys, r.versions),
        ],
        vec![
            "single-key p50 [µs]".into(),
            format!("{:.2}", r.single_p50_us),
        ],
        vec![
            "single-key p99 [µs]".into(),
            format!("{:.2}", r.single_p99_us),
        ],
        vec![
            format!("batched ({} keys) [keys/s]", r.batch_size),
            format!("{:.0}", r.batch_keys_per_sec),
        ],
        vec![
            "looped single-key [keys/s]".into(),
            format!("{:.0}", r.looped_keys_per_sec),
        ],
        vec!["batch speedup".into(), format!("{:.2}x", r.batch_speedup())],
        vec![
            "under-append p50 [µs]".into(),
            format!("{:.2}", r.storm_p50_us),
        ],
        vec![
            "under-append p99 [µs]".into(),
            format!("{:.2}", r.storm_p99_us),
        ],
        vec![
            "rows appended during storm".into(),
            r.storm_appends.to_string(),
        ],
        vec![
            "obs probe hit rate".into(),
            if r.obs.obs_enabled {
                format!(
                    "{:.4} ({} hits / {} misses)",
                    r.obs.probe_hit_rate, r.obs.probe_hits, r.obs.probe_misses
                )
            } else {
                "n/a (obs compiled out)".into()
            },
        ],
        vec![
            "obs chain-walk p99".into(),
            if r.obs.obs_enabled {
                format!("<= {}", r.obs.chain_walk_p99)
            } else {
                "n/a".into()
            },
        ],
        vec![
            "obs append bytes".into(),
            if r.obs.obs_enabled {
                r.obs.append_bytes.to_string()
            } else {
                "n/a".into()
            },
        ],
        vec![
            "provenance".into(),
            format!(
                "{} @ {}",
                &r.git_commit[..r.git_commit.len().min(12)],
                r.timestamp
            ),
        ],
    ];
    format!(
        "== BENCH-lookup: point-lookup hot path ==\n{}",
        idf_engine::pretty::format_table(&headers, &body)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_report_populated_and_consistent() {
        let cfg = LookupConfig {
            n_keys: 2_000,
            versions: 2,
            single_probes: 200,
            batch_size: 64,
            batches: 2,
            storm_probes: 200,
        };
        let r = run(&cfg).unwrap();
        assert_eq!(r.rows, 4_000);
        assert!(r.single_p50_us > 0.0 && r.single_p99_us >= r.single_p50_us);
        assert!(r.batch_keys_per_sec > 0.0 && r.looped_keys_per_sec > 0.0);
        assert!(r.storm_p99_us >= r.storm_p50_us);
        assert!(r.storm_appends > 0, "storm writer never ran");
        if idf_obs::enabled() {
            // Weak bounds only: lib tests share the process-global
            // registry, so other tests' probes can land in the delta.
            assert!(r.obs.obs_enabled);
            assert!(r.obs.probe_hits > 0, "no probe hits recorded");
            assert!(r.obs.append_rows >= r.rows as u64, "build appends missing");
            assert!(r.obs.append_bytes > 0);
            assert!(r.obs.probe_hit_rate > 0.0 && r.obs.probe_hit_rate <= 1.0);
        } else {
            assert!(!r.obs.obs_enabled);
            assert_eq!(r.obs.probe_hits + r.obs.probe_misses, 0);
        }
        assert!(!r.git_commit.is_empty());
        assert!(
            r.timestamp.ends_with('Z'),
            "not UTC ISO-8601: {}",
            r.timestamp
        );
        let json = crate::json::to_string_pretty(&r);
        assert!(json.contains("\"batch_speedup\""));
        assert!(json.contains("\"probe_hit_rate\""));
        assert!(json.contains("\"git_commit\""));
        assert!(json.contains("\"timestamp\""));
    }

    #[test]
    fn batched_probe_agrees_with_singles() {
        let idf = build_table(500, 3).unwrap();
        let keys: Vec<Value> = [7i64, 13, 7, 499].into_iter().map(Value::Int64).collect();
        let batched = idf.get_rows_chunk_batch(&keys).unwrap();
        // 3 distinct keys × 3 versions.
        assert_eq!(batched.len(), 9);
        let singles: usize = [7i64, 13, 499]
            .into_iter()
            .map(|k| idf.get_rows_chunk(k).unwrap().len())
            .sum();
        assert_eq!(batched.len(), singles);
    }
}
