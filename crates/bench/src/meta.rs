//! Provenance stamps for benchmark reports: the git commit the numbers
//! were produced from and an ISO-8601 UTC timestamp, so `BENCH_*.json`
//! files are diffable across PRs without guessing their origin.

use std::process::Command;
use std::time::{SystemTime, UNIX_EPOCH};

/// The current git commit hash, or `"unknown"` when git (or the repo)
/// is unavailable. Never fails — benches must run outside a checkout.
pub fn git_commit() -> String {
    Command::new("git")
        .args(["rev-parse", "HEAD"])
        .output()
        .ok()
        .filter(|out| out.status.success())
        .and_then(|out| String::from_utf8(out.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Now, as `YYYY-MM-DDTHH:MM:SSZ` (UTC). Hand-rolled civil-date
/// conversion — the harness has no chrono dependency.
pub fn iso_timestamp() -> String {
    let secs = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    iso_from_unix(secs as i64)
}

/// Format a unix timestamp (seconds) as ISO-8601 UTC.
pub fn iso_from_unix(secs: i64) -> String {
    let days = secs.div_euclid(86_400);
    let tod = secs.rem_euclid(86_400);
    let (year, month, day) = civil_from_days(days);
    format!(
        "{year:04}-{month:02}-{day:02}T{:02}:{:02}:{:02}Z",
        tod / 3600,
        (tod / 60) % 60,
        tod % 60,
    )
}

/// Days-since-epoch → (year, month, day), Howard Hinnant's
/// `civil_from_days` algorithm (public domain).
fn civil_from_days(z: i64) -> (i64, u32, u32) {
    let z = z + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097); // [0, 146096]
    let yoe = (doe - doe / 1_460 + doe / 36_524 - doe / 146_096) / 365; // [0, 399]
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32; // [1, 12]
    (if m <= 2 { y + 1 } else { y }, m, d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_dates_round_trip() {
        assert_eq!(iso_from_unix(0), "1970-01-01T00:00:00Z");
        assert_eq!(iso_from_unix(951_782_400), "2000-02-29T00:00:00Z");
        assert_eq!(iso_from_unix(1_735_689_599), "2024-12-31T23:59:59Z");
        assert_eq!(iso_from_unix(1_785_888_000), "2026-08-05T00:00:00Z");
    }

    #[test]
    fn timestamp_shape() {
        let t = iso_timestamp();
        assert_eq!(t.len(), 20, "unexpected shape: {t}");
        assert!(t.ends_with('Z') && t.contains('T'));
    }

    #[test]
    fn git_commit_never_panics() {
        let c = git_commit();
        assert!(!c.is_empty());
    }
}
