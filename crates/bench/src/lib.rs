//! # idf-bench — benchmark harness for the Indexed DataFrame reproduction
//!
//! One module per experiment in DESIGN.md's experiment index:
//!
//! * [`fig2`] — Figure 2: SQL operators, Indexed DataFrame vs vanilla.
//! * [`fig3`] — Figure 3: SNB simple reads SQ1–SQ7, both modes.
//! * [`speedup`] — the §5 "up to 8× speed-ups" claim, swept over scale.
//! * [`lookup`] — BENCH-lookup: the point-lookup hot path (single-key
//!   p50/p99, batched probe throughput, lookup-under-append).
//! * [`memory`] — ABL-MEM: memory overhead of the indexed representation.
//! * [`recovery`] — BENCH-recovery: WAL append throughput per durability
//!   level, group-commit latency, checkpoint-restore vs full-WAL-replay.
//! * [`serve_bench`] — BENCH-serve: closed-loop wire-protocol load
//!   (p50/p99/p999 latency and saturation throughput vs client count).
//! * [`compact_bench`] — BENCH-compact: DML churn + background
//!   compaction (memory steady state, chain-walk p99 before/after a
//!   rewrite, lookups under the compactor, SIGKILL-during-compaction
//!   recovery vs an oracle).
//! * [`views_bench`] — BENCH-views: materialized views maintained live
//!   from the SNB update stream (view reads vs cold re-execution,
//!   maintenance lag, refresh cost).
//! * [`workload`] — shared setup: datasets, dual-mode sessions, timing.
//!
//! The `harness` binary prints the same rows/series the paper plots;
//! `cargo bench` runs the Criterion counterparts.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod compact_bench;
pub mod fig2;
pub mod fig3;
pub mod json;
pub mod lookup;
pub mod memory;
pub mod meta;
pub mod recovery;
pub mod serve_bench;
pub mod speedup;
pub mod views_bench;
pub mod workload;

use std::time::Instant;

/// Milliseconds elapsed by `f`, and its output.
pub fn time_ms<T>(f: impl FnOnce() -> T) -> (f64, T) {
    let start = Instant::now();
    let out = f();
    (start.elapsed().as_secs_f64() * 1e3, out)
}

/// Median of `runs` timings of `f` (after one warm-up), in milliseconds.
pub fn median_ms<T>(runs: usize, mut f: impl FnMut() -> T) -> f64 {
    let _warmup = f();
    let mut times: Vec<f64> = (0..runs.max(1)).map(|_| time_ms(&mut f).0).collect();
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

/// A labelled (indexed vs vanilla) measurement.
#[derive(Debug, Clone)]
pub struct Comparison {
    /// Workload label (operator or query name).
    pub label: String,
    /// Indexed DataFrame median latency (ms).
    pub indexed_ms: f64,
    /// Vanilla median latency (ms).
    pub vanilla_ms: f64,
    /// Rows produced (sanity check that both modes agree).
    pub rows: usize,
}

impl Comparison {
    /// vanilla / indexed (>1 ⇒ the index wins).
    pub fn speedup(&self) -> f64 {
        self.vanilla_ms / self.indexed_ms
    }
}

impl json::ToJson for Comparison {
    fn to_json(&self) -> json::Json {
        json::Json::obj([
            ("label", json::Json::Str(self.label.clone())),
            ("indexed_ms", json::Json::Num(self.indexed_ms)),
            ("vanilla_ms", json::Json::Num(self.vanilla_ms)),
            ("rows", json::Json::Int(self.rows as i64)),
        ])
    }
}

/// Render comparisons as the harness's standard table.
pub fn render_comparisons(title: &str, rows: &[Comparison]) -> String {
    let headers = vec![
        "workload".to_string(),
        "IndexedDF [ms]".to_string(),
        "Vanilla [ms]".to_string(),
        "speedup".to_string(),
        "rows".to_string(),
    ];
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|c| {
            vec![
                c.label.clone(),
                format!("{:.3}", c.indexed_ms),
                format!("{:.3}", c.vanilla_ms),
                format!("{:.2}x", c.speedup()),
                c.rows.to_string(),
            ]
        })
        .collect();
    format!(
        "== {title} ==\n{}",
        idf_engine::pretty::format_table(&headers, &body)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_is_robust() {
        let mut calls = 0;
        let m = median_ms(5, || {
            calls += 1;
        });
        assert!(m >= 0.0);
        assert_eq!(calls, 6, "5 runs + warmup");
    }

    #[test]
    fn comparison_speedup() {
        let c = Comparison {
            label: "x".into(),
            indexed_ms: 2.0,
            vanilla_ms: 10.0,
            rows: 1,
        };
        assert!((c.speedup() - 5.0).abs() < 1e-9);
        let table = render_comparisons("T", &[c]);
        assert!(table.contains("5.00x"));
    }
}
