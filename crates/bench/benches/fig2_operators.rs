//! Criterion counterpart of **Figure 2**: each SQL operator over
//! `person_knows_person` (join pairs it with `person`), in both modes.
//!
//! Run: `cargo bench -p idf-bench --bench fig2_operators`

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use idf_bench::fig2::operator_queries;
use idf_bench::workload::Workload;

fn bench_fig2(c: &mut Criterion) {
    let w = Workload::new(1.0).expect("workload");
    let key = w.data.max_person_id / 2;
    let cutoff = idf_snb::gen::EPOCH_MS + 180 * idf_snb::gen::DAY_MS;
    let mut group = c.benchmark_group("fig2");
    group.sample_size(10);
    for (label, sql) in operator_queries(key, cutoff) {
        let indexed = w.indexed.sql(&sql).expect("plan indexed");
        let vanilla = w.vanilla.sql(&sql).expect("plan vanilla");
        group.bench_with_input(BenchmarkId::new(label, "indexed"), &indexed, |b, df| {
            b.iter(|| df.collect().expect("indexed run"))
        });
        group.bench_with_input(BenchmarkId::new(label, "vanilla"), &vanilla, |b, df| {
            b.iter(|| df.collect().expect("vanilla run"))
        });
    }
    group.finish();
}

/// Short measurement windows so `cargo bench --workspace` stays tractable
/// on small machines; raise for more precision.
fn quick() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_fig2
}
criterion_main!(benches);
