//! Criterion counterpart of **Figure 3**: the SNB simple reads SQ1–SQ7 in
//! both modes (the paper plots these on a log axis; Criterion reports the
//! per-query latencies that produce the same series).
//!
//! Run: `cargo bench -p idf-bench --bench fig3_snb`

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use idf_bench::fig3::params;
use idf_bench::workload::Workload;
use idf_snb::query;

fn bench_fig3(c: &mut Criterion) {
    let w = Workload::new(1.0).expect("workload");
    let bindings = params(&w, 4);
    let mut group = c.benchmark_group("fig3");
    group.sample_size(10);
    for q in 1..=7usize {
        let indexed: Vec<_> = bindings
            .iter()
            .map(|p| query(&w.indexed, q, p).expect("plan"))
            .collect();
        let vanilla: Vec<_> = bindings
            .iter()
            .map(|p| query(&w.vanilla, q, p).expect("plan"))
            .collect();
        group.bench_with_input(
            BenchmarkId::new(format!("SQ{q}"), "indexed"),
            &indexed,
            |b, dfs| {
                b.iter(|| {
                    for df in dfs {
                        df.collect().expect("indexed run");
                    }
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new(format!("SQ{q}"), "vanilla"),
            &vanilla,
            |b, dfs| {
                b.iter(|| {
                    for df in dfs {
                        df.collect().expect("vanilla run");
                    }
                })
            },
        );
    }
    group.finish();
}

/// Short measurement windows so `cargo bench --workspace` stays tractable
/// on small machines; raise for more precision.
fn quick() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_fig3
}
criterion_main!(benches);
