//! **ABL-JOIN** — the paper's indexed join shuffles the probe side "or
//! falls back to a broadcast-join instead of a shuffle" when the probe is
//! small. This ablation sweeps the probe size under both strategies
//! (forced via the broadcast threshold) to expose the crossover.
//!
//! Run: `cargo bench -p idf-bench --bench abl_join_strategy`

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use idf_core::prelude::*;
use idf_engine::chunk::Chunk;
use idf_engine::config::EngineConfig;
use idf_engine::prelude::*;
use idf_engine::schema::SchemaRef;

fn build_schema() -> SchemaRef {
    Arc::new(Schema::new(vec![
        Field::new("id", DataType::Int64),
        Field::new("payload", DataType::Utf8),
    ]))
}

fn probe_schema() -> SchemaRef {
    Arc::new(Schema::new(vec![
        Field::new("fk", DataType::Int64),
        Field::new("w", DataType::Int64),
    ]))
}

/// A session whose broadcast threshold forces one strategy.
fn session_with_threshold(threshold: usize) -> Session {
    Session::with_config(EngineConfig {
        broadcast_threshold_rows: threshold,
        ..Default::default()
    })
}

fn setup(session: &Session, build_rows: i64, probe_rows: i64) -> (IndexedDataFrame, DataFrame) {
    let build_chunk = Chunk::from_rows(
        &build_schema(),
        &(0..build_rows)
            .map(|i| vec![Value::Int64(i), Value::Utf8(format!("row{i}"))])
            .collect::<Vec<_>>(),
    )
    .expect("build chunk");
    let table = Arc::new(
        IndexedTable::from_chunk(build_schema(), 0, IndexConfig::default(), &build_chunk)
            .expect("indexed table"),
    );
    let indexed = IndexedDataFrame::from_table(session.clone(), table);
    let probe_chunk = Chunk::from_rows(
        &probe_schema(),
        &(0..probe_rows)
            .map(|i| vec![Value::Int64(i % build_rows), Value::Int64(i)])
            .collect::<Vec<_>>(),
    )
    .expect("probe chunk");
    let probe = session.dataframe_from_chunk(probe_schema(), probe_chunk);
    (indexed, probe)
}

fn bench_join_strategy(c: &mut Criterion) {
    const BUILD_ROWS: i64 = 100_000;
    let mut group = c.benchmark_group("abl_join_strategy");
    group.sample_size(10);
    for &probe_rows in &[100i64, 1_000, 10_000, 100_000] {
        for (strategy, threshold) in [("broadcast", usize::MAX), ("shuffle", 0)] {
            let session = session_with_threshold(threshold);
            let (indexed, probe) = setup(&session, BUILD_ROWS, probe_rows);
            let joined = indexed.join(&probe, "id", "fk").expect("plan join");
            group.bench_with_input(BenchmarkId::new(strategy, probe_rows), &joined, |b, df| {
                b.iter(|| df.count().expect("join run"))
            });
        }
    }
    group.finish();
}

/// Short measurement windows so `cargo bench --workspace` stays tractable
/// on small machines; raise for more precision.
fn quick() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_join_strategy
}
criterion_main!(benches);
