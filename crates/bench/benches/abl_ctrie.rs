//! **ABL-CTRIE** — why the cTrie? The paper builds on "a built-in
//! concurrent cTrie index that allows for sub-linear lookup". This
//! ablation compares the lock-free cTrie against the persistent-HAMT
//! reference and a mutex-guarded `HashMap` on the index's actual
//! operations: insert, lookup, snapshot-then-read, and concurrent
//! reader/writer mixes.
//!
//! Run: `cargo bench -p idf-bench --bench abl_ctrie`

use std::collections::HashMap;
use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use idf_ctrie::{CTrie, Hamt};
use parking_lot::Mutex;

const N: u64 = 100_000;

fn bench_insert(c: &mut Criterion) {
    let mut group = c.benchmark_group("abl_ctrie_insert");
    group.sample_size(10);
    group.bench_function("ctrie", |b| {
        b.iter(|| {
            let t: CTrie<u64, u64> = CTrie::new();
            for i in 0..N {
                t.insert(i, i);
            }
            t
        })
    });
    group.bench_function("hamt", |b| {
        b.iter(|| {
            let t: Hamt<u64, u64> = Hamt::new();
            for i in 0..N {
                t.insert(i, i);
            }
            t
        })
    });
    group.bench_function("mutex_hashmap", |b| {
        b.iter(|| {
            let t: Mutex<HashMap<u64, u64>> = Mutex::new(HashMap::new());
            for i in 0..N {
                t.lock().insert(i, i);
            }
            t
        })
    });
    group.finish();
}

fn bench_lookup(c: &mut Criterion) {
    let ctrie: CTrie<u64, u64> = CTrie::new();
    let hamt: Hamt<u64, u64> = Hamt::new();
    let map: Mutex<HashMap<u64, u64>> = Mutex::new(HashMap::new());
    for i in 0..N {
        ctrie.insert(i, i);
        hamt.insert(i, i);
        map.lock().insert(i, i);
    }
    let mut group = c.benchmark_group("abl_ctrie_lookup");
    group.sample_size(10);
    let mut k = 0u64;
    group.bench_function("ctrie", |b| {
        b.iter(|| {
            k = (k + 7919) % N;
            ctrie.lookup(&k)
        })
    });
    group.bench_function("hamt", |b| {
        b.iter(|| {
            k = (k + 7919) % N;
            hamt.lookup(&k)
        })
    });
    group.bench_function("mutex_hashmap", |b| {
        b.iter(|| {
            k = (k + 7919) % N;
            map.lock().get(&k).copied()
        })
    });
    group.finish();
}

fn bench_snapshot(c: &mut Criterion) {
    // Snapshot cost while the structure keeps growing: the cTrie/HAMT are
    // O(1); the mutex HashMap must deep-clone.
    let mut group = c.benchmark_group("abl_ctrie_snapshot");
    group.sample_size(10);
    let ctrie: CTrie<u64, u64> = CTrie::new();
    let hamt: Hamt<u64, u64> = Hamt::new();
    let map: Mutex<HashMap<u64, u64>> = Mutex::new(HashMap::new());
    for i in 0..N {
        ctrie.insert(i, i);
        hamt.insert(i, i);
        map.lock().insert(i, i);
    }
    group.bench_function("ctrie_readonly_snapshot", |b| {
        b.iter(|| ctrie.read_only_snapshot())
    });
    group.bench_function("hamt_snapshot", |b| b.iter(|| hamt.snapshot()));
    group.bench_function("hashmap_clone", |b| b.iter(|| map.lock().clone()));
    group.finish();
}

fn bench_concurrent(c: &mut Criterion) {
    let mut group = c.benchmark_group("abl_ctrie_concurrent");
    group.sample_size(10);
    for readers in [1usize, 4] {
        group.bench_with_input(
            BenchmarkId::new("ctrie_read_during_writes", readers),
            &readers,
            |b, &readers| {
                b.iter(|| {
                    let t = Arc::new(CTrie::<u64, u64>::new());
                    for i in 0..10_000 {
                        t.insert(i, i);
                    }
                    std::thread::scope(|s| {
                        let writer = {
                            let t = Arc::clone(&t);
                            s.spawn(move || {
                                for i in 10_000..20_000 {
                                    t.insert(i, i);
                                }
                            })
                        };
                        for _ in 0..readers {
                            let t = Arc::clone(&t);
                            s.spawn(move || {
                                let mut hits = 0u64;
                                for i in 0..10_000 {
                                    if t.lookup(&(i % 10_000)).is_some() {
                                        hits += 1;
                                    }
                                }
                                hits
                            });
                        }
                        writer.join().expect("writer");
                    });
                })
            },
        );
    }
    group.finish();
}

/// Short measurement windows so `cargo bench --workspace` stays tractable
/// on small machines; raise for more precision.
fn quick() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_insert, bench_lookup, bench_snapshot, bench_concurrent
}
criterion_main!(benches);
