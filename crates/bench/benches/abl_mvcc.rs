//! **ABL-MVCC** — the paper's multi-version concurrency: interactive point
//! lookups must stay fast *while the update stream mutates the data*
//! ("low-latency joins and point lookups … on data that is moving all the
//! time"). This ablation measures lookup latency on a quiescent table vs
//! the same table under a continuous single-writer append stream.
//!
//! Run: `cargo bench -p idf-bench --bench abl_mvcc`

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use idf_core::prelude::*;
use idf_engine::chunk::Chunk;
use idf_engine::schema::{Field, Schema};
use idf_engine::types::{DataType, Value};

fn table(rows: i64) -> Arc<IndexedTable> {
    let schema = Arc::new(Schema::new(vec![
        Field::new("k", DataType::Int64),
        Field::new("v", DataType::Utf8),
    ]));
    let chunk = Chunk::from_rows(
        &schema,
        &(0..rows)
            .map(|i| vec![Value::Int64(i % 10_000), Value::Utf8(format!("v{i}"))])
            .collect::<Vec<_>>(),
    )
    .expect("chunk");
    Arc::new(IndexedTable::from_chunk(schema, 0, IndexConfig::default(), &chunk).expect("table"))
}

fn bench_mvcc(c: &mut Criterion) {
    let mut group = c.benchmark_group("abl_mvcc");
    group.sample_size(20);

    // Quiescent baseline.
    {
        let t = table(100_000);
        let mut k = 0i64;
        group.bench_function("lookup_quiescent", |b| {
            b.iter(|| {
                k = (k + 7919) % 10_000;
                t.lookup_chunk(&Value::Int64(k), None).expect("lookup")
            })
        });
    }

    // Under a continuous append stream.
    {
        let t = table(100_000);
        let stop = Arc::new(AtomicBool::new(false));
        let writer = {
            let t = Arc::clone(&t);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut i = 0i64;
                while !stop.load(Ordering::Relaxed) {
                    t.append_row(&[Value::Int64(i % 10_000), Value::Utf8(format!("live{i}"))])
                        .expect("append");
                    i += 1;
                }
                i
            })
        };
        // Wait for the stream to actually start before measuring — in
        // `--test` smoke mode the single iteration can finish before the
        // writer thread gets scheduled at all.
        while t.row_count() == 100_000 {
            std::thread::yield_now();
        }
        let mut k = 0i64;
        group.bench_function("lookup_under_appends", |b| {
            b.iter(|| {
                k = (k + 7919) % 10_000;
                t.lookup_chunk(&Value::Int64(k), None).expect("lookup")
            })
        });
        stop.store(true, Ordering::Relaxed);
        let appended = writer.join().expect("writer");
        assert!(appended > 0, "writer must have made progress");
    }

    // Snapshot acquisition cost (the per-query MVCC overhead).
    {
        let t = table(100_000);
        group.bench_function("snapshot_acquisition", |b| b.iter(|| t.snapshot()));
    }

    group.finish();
}

/// Short measurement windows so `cargo bench --workspace` stays tractable
/// on small machines; raise for more precision.
fn quick() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_mvcc
}
criterion_main!(benches);
