//! **ABL-BATCH** — the paper notes "both the batch and row sizes are
//! configurable parameters" with a 4 MB default batch. This ablation
//! sweeps the batch size and measures index build (append) and point
//! lookup, showing the default is on the flat part of both curves.
//!
//! Run: `cargo bench -p idf-bench --bench abl_batch_size`

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use idf_core::prelude::*;
use idf_engine::chunk::Chunk;
use idf_engine::schema::{Field, Schema};
use idf_engine::types::{DataType, Value};

fn dataset(rows: i64) -> (idf_engine::schema::SchemaRef, Chunk) {
    let schema = Arc::new(Schema::new(vec![
        Field::new("k", DataType::Int64),
        Field::new("v", DataType::Utf8),
    ]));
    let rows: Vec<Vec<Value>> = (0..rows)
        .map(|i| vec![Value::Int64(i % 5_000), Value::Utf8(format!("payload-{i}"))])
        .collect();
    let chunk = Chunk::from_rows(&schema, &rows).expect("chunk");
    (schema, chunk)
}

fn bench_batch_size(c: &mut Criterion) {
    let (schema, chunk) = dataset(50_000);
    let mut group = c.benchmark_group("abl_batch_size");
    group.sample_size(10);
    for &batch_size in &[64 << 10, 256 << 10, 1 << 20, 4 << 20] {
        let cfg = IndexConfig {
            batch_size,
            num_partitions: 4,
            ..Default::default()
        };
        group.bench_with_input(
            BenchmarkId::new("build", format!("{}KiB", batch_size >> 10)),
            &cfg,
            |b, cfg| {
                b.iter(|| {
                    IndexedTable::from_chunk(Arc::clone(&schema), 0, cfg.clone(), &chunk)
                        .expect("build")
                })
            },
        );
        let table =
            IndexedTable::from_chunk(Arc::clone(&schema), 0, cfg.clone(), &chunk).expect("build");
        group.bench_with_input(
            BenchmarkId::new("lookup", format!("{}KiB", batch_size >> 10)),
            &table,
            |b, t| {
                let mut k = 0i64;
                b.iter(|| {
                    k = (k + 997) % 5_000;
                    t.lookup_chunk(&Value::Int64(k), None).expect("lookup")
                })
            },
        );
    }
    group.finish();
}

/// Short measurement windows so `cargo bench --workspace` stays tractable
/// on small machines; raise for more precision.
fn quick() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_batch_size
}
criterion_main!(benches);
