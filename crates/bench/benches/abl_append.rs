//! **ABL-APPEND** — the paper's `appendRows` supports both "fine-grained
//! … small amounts of rows" and "batch multiple updates in a larger
//! Dataframe". This ablation measures append cost per row across update
//! batch sizes (1 row … 10 000 rows per appendRows call).
//!
//! Run: `cargo bench -p idf-bench --bench abl_append`

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use idf_core::prelude::*;
use idf_engine::chunk::Chunk;
use idf_engine::schema::{Field, Schema};
use idf_engine::types::{DataType, Value};

fn bench_append(c: &mut Criterion) {
    let schema = Arc::new(Schema::new(vec![
        Field::new("k", DataType::Int64),
        Field::new("v", DataType::Utf8),
    ]));
    let mut group = c.benchmark_group("abl_append");
    group.sample_size(10);
    for &batch_rows in &[1usize, 10, 100, 1_000, 10_000] {
        // Pre-build the update chunk once.
        let rows: Vec<Vec<Value>> = (0..batch_rows as i64)
            .map(|i| vec![Value::Int64(i % 1000), Value::Utf8(format!("u{i}"))])
            .collect();
        let update = Chunk::from_rows(&schema, &rows).expect("chunk");
        group.throughput(Throughput::Elements(batch_rows as u64));
        group.bench_with_input(
            BenchmarkId::new("append_rows", batch_rows),
            &update,
            |b, update| {
                let table = IndexedTable::new(
                    Arc::clone(&schema),
                    0,
                    IndexConfig {
                        num_partitions: 4,
                        ..Default::default()
                    },
                )
                .expect("table");
                b.iter(|| table.append_chunk(update).expect("append"));
            },
        );
    }
    group.finish();
}

/// Short measurement windows so `cargo bench --workspace` stays tractable
/// on small machines; raise for more precision.
fn quick() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_append
}
criterion_main!(benches);
