//! **BENCH-lookup (criterion)** — batched multi-key probes versus a loop
//! of single-key `get_rows` on a 1 M-row indexed table, plus the raw
//! single-key probe for the latency baseline. The batched path dedups the
//! key set, groups keys by hash partition, and probes partitions in
//! parallel against one snapshot — the win grows with batch size.
//!
//! Run: `cargo bench -p idf-bench --bench lookup_batch`

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use idf_bench::lookup::build_table;
use idf_engine::types::Value;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// 250 k keys × 4 versions = 1 M rows.
const N_KEYS: usize = 250_000;
const VERSIONS: usize = 4;

fn bench_single_key(c: &mut Criterion) {
    let idf = build_table(N_KEYS, VERSIONS).expect("build");
    let mut group = c.benchmark_group("lookup_single");
    group.sample_size(10);
    let mut k = 0i64;
    group.bench_function("get_rows", |b| {
        b.iter(|| {
            k = (k + 7919) % N_KEYS as i64;
            idf.get_rows_chunk(k).expect("probe")
        })
    });
    group.finish();
}

fn bench_batch_vs_loop(c: &mut Criterion) {
    let idf = build_table(N_KEYS, VERSIONS).expect("build");
    let mut rng = StdRng::seed_from_u64(42);
    let mut group = c.benchmark_group("lookup_batch_vs_loop");
    group.sample_size(10);
    for batch in [64usize, 1024] {
        let keys: Vec<Value> = (0..batch)
            .map(|_| Value::Int64(rng.gen_range(0..N_KEYS as i64)))
            .collect();
        group.bench_with_input(
            BenchmarkId::new("get_rows_batch", batch),
            &keys,
            |b, keys| b.iter(|| idf.get_rows_chunk_batch(keys).expect("batch")),
        );
        group.bench_with_input(
            BenchmarkId::new("looped_get_rows", batch),
            &keys,
            |b, keys| {
                b.iter(|| {
                    let mut rows = 0usize;
                    for key in keys {
                        rows += idf.get_rows_chunk(key.clone()).expect("probe").len();
                    }
                    rows
                })
            },
        );
    }
    group.finish();
}

/// Short measurement windows so `cargo bench --workspace` stays tractable
/// on small machines; raise for more precision.
fn quick() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_single_key, bench_batch_vs_loop
}
criterion_main!(benches);
