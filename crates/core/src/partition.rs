//! One indexed partition: cTrie index + row batches + backward pointers.
//!
//! Paper, §2: *"Each RDD partition is composed of three data structures:
//! (1) a cTrie, which represents the index, (2) a set of row batches, which
//! stores the tabular data, and (3) a set of backward pointers, which are
//! used to crawl the partition for rows that are indexed on the same key."*
//!
//! Append protocol (single writer per partition, concurrent readers):
//!
//! 1. read the key's current head pointer from the cTrie;
//! 2. write the row into a batch with that pointer as its backward link
//!    (publishing via the batch watermark);
//! 3. point the cTrie at the new row.
//!
//! A reader that snapshots the cTrie (O(1), non-blocking) therefore sees a
//! consistent prefix: every pointer in the snapshot refers to fully
//! published bytes, and chains never dangle. This is the paper's
//! "multi-version concurrency".

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use idf_ctrie::CTrie;
use idf_engine::chunk::Chunk;
use idf_engine::column::ColumnBuilder;
use idf_engine::error::{EngineError, Result};
use idf_engine::query::QueryContext;
use idf_engine::schema::SchemaRef;
use idf_engine::types::Value;
use parking_lot::{Mutex, RwLock};

use crate::batch::{RowBatch, ROW_HEADER};
use crate::config::IndexConfig;
use crate::layout::RowLayout;
use crate::pointer::RowPtr;

/// A single hash partition of an Indexed DataFrame.
pub struct IndexedPartition {
    layout: RowLayout,
    key_col: usize,
    config: IndexConfig,
    /// key → packed pointer to the *latest* row with that key.
    index: CTrie<Value, u64>,
    batches: RwLock<Vec<Arc<RowBatch>>>,
    /// Serializes writers ("Spark transformations within a partition are
    /// sequentially executed on a single core" — paper, §2). Guards the
    /// row-encode scratch buffer, which is reused across appends so the
    /// steady-state append path performs no allocation.
    append_lock: Mutex<Vec<u8>>,
    row_count: AtomicUsize,
    /// Distinct indexed keys. Maintained here because `CTrie::len()` is an
    /// O(n) traversal, and this count feeds planner statistics on every
    /// query: a single writer appends (under `append_lock`), keys are
    /// never removed, so a counter bumped on first-insert stays exact.
    key_count: AtomicUsize,
}

impl IndexedPartition {
    /// An empty partition indexing `schema[key_col]`.
    pub fn new(schema: SchemaRef, key_col: usize, config: IndexConfig) -> Self {
        debug_assert!(config.validate().is_ok());
        IndexedPartition {
            layout: RowLayout::new(schema),
            key_col,
            config,
            index: CTrie::new(),
            batches: RwLock::new(Vec::new()),
            append_lock: Mutex::new(Vec::new()),
            row_count: AtomicUsize::new(0),
            key_count: AtomicUsize::new(0),
        }
    }

    /// Rebuild a partition from checkpointed state: restored row batches
    /// plus the dumped `key → packed pointer` index entries, bulk-loaded
    /// into a fresh cTrie (one epoch pin for the whole load — far cheaper
    /// than replaying every append). The partition is immediately
    /// writable; new rows continue into the last restored batch.
    ///
    /// # Errors
    /// Fails with a corrupt-state error when an index entry's pointer does
    /// not resolve to a committed row in the restored batches.
    pub fn restore(
        schema: SchemaRef,
        key_col: usize,
        config: IndexConfig,
        batches: Vec<Arc<RowBatch>>,
        index_entries: Vec<(Value, u64)>,
        row_count: usize,
    ) -> Result<Self> {
        for (key, raw) in &index_entries {
            let ptr = RowPtr::from_raw(*raw);
            let committed = batches.get(ptr.batch()).map(|b| b.len()).ok_or_else(|| {
                EngineError::corrupt(format!(
                    "restored index entry for key {key:?} names batch {} of {}",
                    ptr.batch(),
                    batches.len()
                ))
            })?;
            let end = ptr.offset().saturating_add(ptr.size());
            if end > committed {
                return Err(EngineError::corrupt(format!(
                    "restored index entry for key {key:?} points at [{}, {end}) \
                     beyond committed {committed}",
                    ptr.offset()
                )));
            }
        }
        let keys = index_entries.len();
        let index = CTrie::new();
        index.from_entries(index_entries);
        Ok(IndexedPartition {
            layout: RowLayout::new(schema),
            key_col,
            config,
            index,
            batches: RwLock::new(batches),
            append_lock: Mutex::new(Vec::new()),
            row_count: AtomicUsize::new(row_count),
            key_count: AtomicUsize::new(keys),
        })
    }

    /// The row schema.
    pub fn schema(&self) -> &SchemaRef {
        self.layout.schema()
    }

    /// Index column position.
    pub fn key_col(&self) -> usize {
        self.key_col
    }

    /// Rows appended so far.
    pub fn row_count(&self) -> usize {
        self.row_count.load(Ordering::Acquire)
    }

    /// Append one row. Rows with a NULL key are stored (visible to scans)
    /// but not indexed, matching SQL equality semantics.
    ///
    /// All fallible work (encoding, the size check, both failpoints)
    /// happens before any shared state is touched, so a failed append is
    /// never partially visible.
    pub fn append_row(&self, values: &[Value]) -> Result<()> {
        crate::failpoints::check(crate::failpoints::APPEND_ENCODE)?;
        let mut payload = self.append_lock.lock();
        payload.clear();
        self.layout.encode(values, &mut payload)?;
        let stored = ROW_HEADER + payload.len();
        if stored > self.config.max_row_size {
            return Err(EngineError::RowTooLarge {
                size: stored,
                max: self.config.max_row_size,
            });
        }
        self.publish_locked(&values[self.key_col], &payload)
    }

    /// Encode + validate one row without touching any shared state,
    /// returning the payload bytes for a later [`Self::append_encoded`].
    /// This is phase 1 of the two-phase (validate-all-then-publish)
    /// chunk-append protocol in [`crate::table::IndexedTable`].
    pub fn encode_row(&self, values: &[Value]) -> Result<Vec<u8>> {
        crate::failpoints::check(crate::failpoints::APPEND_ENCODE)?;
        let mut payload = Vec::new();
        self.layout.encode(values, &mut payload)?;
        let stored = ROW_HEADER + payload.len();
        if stored > self.config.max_row_size {
            return Err(EngineError::RowTooLarge {
                size: stored,
                max: self.config.max_row_size,
            });
        }
        Ok(payload)
    }

    /// Decode one encoded payload (as produced by [`Self::encode_row`])
    /// back into scalars — the WAL replay path re-derives the typed rows
    /// it feeds through the regular append protocol.
    ///
    /// # Errors
    /// Fails on a payload that does not match the partition's layout.
    pub fn decode_payload(&self, payload: &[u8]) -> Result<Vec<Value>> {
        self.layout.decode_row(payload)
    }

    /// Append a row pre-encoded by [`Self::encode_row`] (phase 2 of a
    /// chunk append). `key` must be the row's `key_col` value.
    pub fn append_encoded(&self, key: &Value, payload: &[u8]) -> Result<()> {
        let _writer = self.append_lock.lock();
        self.publish_locked(key, payload)
    }

    /// Steps 1–3 of the append protocol. The caller holds `append_lock`
    /// (single writer per partition); `payload` is validated.
    fn publish_locked(&self, key: &Value, payload: &[u8]) -> Result<()> {
        crate::failpoints::check(crate::failpoints::APPEND_PUBLISH)?;
        let stored = ROW_HEADER + payload.len();
        // 1. current chain head becomes the new row's backward pointer.
        let prev_raw = if key.is_null() {
            None
        } else {
            self.index.lookup(key)
        };
        let prev = prev_raw.map(RowPtr::from_raw).unwrap_or(RowPtr::NULL);
        // 2. write + publish the row bytes.
        let (batch_idx, offset) = self.write_row(prev, payload)?;
        let ptr = RowPtr::new(batch_idx, offset, stored);
        // 3. point the index at the new head.
        if !key.is_null() {
            let old = self.index.insert(key.clone(), ptr.raw());
            debug_assert_eq!(old, prev_raw, "single-writer invariant violated");
            if prev_raw.is_none() {
                self.key_count.fetch_add(1, Ordering::AcqRel);
            }
        }
        self.row_count.fetch_add(1, Ordering::AcqRel);
        let m = idf_obs::global();
        m.append_rows.inc();
        m.append_bytes.add(stored as u64);
        Ok(())
    }

    /// Write into the open batch, rolling over to a fresh batch when full.
    fn write_row(&self, prev: RowPtr, payload: &[u8]) -> Result<(usize, usize)> {
        // Fast path: room in the last batch.
        {
            let batches = self.batches.read();
            if let Some(last) = batches.last() {
                if let Some(offset) = last.append_row(prev, payload) {
                    return Ok((batches.len() - 1, offset));
                }
            }
        }
        // Roll over.
        let mut batches = self.batches.write();
        if batches.len() >= crate::pointer::MAX_BATCHES {
            return Err(EngineError::exec("partition exceeded 2^31 row batches"));
        }
        let batch = Arc::new(RowBatch::with_capacity(self.config.batch_size));
        let offset = batch.append_row(prev, payload).ok_or(
            // Only reachable if a row outgrows a whole batch, which
            // `IndexConfig::validate` (max_row_size <= batch_size) rules
            // out for vetted configs.
            EngineError::RowTooLarge {
                size: ROW_HEADER + payload.len(),
                max: self.config.batch_size,
            },
        )?;
        batches.push(batch);
        idf_obs::global().batch_seals.inc();
        Ok((batches.len() - 1, offset))
    }

    /// Take a consistent point-in-time read view (O(1), non-blocking).
    pub fn snapshot(&self) -> PartitionSnapshot {
        // Order matters: snapshot the index first, then the watermarks, so
        // every pointer in the index view lands below its watermark.
        let index = self.index.read_only_snapshot();
        let batches: Vec<Arc<RowBatch>> = self.batches.read().clone();
        let watermarks: Vec<usize> = batches.iter().map(|b| b.len()).collect();
        let m = idf_obs::global();
        m.snapshots_taken.inc();
        PartitionSnapshot {
            layout: self.layout.clone(),
            key_col: self.key_col,
            index,
            batches,
            watermarks,
            // The clock read is the expensive part of snapshot telemetry,
            // so only sampled snapshots carry a timestamp; the rest skip
            // both `Instant::now()` here and `elapsed()` at probe time.
            #[cfg(feature = "obs")]
            created_at: m.probe_sampler.tick().then(std::time::Instant::now),
        }
    }

    /// Memory accounting for the paper's "low memory overhead" claim.
    pub fn memory_stats(&self) -> PartitionMemory {
        let batches = self.batches.read();
        let data_bytes = batches.iter().map(|b| b.len()).sum();
        let reserved_bytes = batches.iter().map(|b| b.capacity()).sum();
        PartitionMemory {
            data_bytes,
            reserved_bytes,
            // The maintained counter, NOT `index.len()`: these stats feed
            // planner row estimates on every query, and the trie's own
            // `len()` is a full O(n) traversal.
            index_entries: self.key_count.load(Ordering::Acquire),
            rows: self.row_count(),
        }
    }
}

impl std::fmt::Debug for IndexedPartition {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "IndexedPartition(rows={}, batches={})",
            self.row_count(),
            self.batches.read().len()
        )
    }
}

/// Memory accounting numbers for one partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartitionMemory {
    /// Committed row bytes.
    pub data_bytes: usize,
    /// Allocated batch bytes (committed + slack in open batches).
    pub reserved_bytes: usize,
    /// Number of distinct indexed keys.
    pub index_entries: usize,
    /// Number of stored rows.
    pub rows: usize,
}

/// A frozen, consistent view of a partition.
pub struct PartitionSnapshot {
    layout: RowLayout,
    key_col: usize,
    index: CTrie<Value, u64>,
    batches: Vec<Arc<RowBatch>>,
    watermarks: Vec<usize>,
    /// When the snapshot was taken, feeding the snapshot-age histogram at
    /// probe time. `Some` only for 1-in-`idf_obs::SAMPLE_PERIOD` snapshots
    /// (and absent entirely in compiled-out builds), so the steady-state
    /// probe path pays no clock reads.
    #[cfg(feature = "obs")]
    created_at: Option<std::time::Instant>,
}

impl PartitionSnapshot {
    /// Whether the probe sampler picked this snapshot to carry detailed
    /// telemetry (snapshot age, chain-walk length).
    #[cfg(feature = "obs")]
    #[inline]
    fn sampled(&self) -> bool {
        self.created_at.is_some()
    }

    /// The row schema.
    pub fn schema(&self) -> &SchemaRef {
        self.layout.schema()
    }

    /// Number of rows visible in this snapshot.
    ///
    /// Malformed rows (which only a storage bug could produce) terminate
    /// their batch's walk early rather than failing the count.
    pub fn row_count(&self) -> usize {
        self.batches
            .iter()
            .zip(&self.watermarks)
            .map(|(b, &w)| b.iter_rows(w).map_while(|r| r.ok()).count())
            .sum()
    }

    /// Follow the backward-pointer chain for `key`, latest row first,
    /// yielding decoded payload slices.
    ///
    /// The probe goes through the cTrie's borrowed-key entry point: no
    /// `Value` is cloned and no heap allocation happens on this path.
    pub fn lookup_payloads(&self, key: &Value) -> ChainIter<'_> {
        let head = if key.is_null() {
            RowPtr::NULL
        } else {
            self.index
                .lookup_with_borrowed(key, |raw| RowPtr::from_raw(*raw))
                .unwrap_or(RowPtr::NULL)
        };
        if idf_obs::enabled() && !key.is_null() {
            let m = idf_obs::global();
            if head.is_null() {
                m.probe_misses.inc();
            } else {
                m.probe_hits.inc();
            }
            self.record_probe_age();
        }
        ChainIter {
            snapshot: self,
            next: head,
            hit: !head.is_null(),
            walked: 0,
        }
    }

    /// Record how stale the probed snapshot is. Only snapshots the
    /// sampler stamped carry a timestamp, so most probes skip the
    /// `elapsed()` clock read; compiled-out builds skip it entirely.
    #[cfg(feature = "obs")]
    fn record_probe_age(&self) {
        if let Some(t) = self.created_at {
            idf_obs::global()
                .snapshot_age_ns
                .record(t.elapsed().as_nanos() as u64);
        }
    }

    #[cfg(not(feature = "obs"))]
    fn record_probe_age(&self) {}

    /// All rows bound to `key` as a chunk (latest first), with optional
    /// column projection. This is the paper's `getRows` on one partition.
    pub fn lookup_chunk(&self, key: &Value, projection: Option<&[usize]>) -> Result<Chunk> {
        crate::failpoints::check(crate::failpoints::PARTITION_PROBE)?;
        let cols = self.projected_cols(projection);
        let mut builders = self.new_builders(&cols);
        let n = self.decode_chain_into(key, &cols, &mut builders)?;
        if builders.is_empty() {
            return Ok(Chunk::new_empty_columns(n));
        }
        Chunk::new(builders.into_iter().map(|b| Arc::new(b.finish())).collect())
    }

    /// All rows bound to *any* of `keys` as one chunk, sharing a single
    /// set of column builders across every probe. Rows are grouped by key
    /// in the order given, each key's chain latest-first. Callers pass the
    /// partition-local slice of a batched `getRows` — see
    /// [`crate::table::TableSnapshot::lookup_batch`].
    pub fn lookup_chunk_multi(
        &self,
        keys: &[Value],
        projection: Option<&[usize]>,
    ) -> Result<Chunk> {
        self.lookup_chunk_multi_ctx(keys, projection, None)
    }

    /// [`Self::lookup_chunk_multi`] under a query lifecycle token:
    /// cancellation/deadline is checked between key probes and the result
    /// chunk is billed to the query's memory budget.
    pub fn lookup_chunk_multi_ctx(
        &self,
        keys: &[Value],
        projection: Option<&[usize]>,
        query: Option<&QueryContext>,
    ) -> Result<Chunk> {
        crate::failpoints::check(crate::failpoints::PARTITION_PROBE)?;
        let cols = self.projected_cols(projection);
        let mut builders = self.new_builders(&cols);
        let mut n = 0usize;
        for key in keys {
            if let Some(q) = query {
                q.check()?;
            }
            n += self.decode_chain_into(key, &cols, &mut builders)?;
        }
        if builders.is_empty() {
            return Ok(Chunk::new_empty_columns(n));
        }
        let chunk = Chunk::new(builders.into_iter().map(|b| Arc::new(b.finish())).collect())?;
        if let Some(q) = query {
            q.charge_memory(chunk.byte_size())?;
        }
        Ok(chunk)
    }

    fn projected_cols(&self, projection: Option<&[usize]>) -> Vec<usize> {
        match projection {
            Some(p) => p.to_vec(),
            None => (0..self.layout.schema().len()).collect(),
        }
    }

    fn new_builders(&self, cols: &[usize]) -> Vec<ColumnBuilder> {
        cols.iter()
            .map(|&c| ColumnBuilder::new(self.layout.schema().field(c).data_type))
            .collect()
    }

    /// Decode `key`'s whole chain into `builders`; returns the row count.
    fn decode_chain_into(
        &self,
        key: &Value,
        cols: &[usize],
        builders: &mut [ColumnBuilder],
    ) -> Result<usize> {
        let mut n = 0usize;
        for payload in self.lookup_payloads(key) {
            self.layout.decode_into(payload?, cols, builders)?;
            n += 1;
        }
        Ok(n)
    }

    /// Number of rows bound to `key`.
    pub fn lookup_count(&self, key: &Value) -> Result<usize> {
        let mut n = 0usize;
        for payload in self.lookup_payloads(key) {
            payload?;
            n += 1;
        }
        Ok(n)
    }

    /// Full scan into chunks of at most `chunk_rows` rows — the paper's
    /// `transformToRowRDD` fallback that lets regular operators run over
    /// the indexed representation.
    pub fn scan_chunks(
        &self,
        projection: Option<&[usize]>,
        chunk_rows: usize,
    ) -> Result<Vec<Chunk>> {
        self.scan_chunks_ctx(projection, chunk_rows, None)
    }

    /// [`Self::scan_chunks`] under a query lifecycle token:
    /// cancellation/deadline is checked at every chunk boundary and each
    /// produced chunk is billed to the query's memory budget.
    pub fn scan_chunks_ctx(
        &self,
        projection: Option<&[usize]>,
        chunk_rows: usize,
        query: Option<&QueryContext>,
    ) -> Result<Vec<Chunk>> {
        let cols = self.projected_cols(projection);
        let mut out = Vec::new();
        let mut builders = self.new_builders(&cols);
        let mut rows_in_chunk = 0usize;
        for (batch, &watermark) in self.batches.iter().zip(&self.watermarks) {
            for row in batch.iter_rows(watermark) {
                let (_, _, payload) = row?;
                self.layout.decode_into(payload, &cols, &mut builders)?;
                rows_in_chunk += 1;
                if rows_in_chunk >= chunk_rows {
                    if let Some(q) = query {
                        q.check()?;
                    }
                    let chunk = finish_chunk(&cols, &mut builders, self.schema(), rows_in_chunk)?;
                    if let Some(q) = query {
                        q.charge_memory(chunk.byte_size())?;
                    }
                    out.push(chunk);
                    rows_in_chunk = 0;
                }
            }
        }
        if rows_in_chunk > 0 || out.is_empty() {
            out.push(finish_chunk(
                &cols,
                &mut builders,
                self.schema(),
                rows_in_chunk,
            )?);
        }
        Ok(out)
    }

    /// Decode one payload into scalars.
    ///
    /// # Errors
    /// Fails on a payload that does not match the partition's layout.
    pub fn decode_row(&self, payload: &[u8]) -> Result<Vec<Value>> {
        self.layout.decode_row(payload)
    }

    /// Decode the projected columns of one payload.
    ///
    /// # Errors
    /// Fails on a payload that does not match the partition's layout.
    pub fn decode_projected(&self, payload: &[u8], cols: &[usize]) -> Result<Vec<Value>> {
        cols.iter()
            .map(|&c| self.layout.decode_column(payload, c))
            .collect()
    }

    /// Decode a single column of one payload without allocation overhead.
    ///
    /// # Errors
    /// Fails on a payload that does not match the partition's layout.
    pub fn decode_value(&self, payload: &[u8], col: usize) -> Result<Value> {
        self.layout.decode_column(payload, col)
    }

    /// Vectorized gather: decode one column across many payloads.
    ///
    /// # Errors
    /// Fails on a payload that does not match the partition's layout.
    pub fn decode_column_batch(
        &self,
        payloads: &[&[u8]],
        col: usize,
    ) -> Result<idf_engine::column::Column> {
        self.layout.decode_column_batch(payloads, col)
    }

    /// The index column position.
    pub fn key_col(&self) -> usize {
        self.key_col
    }

    /// Distinct keys in the snapshot's index.
    pub fn key_count(&self) -> usize {
        self.index.len()
    }

    /// The snapshot's row batches as `(capacity, committed_prefix)` pairs
    /// for checkpoint serialization. The prefix is cut at the snapshot
    /// watermark, so bytes appended after the snapshot never leak into a
    /// checkpoint.
    pub fn export_batches(&self) -> Vec<(usize, &[u8])> {
        self.batches
            .iter()
            .zip(&self.watermarks)
            .map(|(b, &w)| (b.capacity(), &b.committed_bytes()[..w]))
            .collect()
    }

    /// The snapshot's index as `(key, packed pointer)` pairs for
    /// checkpoint serialization; restored via [`IndexedPartition::restore`].
    pub fn export_index(&self) -> Vec<(Value, u64)> {
        self.index.iter().collect()
    }
}

fn finish_chunk(
    cols: &[usize],
    builders: &mut [ColumnBuilder],
    schema: &SchemaRef,
    rows: usize,
) -> Result<Chunk> {
    if builders.is_empty() {
        return Ok(Chunk::new_empty_columns(rows));
    }
    let finished: Vec<_> = cols
        .iter()
        .zip(builders.iter_mut())
        .map(|(&c, b)| {
            let done = std::mem::replace(b, ColumnBuilder::new(schema.field(c).data_type));
            Arc::new(done.finish())
        })
        .collect();
    Chunk::new(finished)
}

/// Iterator over a key's backward-pointer chain (latest row first).
/// Fused: a corrupt pointer yields one `Err` and then terminates.
///
/// On drop, a chain that started from a successful probe records how many
/// rows it walked into the global chain-walk-length histogram.
pub struct ChainIter<'a> {
    snapshot: &'a PartitionSnapshot,
    next: RowPtr,
    /// Whether the probe found a head (misses are not chain walks).
    hit: bool,
    /// Rows yielded so far.
    walked: u32,
}

impl<'a> Iterator for ChainIter<'a> {
    type Item = Result<&'a [u8]>;

    fn next(&mut self) -> Option<Result<&'a [u8]>> {
        if self.next.is_null() {
            return None;
        }
        let ptr = self.next;
        let Some(batch) = self.snapshot.batches.get(ptr.batch()) else {
            self.next = RowPtr::NULL;
            return Some(Err(EngineError::internal(format!(
                "chain pointer names batch {} of {}",
                ptr.batch(),
                self.snapshot.batches.len()
            ))));
        };
        match batch.row_at(ptr.offset()) {
            Ok((stored, prev, payload)) => {
                debug_assert_eq!(stored, ptr.size(), "pointer size must match stored row");
                self.next = prev;
                self.walked += 1;
                Some(Ok(payload))
            }
            Err(e) => {
                self.next = RowPtr::NULL;
                Some(Err(e))
            }
        }
    }
}

impl Drop for ChainIter<'_> {
    fn drop(&mut self) {
        // Chain-walk length is a distribution, not an exact count, so it
        // rides the same 1-in-N probe sample as the snapshot-age clock —
        // unsampled probes pay only this flag check.
        #[cfg(feature = "obs")]
        if self.hit && self.snapshot.sampled() {
            idf_obs::global().chain_walk.record(u64::from(self.walked));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idf_engine::schema::{Field, Schema};
    use idf_engine::types::DataType;

    fn schema() -> SchemaRef {
        Arc::new(Schema::new(vec![
            Field::new("k", DataType::Int64),
            Field::new("v", DataType::Utf8),
        ]))
    }

    fn partition() -> IndexedPartition {
        IndexedPartition::new(schema(), 0, IndexConfig::default())
    }

    fn row(k: i64, v: &str) -> Vec<Value> {
        vec![Value::Int64(k), Value::Utf8(v.into())]
    }

    #[test]
    fn append_and_point_lookup() {
        let p = partition();
        p.append_row(&row(1, "a")).unwrap();
        p.append_row(&row(2, "b")).unwrap();
        p.append_row(&row(1, "c")).unwrap();
        let s = p.snapshot();
        let chunk = s.lookup_chunk(&Value::Int64(1), None).unwrap();
        assert_eq!(chunk.len(), 2);
        // Latest first.
        assert_eq!(chunk.value_at(1, 0), Value::Utf8("c".into()));
        assert_eq!(chunk.value_at(1, 1), Value::Utf8("a".into()));
        assert_eq!(s.lookup_count(&Value::Int64(2)).unwrap(), 1);
        assert_eq!(s.lookup_count(&Value::Int64(99)).unwrap(), 0);
    }

    /// The maintained key counter must agree with the trie's O(n) count
    /// through duplicate keys, NULL keys, and checkpoint restore — it is
    /// what planner statistics report as `index_entries`.
    #[test]
    fn key_count_tracks_the_index_exactly() {
        let p = partition();
        for i in 0..50 {
            p.append_row(&row(i, "first")).unwrap();
            p.append_row(&row(i, "dup")).unwrap();
        }
        p.append_row(&[Value::Null, Value::Utf8("unindexed".into())])
            .unwrap();
        let m = p.memory_stats();
        assert_eq!(m.index_entries, 50);
        assert_eq!(m.index_entries, p.index.len(), "counter drifted from trie");
        assert_eq!(m.rows, 101);

        // Restore seeds the counter from the dumped entries (the same
        // export/rebuild path the checkpoint reader uses).
        let s = p.snapshot();
        let batches: Vec<Arc<RowBatch>> = s
            .export_batches()
            .into_iter()
            .map(|(cap, bytes)| Arc::new(RowBatch::from_committed_bytes(cap, bytes).unwrap()))
            .collect();
        let restored = IndexedPartition::restore(
            schema(),
            0,
            IndexConfig::default(),
            batches,
            s.export_index(),
            101,
        )
        .unwrap();
        assert_eq!(restored.memory_stats().index_entries, 50);
        restored.append_row(&row(999, "new")).unwrap();
        restored.append_row(&row(0, "dup-after-restore")).unwrap();
        assert_eq!(restored.memory_stats().index_entries, 51);
    }

    #[test]
    fn long_chains_across_batches() {
        let cfg = IndexConfig {
            batch_size: 256, // force many tiny batches
            max_row_size: 200,
            ..Default::default()
        };
        let p = IndexedPartition::new(schema(), 0, cfg);
        for i in 0..500 {
            p.append_row(&row(7, &format!("v{i}"))).unwrap();
        }
        let s = p.snapshot();
        assert_eq!(s.lookup_count(&Value::Int64(7)).unwrap(), 500);
        let payloads: Vec<_> = s
            .lookup_payloads(&Value::Int64(7))
            .collect::<Result<_>>()
            .unwrap();
        let first = s.decode_row(payloads[0]).unwrap();
        assert_eq!(first[1], Value::Utf8("v499".into()));
        let last = s.decode_row(payloads[499]).unwrap();
        assert_eq!(last[1], Value::Utf8("v0".into()));
    }

    #[test]
    fn scan_sees_all_rows_in_order() {
        let p = partition();
        for i in 0..100 {
            p.append_row(&row(i % 10, &format!("r{i}"))).unwrap();
        }
        let s = p.snapshot();
        assert_eq!(s.row_count(), 100);
        let chunks = s.scan_chunks(None, 32).unwrap();
        let total: usize = chunks.iter().map(Chunk::len).sum();
        assert_eq!(total, 100);
        assert_eq!(chunks[0].value_at(1, 0), Value::Utf8("r0".into()));
    }

    #[test]
    fn scan_with_projection() {
        let p = partition();
        p.append_row(&row(1, "abc")).unwrap();
        let s = p.snapshot();
        let chunks = s.scan_chunks(Some(&[1]), 10).unwrap();
        assert_eq!(chunks[0].num_columns(), 1);
        assert_eq!(chunks[0].value_at(0, 0), Value::Utf8("abc".into()));
    }

    #[test]
    fn null_keys_scanned_not_indexed() {
        let p = partition();
        p.append_row(&[Value::Null, Value::Utf8("ghost".into())])
            .unwrap();
        p.append_row(&row(1, "real")).unwrap();
        let s = p.snapshot();
        assert_eq!(s.row_count(), 2);
        assert_eq!(s.lookup_count(&Value::Null).unwrap(), 0);
        assert_eq!(s.key_count(), 1);
    }

    #[test]
    fn snapshot_isolation_from_later_appends() {
        let p = partition();
        p.append_row(&row(1, "a")).unwrap();
        let s = p.snapshot();
        p.append_row(&row(1, "b")).unwrap();
        p.append_row(&row(2, "c")).unwrap();
        assert_eq!(s.lookup_count(&Value::Int64(1)).unwrap(), 1);
        assert_eq!(s.lookup_count(&Value::Int64(2)).unwrap(), 0);
        assert_eq!(s.row_count(), 1);
        let s2 = p.snapshot();
        assert_eq!(s2.lookup_count(&Value::Int64(1)).unwrap(), 2);
        assert_eq!(s2.row_count(), 3);
    }

    #[test]
    fn oversized_row_rejected() {
        let p = partition();
        let big = "x".repeat(2000);
        let err = p.append_row(&row(1, &big)).unwrap_err();
        assert!(err.to_string().contains("at most"));
        assert_eq!(p.row_count(), 0);
    }

    #[test]
    fn concurrent_readers_while_appending() {
        let p = Arc::new(partition());
        let writer = {
            let p = Arc::clone(&p);
            std::thread::spawn(move || {
                for i in 0..5_000 {
                    p.append_row(&[Value::Int64(i % 50), Value::Utf8(format!("v{i}"))])
                        .unwrap();
                }
            })
        };
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let p = Arc::clone(&p);
                std::thread::spawn(move || {
                    let mut last_total = 0;
                    for _ in 0..50 {
                        let s = p.snapshot();
                        let mut total = 0;
                        for k in 0..50 {
                            total += s.lookup_count(&Value::Int64(k)).unwrap();
                        }
                        assert!(total >= last_total, "chains must only grow");
                        last_total = total;
                        // every chain is readable end-to-end
                        for payload in s.lookup_payloads(&Value::Int64(0)) {
                            let vals = s.decode_row(payload.unwrap()).unwrap();
                            assert_eq!(vals[0], Value::Int64(0));
                        }
                    }
                })
            })
            .collect();
        writer.join().unwrap();
        for r in readers {
            r.join().unwrap();
        }
        let s = p.snapshot();
        assert_eq!(s.row_count(), 5_000);
        assert_eq!(s.lookup_count(&Value::Int64(5)).unwrap(), 100);
    }

    #[test]
    fn memory_stats_track_data() {
        let p = partition();
        for i in 0..100 {
            p.append_row(&row(i, "some value here")).unwrap();
        }
        let m = p.memory_stats();
        assert_eq!(m.rows, 100);
        assert_eq!(m.index_entries, 100);
        assert!(m.data_bytes > 100 * ROW_HEADER);
        assert!(m.reserved_bytes >= m.data_bytes);
    }
}
