//! One indexed partition: cTrie index + row batches + backward pointers.
//!
//! Paper, §2: *"Each RDD partition is composed of three data structures:
//! (1) a cTrie, which represents the index, (2) a set of row batches, which
//! stores the tabular data, and (3) a set of backward pointers, which are
//! used to crawl the partition for rows that are indexed on the same key."*
//!
//! Append protocol (single writer per partition, concurrent readers):
//!
//! 1. read the key's current head pointer from the cTrie;
//! 2. write the row into a batch with that pointer as its backward link
//!    (publishing via the batch watermark);
//! 3. point the cTrie at the new row.
//!
//! A reader that snapshots the cTrie (O(1), non-blocking) therefore sees a
//! consistent prefix: every pointer in the snapshot refers to fully
//! published bytes, and chains never dangle. This is the paper's
//! "multi-version concurrency".

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use idf_ctrie::CTrie;
use idf_engine::chunk::Chunk;
use idf_engine::column::ColumnBuilder;
use idf_engine::error::{EngineError, Result};
use idf_engine::query::QueryContext;
use idf_engine::schema::SchemaRef;
use idf_engine::types::Value;
use parking_lot::{Mutex, RwLock};

use crate::batch::{RowBatch, ROW_HEADER};
use crate::config::IndexConfig;
use crate::layout::RowLayout;
use crate::pointer::RowPtr;
use crate::sink::RowKind;

/// A single hash partition of an Indexed DataFrame.
pub struct IndexedPartition {
    layout: RowLayout,
    key_col: usize,
    config: IndexConfig,
    /// key → packed pointer to the *latest* row with that key.
    index: CTrie<Value, u64>,
    batches: RwLock<Vec<Arc<RowBatch>>>,
    /// Serializes writers ("Spark transformations within a partition are
    /// sequentially executed on a single core" — paper, §2). Guards the
    /// row-encode scratch buffer, which is reused across appends so the
    /// steady-state append path performs no allocation.
    append_lock: Mutex<Vec<u8>>,
    row_count: AtomicUsize,
    /// Distinct indexed keys. Maintained here because `CTrie::len()` is an
    /// O(n) traversal, and this count feeds planner statistics on every
    /// query: a single writer appends (under `append_lock`), keys are
    /// never removed, so a counter bumped on first-insert stays exact.
    key_count: AtomicUsize,
    /// Tombstone rows currently stored in the batches. Written only under
    /// `append_lock`; a non-zero count is what routes snapshots onto the
    /// visibility-aware scan path. Compaction recomputes it.
    tombstones: AtomicUsize,
    /// Rows hidden below a tombstone (dead versions a compaction can
    /// reclaim). Written only under `append_lock`; a policy signal, reset
    /// to zero by compaction.
    dead_rows: AtomicUsize,
    /// Swap epoch for the compaction gate protocol: even = stable, odd =
    /// a batch/index swap is in progress. [`Self::snapshot`] retries until
    /// it reads the same even value on both sides of its two reads, so a
    /// snapshot can never pair a pre-swap index with post-swap batches.
    generation: AtomicU64,
}

impl IndexedPartition {
    /// An empty partition indexing `schema[key_col]`.
    pub fn new(schema: SchemaRef, key_col: usize, config: IndexConfig) -> Self {
        debug_assert!(config.validate().is_ok());
        IndexedPartition {
            layout: RowLayout::new(schema),
            key_col,
            config,
            index: CTrie::new(),
            batches: RwLock::new(Vec::new()),
            append_lock: Mutex::new(Vec::new()),
            row_count: AtomicUsize::new(0),
            key_count: AtomicUsize::new(0),
            tombstones: AtomicUsize::new(0),
            dead_rows: AtomicUsize::new(0),
            generation: AtomicU64::new(0),
        }
    }

    /// Rebuild a partition from checkpointed state: restored row batches
    /// plus the dumped `key → packed pointer` index entries, bulk-loaded
    /// into a fresh cTrie (one epoch pin for the whole load — far cheaper
    /// than replaying every append). The partition is immediately
    /// writable; new rows continue into the last restored batch.
    ///
    /// # Errors
    /// Fails with a corrupt-state error when an index entry's pointer does
    /// not resolve to a committed row in the restored batches.
    pub fn restore(
        schema: SchemaRef,
        key_col: usize,
        config: IndexConfig,
        batches: Vec<Arc<RowBatch>>,
        index_entries: Vec<(Value, u64)>,
        row_count: usize,
    ) -> Result<Self> {
        for (key, raw) in &index_entries {
            let ptr = RowPtr::from_raw(*raw);
            let committed = batches.get(ptr.batch()).map(|b| b.len()).ok_or_else(|| {
                EngineError::corrupt(format!(
                    "restored index entry for key {key:?} names batch {} of {}",
                    ptr.batch(),
                    batches.len()
                ))
            })?;
            let end = ptr.offset().saturating_add(ptr.size());
            if end > committed {
                return Err(EngineError::corrupt(format!(
                    "restored index entry for key {key:?} points at [{}, {end}) \
                     beyond committed {committed}",
                    ptr.offset()
                )));
            }
        }
        let layout = RowLayout::new(schema);
        // Recount row kinds from the restored bytes: the kind flag lives in
        // the stored headers (checkpoints round-trip it bit-for-bit), so
        // the counters need no checkpoint-format extension. Unreadable
        // rows are skipped, matching the best-effort snapshot counts.
        let mut physical = 0usize;
        let mut tombstones = 0usize;
        for b in &batches {
            for (_, _, kind, _) in b.iter_rows_full(b.len()).map_while(|r| r.ok()) {
                physical += 1;
                if kind == RowKind::Tombstone {
                    tombstones += 1;
                }
            }
        }
        let dead_rows = if tombstones == 0 {
            0
        } else {
            let mut visible = 0usize;
            for (_, raw) in &index_entries {
                visible += visible_chain_len(&batches, RowPtr::from_raw(*raw));
            }
            // NULL-key rows are stored outside any chain but always live.
            for b in &batches {
                for (_, _, kind, payload) in b.iter_rows_full(b.len()).map_while(|r| r.ok()) {
                    if kind == RowKind::Data
                        && layout
                            .decode_column(payload, key_col)
                            .map(|v| v.is_null())
                            .unwrap_or(false)
                    {
                        visible += 1;
                    }
                }
            }
            physical.saturating_sub(tombstones + visible)
        };
        let keys = index_entries.len();
        let index = CTrie::new();
        index.from_entries(index_entries);
        Ok(IndexedPartition {
            layout,
            key_col,
            config,
            index,
            batches: RwLock::new(batches),
            append_lock: Mutex::new(Vec::new()),
            row_count: AtomicUsize::new(row_count),
            key_count: AtomicUsize::new(keys),
            tombstones: AtomicUsize::new(tombstones),
            dead_rows: AtomicUsize::new(dead_rows),
            generation: AtomicU64::new(0),
        })
    }

    /// The row schema.
    pub fn schema(&self) -> &SchemaRef {
        self.layout.schema()
    }

    /// Index column position.
    pub fn key_col(&self) -> usize {
        self.key_col
    }

    /// Rows appended so far.
    pub fn row_count(&self) -> usize {
        self.row_count.load(Ordering::Acquire)
    }

    /// Append one row. Rows with a NULL key are stored (visible to scans)
    /// but not indexed, matching SQL equality semantics.
    ///
    /// All fallible work (encoding, the size check, both failpoints)
    /// happens before any shared state is touched, so a failed append is
    /// never partially visible.
    pub fn append_row(&self, values: &[Value]) -> Result<()> {
        crate::failpoints::check(crate::failpoints::APPEND_ENCODE)?;
        let mut payload = self.append_lock.lock();
        payload.clear();
        self.layout.encode(values, &mut payload)?;
        let stored = ROW_HEADER + payload.len();
        if stored > self.config.max_row_size {
            return Err(EngineError::RowTooLarge {
                size: stored,
                max: self.config.max_row_size,
            });
        }
        self.publish_locked(&values[self.key_col], &payload)
    }

    /// Encode + validate one row without touching any shared state,
    /// returning the payload bytes for a later [`Self::append_encoded`].
    /// This is phase 1 of the two-phase (validate-all-then-publish)
    /// chunk-append protocol in [`crate::table::IndexedTable`].
    pub fn encode_row(&self, values: &[Value]) -> Result<Vec<u8>> {
        crate::failpoints::check(crate::failpoints::APPEND_ENCODE)?;
        let mut payload = Vec::new();
        self.layout.encode(values, &mut payload)?;
        let stored = ROW_HEADER + payload.len();
        if stored > self.config.max_row_size {
            return Err(EngineError::RowTooLarge {
                size: stored,
                max: self.config.max_row_size,
            });
        }
        Ok(payload)
    }

    /// Decode one encoded payload (as produced by [`Self::encode_row`])
    /// back into scalars — the WAL replay path re-derives the typed rows
    /// it feeds through the regular append protocol.
    ///
    /// # Errors
    /// Fails on a payload that does not match the partition's layout.
    pub fn decode_payload(&self, payload: &[u8]) -> Result<Vec<Value>> {
        self.layout.decode_row(payload)
    }

    /// Append a row pre-encoded by [`Self::encode_row`] (phase 2 of a
    /// chunk append). `key` must be the row's `key_col` value.
    pub fn append_encoded(&self, key: &Value, payload: &[u8]) -> Result<()> {
        let _writer = self.append_lock.lock();
        self.publish_locked(key, payload)
    }

    /// Append a pre-encoded row of the given [`RowKind`] — the DML replay
    /// path, which re-applies logged tombstones and re-appended versions
    /// in their original commit order.
    pub fn append_encoded_kind(&self, key: &Value, payload: &[u8], kind: RowKind) -> Result<()> {
        let _writer = self.append_lock.lock();
        self.publish_locked_kind(key, payload, kind)
    }

    /// Take this partition's writer lock. The DML commit protocol holds
    /// the locks of every touched partition from survivor computation
    /// through publish, so the chains it read cannot shift under it.
    pub(crate) fn lock_appends(&self) -> parking_lot::MutexGuard<'_, Vec<u8>> {
        self.append_lock.lock()
    }

    /// Decode the visible rows of `key`'s chain, latest first, against
    /// the live partition. The caller holds the append lock (via
    /// [`Self::lock_appends`]), so the view is stable.
    pub(crate) fn visible_rows_locked(&self, key: &Value) -> Result<Vec<Vec<Value>>> {
        let head = self
            .index
            .lookup(key)
            .map(RowPtr::from_raw)
            .unwrap_or(RowPtr::NULL);
        let batches = self.batches.read();
        let mut out = Vec::new();
        let mut next = head;
        while !next.is_null() {
            let batch = batches.get(next.batch()).ok_or_else(|| {
                EngineError::internal(format!(
                    "chain pointer names batch {} of {}",
                    next.batch(),
                    batches.len()
                ))
            })?;
            let (_, prev, kind, payload) = batch.row_at_full(next.offset())?;
            if kind == RowKind::Tombstone {
                break;
            }
            out.push(self.layout.decode_row(payload)?);
            next = prev;
        }
        Ok(out)
    }

    /// Steps 1–3 of the append protocol. The caller holds `append_lock`
    /// (single writer per partition); `payload` is validated.
    pub(crate) fn publish_locked(&self, key: &Value, payload: &[u8]) -> Result<()> {
        self.publish_locked_kind(key, payload, RowKind::Data)
    }

    /// Kind-aware publish (steps 1–3). The caller holds `append_lock`.
    ///
    /// Publishing a tombstone makes every older row of `key`'s chain
    /// invisible: the tombstone becomes the chain head and readers stop
    /// there. The dead-version counter grows by the rows it hides.
    pub(crate) fn publish_locked_kind(
        &self,
        key: &Value,
        payload: &[u8],
        kind: RowKind,
    ) -> Result<()> {
        crate::failpoints::check(crate::failpoints::APPEND_PUBLISH)?;
        if kind == RowKind::Tombstone && key.is_null() {
            return Err(EngineError::exec(
                "tombstones require a non-NULL key (NULL-key rows are not DML-addressable)",
            ));
        }
        let stored = ROW_HEADER + payload.len();
        // 1. current chain head becomes the new row's backward pointer.
        let prev_raw = if key.is_null() {
            None
        } else {
            self.index.lookup(key)
        };
        let prev = prev_raw.map(RowPtr::from_raw).unwrap_or(RowPtr::NULL);
        // 2. write + publish the row bytes.
        let (batch_idx, offset) = self.write_row_kind(prev, payload, kind)?;
        let ptr = RowPtr::new(batch_idx, offset, stored);
        // 3. point the index at the new head.
        if !key.is_null() {
            let old = self.index.insert(key.clone(), ptr.raw());
            debug_assert_eq!(old, prev_raw, "single-writer invariant violated");
            if prev_raw.is_none() {
                self.key_count.fetch_add(1, Ordering::AcqRel);
            }
        }
        if kind == RowKind::Tombstone {
            // The rows this tombstone just hid (stopping at any older
            // tombstone: those below it were already counted dead).
            let hidden = {
                let batches = self.batches.read();
                visible_chain_len(&batches, prev)
            };
            self.tombstones.fetch_add(1, Ordering::AcqRel);
            self.dead_rows.fetch_add(hidden, Ordering::AcqRel);
        }
        self.row_count.fetch_add(1, Ordering::AcqRel);
        let m = idf_obs::global();
        m.append_rows.inc();
        m.append_bytes.add(stored as u64);
        Ok(())
    }

    /// Write into the open batch, rolling over to a fresh batch when full.
    fn write_row_kind(
        &self,
        prev: RowPtr,
        payload: &[u8],
        kind: RowKind,
    ) -> Result<(usize, usize)> {
        // Fast path: room in the last batch.
        {
            let batches = self.batches.read();
            if let Some(last) = batches.last() {
                if let Some(offset) = last.append_row_kind(prev, payload, kind) {
                    return Ok((batches.len() - 1, offset));
                }
            }
        }
        // Roll over.
        let mut batches = self.batches.write();
        if batches.len() >= crate::pointer::MAX_BATCHES {
            return Err(EngineError::exec("partition exceeded 2^31 row batches"));
        }
        let batch = Arc::new(RowBatch::with_capacity(self.config.batch_size));
        let offset = batch.append_row_kind(prev, payload, kind).ok_or(
            // Only reachable if a row outgrows a whole batch, which
            // `IndexConfig::validate` (max_row_size <= batch_size) rules
            // out for vetted configs.
            EngineError::RowTooLarge {
                size: ROW_HEADER + payload.len(),
                max: self.config.batch_size,
            },
        )?;
        batches.push(batch);
        idf_obs::global().batch_seals.inc();
        Ok((batches.len() - 1, offset))
    }

    /// Take a consistent point-in-time read view (O(1), non-blocking on
    /// the append path; spins only while a compaction swap — a handful of
    /// pointer writes — is mid-flight).
    pub fn snapshot(&self) -> PartitionSnapshot {
        // Order matters twice over: within one attempt the index is
        // snapshotted first, then the watermarks, so every pointer in the
        // index view lands below its watermark; and the generation is read
        // on both sides so an attempt that interleaved with a compaction
        // swap (which replaces batches AND republishes the index) is
        // thrown away instead of pairing old pointers with new batches.
        let (index, batches, watermarks, tombstones) = loop {
            let g1 = self.generation.load(Ordering::Acquire);
            if g1 & 1 == 1 {
                std::hint::spin_loop();
                continue;
            }
            let index = self.index.read_only_snapshot();
            let batches: Vec<Arc<RowBatch>> = self.batches.read().clone();
            let watermarks: Vec<usize> = batches.iter().map(|b| b.len()).collect();
            let tombstones = self.tombstones.load(Ordering::Acquire);
            if self.generation.load(Ordering::Acquire) == g1 {
                break (index, batches, watermarks, tombstones);
            }
        };
        let m = idf_obs::global();
        m.snapshots_taken.inc();
        PartitionSnapshot {
            layout: self.layout.clone(),
            key_col: self.key_col,
            index,
            batches,
            watermarks,
            tombstones,
            // The clock read is the expensive part of snapshot telemetry,
            // so only sampled snapshots carry a timestamp; the rest skip
            // both `Instant::now()` here and `elapsed()` at probe time.
            #[cfg(feature = "obs")]
            created_at: m.probe_sampler.tick().then(std::time::Instant::now),
        }
    }

    /// Tombstone rows currently stored (compaction-policy signal; non-zero
    /// routes snapshots onto the visibility-aware scan path).
    pub fn tombstone_count(&self) -> usize {
        self.tombstones.load(Ordering::Acquire)
    }

    /// Rows hidden below tombstones (dead versions a compaction would
    /// reclaim; approximate only in that it excludes superseded
    /// tombstones themselves).
    pub fn dead_row_count(&self) -> usize {
        self.dead_rows.load(Ordering::Acquire)
    }

    /// Rewrite this partition's batches, dropping every dead version
    /// (rows below a tombstone, superseded tombstones) and re-linking each
    /// surviving chain contiguously — the chain shortens to its visible
    /// length. Fully deleted keys keep a single tombstone *sentinel* so
    /// the key count and restore-time pointer validation stay exact.
    ///
    /// Runs under the append lock (writers block, readers do not): the
    /// rewrite builds fresh batches and a fresh pointer set on the side,
    /// `pre_swap` runs (the compactor's swap failpoint), and then the swap
    /// publishes everything inside one odd/even generation window —
    /// in-flight snapshots keep reading the old `Arc`ed batches, new
    /// snapshots retry across the window and see only the compacted state.
    ///
    /// Not WAL-logged: recovery replays the original appends and DML
    /// records, which is logically equivalent; the next checkpoint
    /// persists (and shrinks to) the compacted bytes.
    ///
    /// # Errors
    /// Any error (corrupt chain, injected fault, `pre_swap` veto) aborts
    /// before the swap with the partition untouched.
    pub fn compact(&self, pre_swap: &dyn Fn() -> Result<()>) -> Result<CompactStats> {
        let _writer = self.append_lock.lock();
        let batches_before: Vec<Arc<RowBatch>> = self.batches.read().clone();
        let bytes_before: usize = batches_before.iter().map(|b| b.len()).sum();
        let rows_before = self.row_count.load(Ordering::Acquire);
        let stats_noop = CompactStats {
            rows_before,
            rows_after: rows_before,
            bytes_before,
            bytes_after: bytes_before,
            batches_before: batches_before.len(),
            batches_after: batches_before.len(),
        };
        // Without tombstones every stored row is visible and every chain
        // is already minimal: nothing to reclaim.
        if self.tombstones.load(Ordering::Acquire) == 0 {
            return Ok(stats_noop);
        }
        let old_index = self.index.read_only_snapshot();
        let mut new_batches: Vec<Arc<RowBatch>> = Vec::new();
        let mut new_entries: Vec<(Value, u64)> = Vec::new();
        let mut rows_after = 0usize;
        let mut tombstones_after = 0usize;
        let append = |new_batches: &mut Vec<Arc<RowBatch>>,
                      prev: RowPtr,
                      payload: &[u8],
                      kind: RowKind|
         -> Result<RowPtr> {
            let stored = ROW_HEADER + payload.len();
            if let Some(last) = new_batches.last() {
                if let Some(off) = last.append_row_kind(prev, payload, kind) {
                    return Ok(RowPtr::new(new_batches.len() - 1, off, stored));
                }
            }
            let batch = Arc::new(RowBatch::with_capacity(self.config.batch_size));
            let off =
                batch
                    .append_row_kind(prev, payload, kind)
                    .ok_or(EngineError::RowTooLarge {
                        size: stored,
                        max: self.config.batch_size,
                    })?;
            new_batches.push(batch);
            Ok(RowPtr::new(new_batches.len() - 1, off, stored))
        };
        for (key, raw) in old_index.iter() {
            // Collect the visible chain (latest first); a head tombstone
            // means the key is fully deleted and keeps a sentinel.
            let mut visible: Vec<&[u8]> = Vec::new();
            let mut sentinel: Option<&[u8]> = None;
            let mut next = RowPtr::from_raw(raw);
            while !next.is_null() {
                let batch = batches_before.get(next.batch()).ok_or_else(|| {
                    EngineError::internal(format!(
                        "chain pointer names batch {} of {}",
                        next.batch(),
                        batches_before.len()
                    ))
                })?;
                let (_, prev, kind, payload) = batch.row_at_full(next.offset())?;
                if kind == RowKind::Tombstone {
                    if visible.is_empty() {
                        sentinel = Some(payload);
                    }
                    break;
                }
                visible.push(payload);
                next = prev;
            }
            // Re-link contiguously, oldest first, so the rebuilt chain
            // reads back in the same latest-first order.
            let mut head = RowPtr::NULL;
            for payload in visible.iter().rev() {
                head = append(&mut new_batches, head, payload, RowKind::Data)?;
                rows_after += 1;
            }
            if let Some(payload) = sentinel {
                head = append(&mut new_batches, RowPtr::NULL, payload, RowKind::Tombstone)?;
                rows_after += 1;
                tombstones_after += 1;
            }
            debug_assert!(!head.is_null(), "indexed key lost its chain in compaction");
            new_entries.push((key, head.raw()));
        }
        // NULL-key rows live outside every chain and are never deleted;
        // carry them over with a physical pass.
        for b in &batches_before {
            for row in b.iter_rows_full(b.len()) {
                let (_, _, kind, payload) = row?;
                if kind == RowKind::Data
                    && self.layout.decode_column(payload, self.key_col)?.is_null()
                {
                    append(&mut new_batches, RowPtr::NULL, payload, RowKind::Data)?;
                    rows_after += 1;
                }
            }
        }
        pre_swap()?;
        // Swap inside the generation gate: an odd value parks snapshot
        // attempts, and an attempt that straddled the window retries.
        // Everything in here is infallible, so the gate always closes.
        self.generation.fetch_add(1, Ordering::AcqRel);
        let bytes_after: usize = new_batches.iter().map(|b| b.len()).sum();
        let batches_after = new_batches.len();
        *self.batches.write() = new_batches;
        for (key, raw) in new_entries {
            self.index.insert(key, raw);
        }
        self.row_count.store(rows_after, Ordering::Release);
        self.tombstones.store(tombstones_after, Ordering::Release);
        self.dead_rows.store(0, Ordering::Release);
        self.generation.fetch_add(1, Ordering::AcqRel);
        Ok(CompactStats {
            rows_before,
            rows_after,
            bytes_before,
            bytes_after,
            batches_before: batches_before.len(),
            batches_after,
        })
    }

    /// Memory accounting for the paper's "low memory overhead" claim.
    pub fn memory_stats(&self) -> PartitionMemory {
        let batches = self.batches.read();
        let data_bytes = batches.iter().map(|b| b.len()).sum();
        let reserved_bytes = batches.iter().map(|b| b.capacity()).sum();
        PartitionMemory {
            data_bytes,
            reserved_bytes,
            // The maintained counter, NOT `index.len()`: these stats feed
            // planner row estimates on every query, and the trie's own
            // `len()` is a full O(n) traversal.
            index_entries: self.key_count.load(Ordering::Acquire),
            rows: self.row_count(),
            tombstones: self.tombstones.load(Ordering::Acquire),
            dead_rows: self.dead_rows.load(Ordering::Acquire),
        }
    }
}

impl std::fmt::Debug for IndexedPartition {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "IndexedPartition(rows={}, batches={})",
            self.row_count(),
            self.batches.read().len()
        )
    }
}

/// Memory accounting numbers for one partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartitionMemory {
    /// Committed row bytes.
    pub data_bytes: usize,
    /// Allocated batch bytes (committed + slack in open batches).
    pub reserved_bytes: usize,
    /// Number of distinct indexed keys.
    pub index_entries: usize,
    /// Number of stored rows (including tombstones and dead versions).
    pub rows: usize,
    /// Stored tombstone rows.
    pub tombstones: usize,
    /// Rows hidden below tombstones (reclaimable by compaction).
    pub dead_rows: usize,
}

/// What one partition compaction did (see [`IndexedPartition::compact`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CompactStats {
    /// Stored rows before the rewrite.
    pub rows_before: usize,
    /// Stored rows after (visible rows + delete sentinels).
    pub rows_after: usize,
    /// Committed batch bytes before.
    pub bytes_before: usize,
    /// Committed batch bytes after.
    pub bytes_after: usize,
    /// Row batches before.
    pub batches_before: usize,
    /// Row batches after.
    pub batches_after: usize,
}

impl CompactStats {
    /// Rows the rewrite dropped.
    pub fn rows_reclaimed(&self) -> usize {
        self.rows_before.saturating_sub(self.rows_after)
    }

    /// Bytes the rewrite dropped.
    pub fn bytes_reclaimed(&self) -> usize {
        self.bytes_before.saturating_sub(self.bytes_after)
    }

    /// Merge per-partition stats into a per-table total.
    pub fn merge(&mut self, other: &CompactStats) {
        self.rows_before += other.rows_before;
        self.rows_after += other.rows_after;
        self.bytes_before += other.bytes_before;
        self.bytes_after += other.bytes_after;
        self.batches_before += other.batches_before;
        self.batches_after += other.batches_after;
    }
}

/// Walk the chain from `head`, counting rows until the first tombstone,
/// a corrupt pointer, or the end of the chain — the *visible* length.
fn visible_chain_len(batches: &[Arc<RowBatch>], head: RowPtr) -> usize {
    let mut n = 0usize;
    let mut next = head;
    while !next.is_null() {
        let Some(batch) = batches.get(next.batch()) else {
            break;
        };
        match batch.row_at_full(next.offset()) {
            Ok((_, prev, RowKind::Data, _)) => {
                n += 1;
                next = prev;
            }
            _ => break,
        }
    }
    n
}

/// A frozen, consistent view of a partition.
pub struct PartitionSnapshot {
    layout: RowLayout,
    key_col: usize,
    index: CTrie<Value, u64>,
    batches: Vec<Arc<RowBatch>>,
    watermarks: Vec<usize>,
    /// Tombstones stored at snapshot time. Zero keeps scans on the cheap
    /// physical batch-order path; non-zero routes them through the chains
    /// so hidden versions stay hidden.
    tombstones: usize,
    /// When the snapshot was taken, feeding the snapshot-age histogram at
    /// probe time. `Some` only for 1-in-`idf_obs::SAMPLE_PERIOD` snapshots
    /// (and absent entirely in compiled-out builds), so the steady-state
    /// probe path pays no clock reads.
    #[cfg(feature = "obs")]
    created_at: Option<std::time::Instant>,
}

impl PartitionSnapshot {
    /// Whether the probe sampler picked this snapshot to carry detailed
    /// telemetry (snapshot age, chain-walk length).
    #[cfg(feature = "obs")]
    #[inline]
    fn sampled(&self) -> bool {
        self.created_at.is_some()
    }

    /// The row schema.
    pub fn schema(&self) -> &SchemaRef {
        self.layout.schema()
    }

    /// Number of rows visible in this snapshot (tombstones and the
    /// versions they hide are not visible).
    ///
    /// Malformed rows (which only a storage bug could produce) terminate
    /// their batch's or chain's walk early rather than failing the count.
    pub fn row_count(&self) -> usize {
        if self.tombstones == 0 {
            return self
                .batches
                .iter()
                .zip(&self.watermarks)
                .map(|(b, &w)| b.iter_rows(w).map_while(|r| r.ok()).count())
                .sum();
        }
        let mut n = 0usize;
        for (_, raw) in self.index.iter() {
            n += visible_chain_len(&self.batches, RowPtr::from_raw(raw));
        }
        n + self.null_key_payloads().len()
    }

    /// Whether this snapshot contains tombstones (visibility-aware scan).
    pub fn has_tombstones(&self) -> bool {
        self.tombstones > 0
    }

    /// NULL-key data rows, which live outside every chain: collected via
    /// a physical pass that skips tombstones and undecodable rows.
    fn null_key_payloads(&self) -> Vec<&[u8]> {
        let mut out = Vec::new();
        for (b, &w) in self.batches.iter().zip(&self.watermarks) {
            for (_, _, kind, payload) in b.iter_rows_full(w).map_while(|r| r.ok()) {
                if kind == RowKind::Data
                    && self
                        .layout
                        .decode_column(payload, self.key_col)
                        .map(|v| v.is_null())
                        .unwrap_or(false)
                {
                    out.push(payload);
                }
            }
        }
        out
    }

    /// Follow the backward-pointer chain for `key`, latest row first,
    /// yielding decoded payload slices.
    ///
    /// The probe goes through the cTrie's borrowed-key entry point: no
    /// `Value` is cloned and no heap allocation happens on this path.
    pub fn lookup_payloads(&self, key: &Value) -> ChainIter<'_> {
        let head = if key.is_null() {
            RowPtr::NULL
        } else {
            self.index
                .lookup_with_borrowed(key, |raw| RowPtr::from_raw(*raw))
                .unwrap_or(RowPtr::NULL)
        };
        if idf_obs::enabled() && !key.is_null() {
            let m = idf_obs::global();
            if head.is_null() {
                m.probe_misses.inc();
            } else {
                m.probe_hits.inc();
            }
            self.record_probe_age();
        }
        ChainIter {
            snapshot: self,
            next: head,
            hit: !head.is_null(),
            walked: 0,
        }
    }

    /// Record how stale the probed snapshot is. Only snapshots the
    /// sampler stamped carry a timestamp, so most probes skip the
    /// `elapsed()` clock read; compiled-out builds skip it entirely.
    #[cfg(feature = "obs")]
    fn record_probe_age(&self) {
        if let Some(t) = self.created_at {
            idf_obs::global()
                .snapshot_age_ns
                .record(t.elapsed().as_nanos() as u64);
        }
    }

    #[cfg(not(feature = "obs"))]
    fn record_probe_age(&self) {}

    /// All rows bound to `key` as a chunk (latest first), with optional
    /// column projection. This is the paper's `getRows` on one partition.
    pub fn lookup_chunk(&self, key: &Value, projection: Option<&[usize]>) -> Result<Chunk> {
        crate::failpoints::check(crate::failpoints::PARTITION_PROBE)?;
        let cols = self.projected_cols(projection);
        let mut builders = self.new_builders(&cols);
        let n = self.decode_chain_into(key, &cols, &mut builders)?;
        if builders.is_empty() {
            return Ok(Chunk::new_empty_columns(n));
        }
        Chunk::new(builders.into_iter().map(|b| Arc::new(b.finish())).collect())
    }

    /// All rows bound to *any* of `keys` as one chunk, sharing a single
    /// set of column builders across every probe. Rows are grouped by key
    /// in the order given, each key's chain latest-first. Callers pass the
    /// partition-local slice of a batched `getRows` — see
    /// [`crate::table::TableSnapshot::lookup_batch`].
    pub fn lookup_chunk_multi(
        &self,
        keys: &[Value],
        projection: Option<&[usize]>,
    ) -> Result<Chunk> {
        self.lookup_chunk_multi_ctx(keys, projection, None)
    }

    /// [`Self::lookup_chunk_multi`] under a query lifecycle token:
    /// cancellation/deadline is checked between key probes and the result
    /// chunk is billed to the query's memory budget.
    pub fn lookup_chunk_multi_ctx(
        &self,
        keys: &[Value],
        projection: Option<&[usize]>,
        query: Option<&QueryContext>,
    ) -> Result<Chunk> {
        crate::failpoints::check(crate::failpoints::PARTITION_PROBE)?;
        let cols = self.projected_cols(projection);
        let mut builders = self.new_builders(&cols);
        let mut n = 0usize;
        for key in keys {
            if let Some(q) = query {
                q.check()?;
            }
            n += self.decode_chain_into(key, &cols, &mut builders)?;
        }
        if builders.is_empty() {
            return Ok(Chunk::new_empty_columns(n));
        }
        let chunk = Chunk::new(builders.into_iter().map(|b| Arc::new(b.finish())).collect())?;
        if let Some(q) = query {
            q.charge_memory(chunk.byte_size())?;
        }
        Ok(chunk)
    }

    fn projected_cols(&self, projection: Option<&[usize]>) -> Vec<usize> {
        match projection {
            Some(p) => p.to_vec(),
            None => (0..self.layout.schema().len()).collect(),
        }
    }

    fn new_builders(&self, cols: &[usize]) -> Vec<ColumnBuilder> {
        cols.iter()
            .map(|&c| ColumnBuilder::new(self.layout.schema().field(c).data_type))
            .collect()
    }

    /// Decode `key`'s whole chain into `builders`; returns the row count.
    fn decode_chain_into(
        &self,
        key: &Value,
        cols: &[usize],
        builders: &mut [ColumnBuilder],
    ) -> Result<usize> {
        let mut n = 0usize;
        for payload in self.lookup_payloads(key) {
            self.layout.decode_into(payload?, cols, builders)?;
            n += 1;
        }
        Ok(n)
    }

    /// Number of rows bound to `key`.
    pub fn lookup_count(&self, key: &Value) -> Result<usize> {
        let mut n = 0usize;
        for payload in self.lookup_payloads(key) {
            payload?;
            n += 1;
        }
        Ok(n)
    }

    /// Full scan into chunks of at most `chunk_rows` rows — the paper's
    /// `transformToRowRDD` fallback that lets regular operators run over
    /// the indexed representation.
    pub fn scan_chunks(
        &self,
        projection: Option<&[usize]>,
        chunk_rows: usize,
    ) -> Result<Vec<Chunk>> {
        self.scan_chunks_ctx(projection, chunk_rows, None)
    }

    /// [`Self::scan_chunks`] under a query lifecycle token:
    /// cancellation/deadline is checked at every chunk boundary and each
    /// produced chunk is billed to the query's memory budget.
    pub fn scan_chunks_ctx(
        &self,
        projection: Option<&[usize]>,
        chunk_rows: usize,
        query: Option<&QueryContext>,
    ) -> Result<Vec<Chunk>> {
        let cols = self.projected_cols(projection);
        let mut out = Vec::new();
        let mut builders = self.new_builders(&cols);
        let mut rows_in_chunk = 0usize;
        // Tombstone-free snapshots scan in physical batch order (the
        // paper's `transformToRowRDD`); once tombstones exist the scan
        // walks the chains instead so hidden versions stay hidden.
        let payloads: Box<dyn Iterator<Item = Result<&[u8]>> + '_> = if self.tombstones == 0 {
            Box::new(
                self.batches
                    .iter()
                    .zip(&self.watermarks)
                    .flat_map(|(b, &w)| b.iter_rows(w).map(|r| r.map(|(_, _, p)| p))),
            )
        } else {
            Box::new(self.visible_payloads()?.into_iter().map(Ok))
        };
        for payload in payloads {
            self.layout.decode_into(payload?, &cols, &mut builders)?;
            rows_in_chunk += 1;
            if rows_in_chunk >= chunk_rows {
                if let Some(q) = query {
                    q.check()?;
                }
                let chunk = finish_chunk(&cols, &mut builders, self.schema(), rows_in_chunk)?;
                if let Some(q) = query {
                    q.charge_memory(chunk.byte_size())?;
                }
                out.push(chunk);
                rows_in_chunk = 0;
            }
        }
        if rows_in_chunk > 0 || out.is_empty() {
            out.push(finish_chunk(
                &cols,
                &mut builders,
                self.schema(),
                rows_in_chunk,
            )?);
        }
        Ok(out)
    }

    /// Every visible payload of a tombstone-carrying snapshot: each key's
    /// chain down to its first tombstone (latest first), then the
    /// chain-less NULL-key rows.
    fn visible_payloads(&self) -> Result<Vec<&[u8]>> {
        let mut out = Vec::new();
        for (_, raw) in self.index.iter() {
            let mut next = RowPtr::from_raw(raw);
            while !next.is_null() {
                let batch = self.batches.get(next.batch()).ok_or_else(|| {
                    EngineError::internal(format!(
                        "chain pointer names batch {} of {}",
                        next.batch(),
                        self.batches.len()
                    ))
                })?;
                let (_, prev, kind, payload) = batch.row_at_full(next.offset())?;
                if kind == RowKind::Tombstone {
                    break;
                }
                out.push(payload);
                next = prev;
            }
        }
        out.extend(self.null_key_payloads());
        Ok(out)
    }

    /// Decode one payload into scalars.
    ///
    /// # Errors
    /// Fails on a payload that does not match the partition's layout.
    pub fn decode_row(&self, payload: &[u8]) -> Result<Vec<Value>> {
        self.layout.decode_row(payload)
    }

    /// Decode the projected columns of one payload.
    ///
    /// # Errors
    /// Fails on a payload that does not match the partition's layout.
    pub fn decode_projected(&self, payload: &[u8], cols: &[usize]) -> Result<Vec<Value>> {
        cols.iter()
            .map(|&c| self.layout.decode_column(payload, c))
            .collect()
    }

    /// Decode a single column of one payload without allocation overhead.
    ///
    /// # Errors
    /// Fails on a payload that does not match the partition's layout.
    pub fn decode_value(&self, payload: &[u8], col: usize) -> Result<Value> {
        self.layout.decode_column(payload, col)
    }

    /// Vectorized gather: decode one column across many payloads.
    ///
    /// # Errors
    /// Fails on a payload that does not match the partition's layout.
    pub fn decode_column_batch(
        &self,
        payloads: &[&[u8]],
        col: usize,
    ) -> Result<idf_engine::column::Column> {
        self.layout.decode_column_batch(payloads, col)
    }

    /// The index column position.
    pub fn key_col(&self) -> usize {
        self.key_col
    }

    /// Distinct keys in the snapshot's index.
    pub fn key_count(&self) -> usize {
        self.index.len()
    }

    /// The snapshot's row batches as `(capacity, committed_prefix)` pairs
    /// for checkpoint serialization. The prefix is cut at the snapshot
    /// watermark, so bytes appended after the snapshot never leak into a
    /// checkpoint.
    pub fn export_batches(&self) -> Vec<(usize, &[u8])> {
        self.batches
            .iter()
            .zip(&self.watermarks)
            .map(|(b, &w)| (b.capacity(), &b.committed_bytes()[..w]))
            .collect()
    }

    /// The snapshot's index as `(key, packed pointer)` pairs for
    /// checkpoint serialization; restored via [`IndexedPartition::restore`].
    pub fn export_index(&self) -> Vec<(Value, u64)> {
        self.index.iter().collect()
    }
}

fn finish_chunk(
    cols: &[usize],
    builders: &mut [ColumnBuilder],
    schema: &SchemaRef,
    rows: usize,
) -> Result<Chunk> {
    if builders.is_empty() {
        return Ok(Chunk::new_empty_columns(rows));
    }
    let finished: Vec<_> = cols
        .iter()
        .zip(builders.iter_mut())
        .map(|(&c, b)| {
            let done = std::mem::replace(b, ColumnBuilder::new(schema.field(c).data_type));
            Arc::new(done.finish())
        })
        .collect();
    Chunk::new(finished)
}

/// Iterator over a key's backward-pointer chain (latest row first).
/// Fused: a corrupt pointer yields one `Err` and then terminates.
///
/// On drop, a chain that started from a successful probe records how many
/// rows it walked into the global chain-walk-length histogram.
pub struct ChainIter<'a> {
    snapshot: &'a PartitionSnapshot,
    next: RowPtr,
    /// Whether the probe found a head (misses are not chain walks).
    hit: bool,
    /// Rows yielded so far.
    walked: u32,
}

impl<'a> Iterator for ChainIter<'a> {
    type Item = Result<&'a [u8]>;

    fn next(&mut self) -> Option<Result<&'a [u8]>> {
        if self.next.is_null() {
            return None;
        }
        let ptr = self.next;
        let Some(batch) = self.snapshot.batches.get(ptr.batch()) else {
            self.next = RowPtr::NULL;
            return Some(Err(EngineError::internal(format!(
                "chain pointer names batch {} of {}",
                ptr.batch(),
                self.snapshot.batches.len()
            ))));
        };
        match batch.row_at_full(ptr.offset()) {
            Ok((stored, prev, kind, payload)) => {
                debug_assert_eq!(stored, ptr.size(), "pointer size must match stored row");
                if kind == RowKind::Tombstone {
                    // The visible chain ends here: every older version of
                    // this key is deleted. Decoding the tombstone was
                    // still a physical row read, so it counts toward the
                    // walk length — this is exactly the hop a compaction
                    // rewrite removes from every surviving key's probe.
                    self.walked += 1;
                    self.next = RowPtr::NULL;
                    return None;
                }
                self.next = prev;
                self.walked += 1;
                Some(Ok(payload))
            }
            Err(e) => {
                self.next = RowPtr::NULL;
                Some(Err(e))
            }
        }
    }
}

impl Drop for ChainIter<'_> {
    fn drop(&mut self) {
        // Chain-walk length is a distribution, not an exact count, so it
        // rides the same 1-in-N probe sample as the snapshot-age clock —
        // unsampled probes pay only this flag check.
        #[cfg(feature = "obs")]
        if self.hit && self.snapshot.sampled() {
            idf_obs::global().chain_walk.record(u64::from(self.walked));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idf_engine::schema::{Field, Schema};
    use idf_engine::types::DataType;

    fn schema() -> SchemaRef {
        Arc::new(Schema::new(vec![
            Field::new("k", DataType::Int64),
            Field::new("v", DataType::Utf8),
        ]))
    }

    fn partition() -> IndexedPartition {
        IndexedPartition::new(schema(), 0, IndexConfig::default())
    }

    fn row(k: i64, v: &str) -> Vec<Value> {
        vec![Value::Int64(k), Value::Utf8(v.into())]
    }

    #[test]
    fn append_and_point_lookup() {
        let p = partition();
        p.append_row(&row(1, "a")).unwrap();
        p.append_row(&row(2, "b")).unwrap();
        p.append_row(&row(1, "c")).unwrap();
        let s = p.snapshot();
        let chunk = s.lookup_chunk(&Value::Int64(1), None).unwrap();
        assert_eq!(chunk.len(), 2);
        // Latest first.
        assert_eq!(chunk.value_at(1, 0), Value::Utf8("c".into()));
        assert_eq!(chunk.value_at(1, 1), Value::Utf8("a".into()));
        assert_eq!(s.lookup_count(&Value::Int64(2)).unwrap(), 1);
        assert_eq!(s.lookup_count(&Value::Int64(99)).unwrap(), 0);
    }

    /// The maintained key counter must agree with the trie's O(n) count
    /// through duplicate keys, NULL keys, and checkpoint restore — it is
    /// what planner statistics report as `index_entries`.
    #[test]
    fn key_count_tracks_the_index_exactly() {
        let p = partition();
        for i in 0..50 {
            p.append_row(&row(i, "first")).unwrap();
            p.append_row(&row(i, "dup")).unwrap();
        }
        p.append_row(&[Value::Null, Value::Utf8("unindexed".into())])
            .unwrap();
        let m = p.memory_stats();
        assert_eq!(m.index_entries, 50);
        assert_eq!(m.index_entries, p.index.len(), "counter drifted from trie");
        assert_eq!(m.rows, 101);

        // Restore seeds the counter from the dumped entries (the same
        // export/rebuild path the checkpoint reader uses).
        let s = p.snapshot();
        let batches: Vec<Arc<RowBatch>> = s
            .export_batches()
            .into_iter()
            .map(|(cap, bytes)| Arc::new(RowBatch::from_committed_bytes(cap, bytes).unwrap()))
            .collect();
        let restored = IndexedPartition::restore(
            schema(),
            0,
            IndexConfig::default(),
            batches,
            s.export_index(),
            101,
        )
        .unwrap();
        assert_eq!(restored.memory_stats().index_entries, 50);
        restored.append_row(&row(999, "new")).unwrap();
        restored.append_row(&row(0, "dup-after-restore")).unwrap();
        assert_eq!(restored.memory_stats().index_entries, 51);
    }

    #[test]
    fn long_chains_across_batches() {
        let cfg = IndexConfig {
            batch_size: 256, // force many tiny batches
            max_row_size: 200,
            ..Default::default()
        };
        let p = IndexedPartition::new(schema(), 0, cfg);
        for i in 0..500 {
            p.append_row(&row(7, &format!("v{i}"))).unwrap();
        }
        let s = p.snapshot();
        assert_eq!(s.lookup_count(&Value::Int64(7)).unwrap(), 500);
        let payloads: Vec<_> = s
            .lookup_payloads(&Value::Int64(7))
            .collect::<Result<_>>()
            .unwrap();
        let first = s.decode_row(payloads[0]).unwrap();
        assert_eq!(first[1], Value::Utf8("v499".into()));
        let last = s.decode_row(payloads[499]).unwrap();
        assert_eq!(last[1], Value::Utf8("v0".into()));
    }

    #[test]
    fn scan_sees_all_rows_in_order() {
        let p = partition();
        for i in 0..100 {
            p.append_row(&row(i % 10, &format!("r{i}"))).unwrap();
        }
        let s = p.snapshot();
        assert_eq!(s.row_count(), 100);
        let chunks = s.scan_chunks(None, 32).unwrap();
        let total: usize = chunks.iter().map(Chunk::len).sum();
        assert_eq!(total, 100);
        assert_eq!(chunks[0].value_at(1, 0), Value::Utf8("r0".into()));
    }

    #[test]
    fn scan_with_projection() {
        let p = partition();
        p.append_row(&row(1, "abc")).unwrap();
        let s = p.snapshot();
        let chunks = s.scan_chunks(Some(&[1]), 10).unwrap();
        assert_eq!(chunks[0].num_columns(), 1);
        assert_eq!(chunks[0].value_at(0, 0), Value::Utf8("abc".into()));
    }

    #[test]
    fn null_keys_scanned_not_indexed() {
        let p = partition();
        p.append_row(&[Value::Null, Value::Utf8("ghost".into())])
            .unwrap();
        p.append_row(&row(1, "real")).unwrap();
        let s = p.snapshot();
        assert_eq!(s.row_count(), 2);
        assert_eq!(s.lookup_count(&Value::Null).unwrap(), 0);
        assert_eq!(s.key_count(), 1);
    }

    #[test]
    fn snapshot_isolation_from_later_appends() {
        let p = partition();
        p.append_row(&row(1, "a")).unwrap();
        let s = p.snapshot();
        p.append_row(&row(1, "b")).unwrap();
        p.append_row(&row(2, "c")).unwrap();
        assert_eq!(s.lookup_count(&Value::Int64(1)).unwrap(), 1);
        assert_eq!(s.lookup_count(&Value::Int64(2)).unwrap(), 0);
        assert_eq!(s.row_count(), 1);
        let s2 = p.snapshot();
        assert_eq!(s2.lookup_count(&Value::Int64(1)).unwrap(), 2);
        assert_eq!(s2.row_count(), 3);
    }

    #[test]
    fn oversized_row_rejected() {
        let p = partition();
        let big = "x".repeat(2000);
        let err = p.append_row(&row(1, &big)).unwrap_err();
        assert!(err.to_string().contains("at most"));
        assert_eq!(p.row_count(), 0);
    }

    #[test]
    fn concurrent_readers_while_appending() {
        let p = Arc::new(partition());
        let writer = {
            let p = Arc::clone(&p);
            std::thread::spawn(move || {
                for i in 0..5_000 {
                    p.append_row(&[Value::Int64(i % 50), Value::Utf8(format!("v{i}"))])
                        .unwrap();
                }
            })
        };
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let p = Arc::clone(&p);
                std::thread::spawn(move || {
                    let mut last_total = 0;
                    for _ in 0..50 {
                        let s = p.snapshot();
                        let mut total = 0;
                        for k in 0..50 {
                            total += s.lookup_count(&Value::Int64(k)).unwrap();
                        }
                        assert!(total >= last_total, "chains must only grow");
                        last_total = total;
                        // every chain is readable end-to-end
                        for payload in s.lookup_payloads(&Value::Int64(0)) {
                            let vals = s.decode_row(payload.unwrap()).unwrap();
                            assert_eq!(vals[0], Value::Int64(0));
                        }
                    }
                })
            })
            .collect();
        writer.join().unwrap();
        for r in readers {
            r.join().unwrap();
        }
        let s = p.snapshot();
        assert_eq!(s.row_count(), 5_000);
        assert_eq!(s.lookup_count(&Value::Int64(5)).unwrap(), 100);
    }

    fn tombstone_payload(p: &IndexedPartition, k: i64) -> Vec<u8> {
        p.encode_row(&[Value::Int64(k), Value::Null]).unwrap()
    }

    #[test]
    fn tombstone_ends_the_visible_chain() {
        let p = partition();
        p.append_row(&row(1, "a")).unwrap();
        p.append_row(&row(1, "b")).unwrap();
        p.append_row(&row(2, "other")).unwrap();
        let before = p.snapshot();
        let tomb = tombstone_payload(&p, 1);
        p.append_encoded_kind(&Value::Int64(1), &tomb, RowKind::Tombstone)
            .unwrap();
        // A snapshot taken before the delete still sees both versions.
        assert_eq!(before.lookup_count(&Value::Int64(1)).unwrap(), 2);
        assert_eq!(before.row_count(), 3);
        let after = p.snapshot();
        assert_eq!(after.lookup_count(&Value::Int64(1)).unwrap(), 0);
        assert_eq!(after.row_count(), 1, "only k=2 stays visible");
        let chunks = after.scan_chunks(None, 16).unwrap();
        let total: usize = chunks.iter().map(Chunk::len).sum();
        assert_eq!(total, 1, "scan hides deleted rows and the tombstone");
        // Re-insert above the tombstone: only the new version is visible.
        p.append_row(&row(1, "reborn")).unwrap();
        let s3 = p.snapshot();
        assert_eq!(s3.lookup_count(&Value::Int64(1)).unwrap(), 1);
        let chunk = s3.lookup_chunk(&Value::Int64(1), None).unwrap();
        assert_eq!(chunk.value_at(1, 0), Value::Utf8("reborn".into()));
        let m = p.memory_stats();
        assert_eq!(m.tombstones, 1);
        assert_eq!(m.dead_rows, 2);
        assert_eq!(m.rows, 5, "physical rows include the dead chain");
    }

    #[test]
    fn tombstones_reject_null_keys() {
        let p = partition();
        let payload = p
            .encode_row(&[Value::Null, Value::Utf8("x".into())])
            .unwrap();
        let err = p
            .append_encoded_kind(&Value::Null, &payload, RowKind::Tombstone)
            .unwrap_err();
        assert!(err.to_string().contains("NULL"), "got: {err}");
        assert_eq!(p.row_count(), 0);
    }

    #[test]
    fn compact_drops_dead_versions_and_keeps_answers() {
        let cfg = IndexConfig {
            batch_size: 512,
            max_row_size: 200,
            ..Default::default()
        };
        let p = IndexedPartition::new(schema(), 0, cfg.clone());
        for i in 0..20 {
            p.append_row(&row(i, "v0")).unwrap();
        }
        p.append_row(&[Value::Null, Value::Utf8("nullkey".into())])
            .unwrap();
        // Churn keys 0..10 (delete + re-insert, five rounds) …
        for round in 0..5 {
            for k in 0..10 {
                let tomb = tombstone_payload(&p, k);
                p.append_encoded_kind(&Value::Int64(k), &tomb, RowKind::Tombstone)
                    .unwrap();
                p.append_row(&row(k, &format!("r{round}"))).unwrap();
            }
        }
        // … and fully delete keys 15..20.
        for k in 15..20 {
            let tomb = tombstone_payload(&p, k);
            p.append_encoded_kind(&Value::Int64(k), &tomb, RowKind::Tombstone)
                .unwrap();
        }
        let before = p.snapshot();
        let stats = p.compact(&|| Ok(())).unwrap();
        assert!(stats.rows_after < stats.rows_before, "{stats:?}");
        assert!(stats.bytes_after < stats.bytes_before, "{stats:?}");
        assert!(stats.batches_after < stats.batches_before, "{stats:?}");
        // The pre-compaction snapshot is untouched (old Arc'ed batches).
        assert_eq!(before.lookup_count(&Value::Int64(0)).unwrap(), 1);
        assert_eq!(before.row_count(), 16);
        let after = p.snapshot();
        for k in 0..10 {
            let c = after.lookup_chunk(&Value::Int64(k), None).unwrap();
            assert_eq!(c.len(), 1);
            assert_eq!(c.value_at(1, 0), Value::Utf8("r4".into()));
        }
        for k in 10..15 {
            assert_eq!(after.lookup_count(&Value::Int64(k)).unwrap(), 1);
        }
        for k in 15..20 {
            assert_eq!(after.lookup_count(&Value::Int64(k)).unwrap(), 0);
        }
        assert_eq!(after.row_count(), before.row_count());
        let m = p.memory_stats();
        assert_eq!(m.index_entries, 20, "sentinels keep deleted keys");
        assert_eq!(m.dead_rows, 0);
        assert_eq!(m.tombstones, 5);
        // Appends keep working after the swap.
        p.append_row(&row(0, "post")).unwrap();
        assert_eq!(p.snapshot().lookup_count(&Value::Int64(0)).unwrap(), 2);
        // Deleted keys resurrect cleanly above their sentinel.
        p.append_row(&row(15, "back")).unwrap();
        assert_eq!(p.snapshot().lookup_count(&Value::Int64(15)).unwrap(), 1);
        // The compacted bytes round-trip through the checkpoint path.
        let s = p.snapshot();
        let batches: Vec<Arc<RowBatch>> = s
            .export_batches()
            .into_iter()
            .map(|(cap, bytes)| Arc::new(RowBatch::from_committed_bytes(cap, bytes).unwrap()))
            .collect();
        let restored =
            IndexedPartition::restore(schema(), 0, cfg, batches, s.export_index(), p.row_count())
                .unwrap();
        // All five sentinels are still physically present (key 15's new
        // row sits above its sentinel, it does not remove it).
        assert_eq!(restored.tombstone_count(), 5);
        let rs = restored.snapshot();
        assert_eq!(rs.lookup_count(&Value::Int64(0)).unwrap(), 2);
        assert_eq!(rs.lookup_count(&Value::Int64(16)).unwrap(), 0);
        assert_eq!(rs.row_count(), s.row_count());
    }

    #[test]
    fn compact_is_a_noop_without_tombstones() {
        let p = partition();
        for i in 0..50 {
            p.append_row(&row(i % 5, "v")).unwrap();
        }
        let stats = p.compact(&|| Ok(())).unwrap();
        assert_eq!(stats.rows_before, stats.rows_after);
        assert_eq!(stats.rows_reclaimed(), 0);
        assert_eq!(p.snapshot().row_count(), 50);
    }

    #[test]
    fn compact_aborts_cleanly_when_pre_swap_fails() {
        let p = partition();
        p.append_row(&row(1, "a")).unwrap();
        let tomb = tombstone_payload(&p, 1);
        p.append_encoded_kind(&Value::Int64(1), &tomb, RowKind::Tombstone)
            .unwrap();
        let err = p
            .compact(&|| Err(EngineError::exec("injected swap fault")))
            .unwrap_err();
        assert!(err.to_string().contains("injected swap fault"));
        // Nothing swapped: the dead version is still reclaimable.
        let m = p.memory_stats();
        assert_eq!(m.rows, 2);
        assert_eq!(m.tombstones, 1);
        assert_eq!(m.dead_rows, 1);
        let stats = p.compact(&|| Ok(())).unwrap();
        assert_eq!(stats.rows_after, 1, "retry succeeds");
    }

    #[test]
    fn snapshots_stay_consistent_across_concurrent_compaction() {
        let p = Arc::new(partition());
        for k in 0..100 {
            p.append_row(&row(k, "v")).unwrap();
        }
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let p = Arc::clone(&p);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        let s = p.snapshot();
                        // One churned key may be mid delete+reinsert.
                        let n = s.row_count();
                        assert!((99..=100).contains(&n), "visible rows {n}");
                        for k in [75i64, 99] {
                            assert_eq!(s.lookup_count(&Value::Int64(k)).unwrap(), 1);
                        }
                    }
                })
            })
            .collect();
        for round in 0..10 {
            for k in 0..50 {
                let tomb = tombstone_payload(&p, k);
                p.append_encoded_kind(&Value::Int64(k), &tomb, RowKind::Tombstone)
                    .unwrap();
                p.append_row(&row(k, &format!("r{round}"))).unwrap();
            }
            p.compact(&|| Ok(())).unwrap();
        }
        stop.store(true, Ordering::Relaxed);
        for r in readers {
            r.join().unwrap();
        }
        let s = p.snapshot();
        assert_eq!(s.row_count(), 100);
        assert_eq!(p.memory_stats().dead_rows, 0);
    }

    #[test]
    fn memory_stats_track_data() {
        let p = partition();
        for i in 0..100 {
            p.append_row(&row(i, "some value here")).unwrap();
        }
        let m = p.memory_stats();
        assert_eq!(m.rows, 100);
        assert_eq!(m.index_entries, 100);
        assert!(m.data_bytes > 100 * ROW_HEADER);
        assert!(m.reserved_bytes >= m.data_bytes);
    }
}
