//! Binary row encoding — the analogue of Spark's `UnsafeRow`.
//!
//! Paper, §2: row batches are *"collections of binary, unsafe arrays"*. A
//! row payload is encoded as:
//!
//! ```text
//! | null bitmap: ceil(n/8) bytes | fixed section: 8 bytes per column | var section |
//! ```
//!
//! Fixed slots hold the value directly for primitives, or
//! `(var_offset: u32, byte_len: u32)` for strings, with the var section
//! appended after the fixed slots.

use idf_engine::column::{Column, ColumnBuilder};
use idf_engine::error::{EngineError, Result};
use idf_engine::schema::SchemaRef;
use idf_engine::types::{DataType, Value};

/// Encoder/decoder for one schema.
#[derive(Debug, Clone)]
pub struct RowLayout {
    schema: SchemaRef,
    null_bytes: usize,
}

/// A payload that does not match the layout — truncated fixed section,
/// var-section pointer past the end, or invalid UTF-8. Decoding is the
/// untrusted half of the row format: a corrupt backward pointer can hand
/// us arbitrary committed bytes, and that must surface as a typed error,
/// never a slice panic that poisons the append mutex.
#[cold]
fn corrupt(what: &str) -> EngineError {
    EngineError::internal(format!("corrupt row payload: {what}"))
}

/// Checked fixed-width read of `W` bytes at `at`.
#[inline]
fn fixed<const W: usize>(payload: &[u8], at: usize) -> Result<[u8; W]> {
    at.checked_add(W)
        .and_then(|end| payload.get(at..end))
        .and_then(|s| s.try_into().ok())
        .ok_or_else(|| corrupt("fixed slot out of bounds"))
}

/// Write `bytes` into the fixed section at `at` during encoding. The
/// encoder just resized the buffer to cover the whole fixed section, so
/// a miss is a programmer error in the offset arithmetic.
#[inline]
fn put(out: &mut [u8], at: usize, bytes: &[u8]) {
    // idf-lint: allow(hot-path-panic) -- indexing a buffer encode just resized
    out[at..at + bytes.len()].copy_from_slice(bytes);
}

impl RowLayout {
    /// Layout for `schema`.
    pub fn new(schema: SchemaRef) -> Self {
        let null_bytes = schema.len().div_ceil(8);
        RowLayout { schema, null_bytes }
    }

    /// The row schema.
    pub fn schema(&self) -> &SchemaRef {
        &self.schema
    }

    #[inline]
    fn fixed_offset(&self, col: usize) -> usize {
        self.null_bytes + col * 8
    }

    #[inline]
    fn var_start(&self) -> usize {
        self.null_bytes + self.schema.len() * 8
    }

    /// Encode one row (appending to `out`, which the caller clears).
    /// Values must match the schema's types (or be `Null`).
    pub fn encode(&self, values: &[Value], out: &mut Vec<u8>) -> Result<()> {
        if values.len() != self.schema.len() {
            return Err(EngineError::internal(format!(
                "row width {} vs schema width {}",
                values.len(),
                self.schema.len()
            )));
        }
        let base = out.len();
        out.resize(base + self.var_start(), 0);
        // The writes below index into the section the resize just sized:
        // a miss is a programmer error in the offset arithmetic, not
        // data-dependent, so plain indexing is in-contract here (the
        // decode half is where bytes are untrusted).
        for (col, v) in values.iter().enumerate() {
            if v.is_null() {
                // idf-lint: allow(hot-path-panic) -- bitmap byte sized by the resize above
                out[base + col / 8] |= 1 << (col % 8);
                continue;
            }
            let slot = base + self.fixed_offset(col);
            let dt = self.schema.field(col).data_type;
            match (dt, v) {
                (DataType::Boolean, Value::Boolean(b)) => put(out, slot, &[u8::from(*b)]),
                (DataType::Int32, Value::Int32(x)) => put(out, slot, &x.to_le_bytes()),
                (DataType::Int64, Value::Int64(x)) | (DataType::Timestamp, Value::Timestamp(x)) => {
                    put(out, slot, &x.to_le_bytes())
                }
                (DataType::Float64, Value::Float64(x)) => put(out, slot, &x.to_le_bytes()),
                (DataType::Utf8, Value::Utf8(s)) => {
                    let var_off = (out.len() - base - self.var_start()) as u32;
                    let len = s.len() as u32;
                    out.extend_from_slice(s.as_bytes());
                    put(out, slot, &var_off.to_le_bytes());
                    put(out, slot + 4, &len.to_le_bytes());
                }
                (dt, v) => {
                    return Err(EngineError::type_err(format!(
                        "value {v:?} does not fit {dt} column '{}'",
                        self.schema.field(col).name
                    )))
                }
            }
        }
        Ok(())
    }

    #[inline]
    fn is_null(&self, payload: &[u8], col: usize) -> Result<bool> {
        let byte = payload
            .get(col / 8)
            .ok_or_else(|| corrupt("null bitmap truncated"))?;
        Ok(byte & (1 << (col % 8)) != 0)
    }

    /// Decode one column of an encoded payload.
    ///
    /// # Errors
    /// Fails when the payload does not match this layout (truncated,
    /// out-of-range var pointer, or invalid UTF-8) — a typed `corrupt row payload` error.
    pub fn decode_column(&self, payload: &[u8], col: usize) -> Result<Value> {
        if self.is_null(payload, col)? {
            return Ok(Value::Null);
        }
        let slot = self.fixed_offset(col);
        Ok(match self.schema.field(col).data_type {
            DataType::Boolean => {
                let [b] = fixed::<1>(payload, slot)?;
                Value::Boolean(b != 0)
            }
            DataType::Int32 => Value::Int32(i32::from_le_bytes(fixed(payload, slot)?)),
            DataType::Int64 => Value::Int64(i64::from_le_bytes(fixed(payload, slot)?)),
            DataType::Timestamp => Value::Timestamp(i64::from_le_bytes(fixed(payload, slot)?)),
            DataType::Float64 => Value::Float64(f64::from_le_bytes(fixed(payload, slot)?)),
            DataType::Utf8 => Value::Utf8(self.decode_str(payload, slot)?.to_owned()),
        })
    }

    #[inline]
    fn decode_str<'a>(&self, payload: &'a [u8], slot: usize) -> Result<&'a str> {
        let var_off = u32::from_le_bytes(fixed(payload, slot)?) as usize;
        let len = u32::from_le_bytes(fixed(payload, slot + 4)?) as usize;
        let start = self
            .var_start()
            .checked_add(var_off)
            .ok_or_else(|| corrupt("var offset overflows"))?;
        let end = start
            .checked_add(len)
            .ok_or_else(|| corrupt("var length overflows"))?;
        let bytes = payload
            .get(start..end)
            .ok_or_else(|| corrupt("var section out of bounds"))?;
        std::str::from_utf8(bytes).map_err(|_| corrupt("string column is not valid utf8"))
    }

    /// Decode an entire row.
    ///
    /// # Errors
    /// Fails when the payload does not match this layout.
    pub fn decode_row(&self, payload: &[u8]) -> Result<Vec<Value>> {
        (0..self.schema.len())
            .map(|c| self.decode_column(payload, c))
            .collect()
    }

    /// Decode one column across many payloads into a column vector —
    /// the vectorized gather used by the indexed join's output
    /// materialization.
    /// # Errors
    /// Fails when any payload does not match this layout.
    pub fn decode_column_batch(&self, payloads: &[&[u8]], col: usize) -> Result<Column> {
        use idf_engine::column::{PrimVec, StrVec};
        let slot = self.fixed_offset(col);
        let n = payloads.len();
        macro_rules! prim {
            ($ty:ty, $variant:ident) => {{
                let mut values: Vec<$ty> = Vec::with_capacity(n);
                let mut validity: Option<idf_engine::bitmap::Bitmap> = None;
                for (i, p) in payloads.iter().enumerate() {
                    if self.is_null(p, col)? {
                        values.push(Default::default());
                        validity
                            .get_or_insert_with(|| {
                                let mut b = idf_engine::bitmap::Bitmap::zeros(n);
                                for j in 0..i {
                                    b.set(j, true);
                                }
                                b
                            })
                            .set(i, false);
                    } else {
                        values.push(<$ty>::from_le_bytes(fixed(p, slot)?));
                        if let Some(b) = &mut validity {
                            b.set(i, true);
                        }
                    }
                }
                Column::$variant(PrimVec { values, validity })
            }};
        }
        Ok(match self.schema.field(col).data_type {
            DataType::Int32 => prim!(i32, Int32),
            DataType::Int64 => prim!(i64, Int64),
            DataType::Timestamp => prim!(i64, Timestamp),
            DataType::Float64 => prim!(f64, Float64),
            DataType::Boolean => {
                let mut values = Vec::with_capacity(n);
                let mut nulls = Vec::new();
                for (i, p) in payloads.iter().enumerate() {
                    if self.is_null(p, col)? {
                        values.push(false);
                        nulls.push(i);
                    } else {
                        let [b] = fixed::<1>(p, slot)?;
                        values.push(b != 0);
                    }
                }
                let validity = (!nulls.is_empty()).then(|| {
                    let mut b = idf_engine::bitmap::Bitmap::ones(n);
                    for i in nulls {
                        b.set(i, false);
                    }
                    b
                });
                Column::Boolean(PrimVec { values, validity })
            }
            DataType::Utf8 => {
                let mut v = StrVec::new();
                for p in payloads {
                    if self.is_null(p, col)? {
                        v.push(None);
                    } else {
                        v.push(Some(self.decode_str(p, slot)?));
                    }
                }
                Column::Utf8(v)
            }
        })
    }

    /// Append the projected columns of a payload into per-column builders
    /// (`cols[i]` is the source column for `builders[i]`). The row-major
    /// walk here is exactly why projections over the Indexed DataFrame are
    /// slower than over the columnar cache (paper, Figure 2).
    ///
    /// Decodes straight into the typed builders — no scalar boxing — since
    /// this is the hot path of every `transformToRowRDD`-style fallback
    /// scan.
    pub fn decode_into(
        &self,
        payload: &[u8],
        cols: &[usize],
        builders: &mut [ColumnBuilder],
    ) -> Result<()> {
        debug_assert_eq!(cols.len(), builders.len());
        for (b, &col) in builders.iter_mut().zip(cols) {
            let valid = !self.is_null(payload, col)?;
            let slot = self.fixed_offset(col);
            match b {
                ColumnBuilder::Boolean(v) => {
                    let val = if valid {
                        let [b] = fixed::<1>(payload, slot)?;
                        Some(b != 0)
                    } else {
                        None
                    };
                    v.push(val);
                }
                ColumnBuilder::Int32(v) => {
                    let val = if valid {
                        Some(i32::from_le_bytes(fixed(payload, slot)?))
                    } else {
                        None
                    };
                    v.push(val);
                }
                ColumnBuilder::Int64(v) | ColumnBuilder::Timestamp(v) => {
                    let val = if valid {
                        Some(i64::from_le_bytes(fixed(payload, slot)?))
                    } else {
                        None
                    };
                    v.push(val);
                }
                ColumnBuilder::Float64(v) => {
                    let val = if valid {
                        Some(f64::from_le_bytes(fixed(payload, slot)?))
                    } else {
                        None
                    };
                    v.push(val);
                }
                ColumnBuilder::Utf8(v) => {
                    if valid {
                        v.push(Some(self.decode_str(payload, slot)?));
                    } else {
                        v.push(None);
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idf_engine::schema::{Field, Schema};
    use std::sync::Arc;

    fn layout() -> RowLayout {
        RowLayout::new(Arc::new(Schema::new(vec![
            Field::new("id", DataType::Int64),
            Field::new("name", DataType::Utf8),
            Field::new("score", DataType::Float64),
            Field::new("active", DataType::Boolean),
            Field::new("small", DataType::Int32),
            Field::new("ts", DataType::Timestamp),
        ])))
    }

    fn roundtrip(values: Vec<Value>) {
        let l = layout();
        let mut buf = Vec::new();
        l.encode(&values, &mut buf).unwrap();
        assert_eq!(l.decode_row(&buf).unwrap(), values);
    }

    #[test]
    fn encodes_and_decodes_all_types() {
        roundtrip(vec![
            Value::Int64(42),
            Value::Utf8("hello world".into()),
            Value::Float64(2.5),
            Value::Boolean(true),
            Value::Int32(-7),
            Value::Timestamp(1_234_567),
        ]);
    }

    #[test]
    fn all_nulls() {
        roundtrip(vec![Value::Null; 6]);
    }

    #[test]
    fn empty_and_unicode_strings() {
        roundtrip(vec![
            Value::Int64(0),
            Value::Utf8("héllo→wörld".into()),
            Value::Null,
            Value::Null,
            Value::Null,
            Value::Null,
        ]);
        roundtrip(vec![
            Value::Int64(0),
            Value::Utf8(String::new()),
            Value::Float64(0.0),
            Value::Boolean(false),
            Value::Int32(0),
            Value::Timestamp(0),
        ]);
    }

    #[test]
    fn corrupt_payloads_error_instead_of_panicking() {
        let l = layout();
        let mut buf = Vec::new();
        l.encode(
            &[
                Value::Int64(1),
                Value::Utf8("abc".into()),
                Value::Float64(0.5),
                Value::Boolean(true),
                Value::Int32(2),
                Value::Timestamp(3),
            ],
            &mut buf,
        )
        .unwrap();

        // Empty payload: even the null bitmap is missing.
        assert!(l.decode_row(&[]).is_err());
        // Truncated fixed section.
        assert!(l.decode_row(&buf[..3]).is_err());
        assert!(l.decode_column(&buf[..3], 0).is_err());
        // String length pointing past the var section (slot of column 1 is
        // null_bytes + 8 = 9; its len field sits at slot + 4).
        let mut evil = buf.clone();
        evil[13..17].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(l.decode_column(&evil, 1).is_err());
        assert!(l.decode_column_batch(&[&evil], 1).is_err());
        // Invalid UTF-8 in the var section.
        let mut bad_utf8 = buf.clone();
        let var = bad_utf8.len() - 3;
        bad_utf8[var] = 0xFF;
        assert!(l.decode_column(&bad_utf8, 1).is_err());
        // Other columns of a partly corrupt row still decode.
        assert_eq!(l.decode_column(&bad_utf8, 0).unwrap(), Value::Int64(1));
        // decode_into surfaces the same errors.
        let mut builders = vec![ColumnBuilder::new(DataType::Utf8)];
        assert!(l.decode_into(&evil, &[1], &mut builders).is_err());
    }

    #[test]
    fn type_mismatch_rejected() {
        let l = layout();
        let mut buf = Vec::new();
        let mut row = vec![Value::Null; 6];
        row[0] = Value::Utf8("not an int".into());
        assert!(l.encode(&row, &mut buf).is_err());
    }

    #[test]
    fn width_mismatch_rejected() {
        let l = layout();
        let mut buf = Vec::new();
        assert!(l.encode(&[Value::Int64(1)], &mut buf).is_err());
    }

    #[test]
    fn decode_into_builders_projects() {
        let l = layout();
        let mut buf = Vec::new();
        l.encode(
            &[
                Value::Int64(7),
                Value::Utf8("x".into()),
                Value::Float64(1.0),
                Value::Boolean(false),
                Value::Int32(3),
                Value::Timestamp(9),
            ],
            &mut buf,
        )
        .unwrap();
        let mut builders = vec![
            ColumnBuilder::new(DataType::Utf8),
            ColumnBuilder::new(DataType::Int64),
        ];
        l.decode_into(&buf, &[1, 0], &mut builders).unwrap();
        let name_col = builders.remove(0).finish();
        assert_eq!(name_col.value_at(0), Value::Utf8("x".into()));
        let id_col = builders.remove(0).finish();
        assert_eq!(id_col.value_at(0), Value::Int64(7));
    }

    #[test]
    fn encode_appends_after_existing_bytes() {
        let l = layout();
        let mut buf = vec![0xAA, 0xBB];
        let row = vec![
            Value::Int64(1),
            Value::Utf8("abc".into()),
            Value::Null,
            Value::Null,
            Value::Null,
            Value::Null,
        ];
        l.encode(&row, &mut buf).unwrap();
        assert_eq!(&buf[..2], &[0xAA, 0xBB]);
        assert_eq!(l.decode_row(&buf[2..]).unwrap(), row);
    }
}
