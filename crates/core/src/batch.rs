//! Row batches: fixed-capacity, append-only binary buffers.
//!
//! Paper, §2: *"a set of row batches, which stores the tabular data …
//! collections of binary, unsafe arrays (e.g., of 4 MB in size)"*.
//!
//! A batch is allocated at full capacity up front and **never reallocates**,
//! so a published row's bytes are stable for the batch's lifetime. A single
//! writer (appends within a partition are sequential, as in Spark) bumps a
//! committed-length watermark with `Release` ordering after writing row
//! bytes; readers load it with `Acquire` and only ever dereference below
//! it. This gives lock-free, wait-free reads concurrent with appends — the
//! storage half of the paper's multi-version concurrency (the index half is
//! the cTrie snapshot).
//!
//! Stored row format:
//!
//! ```text
//! | stored_len: u16 | prev_ptr: u64 | payload ... |
//! ```
//!
//! `prev_ptr` is the backward pointer: a packed [`RowPtr`] to the previous
//! row with the same key (the per-key linked list of the paper), carrying
//! that row's stored size. `stored_len` makes full scans self-delimiting.
//!
//! The top bit of `stored_len` is the **row-kind flag**: set for a
//! tombstone ([`RowKind::Tombstone`]), clear for a data row. A stored row
//! is at most `MAX_ROW_SIZE` (1023) bytes, so the true length always fits
//! in the low bits and the flag costs no extra framing — which is what
//! lets checkpoints (raw committed bytes) round-trip row kinds
//! bit-for-bit with no format change.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicUsize, Ordering};

use idf_engine::error::{EngineError, Result};

use crate::pointer::RowPtr;
use crate::sink::RowKind;

/// Bytes of per-row framing: u16 stored length + u64 backward pointer.
pub const ROW_HEADER: usize = 2 + 8;

/// Bit 15 of `stored_len`: set when the stored row is a tombstone.
const KIND_TOMBSTONE_BIT: u16 = 0x8000;

/// Low bits of `stored_len`: the true stored byte count.
const STORED_LEN_MASK: u16 = 0x7FFF;

/// Checked fixed-width read of `W` header bytes at `at` — a corrupt or
/// truncated header surfaces as a typed error, never a slice panic.
#[inline]
fn header_bytes<const W: usize>(head: &[u8], at: usize) -> Result<[u8; W]> {
    at.checked_add(W)
        .and_then(|end| head.get(at..end))
        .and_then(|s| s.try_into().ok())
        .ok_or_else(|| EngineError::internal(format!("row header truncated at byte {at}")))
}

/// One append-only binary row batch.
pub struct RowBatch {
    buf: Box<[UnsafeCell<u8>]>,
    /// Committed byte count; bytes below this are immutable.
    len: AtomicUsize,
}

// SAFETY: sending a batch moves the whole buffer; bytes below `len` are
// immutable once published (Release store after the writes, Acquire load
// before the reads) and bytes above `len` are touched only by the
// partition's single writer.
unsafe impl Send for RowBatch {}
// SAFETY: shared readers only dereference bytes below the Acquire-loaded
// watermark, which the single writer froze with its Release store.
unsafe impl Sync for RowBatch {}

impl RowBatch {
    /// Allocate a batch of fixed `capacity` bytes.
    pub fn with_capacity(capacity: usize) -> Self {
        let mut v = Vec::with_capacity(capacity);
        v.resize_with(capacity, || UnsafeCell::new(0));
        RowBatch {
            buf: v.into_boxed_slice(),
            len: AtomicUsize::new(0),
        }
    }

    /// Rebuild a batch from `data`, the committed bytes of a checkpointed
    /// batch, inside a fresh `capacity`-byte allocation. The restored
    /// committed prefix is immutable exactly as if the rows had been
    /// appended live, so the partition's single writer may keep appending
    /// after `data.len()`.
    ///
    /// # Errors
    /// Fails when `data` does not fit in `capacity` — a checkpoint that
    /// claims more committed bytes than the batch can hold is corrupt.
    pub fn from_committed_bytes(capacity: usize, data: &[u8]) -> Result<Self> {
        if data.len() > capacity {
            return Err(EngineError::corrupt(format!(
                "restored batch claims {} committed bytes in a {capacity}-byte batch",
                data.len()
            )));
        }
        let mut v: Vec<UnsafeCell<u8>> = Vec::with_capacity(capacity);
        v.extend(data.iter().map(|&b| UnsafeCell::new(b)));
        v.resize_with(capacity, || UnsafeCell::new(0));
        Ok(RowBatch {
            buf: v.into_boxed_slice(),
            len: AtomicUsize::new(data.len()),
        })
    }

    /// The committed prefix as a byte slice (checkpoint serialization).
    pub fn committed_bytes(&self) -> &[u8] {
        let committed = self.len();
        // SAFETY: the committed prefix is immutable.
        unsafe { std::slice::from_raw_parts(self.buf.as_ptr() as *const u8, committed) }
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.buf.len()
    }

    /// Committed (readable) bytes.
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Acquire)
    }

    /// Whether no rows have been committed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Free bytes.
    pub fn remaining(&self) -> usize {
        self.capacity() - self.len()
    }

    /// Append one stored data row; returns its byte offset, or `None` if
    /// the batch is full.
    ///
    /// Must only be called by the partition's single writer (enforced by
    /// the partition's append lock).
    #[cfg_attr(not(test), allow(dead_code))] // the kind-aware sibling took over production use
    pub(crate) fn append_row(&self, prev: RowPtr, payload: &[u8]) -> Option<usize> {
        self.append_row_kind(prev, payload, RowKind::Data)
    }

    /// Append one stored row of the given [`RowKind`]; returns its byte
    /// offset, or `None` if the batch is full. See [`RowBatch::append_row`]
    /// for the single-writer contract.
    pub(crate) fn append_row_kind(
        &self,
        prev: RowPtr,
        payload: &[u8],
        kind: RowKind,
    ) -> Option<usize> {
        let stored = ROW_HEADER + payload.len();
        debug_assert!(
            stored <= STORED_LEN_MASK as usize,
            "stored row of {stored} bytes collides with the kind flag"
        );
        // idf-lint: allow(atomics-audit) -- single writer re-reads its own store (append lock held); readers see it via the Release publish below
        let offset = self.len.load(Ordering::Relaxed);
        if offset + stored > self.capacity() {
            return None;
        }
        let mut len_word = stored as u16;
        if kind == RowKind::Tombstone {
            len_word |= KIND_TOMBSTONE_BIT;
        }
        // SAFETY: single writer; the region [offset, offset+stored) is
        // above the committed watermark, so no reader can observe it yet.
        unsafe {
            let base = self.buf.as_ptr() as *mut u8;
            let dst = base.add(offset);
            let len_bytes = len_word.to_le_bytes();
            std::ptr::copy_nonoverlapping(len_bytes.as_ptr(), dst, 2);
            let prev_bytes = prev.raw().to_le_bytes();
            std::ptr::copy_nonoverlapping(prev_bytes.as_ptr(), dst.add(2), 8);
            std::ptr::copy_nonoverlapping(payload.as_ptr(), dst.add(ROW_HEADER), payload.len());
        }
        // Publish: readers that see the new watermark also see the bytes.
        self.len.store(offset + stored, Ordering::Release);
        Some(offset)
    }

    /// Read the committed bytes `[offset, offset + size)`.
    ///
    /// # Errors
    /// Returns an internal error if the range is not fully committed —
    /// a corrupt pointer must surface as a query error, not a panic that
    /// poisons the whole process.
    pub fn read(&self, offset: usize, size: usize) -> Result<&[u8]> {
        let committed = self.len();
        let end = offset
            .checked_add(size)
            .ok_or_else(|| EngineError::internal(format!("read [{offset}, +{size}) overflows")))?;
        if end > committed {
            return Err(EngineError::internal(format!(
                "read [{offset}, {end}) beyond committed {committed}"
            )));
        }
        // SAFETY: the committed prefix is immutable.
        let committed_slice =
            unsafe { std::slice::from_raw_parts(self.buf.as_ptr() as *const u8, committed) };
        committed_slice
            .get(offset..end)
            .ok_or_else(|| EngineError::internal(format!("read [{offset}, {end}) out of bounds")))
    }

    /// Decode the stored row at `offset`: `(stored_size, prev, payload)`.
    ///
    /// # Errors
    /// Fails when `offset` does not point at a committed, well-formed row.
    pub fn row_at(&self, offset: usize) -> Result<(usize, RowPtr, &[u8])> {
        let (stored, prev, _, payload) = self.row_at_full(offset)?;
        Ok((stored, prev, payload))
    }

    /// Decode the stored row at `offset` with its kind:
    /// `(stored_size, prev, kind, payload)`.
    ///
    /// # Errors
    /// Fails when `offset` does not point at a committed, well-formed row.
    pub fn row_at_full(&self, offset: usize) -> Result<(usize, RowPtr, RowKind, &[u8])> {
        crate::failpoints::check(crate::failpoints::BATCH_READ)?;
        let head = self.read(offset, ROW_HEADER)?;
        let len_word = u16::from_le_bytes(header_bytes::<2>(head, 0)?);
        let kind = if len_word & KIND_TOMBSTONE_BIT != 0 {
            RowKind::Tombstone
        } else {
            RowKind::Data
        };
        let stored = (len_word & STORED_LEN_MASK) as usize;
        if stored < ROW_HEADER {
            return Err(EngineError::internal(format!(
                "row at {offset} declares {stored} stored bytes, below the {ROW_HEADER}-byte header"
            )));
        }
        let prev = RowPtr::from_raw(u64::from_le_bytes(header_bytes::<8>(head, 2)?));
        let row = self.read(offset, stored)?;
        let payload = row.get(ROW_HEADER..).ok_or_else(|| {
            EngineError::internal(format!("row at {offset} shorter than its header"))
        })?;
        Ok((stored, prev, kind, payload))
    }

    /// Iterate rows sequentially up to `watermark` committed bytes
    /// (a snapshot boundary): yields `(offset, prev, payload)` for data
    /// rows **and** tombstones alike (callers that care use
    /// [`RowBatch::iter_rows_full`]).
    pub fn iter_rows(&self, watermark: usize) -> RowBatchIter<'_> {
        debug_assert!(watermark <= self.len());
        RowBatchIter {
            batch: self,
            offset: 0,
            watermark,
        }
    }

    /// Like [`RowBatch::iter_rows`] but yields each row's [`RowKind`]:
    /// `(offset, prev, kind, payload)`.
    pub fn iter_rows_full(&self, watermark: usize) -> RowBatchFullIter<'_> {
        debug_assert!(watermark <= self.len());
        RowBatchFullIter {
            batch: self,
            offset: 0,
            watermark,
        }
    }
}

impl std::fmt::Debug for RowBatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "RowBatch({} / {} bytes)", self.len(), self.capacity())
    }
}

/// Sequential row iterator over one batch (see [`RowBatch::iter_rows`]).
pub struct RowBatchIter<'a> {
    batch: &'a RowBatch,
    offset: usize,
    watermark: usize,
}

impl<'a> Iterator for RowBatchIter<'a> {
    type Item = Result<(usize, RowPtr, &'a [u8])>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.offset >= self.watermark {
            return None;
        }
        match self.batch.row_at(self.offset) {
            Ok((stored, prev, payload)) => {
                let offset = self.offset;
                self.offset += stored;
                Some(Ok((offset, prev, payload)))
            }
            Err(e) => {
                // Fuse: a malformed row makes every later offset suspect.
                self.offset = self.watermark;
                Some(Err(e))
            }
        }
    }
}

/// Kind-aware sequential row iterator (see [`RowBatch::iter_rows_full`]).
pub struct RowBatchFullIter<'a> {
    batch: &'a RowBatch,
    offset: usize,
    watermark: usize,
}

impl<'a> Iterator for RowBatchFullIter<'a> {
    type Item = Result<(usize, RowPtr, RowKind, &'a [u8])>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.offset >= self.watermark {
            return None;
        }
        match self.batch.row_at_full(self.offset) {
            Ok((stored, prev, kind, payload)) => {
                let offset = self.offset;
                self.offset += stored;
                Some(Ok((offset, prev, kind, payload)))
            }
            Err(e) => {
                // Fuse: a malformed row makes every later offset suspect.
                self.offset = self.watermark;
                Some(Err(e))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_and_read_back() {
        let b = RowBatch::with_capacity(1024);
        let off1 = b.append_row(RowPtr::NULL, b"hello").unwrap();
        let off2 = b
            .append_row(RowPtr::new(0, off1, ROW_HEADER + 5), b"world!")
            .unwrap();
        assert_eq!(off1, 0);
        assert_eq!(off2, ROW_HEADER + 5);
        let (s1, p1, pay1) = b.row_at(off1).unwrap();
        assert_eq!(
            (s1, p1, pay1),
            (ROW_HEADER + 5, RowPtr::NULL, &b"hello"[..])
        );
        let (_, p2, pay2) = b.row_at(off2).unwrap();
        assert_eq!(pay2, b"world!");
        assert_eq!(p2.offset(), off1);
        assert_eq!(p2.size(), ROW_HEADER + 5);
    }

    #[test]
    fn restore_roundtrip_and_continue_appending() {
        let b = RowBatch::with_capacity(1024);
        let off1 = b.append_row(RowPtr::NULL, b"hello").unwrap();
        b.append_row(RowPtr::new(0, off1, ROW_HEADER + 5), b"world!")
            .unwrap();
        let restored = RowBatch::from_committed_bytes(1024, b.committed_bytes()).unwrap();
        assert_eq!(restored.len(), b.len());
        assert_eq!(restored.capacity(), 1024);
        let (_, _, pay) = restored.row_at(off1).unwrap();
        assert_eq!(pay, b"hello");
        // The restored batch keeps accepting appends after the prefix.
        let off3 = restored.append_row(RowPtr::NULL, b"more").unwrap();
        assert_eq!(off3, b.len());
        assert_eq!(restored.row_at(off3).unwrap().2, b"more");
        // Oversized committed prefixes are corrupt, not a panic.
        assert!(RowBatch::from_committed_bytes(4, b.committed_bytes()).is_err());
    }

    #[test]
    fn fills_up_exactly() {
        let b = RowBatch::with_capacity(2 * (ROW_HEADER + 4));
        assert!(b.append_row(RowPtr::NULL, b"aaaa").is_some());
        assert!(b.append_row(RowPtr::NULL, b"bbbb").is_some());
        assert!(
            b.append_row(RowPtr::NULL, b"").is_none(),
            "full batch rejects appends"
        );
        assert_eq!(b.remaining(), 0);
    }

    #[test]
    fn sequential_iteration() {
        let b = RowBatch::with_capacity(4096);
        for i in 0..10u8 {
            b.append_row(RowPtr::NULL, &[i; 3]).unwrap();
        }
        let watermark = b.len();
        b.append_row(RowPtr::NULL, &[99; 3]).unwrap();
        let rows: Vec<_> = b.iter_rows(watermark).collect::<Result<_>>().unwrap();
        assert_eq!(rows.len(), 10, "row past the watermark is invisible");
        for (i, (_, _, payload)) in rows.iter().enumerate() {
            assert_eq!(*payload, [i as u8; 3]);
        }
    }

    #[test]
    fn read_past_watermark_is_an_error_not_a_panic() {
        let b = RowBatch::with_capacity(64);
        b.append_row(RowPtr::NULL, b"x").unwrap();
        let err = b.read(0, 64).unwrap_err();
        assert!(err.to_string().contains("beyond committed"), "got: {err}");
        let err = b.row_at(48).unwrap_err();
        assert!(err.to_string().contains("beyond committed"), "got: {err}");
        // Offsets near usize::MAX must not wrap around the bounds check.
        assert!(b.read(usize::MAX, 2).is_err());
        // Committed reads still succeed afterwards.
        assert_eq!(b.row_at(0).unwrap().2, b"x");
    }

    #[test]
    fn malformed_row_fuses_the_iterator() {
        let b = RowBatch::with_capacity(64);
        // A stored_len below ROW_HEADER would loop forever in a scan;
        // forge one via a raw header-only write.
        let bad_stored = 3u16;
        b.append_row(RowPtr::NULL, b"ok").unwrap();
        let off = b.len();
        // SAFETY: the forged bytes land past the committed watermark in a
        // buffer allocated at full capacity; no reader observes them until
        // the Release store below publishes the new length.
        unsafe {
            let base = b.buf.as_ptr() as *mut u8;
            let dst = base.add(off);
            std::ptr::copy_nonoverlapping(bad_stored.to_le_bytes().as_ptr(), dst, 2);
            std::ptr::copy_nonoverlapping(RowPtr::NULL.raw().to_le_bytes().as_ptr(), dst.add(2), 8);
        }
        b.len.store(off + ROW_HEADER, Ordering::Release);
        let mut it = b.iter_rows(b.len());
        assert!(it.next().unwrap().is_ok(), "first row is fine");
        assert!(it.next().unwrap().is_err(), "forged row surfaces an error");
        assert!(it.next().is_none(), "iterator is fused after the error");
    }

    #[test]
    fn tombstone_kind_roundtrips_through_header_and_restore() {
        let b = RowBatch::with_capacity(1024);
        let off1 = b.append_row(RowPtr::NULL, b"live").unwrap();
        let off2 = b
            .append_row_kind(
                RowPtr::new(0, off1, ROW_HEADER + 4),
                b"dead",
                RowKind::Tombstone,
            )
            .unwrap();
        let (s1, _, k1, p1) = b.row_at_full(off1).unwrap();
        assert_eq!((s1, k1, p1), (ROW_HEADER + 4, RowKind::Data, &b"live"[..]));
        let (s2, prev, k2, p2) = b.row_at_full(off2).unwrap();
        assert_eq!(
            (s2, k2, p2),
            (ROW_HEADER + 4, RowKind::Tombstone, &b"dead"[..])
        );
        assert_eq!(prev.offset(), off1);
        // The kind flag must not leak into the plain decode path: stored
        // sizes and backward pointers are unchanged.
        let (s2b, prevb, p2b) = b.row_at(off2).unwrap();
        assert_eq!((s2b, prevb, p2b), (s2, prev, p2));
        // Checkpoint (raw committed bytes) round-trips the kind bit.
        let restored = RowBatch::from_committed_bytes(1024, b.committed_bytes()).unwrap();
        assert_eq!(restored.row_at_full(off2).unwrap().2, RowKind::Tombstone);
        // Kind-aware iteration sees both rows with their kinds.
        let kinds: Vec<RowKind> = restored
            .iter_rows_full(restored.len())
            .map(|r| r.unwrap().2)
            .collect();
        assert_eq!(kinds, vec![RowKind::Data, RowKind::Tombstone]);
    }

    #[test]
    fn concurrent_readers_during_appends() {
        use std::sync::Arc;
        let b = Arc::new(RowBatch::with_capacity(1 << 20));
        // Seed some rows so the reader always observes progress.
        for i in 0..100u64 {
            b.append_row(RowPtr::NULL, &i.to_le_bytes()).unwrap();
        }
        let reader = {
            let b = Arc::clone(&b);
            std::thread::spawn(move || {
                let mut max_seen = 0;
                for _ in 0..300 {
                    let n = b.iter_rows(b.len()).count();
                    assert!(n >= max_seen, "committed rows must not vanish");
                    max_seen = n;
                    for row in b.iter_rows(b.len()) {
                        let (_, _, payload) = row.unwrap();
                        assert_eq!(payload.len(), 8);
                        let v = u64::from_le_bytes(payload.try_into().unwrap());
                        assert!(v < 20_000);
                    }
                }
                max_seen
            })
        };
        for i in 100..20_000u64 {
            if b.append_row(RowPtr::NULL, &i.to_le_bytes()).is_none() {
                break;
            }
        }
        let seen = reader.join().unwrap();
        assert!(seen >= 100);
    }
}
