//! Named fault-injection sites in the Indexed DataFrame's storage layer.
//!
//! Each constant names a site where `idf_fail::eval` is called; tests
//! configure sites via `idf_fail::FailGuard` to return errors, panic, or
//! delay, exercising read/append failure paths. The chaos suite
//! (`tests/chaos.rs`) iterates [`SITES`] and asserts the snapshot
//! consistency invariants hold with a fault at every one of them.

use idf_engine::error::{EngineError, Result};

/// A committed-row read from a row batch (`RowBatch::row_at`): hit by
/// every point-lookup chain walk.
pub const BATCH_READ: &str = "core::batch::read";

/// Entry of a partition probe (`PartitionSnapshot::lookup_chunk` /
/// `lookup_chunk_multi`): hit once per probed partition.
pub const PARTITION_PROBE: &str = "core::probe::partition";

/// Row encoding/validation, before any shared state is touched: phase 1
/// of a chunk append and the start of a single-row append.
pub const APPEND_ENCODE: &str = "core::append::encode";

/// The append commit point: after every row of a chunk append has been
/// validated and before the first row becomes visible (also checked at
/// the head of a single-row append). A fault here must leave the table
/// exactly as it was.
pub const APPEND_PUBLISH: &str = "core::append::publish";

/// Every registered storage-layer site, for chaos suites to iterate.
pub const SITES: &[&str] = &[BATCH_READ, PARTITION_PROBE, APPEND_ENCODE, APPEND_PUBLISH];

/// Evaluate the failpoint at `site`, mapping an injected error into a
/// typed execution error that names the site.
#[inline]
pub fn check(site: &str) -> Result<()> {
    idf_fail::eval(site)
        .map_err(|msg| EngineError::exec(format!("injected failure at {site}: {msg}")))
}
