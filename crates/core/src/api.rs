//! The user-facing Indexed DataFrame API.
//!
//! Mirrors the paper's Listing 1 as closely as Rust allows — Scala implicit
//! conversions become an extension trait on the engine's [`DataFrame`]:
//!
//! ```text
//! // Scala (paper)                          // Rust (this crate)
//! regularDF.createIndex(colNo)              regular_df.create_index("col")?
//! indexedDF.cache()                         indexed_df.cache()
//! indexedDF.getRows(lookupKey)              indexed_df.get_rows(key)?
//! indexedDF.appendRows(aRegularDF)          indexed_df.append_rows(&a_regular_df)?
//! indexedDF.join(regularDF, l === r)        indexed_df.join(&regular_df, "l", "r")?
//! ```

use std::sync::Arc;

use idf_engine::catalog::TableSource;
use idf_engine::chunk::Chunk;
use idf_engine::dataframe::DataFrame;
use idf_engine::error::{EngineError, Result};
use idf_engine::logical::{JoinType, LogicalPlan};
use idf_engine::schema::{Schema, SchemaRef};
use idf_engine::session::{Session, TableFactory};
use idf_engine::types::Value;

use crate::config::IndexConfig;
use crate::partition::PartitionMemory;
use crate::source::IndexedSource;
use crate::strategy::IndexedJoinStrategy;
use crate::table::IndexedTable;

/// A cached, updatable DataFrame with a built-in cTrie index.
///
/// Cheap to clone: clones share the same underlying [`IndexedTable`], so an
/// `append_rows` through any handle is visible to all (readers in flight
/// keep their consistent snapshots — multi-version concurrency).
#[derive(Clone)]
pub struct IndexedDataFrame {
    session: Session,
    table: Arc<IndexedTable>,
}

/// `createIndex` for regular DataFrames — the paper's implicit conversion.
pub trait CreateIndexExt {
    /// Index this DataFrame on `column`, materializing it into the
    /// hash-partitioned indexed representation.
    fn create_index(&self, column: &str) -> Result<IndexedDataFrame>;

    /// Like [`CreateIndexExt::create_index`] with explicit tuning.
    fn create_index_with(&self, column: &str, config: IndexConfig) -> Result<IndexedDataFrame>;
}

impl CreateIndexExt for DataFrame {
    fn create_index(&self, column: &str) -> Result<IndexedDataFrame> {
        self.create_index_with(column, IndexConfig::default())
    }

    fn create_index_with(&self, column: &str, config: IndexConfig) -> Result<IndexedDataFrame> {
        let in_schema = self.schema();
        let (qualifier, name) = match column.split_once('.') {
            Some((q, n)) => (Some(q), n),
            None => (None, column),
        };
        let key_col = in_schema.index_of(qualifier, name)?;
        // The indexed table is a base table: strip qualifiers.
        let schema = Arc::new(Schema::new(
            in_schema
                .fields
                .iter()
                .map(|f| idf_engine::schema::Field {
                    qualifier: None,
                    ..f.clone()
                })
                .collect(),
        ));
        let chunk = self.collect()?;
        let table = Arc::new(IndexedTable::from_chunk(schema, key_col, config, &chunk)?);
        let session = self.session().clone();
        // Inject the index-aware planning strategy (idempotent) — the
        // paper's "integration with Catalyst".
        session.register_strategy(Arc::new(IndexedJoinStrategy));
        Ok(IndexedDataFrame { session, table })
    }
}

impl IndexedDataFrame {
    /// Wrap an existing table (used by the benchmark harness).
    pub fn from_table(session: Session, table: Arc<IndexedTable>) -> Self {
        session.register_strategy(Arc::new(IndexedJoinStrategy));
        IndexedDataFrame { session, table }
    }

    /// The underlying table.
    pub fn table(&self) -> &Arc<IndexedTable> {
        &self.table
    }

    /// The session.
    pub fn session(&self) -> &Session {
        &self.session
    }

    /// The schema.
    pub fn schema(&self) -> SchemaRef {
        self.table.schema()
    }

    /// Paper fidelity: `indexedDF.cache()`. The indexed representation is
    /// always memory-resident in this implementation, so this is the
    /// identity — it exists so paper code ports verbatim.
    pub fn cache(&self) -> &Self {
        self
    }

    /// Register under `name` so SQL queries can address the indexed table;
    /// indexed execution is then triggered transparently.
    pub fn register(&self, name: &str) {
        self.session
            .register_table(name, Arc::new(IndexedSource::live(Arc::clone(&self.table))));
    }

    /// A DataFrame scanning the live indexed table.
    pub fn df(&self) -> DataFrame {
        self.df_named("indexed")
    }

    /// A DataFrame scanning the live indexed table, qualified as `name`.
    pub fn df_named(&self, name: &str) -> DataFrame {
        let source = Arc::new(IndexedSource::live(Arc::clone(&self.table)));
        let schema = Arc::new(source.schema().qualified(name));
        DataFrame::new(
            self.session.clone(),
            LogicalPlan::Scan {
                table: name.to_string(),
                source,
                schema,
                projection: None,
                filters: vec![],
            },
        )
    }

    /// A DataFrame pinned to a consistent snapshot of the table (reads are
    /// repeatable even while appends stream in).
    pub fn snapshot_df(&self) -> DataFrame {
        let source = Arc::new(IndexedSource::frozen(Arc::clone(&self.table)));
        let schema = Arc::new(source.schema().qualified("indexed"));
        DataFrame::new(
            self.session.clone(),
            LogicalPlan::Scan {
                table: "indexed".to_string(),
                source,
                schema,
                projection: None,
                filters: vec![],
            },
        )
    }

    /// `getRows`: all rows bound to `key`, latest append first, as a
    /// DataFrame (paper: *"our library returns a (smaller) Dataframe
    /// containing the required rows"*).
    pub fn get_rows(&self, key: impl Into<Value>) -> Result<DataFrame> {
        let chunk = self.get_rows_chunk(key)?;
        Ok(self
            .session
            .dataframe_from_chunk(self.table.schema(), chunk))
    }

    /// `getRows` without the DataFrame wrapper.
    pub fn get_rows_chunk(&self, key: impl Into<Value>) -> Result<Chunk> {
        self.table.lookup_chunk(&key.into(), None)
    }

    /// Batched `getRows`: all rows bound to *any* of `keys` as one
    /// DataFrame. Every key is probed against a single table snapshot, the
    /// key set is deduplicated, and distinct hash partitions are probed in
    /// parallel — substantially faster than looping [`Self::get_rows`]
    /// when the keys spread over several partitions.
    pub fn get_rows_batch(&self, keys: &[Value]) -> Result<DataFrame> {
        let chunk = self.get_rows_chunk_batch(keys)?;
        Ok(self
            .session
            .dataframe_from_chunk(self.table.schema(), chunk))
    }

    /// Batched `getRows` without the DataFrame wrapper.
    pub fn get_rows_chunk_batch(&self, keys: &[Value]) -> Result<Chunk> {
        self.table.lookup_chunk_batch(keys, None)
    }

    /// `appendRows`: append every row of a regular DataFrame. Both
    /// fine-grained (single-row frames) and batched appends go through
    /// here, exactly as in the paper. Returns a handle to the same
    /// (now longer) indexed table.
    pub fn append_rows(&self, df: &DataFrame) -> Result<IndexedDataFrame> {
        let in_schema = df.schema();
        let my_schema = self.table.schema();
        if in_schema.len() != my_schema.len()
            || in_schema
                .fields
                .iter()
                .zip(&my_schema.fields)
                .any(|(a, b)| a.data_type != b.data_type)
        {
            return Err(EngineError::type_err(format!(
                "appendRows schema mismatch: {in_schema} vs {my_schema}"
            )));
        }
        let chunk = df.collect()?;
        self.table.append_chunk(&chunk)?;
        Ok(self.clone())
    }

    /// Append one row of scalars (the finest-grained update).
    pub fn append_row(&self, values: &[Value]) -> Result<()> {
        self.table.append_row(values)
    }

    /// Index-powered equi-join with a regular DataFrame: the indexed
    /// relation is the build side, `other` is the probe side (shuffled to
    /// the index partitioning, or broadcast when small). The result is a
    /// regular DataFrame.
    pub fn join(&self, other: &DataFrame, indexed_col: &str, other_col: &str) -> Result<DataFrame> {
        let left = self.df();
        left.join(other, vec![(indexed_col, other_col)], JoinType::Inner)
    }

    /// Rows currently stored (all versions).
    pub fn row_count(&self) -> usize {
        self.table.row_count()
    }

    /// Memory accounting.
    pub fn memory_stats(&self) -> PartitionMemory {
        self.table.memory_stats()
    }
}

impl std::fmt::Debug for IndexedDataFrame {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "IndexedDataFrame({:?})", self.table)
    }
}

/// [`TableFactory`] minting indexed tables for SQL `CREATE TABLE`: each
/// created table is an empty [`IndexedTable`] indexed on its first column,
/// registered as a live [`IndexedSource`] so SQL `INSERT`s become indexed
/// appends and key-equality lookups use the cTrie. Install with
/// [`install_indexed_ddl`].
pub struct IndexedTableFactory {
    config: IndexConfig,
}

impl IndexedTableFactory {
    /// Factory with explicit index tuning for every created table.
    pub fn new(config: IndexConfig) -> Self {
        IndexedTableFactory { config }
    }
}

impl Default for IndexedTableFactory {
    fn default() -> Self {
        Self::new(IndexConfig::default())
    }
}

impl TableFactory for IndexedTableFactory {
    fn create(&self, _name: &str, schema: SchemaRef) -> Result<Arc<dyn TableSource>> {
        let table = Arc::new(IndexedTable::new(schema, 0, self.config.clone())?);
        Ok(Arc::new(IndexedSource::live(table)))
    }
}

/// Make `session`'s SQL DDL produce indexed tables: installs an
/// [`IndexedTableFactory`] and the index-aware planning strategy
/// (idempotent), so `CREATE TABLE` + `INSERT` + key-equality `SELECT`s
/// run the paper's indexed path end to end.
pub fn install_indexed_ddl(session: &Session, config: IndexConfig) {
    session.register_strategy(Arc::new(IndexedJoinStrategy));
    session.set_table_factory(Arc::new(IndexedTableFactory::new(config)));
}
