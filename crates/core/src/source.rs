//! The engine [`TableSource`] over an [`IndexedTable`].
//!
//! This is where the Catalyst-analog integration happens on the *filter*
//! path: [`IndexedSource::supports_filter_pushdown`] advertises equality
//! predicates (`key = lit`) and IN-lists of literals (`key IN (…)`) on the
//! indexed column, so the engine's predicate-pushdown rule moves them into
//! the scan, and [`IndexedSource::scan_with_filters`] answers them with
//! cTrie lookups plus backward-pointer traversals instead of a full scan
//! (paper: *"Equality filter"* indexed operator, extended to multi-key
//! probes). A conjunction of pushed filters intersects their key sets.
//! Everything else falls back to `transformToRowRDD`-style full scans over
//! the row batches.

use std::any::Any;
use std::sync::Arc;

use idf_engine::catalog::{check_append_rows, ChunkIter, Statistics, TableSource};
use idf_engine::chunk::Chunk;
use idf_engine::error::{EngineError, Result};
use idf_engine::expr::{BinaryOp, Expr};
use idf_engine::query::QueryContext;
use idf_engine::schema::SchemaRef;
use idf_engine::types::Value;

use crate::table::{IndexedTable, TableSnapshot};

/// Scan source over an indexed table: either *live* (each partition scan
/// snapshots at execution time — cheap, loosely consistent across
/// partitions, like querying a continuously updated cache) or *frozen*
/// (pinned to one [`TableSnapshot`] for cross-partition consistency).
pub struct IndexedSource {
    table: Arc<IndexedTable>,
    frozen: Option<Arc<TableSnapshot>>,
}

impl IndexedSource {
    /// A live source over `table`.
    pub fn live(table: Arc<IndexedTable>) -> Self {
        IndexedSource {
            table,
            frozen: None,
        }
    }

    /// A source pinned to a consistent snapshot of `table`.
    pub fn frozen(table: Arc<IndexedTable>) -> Self {
        let snap = Arc::new(table.snapshot());
        IndexedSource {
            table,
            frozen: Some(snap),
        }
    }

    /// The underlying table.
    pub fn table(&self) -> &Arc<IndexedTable> {
        &self.table
    }

    /// Whether this source is pinned to a snapshot.
    pub fn is_frozen(&self) -> bool {
        self.frozen.is_some()
    }

    /// Extract the key literal of an equality filter on the indexed
    /// column, if the expression has that shape.
    ///
    /// Accepted shapes (post constant-folding): `key = lit` and
    /// `lit = key`, where the literal's type matches the key column.
    pub fn key_equality_literal(&self, filter: &Expr) -> Option<Value> {
        let Expr::Binary {
            left,
            op: BinaryOp::Eq,
            right,
        } = filter
        else {
            return None;
        };
        let key_dt = self.table.schema().field(self.table.key_col()).data_type;
        let is_key_col =
            |e: &Expr| matches!(e, Expr::Column(c) if c.index == Some(self.table.key_col()));
        let literal_of = |e: &Expr| match e {
            Expr::Literal(v) if v.data_type() == Some(key_dt) => Some(v.clone()),
            _ => None,
        };
        if is_key_col(left) {
            return literal_of(right);
        }
        if is_key_col(right) {
            return literal_of(left);
        }
        None
    }

    /// Extract the key literals of an IN-list filter on the indexed
    /// column: `key IN (lit, …)`, not negated, every entry a literal of
    /// the key type or NULL.
    ///
    /// NULL entries are dropped: in a *filter* position `key IN (…, NULL)`
    /// can only add NULL outcomes, and a filter treats NULL as false — so
    /// the non-null entries alone decide which rows survive. Duplicates
    /// are removed. An empty result (`Some(vec![])`) means the filter is
    /// unsatisfiable.
    pub fn key_in_list_literals(&self, filter: &Expr) -> Option<Vec<Value>> {
        let Expr::InList {
            expr,
            list,
            negated: false,
        } = filter
        else {
            return None;
        };
        if !matches!(&**expr, Expr::Column(c) if c.index == Some(self.table.key_col())) {
            return None;
        }
        let key_dt = self.table.schema().field(self.table.key_col()).data_type;
        let mut keys: Vec<Value> = Vec::with_capacity(list.len());
        for entry in list {
            match entry {
                Expr::Literal(Value::Null) => {}
                Expr::Literal(v) if v.data_type() == Some(key_dt) => {
                    if !keys.contains(v) {
                        keys.push(v.clone());
                    }
                }
                _ => return None,
            }
        }
        Some(keys)
    }

    /// The key set a pushed filter selects, if it has a pushable shape.
    fn key_set_of(&self, filter: &Expr) -> Option<Vec<Value>> {
        if let Some(k) = self.key_equality_literal(filter) {
            return Some(vec![k]);
        }
        self.key_in_list_literals(filter)
    }

    fn partition_snapshot(&self, partition: usize) -> Result<PartitionView<'_>> {
        match &self.frozen {
            Some(snap) => Ok(PartitionView::Frozen(snap, partition)),
            None => Ok(PartitionView::Live(
                self.table.partition(partition).snapshot(),
            )),
        }
    }

    /// Full scan of one partition, optionally under a query lifecycle
    /// context (cancellation checks and memory charging per emitted chunk).
    fn scan_ctx(
        &self,
        partition: usize,
        projection: Option<&[usize]>,
        query: Option<&QueryContext>,
    ) -> Result<ChunkIter> {
        let view = self.partition_snapshot(partition)?;
        let chunks =
            view.get()
                .scan_chunks_ctx(projection, self.table.config().scan_chunk_rows, query)?;
        Ok(Box::new(chunks.into_iter().map(Ok)))
    }

    /// Filtered scan of one partition under an optional lifecycle context:
    /// pushed key filters become index probes that honour cancellation and
    /// charge their result chunks against the query's memory budget.
    fn scan_with_filters_ctx(
        &self,
        partition: usize,
        projection: Option<&[usize]>,
        filters: &[Expr],
        query: Option<&QueryContext>,
    ) -> Result<ChunkIter> {
        // Intersect the key sets of the pushed filters (they are ANDed);
        // any filter we did not claim would not be here.
        let mut keys: Option<Vec<Value>> = None;
        for f in filters {
            let Some(set) = self.key_set_of(f) else {
                // Defensive: fall back to a full scan + let the engine
                // re-filter (should not happen with the built-in rule).
                return self.scan_ctx(partition, projection, query);
            };
            keys = Some(match keys {
                None => set,
                Some(prev) => prev.into_iter().filter(|k| set.contains(k)).collect(),
            });
        }
        // Keep the keys that hash-route to THIS partition; the rest are
        // pruned — their home partitions answer for them.
        let local: Vec<Value> = keys
            .unwrap_or_default()
            .into_iter()
            .filter(|k| self.table.partition_of(k) == partition)
            .collect();
        let view = self.partition_snapshot(partition)?;
        let chunk = match local.as_slice() {
            // Empty intersection (or no local keys): nothing here.
            [] => Chunk::empty(&project_schema(&self.table.schema(), projection)),
            // Index lookup instead of a scan; the result is billed to the
            // query (the multi-key path bills inside the probe).
            [key] => {
                let chunk = view.get().lookup_chunk(key, projection)?;
                if let Some(q) = query {
                    q.charge_memory(chunk.byte_size())?;
                }
                chunk
            }
            // Multi-key probe sharing one set of column builders.
            many => view.get().lookup_chunk_multi_ctx(many, projection, query)?,
        };
        Ok(Box::new(std::iter::once(Ok(chunk))))
    }
}

enum PartitionView<'a> {
    Live(crate::partition::PartitionSnapshot),
    Frozen(&'a Arc<TableSnapshot>, usize),
}

impl PartitionView<'_> {
    fn get(&self) -> &crate::partition::PartitionSnapshot {
        match self {
            PartitionView::Live(s) => s,
            PartitionView::Frozen(t, p) => &t.partitions()[*p],
        }
    }
}

impl TableSource for IndexedSource {
    fn schema(&self) -> SchemaRef {
        self.table.schema()
    }

    fn num_partitions(&self) -> usize {
        self.table.num_partitions()
    }

    fn scan(&self, partition: usize, projection: Option<&[usize]>) -> Result<ChunkIter> {
        self.scan_ctx(partition, projection, None)
    }

    fn supports_filter_pushdown(&self, filter: &Expr) -> bool {
        self.key_set_of(filter).is_some()
    }

    fn scan_with_filters(
        &self,
        partition: usize,
        projection: Option<&[usize]>,
        filters: &[Expr],
    ) -> Result<ChunkIter> {
        self.scan_with_filters_ctx(partition, projection, filters, None)
    }

    fn scan_with_ctx(
        &self,
        partition: usize,
        projection: Option<&[usize]>,
        filters: &[Expr],
        query: &Arc<QueryContext>,
    ) -> Result<ChunkIter> {
        if filters.is_empty() {
            self.scan_ctx(partition, projection, Some(query))
        } else {
            self.scan_with_filters_ctx(partition, projection, filters, Some(query))
        }
    }

    fn statistics(&self) -> Statistics {
        let m = self.table.memory_stats();
        Statistics {
            row_count: Some(m.rows),
            byte_size: Some(m.data_bytes),
        }
    }

    fn append_rows(&self, rows: &[Vec<Value>]) -> Result<usize> {
        if self.is_frozen() {
            return Err(EngineError::Unsupported(
                "cannot INSERT through a frozen (snapshot-pinned) source".to_string(),
            ));
        }
        check_append_rows(&self.table.schema(), rows)?;
        let chunk = Chunk::from_rows(&self.table.schema(), rows)?;
        self.table.append_chunk(&chunk)?;
        Ok(rows.len())
    }

    fn apply_dml(&self, deletes: &[Vec<Value>], inserts: &[Vec<Value>]) -> Result<usize> {
        if self.is_frozen() {
            return Err(EngineError::Unsupported(
                "cannot UPDATE/DELETE through a frozen (snapshot-pinned) source".to_string(),
            ));
        }
        check_append_rows(&self.table.schema(), deletes)?;
        check_append_rows(&self.table.schema(), inserts)?;
        self.table.apply_dml(deletes, inserts)
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

fn project_schema(schema: &SchemaRef, projection: Option<&[usize]>) -> SchemaRef {
    match projection {
        Some(p) => Arc::new(schema.project(p)),
        None => Arc::clone(schema),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::IndexConfig;
    use idf_engine::expr::{col, lit};
    use idf_engine::schema::{Field, Schema};
    use idf_engine::types::DataType;

    fn table() -> Arc<IndexedTable> {
        let schema = Arc::new(Schema::new(vec![
            Field::new("k", DataType::Int64),
            Field::new("v", DataType::Utf8),
        ]));
        let rows: Vec<Vec<Value>> = (0..100)
            .map(|i| vec![Value::Int64(i % 10), Value::Utf8(format!("v{i}"))])
            .collect();
        let chunk = Chunk::from_rows(&schema, &rows).unwrap();
        Arc::new(
            IndexedTable::from_chunk(
                schema,
                0,
                IndexConfig {
                    num_partitions: 4,
                    ..Default::default()
                },
                &chunk,
            )
            .unwrap(),
        )
    }

    fn bound_col(name: &str, index: usize) -> Expr {
        let mut c = col(name);
        if let Expr::Column(cr) = &mut c {
            cr.index = Some(index);
        }
        c
    }

    fn bound_key_eq(v: i64) -> Expr {
        bound_col("k", 0).eq(lit(v))
    }

    fn bound_key_in(vs: &[i64]) -> Expr {
        bound_col("k", 0).in_list(vs.iter().map(|&v| lit(v)).collect())
    }

    #[test]
    fn recognizes_pushable_filters() {
        let s = IndexedSource::live(table());
        assert!(s.supports_filter_pushdown(&bound_key_eq(3)));
        // flipped orientation
        let mut c = col("k");
        if let Expr::Column(cr) = &mut c {
            cr.index = Some(0);
        }
        assert!(s.supports_filter_pushdown(&lit(3i64).eq(c)));
        // wrong column
        let mut v = col("v");
        if let Expr::Column(cr) = &mut v {
            cr.index = Some(1);
        }
        assert!(!s.supports_filter_pushdown(&v.eq(lit("x"))));
        // non-equality
        let mut c = col("k");
        if let Expr::Column(cr) = &mut c {
            cr.index = Some(0);
        }
        assert!(!s.supports_filter_pushdown(&c.gt(lit(3i64))));
        // mismatched literal type
        let mut c = col("k");
        if let Expr::Column(cr) = &mut c {
            cr.index = Some(0);
        }
        assert!(!s.supports_filter_pushdown(&c.eq(lit("three"))));
    }

    #[test]
    fn filtered_scan_is_an_index_lookup() {
        let s = IndexedSource::live(table());
        let mut total = 0;
        for p in 0..s.num_partitions() {
            for chunk in s.scan_with_filters(p, None, &[bound_key_eq(3)]).unwrap() {
                let chunk = chunk.unwrap();
                for r in 0..chunk.len() {
                    assert_eq!(chunk.value_at(0, r), Value::Int64(3));
                }
                total += chunk.len();
            }
        }
        assert_eq!(total, 10);
    }

    #[test]
    fn recognizes_in_list_filters() {
        let s = IndexedSource::live(table());
        assert!(s.supports_filter_pushdown(&bound_key_in(&[3, 7])));
        // NULL entries are tolerated (dropped in filter position).
        let with_null = bound_col("k", 0).in_list(vec![lit(3i64), Expr::Literal(Value::Null)]);
        assert_eq!(
            s.key_in_list_literals(&with_null),
            Some(vec![Value::Int64(3)])
        );
        // NOT IN is not pushable.
        assert!(!s.supports_filter_pushdown(&bound_col("k", 0).not_in_list(vec![lit(3i64)])));
        // Wrong column, non-literal entry, mismatched type: not pushable.
        assert!(!s.supports_filter_pushdown(&bound_col("v", 1).in_list(vec![lit("x")])));
        assert!(!s.supports_filter_pushdown(&bound_col("k", 0).in_list(vec![bound_col("k", 0)])));
        assert!(!s.supports_filter_pushdown(&bound_col("k", 0).in_list(vec![lit("three")])));
    }

    #[test]
    fn in_list_scan_probes_each_key_once() {
        let s = IndexedSource::live(table());
        let mut total = 0;
        for p in 0..s.num_partitions() {
            // Duplicate 3 must not double its rows.
            for chunk in s
                .scan_with_filters(p, None, &[bound_key_in(&[3, 7, 3, 999])])
                .unwrap()
            {
                let chunk = chunk.unwrap();
                for r in 0..chunk.len() {
                    let k = chunk.value_at(0, r);
                    assert!(k == Value::Int64(3) || k == Value::Int64(7), "got {k:?}");
                }
                total += chunk.len();
            }
        }
        assert_eq!(total, 20);
    }

    #[test]
    fn eq_and_in_list_intersect() {
        let s = IndexedSource::live(table());
        let count = |filters: &[Expr]| {
            let mut total = 0;
            for p in 0..s.num_partitions() {
                for chunk in s.scan_with_filters(p, None, filters).unwrap() {
                    total += chunk.unwrap().len();
                }
            }
            total
        };
        // k IN (3, 7) AND k = 3  →  only key 3.
        assert_eq!(count(&[bound_key_in(&[3, 7]), bound_key_eq(3)]), 10);
        // k IN (3, 7) AND k = 4  →  empty.
        assert_eq!(count(&[bound_key_in(&[3, 7]), bound_key_eq(4)]), 0);
        // k IN (3, 7) AND k IN (7, 8)  →  only key 7.
        assert_eq!(count(&[bound_key_in(&[3, 7]), bound_key_in(&[7, 8])]), 10);
        // Empty IN-list is unsatisfiable.
        assert_eq!(count(&[bound_key_in(&[])]), 0);
    }

    #[test]
    fn contradictory_filters_yield_empty() {
        let s = IndexedSource::live(table());
        let mut total = 0;
        for p in 0..s.num_partitions() {
            for chunk in s
                .scan_with_filters(p, None, &[bound_key_eq(3), bound_key_eq(4)])
                .unwrap()
            {
                total += chunk.unwrap().len();
            }
        }
        assert_eq!(total, 0);
    }

    #[test]
    fn full_scan_covers_everything() {
        let s = IndexedSource::live(table());
        let mut total = 0;
        for p in 0..s.num_partitions() {
            for chunk in s.scan(p, None).unwrap() {
                total += chunk.unwrap().len();
            }
        }
        assert_eq!(total, 100);
    }

    #[test]
    fn frozen_source_is_consistent() {
        let t = table();
        let s = IndexedSource::frozen(Arc::clone(&t));
        t.append_row(&[Value::Int64(3), Value::Utf8("new".into())])
            .unwrap();
        let mut total = 0;
        for p in 0..s.num_partitions() {
            for chunk in s.scan_with_filters(p, None, &[bound_key_eq(3)]).unwrap() {
                total += chunk.unwrap().len();
            }
        }
        assert_eq!(total, 10, "frozen view misses the new row");
        let live = IndexedSource::live(t);
        let mut total = 0;
        for p in 0..live.num_partitions() {
            for chunk in live.scan_with_filters(p, None, &[bound_key_eq(3)]).unwrap() {
                total += chunk.unwrap().len();
            }
        }
        assert_eq!(total, 11);
    }

    #[test]
    fn scan_projection_narrows_columns() {
        let s = IndexedSource::live(table());
        for chunk in s.scan(0, Some(&[1])).unwrap() {
            assert_eq!(chunk.unwrap().num_columns(), 1);
        }
    }

    #[test]
    fn statistics_report_rows() {
        let s = IndexedSource::live(table());
        assert_eq!(s.statistics().row_count, Some(100));
    }
}
