//! The index-aware physical planning strategy — the paper's custom
//! Catalyst rules.
//!
//! Paper, Figure 1: *"Catalyst rules determine whether the queries are
//! regular or indexed. If regular, they follow the regular Spark Catalyst
//! execution. If indexed, special rules and optimization strategies are
//! applied such that indexed execution is triggered."*
//!
//! Division of labour in this reproduction:
//!
//! * **Equality filters** need no strategy: the engine's predicate-pushdown
//!   rule moves them into the scan, and [`crate::source::IndexedSource`]
//!   answers them with index lookups.
//! * **Equi-joins** are claimed here: a `Join` whose left or right input is
//!   a scan of an [`IndexedSource`] keyed on the join column becomes an
//!   [`IndexedJoinExec`] — the indexed relation is always the build side,
//!   the probe side is shuffled to the index's partitioning (or broadcast
//!   when small, per the paper's fallback).
//! * Everything else returns `None` and falls back to vanilla planning.

use std::sync::Arc;

use idf_engine::error::Result;
use idf_engine::expr::Expr;
use idf_engine::logical::{JoinType, LogicalPlan};
use idf_engine::physical::{create_physical_expr, ExecPlanRef, ShuffleExec};
use idf_engine::planner::{estimate_rows, PhysicalStrategy, Planner};

use crate::join_exec::{IndexedJoinExec, ProbeMode};
use crate::source::IndexedSource;

/// The strategy to register with [`idf_engine::session::Session`].
pub struct IndexedJoinStrategy;

/// What we learned about one side of a join.
struct IndexedSide {
    source: Arc<IndexedSource>,
    projection: Option<Vec<usize>>,
}

/// If `plan` is a bare scan of an [`IndexedSource`] (optionally projected,
/// with no pushed filters), return it.
fn as_indexed_scan(plan: &LogicalPlan) -> Option<IndexedSide> {
    let LogicalPlan::Scan {
        source,
        projection,
        filters,
        ..
    } = plan
    else {
        return None;
    };
    if !filters.is_empty() {
        // A key-equality lookup already shrinks this side to a handful of
        // rows; the vanilla join over the lookup result is the right plan.
        return None;
    }
    let any = source.as_any().downcast_ref::<IndexedSource>()?;
    if any.is_frozen() {
        // A frozen scan is pinned to its snapshot; the indexed join reads
        // the *live* table, so claiming it would leak post-snapshot rows.
        // Decline — the vanilla join over the (correctly frozen) scan runs
        // instead.
        return None;
    }
    let concrete = Arc::new(IndexedSource::live(Arc::clone(any.table())));
    Some(IndexedSide {
        source: concrete,
        projection: projection.clone(),
    })
}

/// Does the join-key expression over this scan resolve to the indexed
/// column? `projection` maps scan-output indices to source columns.
fn key_is_indexed(key: &Expr, side: &IndexedSide) -> bool {
    let Expr::Column(c) = key else { return false };
    let Some(out_idx) = c.index else { return false };
    let source_idx = match &side.projection {
        Some(p) => match p.get(out_idx) {
            Some(&i) => i,
            None => return false,
        },
        None => out_idx,
    };
    source_idx == side.source.table().key_col()
}

impl PhysicalStrategy for IndexedJoinStrategy {
    fn name(&self) -> &str {
        "indexed_join"
    }

    fn plan(&self, plan: &LogicalPlan, planner: &Planner) -> Result<Option<ExecPlanRef>> {
        let LogicalPlan::Join {
            left,
            right,
            on,
            join_type: JoinType::Inner,
            schema,
        } = plan
        else {
            return Ok(None);
        };
        // The indexed operator handles single-key equi-joins; composite
        // keys fall back to the vanilla hash join.
        let [(left_key, right_key)] = on.as_slice() else {
            return Ok(None);
        };
        // Prefer the left side as build (the paper's API puts the indexed
        // relation on the left), but accept either.
        let (side, probe_plan, probe_key, indexed_is_left) =
            match as_indexed_scan(left).filter(|s| key_is_indexed(left_key, s)) {
                Some(side) => (side, right, right_key, true),
                None => match as_indexed_scan(right).filter(|s| key_is_indexed(right_key, s)) {
                    Some(side) => (side, left, left_key, false),
                    None => return Ok(None),
                },
            };
        let probe_schema = probe_plan.schema();
        let probe_exec = planner.create_plan(probe_plan)?;
        let probe_key_expr = create_physical_expr(probe_key, &probe_schema)?;
        let table = Arc::clone(side.source.table());
        // Broadcast small probe sides instead of shuffling (paper, §2).
        let broadcast = estimate_rows(probe_plan)
            .is_some_and(|n| n <= planner.config().broadcast_threshold_rows);
        let (probe_exec, mode) = if broadcast {
            (probe_exec, ProbeMode::Broadcast)
        } else if table.num_partitions() == 1 && probe_exec.output_partitions() == 1 {
            // Trivially co-partitioned: a single-partition probe against a
            // single-partition index needs no exchange.
            (probe_exec, ProbeMode::Shuffled)
        } else {
            let shuffled: ExecPlanRef = Arc::new(ShuffleExec::new(
                probe_exec,
                vec![Arc::clone(&probe_key_expr)],
                table.num_partitions(),
            ));
            (shuffled, ProbeMode::Shuffled)
        };
        Ok(Some(Arc::new(IndexedJoinExec::new(
            table,
            side.projection,
            probe_exec,
            probe_key_expr,
            indexed_is_left,
            Arc::clone(schema),
            mode,
        ))))
    }
}
