//! Packed 64-bit row pointers.
//!
//! Paper, §2: *"The pointers stored both in the cTrie and in the backward
//! pointer data structure are packed, dense 64-bit numbers, each containing
//! the row batch number, the offset within a row batch, and the size of the
//! previous row indexed on the given key."*
//!
//! Layout (most-significant first):
//!
//! ```text
//! | batch: 31 bits | offset: 23 bits | size: 10 bits |
//! ```
//!
//! * `batch` — row-batch number, up to 2³¹ batches (paper: "2³¹ row
//!   batches").
//! * `offset` — byte offset inside the batch, up to 8 MiB (covers the 4 MiB
//!   default batch with headroom).
//! * `size` — the stored byte size of the row this pointer *points to*
//!   (paper: rows "may have up to 1 KB"), so a reader can slice the row
//!   without a dependent length lookup.
//!
//! The all-zero word is the null pointer: no real row has size 0 (every
//! stored row carries at least its header).

/// Bits for the batch number.
pub const BATCH_BITS: u32 = 31;
/// Bits for the in-batch offset.
pub const OFFSET_BITS: u32 = 23;
/// Bits for the row size.
pub const SIZE_BITS: u32 = 10;

/// Maximum addressable batch count.
pub const MAX_BATCHES: usize = 1usize << BATCH_BITS;
/// Maximum batch capacity in bytes (offset range).
pub const MAX_BATCH_SIZE: usize = 1usize << OFFSET_BITS;
/// Maximum stored row size in bytes (size range; 0 is reserved for null).
pub const MAX_ROW_SIZE: usize = (1usize << SIZE_BITS) - 1;

/// A packed (batch, offset, size) row pointer. `RowPtr::NULL` is "no row".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RowPtr(u64);

impl RowPtr {
    /// The null pointer (end of a backward-pointer chain).
    pub const NULL: RowPtr = RowPtr(0);

    /// Pack a pointer. Panics (debug) on out-of-range fields; callers
    /// validate via [`crate::config::IndexConfig`].
    #[inline]
    pub fn new(batch: usize, offset: usize, size: usize) -> RowPtr {
        debug_assert!(batch < MAX_BATCHES, "batch {batch} out of range");
        debug_assert!(offset < MAX_BATCH_SIZE, "offset {offset} out of range");
        debug_assert!(size > 0 && size <= MAX_ROW_SIZE, "size {size} out of range");
        RowPtr(
            ((batch as u64) << (OFFSET_BITS + SIZE_BITS))
                | ((offset as u64) << SIZE_BITS)
                | size as u64,
        )
    }

    /// Rebuild from the raw word (e.g. out of a row header).
    #[inline]
    pub fn from_raw(raw: u64) -> RowPtr {
        RowPtr(raw)
    }

    /// The raw 64-bit word.
    #[inline]
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Whether this is the null pointer.
    #[inline]
    pub fn is_null(self) -> bool {
        self.0 == 0
    }

    /// Row-batch number.
    #[inline]
    pub fn batch(self) -> usize {
        (self.0 >> (OFFSET_BITS + SIZE_BITS)) as usize
    }

    /// Byte offset within the batch.
    #[inline]
    pub fn offset(self) -> usize {
        ((self.0 >> SIZE_BITS) & ((1 << OFFSET_BITS) - 1)) as usize
    }

    /// Stored byte size of the row pointed to.
    #[inline]
    pub fn size(self) -> usize {
        (self.0 & ((1 << SIZE_BITS) - 1)) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack_roundtrip() {
        let p = RowPtr::new(12345, 1 << 20, 777);
        assert_eq!(p.batch(), 12345);
        assert_eq!(p.offset(), 1 << 20);
        assert_eq!(p.size(), 777);
        assert!(!p.is_null());
    }

    #[test]
    fn extremes() {
        let p = RowPtr::new(MAX_BATCHES - 1, MAX_BATCH_SIZE - 1, MAX_ROW_SIZE);
        assert_eq!(p.batch(), MAX_BATCHES - 1);
        assert_eq!(p.offset(), MAX_BATCH_SIZE - 1);
        assert_eq!(p.size(), MAX_ROW_SIZE);
    }

    #[test]
    fn null_pointer() {
        assert!(RowPtr::NULL.is_null());
        assert!(!RowPtr::new(0, 0, 9).is_null());
        assert_eq!(RowPtr::from_raw(0), RowPtr::NULL);
    }

    #[test]
    fn raw_roundtrip() {
        let p = RowPtr::new(7, 42, 100);
        assert_eq!(RowPtr::from_raw(p.raw()), p);
    }

    #[test]
    fn fields_do_not_interfere() {
        // Exhaustive-ish sweep over field boundaries.
        for &batch in &[0usize, 1, MAX_BATCHES - 1] {
            for &offset in &[0usize, 1, 4 << 20, MAX_BATCH_SIZE - 1] {
                for &size in &[1usize, 9, 512, MAX_ROW_SIZE] {
                    let p = RowPtr::new(batch, offset, size);
                    assert_eq!((p.batch(), p.offset(), p.size()), (batch, offset, size));
                }
            }
        }
    }
}
