//! The hash-partitioned indexed table.
//!
//! Paper, §2 (*Index Creation*): *"The Indexed DataFrame is hash
//! partitioned on the indexed column … when an index is created on a
//! regular Dataframe, its rows are shuffled based on the hash partitioning
//! scheme to their respective Indexed DataFrame partitions."*
//!
//! Partition routing uses the engine's shuffle hash
//! ([`idf_engine::physical::hash_values`]), which is what co-partitions a
//! shuffled probe side with the index during indexed joins.

use std::sync::Arc;

use idf_engine::chunk::Chunk;
use idf_engine::error::{catch_panics, panic_message, EngineError, Result};
use idf_engine::physical::hash_values;
use idf_engine::query::QueryContext;
use idf_engine::schema::SchemaRef;
use idf_engine::types::Value;

use parking_lot::{Mutex, RwLock};

use crate::config::IndexConfig;
use crate::partition::{CompactStats, IndexedPartition, PartitionMemory, PartitionSnapshot};
use crate::sink::{AppendSink, RowKind, SinkStatus};

/// A partitioned, updatable, indexed, in-memory table.
pub struct IndexedTable {
    schema: SchemaRef,
    key_col: usize,
    config: IndexConfig,
    partitions: Vec<Arc<IndexedPartition>>,
    /// Durability hook; appends log through it when present (see
    /// [`crate::sink`] for the ordering contract).
    sink: RwLock<Option<Arc<dyn AppendSink>>>,
    /// Appends currently between the commit point and publish completion
    /// (see [`IndexedTable::commit_window`]).
    commit_window: std::sync::atomic::AtomicUsize,
    /// Serializes DML statements ([`IndexedTable::apply_dml`]): a DML
    /// commit reads chains, computes survivors, and republishes — two
    /// interleaved statements could otherwise both re-append the same
    /// survivor. Plain appends and the compactor do not take this lock.
    dml_lock: Mutex<()>,
}

/// RAII scope for one append's commit window: entered at the commit
/// point (just before the sink is consulted), left once the rows are
/// published to memory — on every path, including commit-point aborts.
struct CommitWindowScope<'a>(&'a IndexedTable);

impl<'a> CommitWindowScope<'a> {
    fn enter(table: &'a IndexedTable) -> Self {
        table
            .commit_window
            // idf-lint: allow(atomics-audit) -- SeqCst pairs the window counter with the tap-gate flag across two atomics; a closed gate must observe every in-window append
            .fetch_add(1, std::sync::atomic::Ordering::SeqCst);
        CommitWindowScope(table)
    }
}

impl Drop for CommitWindowScope<'_> {
    fn drop(&mut self) {
        self.0
            .commit_window
            // idf-lint: allow(atomics-audit) -- SeqCst exit pairs with the SeqCst enter; see commit_window()
            .fetch_sub(1, std::sync::atomic::Ordering::SeqCst);
    }
}

impl IndexedTable {
    /// An empty table indexing `schema[key_col]`.
    pub fn new(schema: SchemaRef, key_col: usize, config: IndexConfig) -> Result<Self> {
        config.validate().map_err(EngineError::Plan)?;
        if key_col >= schema.len() {
            return Err(EngineError::plan(format!(
                "index column {key_col} out of range for schema of width {}",
                schema.len()
            )));
        }
        let partitions = (0..config.num_partitions)
            .map(|_| {
                Arc::new(IndexedPartition::new(
                    Arc::clone(&schema),
                    key_col,
                    config.clone(),
                ))
            })
            .collect();
        Ok(IndexedTable {
            schema,
            key_col,
            config,
            partitions,
            sink: RwLock::new(None),
            commit_window: std::sync::atomic::AtomicUsize::new(0),
            dml_lock: Mutex::new(()),
        })
    }

    /// Rebuild a table around partitions restored from a checkpoint (see
    /// [`IndexedPartition::restore`]). The partition count must match the
    /// configured hash fan-out — keys would otherwise route to the wrong
    /// partition and every probe after recovery would silently miss.
    pub fn from_restored_partitions(
        schema: SchemaRef,
        key_col: usize,
        config: IndexConfig,
        partitions: Vec<Arc<IndexedPartition>>,
    ) -> Result<Self> {
        config.validate().map_err(EngineError::Plan)?;
        if key_col >= schema.len() {
            return Err(EngineError::plan(format!(
                "index column {key_col} out of range for schema of width {}",
                schema.len()
            )));
        }
        if partitions.len() != config.num_partitions {
            return Err(EngineError::corrupt(format!(
                "restored {} partitions for a table configured with {}",
                partitions.len(),
                config.num_partitions
            )));
        }
        Ok(IndexedTable {
            schema,
            key_col,
            config,
            partitions,
            sink: RwLock::new(None),
            commit_window: std::sync::atomic::AtomicUsize::new(0),
            dml_lock: Mutex::new(()),
        })
    }

    /// Install (or replace) the append sink all later appends log through.
    /// The durable session installs it *after* WAL replay, so replayed
    /// appends are not re-logged.
    pub fn set_append_sink(&self, sink: Arc<dyn AppendSink>) {
        *self.sink.write() = Some(sink);
    }

    /// Add `sink` *alongside* any already-installed sink instead of
    /// replacing it, composing through [`crate::sink::FanoutSink`]. The
    /// existing sink (the WAL, when the table is durable) keeps first
    /// position so its commit decision still gates the added tap — see
    /// the ordering contract on [`FanoutSink`](crate::sink::FanoutSink).
    /// The views subsystem uses this to tap committed chunks for
    /// incremental maintenance without disturbing durability.
    pub fn add_append_sink(&self, sink: Arc<dyn AppendSink>) {
        let mut slot = self.sink.write();
        *slot = Some(match slot.take() {
            None => sink,
            Some(existing) => Arc::new(crate::sink::FanoutSink::new(vec![existing, sink])),
        });
    }

    /// Whether appends are currently accepted. A table whose sink has
    /// degraded (sticky fsync failure, ENOSPC) reports
    /// [`SinkStatus::ReadOnly`] with the cause; reads, snapshots and
    /// checkpoints are unaffected. A table with no sink is writable.
    pub fn write_status(&self) -> SinkStatus {
        match self.sink.read().as_ref() {
            Some(sink) => sink.status(),
            None => SinkStatus::Writable,
        }
    }

    /// Decode an encoded row payload (as handed to the append sink) back
    /// into scalars — the recovery path uses this to replay WAL records
    /// through the regular typed append protocol.
    ///
    /// # Errors
    /// Fails on a payload that does not match the table's row layout.
    pub fn decode_payload(&self, payload: &[u8]) -> Result<Vec<Value>> {
        match self.partitions.first() {
            Some(p) => p.decode_payload(payload),
            None => Err(EngineError::internal("table has no partitions")),
        }
    }

    /// Build from an existing chunk (index creation): rows are routed to
    /// their hash partitions and inserted in parallel, one task per
    /// partition (appends within a partition stay sequential).
    pub fn from_chunk(
        schema: SchemaRef,
        key_col: usize,
        config: IndexConfig,
        chunk: &Chunk,
    ) -> Result<Self> {
        let table = Self::new(schema, key_col, config)?;
        table.append_chunk(chunk)?;
        Ok(table)
    }

    /// The table schema.
    pub fn schema(&self) -> SchemaRef {
        Arc::clone(&self.schema)
    }

    /// The indexed column position.
    pub fn key_col(&self) -> usize {
        self.key_col
    }

    /// The configuration.
    pub fn config(&self) -> &IndexConfig {
        &self.config
    }

    /// Number of hash partitions.
    pub fn num_partitions(&self) -> usize {
        self.partitions.len()
    }

    /// The partition a key routes to.
    pub fn partition_of(&self, key: &Value) -> usize {
        (hash_values(std::slice::from_ref(key)) % self.partitions.len() as u64) as usize
    }

    /// Partition handle (for the scan source and joins).
    pub fn partition(&self, i: usize) -> &Arc<IndexedPartition> {
        &self.partitions[i]
    }

    /// Append one row.
    pub fn append_row(&self, values: &[Value]) -> Result<()> {
        if values.len() != self.schema.len() {
            return Err(EngineError::internal(format!(
                "row width {} vs schema width {}",
                values.len(),
                self.schema.len()
            )));
        }
        let p = self.partition_of(&values[self.key_col]);
        let _window = CommitWindowScope::enter(self);
        let sink = self.sink.read().clone();
        match sink {
            // No durability attached: the original zero-extra-work path.
            None => self.partitions[p].append_row(values),
            // Durable path: validate/encode first, log, then publish —
            // same ordering contract as `append_chunk`.
            Some(sink) => {
                let payload = self.partitions[p].encode_row(values)?;
                let _guard = sink.begin_commit(&[payload.as_slice()])?;
                self.partitions[p].append_encoded(&values[self.key_col], &payload)
            }
        }
    }

    /// Number of appends currently inside the commit window: past phase-1
    /// validation (about to consult the sink) but not yet fully published
    /// to memory. The views subsystem polls this while its delta-capture
    /// gate is closed to wait out appends that raced a tap install — once
    /// it reads the number of appends parked at the gate itself, every
    /// earlier commit has published and a base-table read is a consistent
    /// seed point.
    pub fn commit_window(&self) -> usize {
        // idf-lint: allow(atomics-audit) -- SeqCst read pairs with enter/exit so a closed gate never misses a parked append
        self.commit_window.load(std::sync::atomic::Ordering::SeqCst)
    }

    /// Append every row of `chunk`, routing by key hash. Rows for distinct
    /// partitions are inserted in parallel.
    ///
    /// The append is two-phase so a failure never publishes a partial
    /// batch: phase 1 encodes and validates every row (oversized rows,
    /// encoding faults) without touching any shared state; only once every
    /// partition's rows have validated does phase 2 publish them. A worker
    /// that errors or panics in phase 1 therefore leaves the table exactly
    /// as it was. Phase 2 publish failures are partition-local by design —
    /// the same per-partition atomicity the snapshot contract documents.
    pub fn append_chunk(&self, chunk: &Chunk) -> Result<()> {
        if chunk.num_columns() != self.schema.len() {
            return Err(EngineError::type_err(format!(
                "appended data has {} columns, table has {}",
                chunk.num_columns(),
                self.schema.len()
            )));
        }
        let n = self.partitions.len();
        // Route rows.
        let key_col = chunk.column(self.key_col);
        let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); n];
        for row in 0..chunk.len() {
            let key = key_col.value_at(row);
            let p = (hash_values(std::slice::from_ref(&key)) % n as u64) as usize;
            buckets[p].push(row as u32);
        }
        let involved: Vec<(usize, &Vec<u32>)> = buckets
            .iter()
            .enumerate()
            .filter(|(_, rows)| !rows.is_empty())
            .collect();
        if involved.is_empty() {
            return Ok(());
        }
        // Phase 1: encode + validate every partition's rows in parallel,
        // touching no shared state.
        type Encoded = Vec<(Value, Vec<u8>)>;
        let key_col_idx = self.key_col;
        let encode_bucket = |p: usize, rows: &[u32]| -> Result<(usize, Encoded)> {
            catch_panics(|| {
                let partition = &self.partitions[p];
                let sub = chunk.take(rows)?;
                let mut encoded = Vec::with_capacity(sub.len());
                for r in 0..sub.len() {
                    let values = sub.row_values(r);
                    let payload = partition.encode_row(&values)?;
                    encoded.push((values[key_col_idx].clone(), payload));
                }
                Ok((p, encoded))
            })
        };
        let encoded: Vec<(usize, Encoded)> = if involved.len() == 1 {
            let (p, rows) = involved[0];
            vec![encode_bucket(p, rows)?]
        } else {
            let results: Vec<Result<(usize, Encoded)>> = std::thread::scope(|s| {
                let encode = &encode_bucket;
                let handles: Vec<_> = involved
                    .iter()
                    .map(|&(p, rows)| s.spawn(move || encode(p, rows)))
                    .collect();
                handles.into_iter().map(join_isolated).collect()
            });
            results.into_iter().collect::<Result<_>>()?
        };
        // Commit point: past here rows start becoming visible.
        let _window = CommitWindowScope::enter(self);
        crate::failpoints::check(crate::failpoints::APPEND_PUBLISH)?;
        // Log the whole validated chunk before anything becomes visible;
        // an abort at the commit point above leaves the WAL untouched, so
        // a failed append is never resurrected by recovery. The guard is
        // held through phase 2 so a checkpoint cannot truncate the WAL
        // under a commit that is logged but not yet published.
        let sink = self.sink.read().clone();
        let _guard = match &sink {
            Some(sink) => {
                let rows: Vec<&[u8]> = encoded
                    .iter()
                    .flat_map(|(_, rows)| rows.iter().map(|(_, payload)| payload.as_slice()))
                    .collect();
                Some(sink.begin_commit(&rows)?)
            }
            None => None,
        };
        // Phase 2: publish per-partition, in parallel.
        let publish_bucket = |p: usize, encoded: &[(Value, Vec<u8>)]| -> Result<()> {
            catch_panics(|| {
                let partition = &self.partitions[p];
                for (key, payload) in encoded {
                    partition.append_encoded(key, payload)?;
                }
                Ok(())
            })
        };
        if encoded.len() == 1 {
            let (p, rows) = &encoded[0];
            return publish_bucket(*p, rows);
        }
        let results: Vec<Result<()>> = std::thread::scope(|s| {
            let publish = &publish_bucket;
            let handles: Vec<_> = encoded
                .iter()
                .map(|(p, rows)| {
                    let p = *p;
                    s.spawn(move || publish(p, rows))
                })
                .collect();
            handles.into_iter().map(join_isolated).collect()
        });
        results.into_iter().collect::<Result<Vec<()>>>()?;
        Ok(())
    }

    /// Point lookup across the table (single-partition by hash routing).
    pub fn lookup_chunk(&self, key: &Value, projection: Option<&[usize]>) -> Result<Chunk> {
        if key.is_null() {
            let cols = projection.map_or(self.schema.len(), <[usize]>::len);
            let proj: Vec<usize> =
                projection.map_or_else(|| (0..cols).collect(), <[usize]>::to_vec);
            return Ok(Chunk::empty(&Arc::new(self.schema.project(&proj))));
        }
        let p = self.partition_of(key);
        self.partitions[p].snapshot().lookup_chunk(key, projection)
    }

    /// Batched point lookup: every key probed against **one** table-wide
    /// snapshot (see [`TableSnapshot::lookup_batch`]), so all results
    /// reflect the same point in time even while appends are in flight.
    pub fn lookup_chunk_batch(
        &self,
        keys: &[Value],
        projection: Option<&[usize]>,
    ) -> Result<Chunk> {
        self.snapshot().lookup_batch(keys, projection)
    }

    /// Total rows.
    pub fn row_count(&self) -> usize {
        self.partitions.iter().map(|p| p.row_count()).sum()
    }

    /// Consistent snapshot of every partition.
    pub fn snapshot(&self) -> TableSnapshot {
        TableSnapshot {
            schema: Arc::clone(&self.schema),
            key_col: self.key_col,
            partitions: self.partitions.iter().map(|p| p.snapshot()).collect(),
        }
    }

    /// Aggregated memory accounting.
    pub fn memory_stats(&self) -> PartitionMemory {
        let mut total = PartitionMemory {
            data_bytes: 0,
            reserved_bytes: 0,
            index_entries: 0,
            rows: 0,
            tombstones: 0,
            dead_rows: 0,
        };
        for p in &self.partitions {
            let m = p.memory_stats();
            total.data_bytes += m.data_bytes;
            total.reserved_bytes += m.reserved_bytes;
            total.index_entries += m.index_entries;
            total.rows += m.rows;
            total.tombstones += m.tombstones;
            total.dead_rows += m.dead_rows;
        }
        total
    }

    /// Apply one DML statement: delete the rows in `deletes` (by value
    /// identity — the executor hands back the exact rows its bound scan
    /// matched) and insert the rows in `inserts` (an `UPDATE`'s new
    /// images; empty for a plain `DELETE`). Returns the number of rows
    /// that actually matched, which is the statement's rows-affected.
    ///
    /// # Protocol
    ///
    /// For every key touched by a delete, the commit appends — in one
    /// atomic statement per the [`AppendSink::begin_commit_kinds`]
    /// contract — a tombstone (hiding every existing version of the key),
    /// then re-appends the *survivors* (visible versions that did not
    /// match a delete row, oldest-first so chain order is preserved), then
    /// the new images. Readers keep the plain MVCC contract: a snapshot
    /// taken before the commit point never sees any of it; one taken after
    /// sees all of it (per partition).
    ///
    /// Rows whose key is NULL are not reachable through the index and are
    /// therefore not DML-addressable: a delete naming one is a typed
    /// error. A delete row that no longer exists in the live chain (a
    /// concurrent statement got there first) is skipped, not an error —
    /// it simply does not count toward rows-affected.
    pub fn apply_dml(&self, deletes: &[Vec<Value>], inserts: &[Vec<Value>]) -> Result<usize> {
        for row in deletes.iter().chain(inserts.iter()) {
            if row.len() != self.schema.len() {
                return Err(EngineError::internal(format!(
                    "DML row width {} vs schema width {}",
                    row.len(),
                    self.schema.len()
                )));
            }
        }
        for row in deletes {
            if row[self.key_col].is_null() {
                return Err(EngineError::exec(
                    "DML cannot address rows whose index key is NULL",
                ));
            }
        }
        if deletes.is_empty() && inserts.is_empty() {
            return Ok(0);
        }
        let n = self.partitions.len();
        // Group deletes per partition, per key (first-occurrence order so
        // the commit is deterministic for a given statement).
        let mut del_groups: Vec<Vec<(Value, Vec<Vec<Value>>)>> = vec![Vec::new(); n];
        for row in deletes {
            let key = &row[self.key_col];
            let p = self.partition_of(key);
            match del_groups[p].iter_mut().find(|(k, _)| k == key) {
                Some((_, rows)) => rows.push(row.clone()),
                None => del_groups[p].push((key.clone(), vec![row.clone()])),
            }
        }
        let mut ins_groups: Vec<Vec<&Vec<Value>>> = vec![Vec::new(); n];
        for row in inserts {
            ins_groups[self.partition_of(&row[self.key_col])].push(row);
        }
        // One statement at a time; see the field doc on `dml_lock`.
        let _stmt = self.dml_lock.lock();
        // Block writers on every touched partition for the whole
        // read-compute-publish cycle so the survivor set cannot go stale
        // between computing it and republishing it. Readers are never
        // blocked. Locks are taken in ascending partition order.
        let touched: Vec<usize> = (0..n)
            .filter(|&p| !del_groups[p].is_empty() || !ins_groups[p].is_empty())
            .collect();
        let _locks: Vec<_> = touched
            .iter()
            .map(|&p| self.partitions[p].lock_appends())
            .collect();
        // Phase 1: with the chains frozen, compute survivors and encode
        // every payload. Nothing shared is touched; an error here leaves
        // the table exactly as it was.
        let mut rows_affected = 0usize;
        let mut ops: Vec<Vec<(Value, Vec<u8>, RowKind)>> = vec![Vec::new(); n];
        for &p in &touched {
            let partition = &self.partitions[p];
            for (key, rows) in &del_groups[p] {
                let visible = partition.visible_rows_locked(key)?;
                let mut pending: Vec<&Vec<Value>> = rows.iter().collect();
                // `visible` is latest-first; survivors keep that order
                // here and are re-appended oldest-first below.
                let mut survivors: Vec<&Vec<Value>> = Vec::new();
                let mut matched = 0usize;
                for v in &visible {
                    if let Some(i) = pending.iter().position(|r| *r == v) {
                        pending.swap_remove(i);
                        matched += 1;
                    } else {
                        survivors.push(v);
                    }
                }
                if matched == 0 {
                    // Nothing to hide for this key (raced away or never
                    // there) — emitting a tombstone would only churn.
                    continue;
                }
                rows_affected += matched;
                let mut tomb_vals = vec![Value::Null; self.schema.len()];
                tomb_vals[self.key_col] = key.clone();
                let tomb = partition.encode_row(&tomb_vals)?;
                ops[p].push((key.clone(), tomb, RowKind::Tombstone));
                for v in survivors.iter().rev() {
                    ops[p].push((key.clone(), partition.encode_row(v)?, RowKind::Data));
                }
            }
            for row in &ins_groups[p] {
                let payload = partition.encode_row(row)?;
                ops[p].push((row[self.key_col].clone(), payload, RowKind::Data));
            }
        }
        if ops.iter().all(Vec::is_empty) {
            return Ok(rows_affected);
        }
        // Commit point: log the whole statement as ONE kind-tagged record,
        // then publish under the already-held append locks. An abort at
        // the failpoint leaves neither memory nor WAL touched.
        let _window = CommitWindowScope::enter(self);
        crate::failpoints::check(crate::failpoints::APPEND_PUBLISH)?;
        let sink = self.sink.read().clone();
        let _guard = match &sink {
            Some(sink) => {
                let mut rows: Vec<&[u8]> = Vec::new();
                let mut kinds: Vec<RowKind> = Vec::new();
                for &p in &touched {
                    for (_, payload, kind) in &ops[p] {
                        rows.push(payload.as_slice());
                        kinds.push(*kind);
                    }
                }
                Some(sink.begin_commit_kinds(&rows, &kinds)?)
            }
            None => None,
        };
        // Phase 2: publish, partitions in ascending order, each
        // partition's ops in statement order.
        for &p in &touched {
            let partition = &self.partitions[p];
            for (key, payload, kind) in &ops[p] {
                partition.publish_locked_kind(key, payload, *kind)?;
            }
        }
        Ok(rows_affected)
    }

    /// Replay one DML statement's kind-tagged payloads from the WAL:
    /// append each payload with its recorded kind, routed by its decoded
    /// key. Replay happens before any sink is installed and before
    /// concurrent writers exist, so the plain per-row append path
    /// reproduces the original commit exactly.
    pub fn replay_dml(&self, payloads: &[Vec<u8>], kinds: &[RowKind]) -> Result<()> {
        if payloads.len() != kinds.len() {
            return Err(EngineError::corrupt(format!(
                "DML record has {} payloads but {} kinds",
                payloads.len(),
                kinds.len()
            )));
        }
        for (payload, kind) in payloads.iter().zip(kinds) {
            let values = self.decode_payload(payload)?;
            let key = &values[self.key_col];
            let p = self.partition_of(key);
            self.partitions[p].append_encoded_kind(key, payload, *kind)?;
        }
        Ok(())
    }

    /// Compact every partition in turn (see [`IndexedPartition::compact`]):
    /// drop versions hidden below tombstones, shorten chains, release the
    /// memory. Readers are never blocked; writers wait per partition.
    /// Returns the merged stats; partitions with no tombstones are no-ops.
    pub fn compact(&self) -> Result<CompactStats> {
        self.compact_with(&|| Ok(()))
    }

    /// [`compact`](Self::compact) with a caller hook invoked on each
    /// partition just before its rewritten state is swapped in — the
    /// compaction subsystem injects its swap failpoint here. An error from
    /// the hook aborts that partition's rewrite with no state change and
    /// propagates; already-compacted partitions stay compacted (each
    /// partition swap is individually atomic).
    pub fn compact_with(&self, pre_swap: &dyn Fn() -> Result<()>) -> Result<CompactStats> {
        let mut total = CompactStats::default();
        for p in &self.partitions {
            total.merge(&p.compact(pre_swap)?);
        }
        Ok(total)
    }
}

/// Join a scoped worker, converting a panic that escaped `catch_panics`
/// (or tore down the unwind machinery) into an engine error instead of
/// propagating it into the caller.
fn join_isolated<'scope, T>(h: std::thread::ScopedJoinHandle<'scope, Result<T>>) -> Result<T> {
    h.join().unwrap_or_else(|payload| {
        Err(EngineError::internal(format!(
            "storage task panicked: {}",
            panic_message(payload.as_ref())
        )))
    })
}

impl std::fmt::Debug for IndexedTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "IndexedTable(key={}, partitions={}, rows={})",
            self.schema.field(self.key_col).name,
            self.partitions.len(),
            self.row_count()
        )
    }
}

/// A frozen view of every partition.
///
/// # Consistency contract
///
/// Each [`PartitionSnapshot`] is individually consistent: it is an atomic
/// point-in-time view of its partition (index and row bytes agree, chains
/// never dangle, later appends to that partition are invisible). The
/// *table* snapshot, however, is assembled by snapshotting partitions one
/// after another **without pausing writers**, so it is per-partition
/// consistent, not globally serializable: a multi-row append racing with
/// `snapshot()` may be visible in a later-snapshotted partition while its
/// sibling rows in an earlier-snapshotted partition are not. This mirrors
/// the paper's Spark semantics, where each partition is an independently
/// versioned RDD block. Appends routed to a single partition (every row of
/// one key, since routing hashes the key) are therefore always observed
/// atomically; only *cross-partition* batches can be observed partially.
pub struct TableSnapshot {
    schema: SchemaRef,
    key_col: usize,
    partitions: Vec<PartitionSnapshot>,
}

impl TableSnapshot {
    /// The table schema.
    pub fn schema(&self) -> SchemaRef {
        Arc::clone(&self.schema)
    }

    /// The indexed column position.
    pub fn key_col(&self) -> usize {
        self.key_col
    }

    /// Partition views.
    pub fn partitions(&self) -> &[PartitionSnapshot] {
        &self.partitions
    }

    /// Point lookup within the snapshot.
    pub fn lookup_chunk(&self, key: &Value, projection: Option<&[usize]>) -> Result<Chunk> {
        let p = (hash_values(std::slice::from_ref(key)) % self.partitions.len() as u64) as usize;
        self.partitions[p].lookup_chunk(key, projection)
    }

    /// Batched point lookup: probe many keys against this one snapshot and
    /// return all matching rows as a single chunk.
    ///
    /// Keys are deduplicated (and NULLs dropped — a NULL never equals any
    /// indexed key), grouped by their hash partition, and the involved
    /// partitions are probed **in parallel**, each sharing one set of
    /// column builders across all of its keys. Row order: grouped by
    /// partition in partition order; within a partition, keys in
    /// first-occurrence order, each key's chain latest-first. Callers that
    /// need a specific order sort the resulting chunk.
    pub fn lookup_batch(&self, keys: &[Value], projection: Option<&[usize]>) -> Result<Chunk> {
        self.lookup_batch_ctx(keys, projection, None)
    }

    /// [`lookup_batch`](Self::lookup_batch) with query lifecycle hooks:
    /// per-key cancellation/deadline checks and result-memory charging
    /// against `query` when one is supplied. Partition probes are
    /// panic-isolated — a worker that dies surfaces as an engine error.
    pub fn lookup_batch_ctx(
        &self,
        keys: &[Value],
        projection: Option<&[usize]>,
        query: Option<&QueryContext>,
    ) -> Result<Chunk> {
        let n = self.partitions.len();
        // Route distinct non-null keys to their partitions.
        let mut buckets: Vec<Vec<&Value>> = vec![Vec::new(); n];
        let mut seen: std::collections::HashSet<&Value> = std::collections::HashSet::new();
        for key in keys {
            if key.is_null() || !seen.insert(key) {
                continue;
            }
            let p = (hash_values(std::slice::from_ref(key)) % n as u64) as usize;
            buckets[p].push(key);
        }
        let involved: Vec<(usize, Vec<Value>)> = buckets
            .into_iter()
            .enumerate()
            .filter(|(_, keys)| !keys.is_empty())
            .map(|(p, keys)| (p, keys.into_iter().cloned().collect()))
            .collect();
        let probe = |p: usize, keys: &[Value]| -> Result<Chunk> {
            catch_panics(|| self.partitions[p].lookup_chunk_multi_ctx(keys, projection, query))
        };
        let chunks: Vec<Chunk> = match involved.len() {
            0 => {
                let proj: Vec<usize> =
                    projection.map_or_else(|| (0..self.schema.len()).collect(), <[usize]>::to_vec);
                return Ok(Chunk::empty(&Arc::new(self.schema.project(&proj))));
            }
            // One partition involved: probe inline, no thread overhead.
            1 => {
                let (p, keys) = &involved[0];
                vec![probe(*p, keys)?]
            }
            _ => {
                let results: Vec<Result<Chunk>> = std::thread::scope(|s| {
                    let probe = &probe;
                    let handles: Vec<_> = involved
                        .iter()
                        .map(|(p, keys)| s.spawn(move || probe(*p, keys)))
                        .collect();
                    handles.into_iter().map(join_isolated).collect()
                });
                results.into_iter().collect::<Result<_>>()?
            }
        };
        Chunk::concat(&chunks)
    }

    /// Total rows visible.
    pub fn row_count(&self) -> usize {
        self.partitions
            .iter()
            .map(PartitionSnapshot::row_count)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idf_engine::schema::{Field, Schema};
    use idf_engine::types::DataType;

    fn schema() -> SchemaRef {
        Arc::new(Schema::new(vec![
            Field::new("k", DataType::Int64),
            Field::new("v", DataType::Int64),
        ]))
    }

    fn cfg(n: usize) -> IndexConfig {
        IndexConfig {
            num_partitions: n,
            ..Default::default()
        }
    }

    fn chunk(rows: impl Iterator<Item = (i64, i64)>) -> Chunk {
        let rows: Vec<Vec<Value>> = rows
            .map(|(k, v)| vec![Value::Int64(k), Value::Int64(v)])
            .collect();
        Chunk::from_rows(&schema(), &rows).unwrap()
    }

    #[test]
    fn build_from_chunk_and_lookup() {
        let data = chunk((0..1000).map(|i| (i % 100, i)));
        let t = IndexedTable::from_chunk(schema(), 0, cfg(4), &data).unwrap();
        assert_eq!(t.row_count(), 1000);
        for k in 0..100 {
            let c = t.lookup_chunk(&Value::Int64(k), None).unwrap();
            assert_eq!(c.len(), 10, "key {k}");
            for r in 0..c.len() {
                assert_eq!(c.value_at(0, r), Value::Int64(k));
            }
        }
        assert_eq!(t.lookup_chunk(&Value::Int64(1234), None).unwrap().len(), 0);
    }

    #[test]
    fn routing_is_stable() {
        let t = IndexedTable::new(schema(), 0, cfg(7)).unwrap();
        for k in 0..100 {
            let v = Value::Int64(k);
            assert_eq!(t.partition_of(&v), t.partition_of(&v));
            assert!(t.partition_of(&v) < 7);
        }
    }

    #[test]
    fn append_after_build() {
        let data = chunk((0..10).map(|i| (i, i)));
        let t = IndexedTable::from_chunk(schema(), 0, cfg(2), &data).unwrap();
        t.append_row(&[Value::Int64(3), Value::Int64(999)]).unwrap();
        let c = t.lookup_chunk(&Value::Int64(3), None).unwrap();
        assert_eq!(c.len(), 2);
        assert_eq!(c.value_at(1, 0), Value::Int64(999), "latest first");
    }

    #[test]
    fn table_snapshot_consistency() {
        let data = chunk((0..100).map(|i| (i, i)));
        let t = IndexedTable::from_chunk(schema(), 0, cfg(3), &data).unwrap();
        let snap = t.snapshot();
        t.append_chunk(&chunk((100..200).map(|i| (i, i)))).unwrap();
        assert_eq!(snap.row_count(), 100);
        assert_eq!(t.row_count(), 200);
        assert_eq!(
            snap.lookup_chunk(&Value::Int64(150), None).unwrap().len(),
            0
        );
        assert_eq!(t.lookup_chunk(&Value::Int64(150), None).unwrap().len(), 1);
    }

    #[test]
    fn batched_lookup_matches_singles() {
        let data = chunk((0..1000).map(|i| (i % 100, i)));
        let t = IndexedTable::from_chunk(schema(), 0, cfg(4), &data).unwrap();
        // Duplicates and NULLs in the request collapse / drop.
        let keys: Vec<Value> = [3i64, 17, 3, 99, 1234]
            .iter()
            .map(|&k| Value::Int64(k))
            .chain([Value::Null])
            .collect();
        let batch = t.lookup_chunk_batch(&keys, None).unwrap();
        assert_eq!(
            batch.len(),
            30,
            "3 present keys x 10 rows, misses and nulls empty"
        );
        // Same multiset of rows as looping the single-key path.
        let mut batched: Vec<(Value, Value)> = (0..batch.len())
            .map(|r| (batch.value_at(0, r), batch.value_at(1, r)))
            .collect();
        let mut single = Vec::new();
        for k in [3i64, 17, 99] {
            let c = t.lookup_chunk(&Value::Int64(k), None).unwrap();
            for r in 0..c.len() {
                single.push((c.value_at(0, r), c.value_at(1, r)));
            }
        }
        batched.sort();
        single.sort();
        assert_eq!(batched, single);
        // Projection applies to the whole batch.
        let proj = t.lookup_chunk_batch(&keys, Some(&[1])).unwrap();
        assert_eq!(proj.num_columns(), 1);
        assert_eq!(proj.len(), 30);
        // All-miss and empty requests produce a projected empty chunk.
        let empty = t
            .lookup_chunk_batch(&[Value::Int64(7777)], Some(&[1]))
            .unwrap();
        assert_eq!((empty.len(), empty.num_columns()), (0, 1));
        let none = t.lookup_chunk_batch(&[], None).unwrap();
        assert_eq!((none.len(), none.num_columns()), (0, 2));
    }

    #[test]
    fn batched_lookup_sees_one_snapshot_under_appends() {
        // A batch probe taken mid-append-storm must answer every key from
        // the same point in time *per partition*: for any single key, the
        // observed chain is a prefix of the final chain, and the batched
        // result equals re-probing the same snapshot key by key.
        let data = chunk((0..100).map(|i| (i % 10, i)));
        let t = Arc::new(IndexedTable::from_chunk(schema(), 0, cfg(4), &data).unwrap());
        let keys: Vec<Value> = (0..10).map(Value::Int64).collect();
        std::thread::scope(|s| {
            let writer = {
                let t = Arc::clone(&t);
                s.spawn(move || {
                    for i in 100..2000 {
                        t.append_row(&[Value::Int64(i % 10), Value::Int64(i)])
                            .unwrap();
                    }
                })
            };
            for _ in 0..20 {
                let snap = t.snapshot();
                let batch = snap.lookup_batch(&keys, None).unwrap();
                let singles: usize = keys
                    .iter()
                    .map(|k| snap.lookup_chunk(k, None).unwrap().len())
                    .sum();
                assert_eq!(batch.len(), singles, "batch equals singles on one snapshot");
            }
            writer.join().unwrap();
        });
        assert_eq!(t.snapshot().lookup_batch(&keys, None).unwrap().len(), 2000);
    }

    #[test]
    fn snapshot_is_per_partition_consistent() {
        // The documented contract: all rows of ONE key live in one
        // partition, so a key's chain can never be observed torn — even
        // though a cross-partition append may be observed partially.
        let t = Arc::new(IndexedTable::new(schema(), 0, cfg(4)).unwrap());
        std::thread::scope(|s| {
            let writer = {
                let t = Arc::clone(&t);
                // Each round appends one row per key; a key's chain length
                // counts completed rounds.
                s.spawn(move || {
                    for round in 0..300 {
                        for k in 0..8 {
                            t.append_row(&[Value::Int64(k), Value::Int64(round)])
                                .unwrap();
                        }
                    }
                })
            };
            for _ in 0..30 {
                let snap = t.snapshot();
                for k in 0..8 {
                    let c = snap.lookup_chunk(&Value::Int64(k), None).unwrap();
                    if !c.is_empty() {
                        // Chain is latest-first and contiguous: rounds
                        // len-1, len-2, ..., 0 with nothing missing.
                        assert_eq!(c.value_at(1, 0), Value::Int64(c.len() as i64 - 1));
                        assert_eq!(c.value_at(1, c.len() - 1), Value::Int64(0));
                    }
                }
            }
            writer.join().unwrap();
        });
        assert_eq!(t.row_count(), 2400);
    }

    #[test]
    fn null_key_lookup_is_empty() {
        let data = chunk((0..10).map(|i| (i, i)));
        let t = IndexedTable::from_chunk(schema(), 0, cfg(2), &data).unwrap();
        assert_eq!(t.lookup_chunk(&Value::Null, None).unwrap().len(), 0);
    }

    #[test]
    fn rejects_bad_construction() {
        assert!(IndexedTable::new(schema(), 5, cfg(2)).is_err());
        let mut bad = cfg(2);
        bad.batch_size = 1 << 30;
        assert!(IndexedTable::new(schema(), 0, bad).is_err());
    }

    #[test]
    fn wrong_width_append_rejected() {
        let t = IndexedTable::new(schema(), 0, cfg(2)).unwrap();
        assert!(t.append_row(&[Value::Int64(1)]).is_err());
        let narrow = Arc::new(Schema::new(vec![Field::new("x", DataType::Int64)]));
        let c = Chunk::from_rows(&narrow, &[vec![Value::Int64(1)]]).unwrap();
        assert!(t.append_chunk(&c).is_err());
    }

    #[test]
    fn memory_stats_aggregate() {
        let data = chunk((0..500).map(|i| (i, i)));
        let t = IndexedTable::from_chunk(schema(), 0, cfg(4), &data).unwrap();
        let m = t.memory_stats();
        assert_eq!(m.rows, 500);
        assert_eq!(m.index_entries, 500);
        assert!(m.data_bytes > 0);
        assert_eq!((m.tombstones, m.dead_rows), (0, 0));
    }

    fn row(k: i64, v: i64) -> Vec<Value> {
        vec![Value::Int64(k), Value::Int64(v)]
    }

    #[test]
    fn delete_hides_rows_and_reports_affected() {
        let data = chunk((0..100).map(|i| (i % 10, i)));
        let t = IndexedTable::from_chunk(schema(), 0, cfg(4), &data).unwrap();
        let pre = t.snapshot();
        // Delete every version of key 3 (10 rows) and one version of 7.
        let mut deletes: Vec<Vec<Value>> = (0..10).map(|r| row(3, 3 + 10 * r)).collect();
        deletes.push(row(7, 7));
        let affected = t.apply_dml(&deletes, &[]).unwrap();
        assert_eq!(affected, 11);
        assert_eq!(t.lookup_chunk(&Value::Int64(3), None).unwrap().len(), 0);
        let k7 = t.lookup_chunk(&Value::Int64(7), None).unwrap();
        assert_eq!(k7.len(), 9, "one version of key 7 gone");
        for r in 0..k7.len() {
            assert_ne!(k7.value_at(1, r), Value::Int64(7));
        }
        // Untouched keys unaffected; pre-DML snapshot still sees it all.
        assert_eq!(t.lookup_chunk(&Value::Int64(4), None).unwrap().len(), 10);
        assert_eq!(pre.lookup_chunk(&Value::Int64(3), None).unwrap().len(), 10);
        assert_eq!(pre.row_count(), 100);
        assert_eq!(t.snapshot().row_count(), 89);
        // Deleting something that is not there matches nothing.
        assert_eq!(t.apply_dml(&[row(3, 3)], &[]).unwrap(), 0);
        assert_eq!(t.apply_dml(&[row(999, 0)], &[]).unwrap(), 0);
    }

    #[test]
    fn update_replaces_versions() {
        let data = chunk((0..10).map(|i| (i, i)));
        let t = IndexedTable::from_chunk(schema(), 0, cfg(2), &data).unwrap();
        // UPDATE t SET v = v + 100 WHERE k < 3: executor hands back the
        // matched old rows as deletes and the new images as inserts.
        let deletes: Vec<Vec<Value>> = (0..3).map(|k| row(k, k)).collect();
        let inserts: Vec<Vec<Value>> = (0..3).map(|k| row(k, k + 100)).collect();
        assert_eq!(t.apply_dml(&deletes, &inserts).unwrap(), 3);
        for k in 0..3 {
            let c = t.lookup_chunk(&Value::Int64(k), None).unwrap();
            assert_eq!(c.len(), 1, "old version hidden");
            assert_eq!(c.value_at(1, 0), Value::Int64(k + 100));
        }
        assert_eq!(t.snapshot().row_count(), 10);
        // An update can also move a row to a new key (delete old key's
        // row, insert under the new key).
        assert_eq!(
            t.apply_dml(&[row(5, 5)], &[row(50, 5)]).unwrap(),
            1,
            "cross-key update"
        );
        assert_eq!(t.lookup_chunk(&Value::Int64(5), None).unwrap().len(), 0);
        assert_eq!(t.lookup_chunk(&Value::Int64(50), None).unwrap().len(), 1);
    }

    #[test]
    fn dml_survivors_keep_chain_order() {
        let t = IndexedTable::new(schema(), 0, cfg(2)).unwrap();
        for v in 0..5 {
            t.append_row(&row(1, v)).unwrap();
        }
        // Delete the middle version; the other four survive in order.
        assert_eq!(t.apply_dml(&[row(1, 2)], &[]).unwrap(), 1);
        let c = t.lookup_chunk(&Value::Int64(1), None).unwrap();
        let got: Vec<Value> = (0..c.len()).map(|r| c.value_at(1, r)).collect();
        let want: Vec<Value> = [4i64, 3, 1, 0].iter().map(|&v| Value::Int64(v)).collect();
        assert_eq!(got, want, "latest-first, gap where v=2 was");
    }

    #[test]
    fn dml_rejects_null_key_deletes_and_bad_widths() {
        let t = IndexedTable::new(schema(), 0, cfg(2)).unwrap();
        t.append_row(&[Value::Null, Value::Int64(1)]).unwrap();
        let err = t
            .apply_dml(&[vec![Value::Null, Value::Int64(1)]], &[])
            .unwrap_err();
        assert!(err.to_string().contains("NULL"), "{err}");
        assert!(t.apply_dml(&[vec![Value::Int64(1)]], &[]).is_err());
        assert!(t.apply_dml(&[], &[vec![Value::Int64(1)]]).is_err());
        // NULL-key *inserts* are fine (they are plain unindexed rows).
        assert_eq!(
            t.apply_dml(&[], &[vec![Value::Null, Value::Int64(2)]])
                .unwrap(),
            0
        );
        assert_eq!(t.snapshot().row_count(), 2);
    }

    #[test]
    fn dml_roundtrips_through_replay() {
        // Capture a DML statement through a recording sink, then replay
        // the payload/kind stream into a fresh table: same answers.
        struct Recorder(Mutex<Vec<(Vec<u8>, RowKind)>>);
        impl AppendSink for Recorder {
            fn begin_commit(&self, rows: &[&[u8]]) -> Result<Box<dyn crate::sink::CommitGuard>> {
                self.begin_commit_kinds(rows, &vec![RowKind::Data; rows.len()])
            }
            fn begin_commit_kinds(
                &self,
                rows: &[&[u8]],
                kinds: &[RowKind],
            ) -> Result<Box<dyn crate::sink::CommitGuard>> {
                let mut log = self.0.lock();
                for (row, kind) in rows.iter().zip(kinds) {
                    log.push((row.to_vec(), *kind));
                }
                Ok(Box::new(crate::sink::NoopCommitGuard))
            }
        }
        let recorder = Arc::new(Recorder(Mutex::new(Vec::new())));
        let t = IndexedTable::new(schema(), 0, cfg(4)).unwrap();
        t.set_append_sink(Arc::clone(&recorder) as Arc<dyn AppendSink>);
        t.append_chunk(&chunk((0..20).map(|i| (i % 5, i)))).unwrap();
        assert_eq!(
            t.apply_dml(&[row(2, 2), row(2, 7)], &[row(2, 777)])
                .unwrap(),
            2
        );
        assert_eq!(
            t.apply_dml(&(0..4).map(|v| row(4, 4 + 5 * v)).collect::<Vec<_>>(), &[])
                .unwrap(),
            4
        );
        // Replay the whole log into a fresh table.
        let replayed = IndexedTable::new(schema(), 0, cfg(4)).unwrap();
        let log = recorder.0.lock();
        let payloads: Vec<Vec<u8>> = log.iter().map(|(p, _)| p.clone()).collect();
        let kinds: Vec<RowKind> = log.iter().map(|(_, k)| *k).collect();
        replayed.replay_dml(&payloads, &kinds).unwrap();
        assert_eq!(replayed.snapshot().row_count(), t.snapshot().row_count());
        for k in 0..6 {
            let a = t.lookup_chunk(&Value::Int64(k), None).unwrap();
            let b = replayed.lookup_chunk(&Value::Int64(k), None).unwrap();
            assert_eq!(a.len(), b.len(), "key {k}");
            for r in 0..a.len() {
                assert_eq!(a.value_at(1, r), b.value_at(1, r), "key {k} row {r}");
            }
        }
        assert!(replayed
            .replay_dml(&payloads, &kinds[..1.min(kinds.len())])
            .is_err());
    }

    #[test]
    fn table_compact_reclaims_after_churn() {
        let t =
            IndexedTable::from_chunk(schema(), 0, cfg(4), &chunk((0..50).map(|i| (i, i)))).unwrap();
        for round in 1..=10 {
            let deletes: Vec<Vec<Value>> =
                (0..50).map(|k| row(k, k + (round - 1) * 1000)).collect();
            let inserts: Vec<Vec<Value>> = (0..50).map(|k| row(k, k + round * 1000)).collect();
            assert_eq!(t.apply_dml(&deletes, &inserts).unwrap(), 50);
        }
        let before = t.memory_stats();
        assert!(before.dead_rows > 0 && before.tombstones > 0);
        let stats = t.compact().unwrap();
        assert!(stats.rows_reclaimed() > 0);
        assert!(stats.bytes_reclaimed() > 0);
        let after = t.memory_stats();
        assert_eq!((after.tombstones, after.dead_rows), (0, 0));
        assert!(after.data_bytes < before.data_bytes);
        assert_eq!(t.snapshot().row_count(), 50);
        for k in 0..50 {
            let c = t.lookup_chunk(&Value::Int64(k), None).unwrap();
            assert_eq!(c.len(), 1);
            assert_eq!(c.value_at(1, 0), Value::Int64(k + 10_000));
        }
        // Second pass is a no-op.
        assert_eq!(t.compact().unwrap().rows_reclaimed(), 0);
    }
}
