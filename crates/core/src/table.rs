//! The hash-partitioned indexed table.
//!
//! Paper, §2 (*Index Creation*): *"The Indexed DataFrame is hash
//! partitioned on the indexed column … when an index is created on a
//! regular Dataframe, its rows are shuffled based on the hash partitioning
//! scheme to their respective Indexed DataFrame partitions."*
//!
//! Partition routing uses the engine's shuffle hash
//! ([`idf_engine::physical::hash_values`]), which is what co-partitions a
//! shuffled probe side with the index during indexed joins.

use std::sync::Arc;

use idf_engine::chunk::Chunk;
use idf_engine::error::{catch_panics, panic_message, EngineError, Result};
use idf_engine::physical::hash_values;
use idf_engine::query::QueryContext;
use idf_engine::schema::SchemaRef;
use idf_engine::types::Value;

use parking_lot::RwLock;

use crate::config::IndexConfig;
use crate::partition::{IndexedPartition, PartitionMemory, PartitionSnapshot};
use crate::sink::{AppendSink, SinkStatus};

/// A partitioned, updatable, indexed, in-memory table.
pub struct IndexedTable {
    schema: SchemaRef,
    key_col: usize,
    config: IndexConfig,
    partitions: Vec<Arc<IndexedPartition>>,
    /// Durability hook; appends log through it when present (see
    /// [`crate::sink`] for the ordering contract).
    sink: RwLock<Option<Arc<dyn AppendSink>>>,
    /// Appends currently between the commit point and publish completion
    /// (see [`IndexedTable::commit_window`]).
    commit_window: std::sync::atomic::AtomicUsize,
}

/// RAII scope for one append's commit window: entered at the commit
/// point (just before the sink is consulted), left once the rows are
/// published to memory — on every path, including commit-point aborts.
struct CommitWindowScope<'a>(&'a IndexedTable);

impl<'a> CommitWindowScope<'a> {
    fn enter(table: &'a IndexedTable) -> Self {
        table
            .commit_window
            // idf-lint: allow(atomics-audit) -- SeqCst pairs the window counter with the tap-gate flag across two atomics; a closed gate must observe every in-window append
            .fetch_add(1, std::sync::atomic::Ordering::SeqCst);
        CommitWindowScope(table)
    }
}

impl Drop for CommitWindowScope<'_> {
    fn drop(&mut self) {
        self.0
            .commit_window
            // idf-lint: allow(atomics-audit) -- SeqCst exit pairs with the SeqCst enter; see commit_window()
            .fetch_sub(1, std::sync::atomic::Ordering::SeqCst);
    }
}

impl IndexedTable {
    /// An empty table indexing `schema[key_col]`.
    pub fn new(schema: SchemaRef, key_col: usize, config: IndexConfig) -> Result<Self> {
        config.validate().map_err(EngineError::Plan)?;
        if key_col >= schema.len() {
            return Err(EngineError::plan(format!(
                "index column {key_col} out of range for schema of width {}",
                schema.len()
            )));
        }
        let partitions = (0..config.num_partitions)
            .map(|_| {
                Arc::new(IndexedPartition::new(
                    Arc::clone(&schema),
                    key_col,
                    config.clone(),
                ))
            })
            .collect();
        Ok(IndexedTable {
            schema,
            key_col,
            config,
            partitions,
            sink: RwLock::new(None),
            commit_window: std::sync::atomic::AtomicUsize::new(0),
        })
    }

    /// Rebuild a table around partitions restored from a checkpoint (see
    /// [`IndexedPartition::restore`]). The partition count must match the
    /// configured hash fan-out — keys would otherwise route to the wrong
    /// partition and every probe after recovery would silently miss.
    pub fn from_restored_partitions(
        schema: SchemaRef,
        key_col: usize,
        config: IndexConfig,
        partitions: Vec<Arc<IndexedPartition>>,
    ) -> Result<Self> {
        config.validate().map_err(EngineError::Plan)?;
        if key_col >= schema.len() {
            return Err(EngineError::plan(format!(
                "index column {key_col} out of range for schema of width {}",
                schema.len()
            )));
        }
        if partitions.len() != config.num_partitions {
            return Err(EngineError::corrupt(format!(
                "restored {} partitions for a table configured with {}",
                partitions.len(),
                config.num_partitions
            )));
        }
        Ok(IndexedTable {
            schema,
            key_col,
            config,
            partitions,
            sink: RwLock::new(None),
            commit_window: std::sync::atomic::AtomicUsize::new(0),
        })
    }

    /// Install (or replace) the append sink all later appends log through.
    /// The durable session installs it *after* WAL replay, so replayed
    /// appends are not re-logged.
    pub fn set_append_sink(&self, sink: Arc<dyn AppendSink>) {
        *self.sink.write() = Some(sink);
    }

    /// Add `sink` *alongside* any already-installed sink instead of
    /// replacing it, composing through [`crate::sink::FanoutSink`]. The
    /// existing sink (the WAL, when the table is durable) keeps first
    /// position so its commit decision still gates the added tap — see
    /// the ordering contract on [`FanoutSink`](crate::sink::FanoutSink).
    /// The views subsystem uses this to tap committed chunks for
    /// incremental maintenance without disturbing durability.
    pub fn add_append_sink(&self, sink: Arc<dyn AppendSink>) {
        let mut slot = self.sink.write();
        *slot = Some(match slot.take() {
            None => sink,
            Some(existing) => Arc::new(crate::sink::FanoutSink::new(vec![existing, sink])),
        });
    }

    /// Whether appends are currently accepted. A table whose sink has
    /// degraded (sticky fsync failure, ENOSPC) reports
    /// [`SinkStatus::ReadOnly`] with the cause; reads, snapshots and
    /// checkpoints are unaffected. A table with no sink is writable.
    pub fn write_status(&self) -> SinkStatus {
        match self.sink.read().as_ref() {
            Some(sink) => sink.status(),
            None => SinkStatus::Writable,
        }
    }

    /// Decode an encoded row payload (as handed to the append sink) back
    /// into scalars — the recovery path uses this to replay WAL records
    /// through the regular typed append protocol.
    ///
    /// # Errors
    /// Fails on a payload that does not match the table's row layout.
    pub fn decode_payload(&self, payload: &[u8]) -> Result<Vec<Value>> {
        match self.partitions.first() {
            Some(p) => p.decode_payload(payload),
            None => Err(EngineError::internal("table has no partitions")),
        }
    }

    /// Build from an existing chunk (index creation): rows are routed to
    /// their hash partitions and inserted in parallel, one task per
    /// partition (appends within a partition stay sequential).
    pub fn from_chunk(
        schema: SchemaRef,
        key_col: usize,
        config: IndexConfig,
        chunk: &Chunk,
    ) -> Result<Self> {
        let table = Self::new(schema, key_col, config)?;
        table.append_chunk(chunk)?;
        Ok(table)
    }

    /// The table schema.
    pub fn schema(&self) -> SchemaRef {
        Arc::clone(&self.schema)
    }

    /// The indexed column position.
    pub fn key_col(&self) -> usize {
        self.key_col
    }

    /// The configuration.
    pub fn config(&self) -> &IndexConfig {
        &self.config
    }

    /// Number of hash partitions.
    pub fn num_partitions(&self) -> usize {
        self.partitions.len()
    }

    /// The partition a key routes to.
    pub fn partition_of(&self, key: &Value) -> usize {
        (hash_values(std::slice::from_ref(key)) % self.partitions.len() as u64) as usize
    }

    /// Partition handle (for the scan source and joins).
    pub fn partition(&self, i: usize) -> &Arc<IndexedPartition> {
        &self.partitions[i]
    }

    /// Append one row.
    pub fn append_row(&self, values: &[Value]) -> Result<()> {
        if values.len() != self.schema.len() {
            return Err(EngineError::internal(format!(
                "row width {} vs schema width {}",
                values.len(),
                self.schema.len()
            )));
        }
        let p = self.partition_of(&values[self.key_col]);
        let _window = CommitWindowScope::enter(self);
        let sink = self.sink.read().clone();
        match sink {
            // No durability attached: the original zero-extra-work path.
            None => self.partitions[p].append_row(values),
            // Durable path: validate/encode first, log, then publish —
            // same ordering contract as `append_chunk`.
            Some(sink) => {
                let payload = self.partitions[p].encode_row(values)?;
                let _guard = sink.begin_commit(&[payload.as_slice()])?;
                self.partitions[p].append_encoded(&values[self.key_col], &payload)
            }
        }
    }

    /// Number of appends currently inside the commit window: past phase-1
    /// validation (about to consult the sink) but not yet fully published
    /// to memory. The views subsystem polls this while its delta-capture
    /// gate is closed to wait out appends that raced a tap install — once
    /// it reads the number of appends parked at the gate itself, every
    /// earlier commit has published and a base-table read is a consistent
    /// seed point.
    pub fn commit_window(&self) -> usize {
        // idf-lint: allow(atomics-audit) -- SeqCst read pairs with enter/exit so a closed gate never misses a parked append
        self.commit_window.load(std::sync::atomic::Ordering::SeqCst)
    }

    /// Append every row of `chunk`, routing by key hash. Rows for distinct
    /// partitions are inserted in parallel.
    ///
    /// The append is two-phase so a failure never publishes a partial
    /// batch: phase 1 encodes and validates every row (oversized rows,
    /// encoding faults) without touching any shared state; only once every
    /// partition's rows have validated does phase 2 publish them. A worker
    /// that errors or panics in phase 1 therefore leaves the table exactly
    /// as it was. Phase 2 publish failures are partition-local by design —
    /// the same per-partition atomicity the snapshot contract documents.
    pub fn append_chunk(&self, chunk: &Chunk) -> Result<()> {
        if chunk.num_columns() != self.schema.len() {
            return Err(EngineError::type_err(format!(
                "appended data has {} columns, table has {}",
                chunk.num_columns(),
                self.schema.len()
            )));
        }
        let n = self.partitions.len();
        // Route rows.
        let key_col = chunk.column(self.key_col);
        let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); n];
        for row in 0..chunk.len() {
            let key = key_col.value_at(row);
            let p = (hash_values(std::slice::from_ref(&key)) % n as u64) as usize;
            buckets[p].push(row as u32);
        }
        let involved: Vec<(usize, &Vec<u32>)> = buckets
            .iter()
            .enumerate()
            .filter(|(_, rows)| !rows.is_empty())
            .collect();
        if involved.is_empty() {
            return Ok(());
        }
        // Phase 1: encode + validate every partition's rows in parallel,
        // touching no shared state.
        type Encoded = Vec<(Value, Vec<u8>)>;
        let key_col_idx = self.key_col;
        let encode_bucket = |p: usize, rows: &[u32]| -> Result<(usize, Encoded)> {
            catch_panics(|| {
                let partition = &self.partitions[p];
                let sub = chunk.take(rows)?;
                let mut encoded = Vec::with_capacity(sub.len());
                for r in 0..sub.len() {
                    let values = sub.row_values(r);
                    let payload = partition.encode_row(&values)?;
                    encoded.push((values[key_col_idx].clone(), payload));
                }
                Ok((p, encoded))
            })
        };
        let encoded: Vec<(usize, Encoded)> = if involved.len() == 1 {
            let (p, rows) = involved[0];
            vec![encode_bucket(p, rows)?]
        } else {
            let results: Vec<Result<(usize, Encoded)>> = std::thread::scope(|s| {
                let encode = &encode_bucket;
                let handles: Vec<_> = involved
                    .iter()
                    .map(|&(p, rows)| s.spawn(move || encode(p, rows)))
                    .collect();
                handles.into_iter().map(join_isolated).collect()
            });
            results.into_iter().collect::<Result<_>>()?
        };
        // Commit point: past here rows start becoming visible.
        let _window = CommitWindowScope::enter(self);
        crate::failpoints::check(crate::failpoints::APPEND_PUBLISH)?;
        // Log the whole validated chunk before anything becomes visible;
        // an abort at the commit point above leaves the WAL untouched, so
        // a failed append is never resurrected by recovery. The guard is
        // held through phase 2 so a checkpoint cannot truncate the WAL
        // under a commit that is logged but not yet published.
        let sink = self.sink.read().clone();
        let _guard = match &sink {
            Some(sink) => {
                let rows: Vec<&[u8]> = encoded
                    .iter()
                    .flat_map(|(_, rows)| rows.iter().map(|(_, payload)| payload.as_slice()))
                    .collect();
                Some(sink.begin_commit(&rows)?)
            }
            None => None,
        };
        // Phase 2: publish per-partition, in parallel.
        let publish_bucket = |p: usize, encoded: &[(Value, Vec<u8>)]| -> Result<()> {
            catch_panics(|| {
                let partition = &self.partitions[p];
                for (key, payload) in encoded {
                    partition.append_encoded(key, payload)?;
                }
                Ok(())
            })
        };
        if encoded.len() == 1 {
            let (p, rows) = &encoded[0];
            return publish_bucket(*p, rows);
        }
        let results: Vec<Result<()>> = std::thread::scope(|s| {
            let publish = &publish_bucket;
            let handles: Vec<_> = encoded
                .iter()
                .map(|(p, rows)| {
                    let p = *p;
                    s.spawn(move || publish(p, rows))
                })
                .collect();
            handles.into_iter().map(join_isolated).collect()
        });
        results.into_iter().collect::<Result<Vec<()>>>()?;
        Ok(())
    }

    /// Point lookup across the table (single-partition by hash routing).
    pub fn lookup_chunk(&self, key: &Value, projection: Option<&[usize]>) -> Result<Chunk> {
        if key.is_null() {
            let cols = projection.map_or(self.schema.len(), <[usize]>::len);
            let proj: Vec<usize> =
                projection.map_or_else(|| (0..cols).collect(), <[usize]>::to_vec);
            return Ok(Chunk::empty(&Arc::new(self.schema.project(&proj))));
        }
        let p = self.partition_of(key);
        self.partitions[p].snapshot().lookup_chunk(key, projection)
    }

    /// Batched point lookup: every key probed against **one** table-wide
    /// snapshot (see [`TableSnapshot::lookup_batch`]), so all results
    /// reflect the same point in time even while appends are in flight.
    pub fn lookup_chunk_batch(
        &self,
        keys: &[Value],
        projection: Option<&[usize]>,
    ) -> Result<Chunk> {
        self.snapshot().lookup_batch(keys, projection)
    }

    /// Total rows.
    pub fn row_count(&self) -> usize {
        self.partitions.iter().map(|p| p.row_count()).sum()
    }

    /// Consistent snapshot of every partition.
    pub fn snapshot(&self) -> TableSnapshot {
        TableSnapshot {
            schema: Arc::clone(&self.schema),
            key_col: self.key_col,
            partitions: self.partitions.iter().map(|p| p.snapshot()).collect(),
        }
    }

    /// Aggregated memory accounting.
    pub fn memory_stats(&self) -> PartitionMemory {
        let mut total = PartitionMemory {
            data_bytes: 0,
            reserved_bytes: 0,
            index_entries: 0,
            rows: 0,
        };
        for p in &self.partitions {
            let m = p.memory_stats();
            total.data_bytes += m.data_bytes;
            total.reserved_bytes += m.reserved_bytes;
            total.index_entries += m.index_entries;
            total.rows += m.rows;
        }
        total
    }
}

/// Join a scoped worker, converting a panic that escaped `catch_panics`
/// (or tore down the unwind machinery) into an engine error instead of
/// propagating it into the caller.
fn join_isolated<'scope, T>(h: std::thread::ScopedJoinHandle<'scope, Result<T>>) -> Result<T> {
    h.join().unwrap_or_else(|payload| {
        Err(EngineError::internal(format!(
            "storage task panicked: {}",
            panic_message(payload.as_ref())
        )))
    })
}

impl std::fmt::Debug for IndexedTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "IndexedTable(key={}, partitions={}, rows={})",
            self.schema.field(self.key_col).name,
            self.partitions.len(),
            self.row_count()
        )
    }
}

/// A frozen view of every partition.
///
/// # Consistency contract
///
/// Each [`PartitionSnapshot`] is individually consistent: it is an atomic
/// point-in-time view of its partition (index and row bytes agree, chains
/// never dangle, later appends to that partition are invisible). The
/// *table* snapshot, however, is assembled by snapshotting partitions one
/// after another **without pausing writers**, so it is per-partition
/// consistent, not globally serializable: a multi-row append racing with
/// `snapshot()` may be visible in a later-snapshotted partition while its
/// sibling rows in an earlier-snapshotted partition are not. This mirrors
/// the paper's Spark semantics, where each partition is an independently
/// versioned RDD block. Appends routed to a single partition (every row of
/// one key, since routing hashes the key) are therefore always observed
/// atomically; only *cross-partition* batches can be observed partially.
pub struct TableSnapshot {
    schema: SchemaRef,
    key_col: usize,
    partitions: Vec<PartitionSnapshot>,
}

impl TableSnapshot {
    /// The table schema.
    pub fn schema(&self) -> SchemaRef {
        Arc::clone(&self.schema)
    }

    /// The indexed column position.
    pub fn key_col(&self) -> usize {
        self.key_col
    }

    /// Partition views.
    pub fn partitions(&self) -> &[PartitionSnapshot] {
        &self.partitions
    }

    /// Point lookup within the snapshot.
    pub fn lookup_chunk(&self, key: &Value, projection: Option<&[usize]>) -> Result<Chunk> {
        let p = (hash_values(std::slice::from_ref(key)) % self.partitions.len() as u64) as usize;
        self.partitions[p].lookup_chunk(key, projection)
    }

    /// Batched point lookup: probe many keys against this one snapshot and
    /// return all matching rows as a single chunk.
    ///
    /// Keys are deduplicated (and NULLs dropped — a NULL never equals any
    /// indexed key), grouped by their hash partition, and the involved
    /// partitions are probed **in parallel**, each sharing one set of
    /// column builders across all of its keys. Row order: grouped by
    /// partition in partition order; within a partition, keys in
    /// first-occurrence order, each key's chain latest-first. Callers that
    /// need a specific order sort the resulting chunk.
    pub fn lookup_batch(&self, keys: &[Value], projection: Option<&[usize]>) -> Result<Chunk> {
        self.lookup_batch_ctx(keys, projection, None)
    }

    /// [`lookup_batch`](Self::lookup_batch) with query lifecycle hooks:
    /// per-key cancellation/deadline checks and result-memory charging
    /// against `query` when one is supplied. Partition probes are
    /// panic-isolated — a worker that dies surfaces as an engine error.
    pub fn lookup_batch_ctx(
        &self,
        keys: &[Value],
        projection: Option<&[usize]>,
        query: Option<&QueryContext>,
    ) -> Result<Chunk> {
        let n = self.partitions.len();
        // Route distinct non-null keys to their partitions.
        let mut buckets: Vec<Vec<&Value>> = vec![Vec::new(); n];
        let mut seen: std::collections::HashSet<&Value> = std::collections::HashSet::new();
        for key in keys {
            if key.is_null() || !seen.insert(key) {
                continue;
            }
            let p = (hash_values(std::slice::from_ref(key)) % n as u64) as usize;
            buckets[p].push(key);
        }
        let involved: Vec<(usize, Vec<Value>)> = buckets
            .into_iter()
            .enumerate()
            .filter(|(_, keys)| !keys.is_empty())
            .map(|(p, keys)| (p, keys.into_iter().cloned().collect()))
            .collect();
        let probe = |p: usize, keys: &[Value]| -> Result<Chunk> {
            catch_panics(|| self.partitions[p].lookup_chunk_multi_ctx(keys, projection, query))
        };
        let chunks: Vec<Chunk> = match involved.len() {
            0 => {
                let proj: Vec<usize> =
                    projection.map_or_else(|| (0..self.schema.len()).collect(), <[usize]>::to_vec);
                return Ok(Chunk::empty(&Arc::new(self.schema.project(&proj))));
            }
            // One partition involved: probe inline, no thread overhead.
            1 => {
                let (p, keys) = &involved[0];
                vec![probe(*p, keys)?]
            }
            _ => {
                let results: Vec<Result<Chunk>> = std::thread::scope(|s| {
                    let probe = &probe;
                    let handles: Vec<_> = involved
                        .iter()
                        .map(|(p, keys)| s.spawn(move || probe(*p, keys)))
                        .collect();
                    handles.into_iter().map(join_isolated).collect()
                });
                results.into_iter().collect::<Result<_>>()?
            }
        };
        Chunk::concat(&chunks)
    }

    /// Total rows visible.
    pub fn row_count(&self) -> usize {
        self.partitions
            .iter()
            .map(PartitionSnapshot::row_count)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idf_engine::schema::{Field, Schema};
    use idf_engine::types::DataType;

    fn schema() -> SchemaRef {
        Arc::new(Schema::new(vec![
            Field::new("k", DataType::Int64),
            Field::new("v", DataType::Int64),
        ]))
    }

    fn cfg(n: usize) -> IndexConfig {
        IndexConfig {
            num_partitions: n,
            ..Default::default()
        }
    }

    fn chunk(rows: impl Iterator<Item = (i64, i64)>) -> Chunk {
        let rows: Vec<Vec<Value>> = rows
            .map(|(k, v)| vec![Value::Int64(k), Value::Int64(v)])
            .collect();
        Chunk::from_rows(&schema(), &rows).unwrap()
    }

    #[test]
    fn build_from_chunk_and_lookup() {
        let data = chunk((0..1000).map(|i| (i % 100, i)));
        let t = IndexedTable::from_chunk(schema(), 0, cfg(4), &data).unwrap();
        assert_eq!(t.row_count(), 1000);
        for k in 0..100 {
            let c = t.lookup_chunk(&Value::Int64(k), None).unwrap();
            assert_eq!(c.len(), 10, "key {k}");
            for r in 0..c.len() {
                assert_eq!(c.value_at(0, r), Value::Int64(k));
            }
        }
        assert_eq!(t.lookup_chunk(&Value::Int64(1234), None).unwrap().len(), 0);
    }

    #[test]
    fn routing_is_stable() {
        let t = IndexedTable::new(schema(), 0, cfg(7)).unwrap();
        for k in 0..100 {
            let v = Value::Int64(k);
            assert_eq!(t.partition_of(&v), t.partition_of(&v));
            assert!(t.partition_of(&v) < 7);
        }
    }

    #[test]
    fn append_after_build() {
        let data = chunk((0..10).map(|i| (i, i)));
        let t = IndexedTable::from_chunk(schema(), 0, cfg(2), &data).unwrap();
        t.append_row(&[Value::Int64(3), Value::Int64(999)]).unwrap();
        let c = t.lookup_chunk(&Value::Int64(3), None).unwrap();
        assert_eq!(c.len(), 2);
        assert_eq!(c.value_at(1, 0), Value::Int64(999), "latest first");
    }

    #[test]
    fn table_snapshot_consistency() {
        let data = chunk((0..100).map(|i| (i, i)));
        let t = IndexedTable::from_chunk(schema(), 0, cfg(3), &data).unwrap();
        let snap = t.snapshot();
        t.append_chunk(&chunk((100..200).map(|i| (i, i)))).unwrap();
        assert_eq!(snap.row_count(), 100);
        assert_eq!(t.row_count(), 200);
        assert_eq!(
            snap.lookup_chunk(&Value::Int64(150), None).unwrap().len(),
            0
        );
        assert_eq!(t.lookup_chunk(&Value::Int64(150), None).unwrap().len(), 1);
    }

    #[test]
    fn batched_lookup_matches_singles() {
        let data = chunk((0..1000).map(|i| (i % 100, i)));
        let t = IndexedTable::from_chunk(schema(), 0, cfg(4), &data).unwrap();
        // Duplicates and NULLs in the request collapse / drop.
        let keys: Vec<Value> = [3i64, 17, 3, 99, 1234]
            .iter()
            .map(|&k| Value::Int64(k))
            .chain([Value::Null])
            .collect();
        let batch = t.lookup_chunk_batch(&keys, None).unwrap();
        assert_eq!(
            batch.len(),
            30,
            "3 present keys x 10 rows, misses and nulls empty"
        );
        // Same multiset of rows as looping the single-key path.
        let mut batched: Vec<(Value, Value)> = (0..batch.len())
            .map(|r| (batch.value_at(0, r), batch.value_at(1, r)))
            .collect();
        let mut single = Vec::new();
        for k in [3i64, 17, 99] {
            let c = t.lookup_chunk(&Value::Int64(k), None).unwrap();
            for r in 0..c.len() {
                single.push((c.value_at(0, r), c.value_at(1, r)));
            }
        }
        batched.sort();
        single.sort();
        assert_eq!(batched, single);
        // Projection applies to the whole batch.
        let proj = t.lookup_chunk_batch(&keys, Some(&[1])).unwrap();
        assert_eq!(proj.num_columns(), 1);
        assert_eq!(proj.len(), 30);
        // All-miss and empty requests produce a projected empty chunk.
        let empty = t
            .lookup_chunk_batch(&[Value::Int64(7777)], Some(&[1]))
            .unwrap();
        assert_eq!((empty.len(), empty.num_columns()), (0, 1));
        let none = t.lookup_chunk_batch(&[], None).unwrap();
        assert_eq!((none.len(), none.num_columns()), (0, 2));
    }

    #[test]
    fn batched_lookup_sees_one_snapshot_under_appends() {
        // A batch probe taken mid-append-storm must answer every key from
        // the same point in time *per partition*: for any single key, the
        // observed chain is a prefix of the final chain, and the batched
        // result equals re-probing the same snapshot key by key.
        let data = chunk((0..100).map(|i| (i % 10, i)));
        let t = Arc::new(IndexedTable::from_chunk(schema(), 0, cfg(4), &data).unwrap());
        let keys: Vec<Value> = (0..10).map(Value::Int64).collect();
        std::thread::scope(|s| {
            let writer = {
                let t = Arc::clone(&t);
                s.spawn(move || {
                    for i in 100..2000 {
                        t.append_row(&[Value::Int64(i % 10), Value::Int64(i)])
                            .unwrap();
                    }
                })
            };
            for _ in 0..20 {
                let snap = t.snapshot();
                let batch = snap.lookup_batch(&keys, None).unwrap();
                let singles: usize = keys
                    .iter()
                    .map(|k| snap.lookup_chunk(k, None).unwrap().len())
                    .sum();
                assert_eq!(batch.len(), singles, "batch equals singles on one snapshot");
            }
            writer.join().unwrap();
        });
        assert_eq!(t.snapshot().lookup_batch(&keys, None).unwrap().len(), 2000);
    }

    #[test]
    fn snapshot_is_per_partition_consistent() {
        // The documented contract: all rows of ONE key live in one
        // partition, so a key's chain can never be observed torn — even
        // though a cross-partition append may be observed partially.
        let t = Arc::new(IndexedTable::new(schema(), 0, cfg(4)).unwrap());
        std::thread::scope(|s| {
            let writer = {
                let t = Arc::clone(&t);
                // Each round appends one row per key; a key's chain length
                // counts completed rounds.
                s.spawn(move || {
                    for round in 0..300 {
                        for k in 0..8 {
                            t.append_row(&[Value::Int64(k), Value::Int64(round)])
                                .unwrap();
                        }
                    }
                })
            };
            for _ in 0..30 {
                let snap = t.snapshot();
                for k in 0..8 {
                    let c = snap.lookup_chunk(&Value::Int64(k), None).unwrap();
                    if !c.is_empty() {
                        // Chain is latest-first and contiguous: rounds
                        // len-1, len-2, ..., 0 with nothing missing.
                        assert_eq!(c.value_at(1, 0), Value::Int64(c.len() as i64 - 1));
                        assert_eq!(c.value_at(1, c.len() - 1), Value::Int64(0));
                    }
                }
            }
            writer.join().unwrap();
        });
        assert_eq!(t.row_count(), 2400);
    }

    #[test]
    fn null_key_lookup_is_empty() {
        let data = chunk((0..10).map(|i| (i, i)));
        let t = IndexedTable::from_chunk(schema(), 0, cfg(2), &data).unwrap();
        assert_eq!(t.lookup_chunk(&Value::Null, None).unwrap().len(), 0);
    }

    #[test]
    fn rejects_bad_construction() {
        assert!(IndexedTable::new(schema(), 5, cfg(2)).is_err());
        let mut bad = cfg(2);
        bad.batch_size = 1 << 30;
        assert!(IndexedTable::new(schema(), 0, bad).is_err());
    }

    #[test]
    fn wrong_width_append_rejected() {
        let t = IndexedTable::new(schema(), 0, cfg(2)).unwrap();
        assert!(t.append_row(&[Value::Int64(1)]).is_err());
        let narrow = Arc::new(Schema::new(vec![Field::new("x", DataType::Int64)]));
        let c = Chunk::from_rows(&narrow, &[vec![Value::Int64(1)]]).unwrap();
        assert!(t.append_chunk(&c).is_err());
    }

    #[test]
    fn memory_stats_aggregate() {
        let data = chunk((0..500).map(|i| (i, i)));
        let t = IndexedTable::from_chunk(schema(), 0, cfg(4), &data).unwrap();
        let m = t.memory_stats();
        assert_eq!(m.rows, 500);
        assert_eq!(m.index_entries, 500);
        assert!(m.data_bytes > 0);
    }
}
