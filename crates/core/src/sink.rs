//! The append-sink seam between the in-memory table and a durability
//! layer.
//!
//! `idf-core` sits *below* `idf-durable` in the dependency graph, so the
//! table cannot call the WAL directly; instead the durable session
//! installs an [`AppendSink`] on the table and the append path calls it
//! at the commit point. Ordering contract (see
//! [`crate::table::IndexedTable::append_chunk`]):
//!
//! 1. phase 1 validates every row without touching shared state;
//! 2. the commit-point failpoint fires — an injected abort here leaves
//!    **neither** memory nor WAL touched, so a failed append can never be
//!    resurrected by recovery;
//! 3. [`AppendSink::begin_commit`] logs the encoded rows (honouring the
//!    configured durability level: `Sync` waits for the group-commit
//!    fsync, `Async` returns once staged);
//! 4. phase 2 publishes to memory; the returned [`CommitGuard`] is
//!    dropped only after publish completes, which is what lets a
//!    checkpoint quiesce the WAL: it waits for every guard to drop before
//!    snapshotting, so the snapshot covers every logged-and-acknowledged
//!    commit and the covered WAL segment can be retired safely.
//!
//! A crash between 3 and 4 means an *unacknowledged* append may still be
//! replayed on recovery — the classic "unknown outcome" window every
//! write-ahead-logged store has — but an acknowledged append is always
//! recovered and a failed append never is.

use idf_engine::error::Result;

/// The kind of a stored row: a live data version or a tombstone that
/// terminates the visible part of its key's backward-pointer chain.
///
/// The kind travels *beside* the encoded payload — through the sink seam
/// to the WAL and back through recovery — and is persisted in the stored
/// row header (bit 15 of `stored_len`, see [`crate::batch`]), so
/// checkpoints round-trip it bit-for-bit without a separate side table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RowKind {
    /// A regular row version.
    Data,
    /// A deletion marker: the chain walk stops here, hiding every older
    /// version of the key. Its payload is an encoded row carrying the key
    /// (all other columns NULL) so recovery can route it to a partition.
    Tombstone,
}

impl RowKind {
    /// Wire encoding (one byte) for WAL records.
    pub fn to_u8(self) -> u8 {
        match self {
            RowKind::Data => 0,
            RowKind::Tombstone => 1,
        }
    }

    /// Decode the wire byte; unknown values are `None` (corrupt record).
    pub fn from_u8(b: u8) -> Option<RowKind> {
        match b {
            0 => Some(RowKind::Data),
            1 => Some(RowKind::Tombstone),
            _ => None,
        }
    }
}

/// Whether a sink is accepting commits (see [`AppendSink::status`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SinkStatus {
    /// Commits are accepted.
    Writable,
    /// The sink is degraded read-only; appends fail fast with
    /// `EngineError::ReadOnly`. Carries the degradation cause.
    ReadOnly(String),
}

/// Receiver for committed append payloads (the WAL, in practice).
pub trait AppendSink: Send + Sync {
    /// Log one committed append: `rows` are the encoded row payloads of
    /// the whole chunk, in publish order. Blocks according to the sink's
    /// durability level and returns a guard the caller holds until the
    /// rows are published to memory.
    fn begin_commit(&self, rows: &[&[u8]]) -> Result<Box<dyn CommitGuard>>;

    /// Log one committed DML statement: `rows[i]` is the encoded payload
    /// and `kinds[i]` its [`RowKind`], in publish order. The whole slice
    /// is one atomic statement (a single WAL record), which is what bounds
    /// a crash to at most one ambiguous in-flight DML commit.
    ///
    /// The default forwards to [`AppendSink::begin_commit`] — correct for
    /// sinks that do not persist kinds (tests, taps that only count rows);
    /// kind-aware sinks (the WAL, the views delta tap) override it.
    fn begin_commit_kinds(
        &self,
        rows: &[&[u8]],
        kinds: &[RowKind],
    ) -> Result<Box<dyn CommitGuard>> {
        debug_assert_eq!(rows.len(), kinds.len());
        let _ = kinds;
        self.begin_commit(rows)
    }

    /// Current write status. Degradation (sticky fsync failure, ENOSPC)
    /// flips the sink to [`SinkStatus::ReadOnly`]; reads are unaffected.
    fn status(&self) -> SinkStatus {
        SinkStatus::Writable
    }
}

/// Marker for an in-flight commit; dropping it tells the sink the rows
/// are visible in memory (see module docs for why checkpoints need this).
pub trait CommitGuard: Send {}

/// Guard for sinks with no quiesce bookkeeping (tests, no-op sinks).
pub struct NoopCommitGuard;

impl CommitGuard for NoopCommitGuard {}

/// Fan a commit out to several sinks in order (WAL first, then taps such
/// as the materialized-view delta capture).
///
/// Ordering matters for failure atomicity: `begin_commit` consults the
/// sinks front-to-back and aborts on the first error, so a *fallible*
/// sink (the WAL) must come before infallible observers — if the WAL
/// rejects the commit, no tap ever sees it, and a tap that has no failure
/// modes of its own can never strand a WAL record. The composite guard
/// holds every inner guard and releases them together when the rows are
/// published.
pub struct FanoutSink {
    sinks: Vec<std::sync::Arc<dyn AppendSink>>,
}

impl FanoutSink {
    /// Compose `sinks`; commits visit them front-to-back.
    pub fn new(sinks: Vec<std::sync::Arc<dyn AppendSink>>) -> Self {
        FanoutSink { sinks }
    }
}

impl AppendSink for FanoutSink {
    fn begin_commit(&self, rows: &[&[u8]]) -> Result<Box<dyn CommitGuard>> {
        let mut guards = Vec::with_capacity(self.sinks.len());
        for sink in &self.sinks {
            guards.push(sink.begin_commit(rows)?);
        }
        Ok(Box::new(FanoutCommitGuard { guards }))
    }

    fn begin_commit_kinds(
        &self,
        rows: &[&[u8]],
        kinds: &[RowKind],
    ) -> Result<Box<dyn CommitGuard>> {
        let mut guards = Vec::with_capacity(self.sinks.len());
        for sink in &self.sinks {
            guards.push(sink.begin_commit_kinds(rows, kinds)?);
        }
        Ok(Box::new(FanoutCommitGuard { guards }))
    }

    fn status(&self) -> SinkStatus {
        for sink in &self.sinks {
            if let SinkStatus::ReadOnly(cause) = sink.status() {
                return SinkStatus::ReadOnly(cause);
            }
        }
        SinkStatus::Writable
    }
}

/// Composite guard: dropping it drops every inner guard (front-to-back),
/// signalling all fanned-out sinks that the rows are published.
struct FanoutCommitGuard {
    #[allow(dead_code)] // held only for its Drop
    guards: Vec<Box<dyn CommitGuard>>,
}

impl CommitGuard for FanoutCommitGuard {}
