//! # idf-core — the Indexed DataFrame
//!
//! A Rust reproduction of the system demonstrated in *"Low-latency Spark
//! Queries on Updatable Data"* (Uta, Ghit, Dave, Boncz — SIGMOD 2019): a
//! cached DataFrame that stays cached **while data is appended**, with a
//! built-in concurrent cTrie index powering sub-linear point lookups,
//! equality filters, and equi-joins, under multi-version concurrency.
//!
//! ## Anatomy (paper §2)
//!
//! * [`table::IndexedTable`] — hash-partitioned on the indexed column with
//!   the engine's shuffle hash, so probe sides co-partition.
//! * [`partition::IndexedPartition`] — per partition: a
//!   [`idf_ctrie::CTrie`] index mapping each key to a packed pointer to the
//!   *latest* row with that key, append-only binary [`batch::RowBatch`]es
//!   (default 4 MiB), and backward pointers threading all rows that share a
//!   key (the per-key linked lists).
//! * [`pointer::RowPtr`] — packed, dense 64-bit pointers: batch number,
//!   in-batch offset, and the pointed-to row's size.
//! * [`source::IndexedSource`] + [`strategy::IndexedJoinStrategy`] — the
//!   Catalyst integration: equality filters on the indexed column push into
//!   the scan as cTrie lookups; single-key inner equi-joins become
//!   [`join_exec::IndexedJoinExec`] with the index as a pre-built build
//!   side; everything else transparently falls back to vanilla execution.
//! * [`api::IndexedDataFrame`] — the Listing-1 API: `create_index`,
//!   `cache`, `get_rows`, `append_rows`, `join`.
//!
//! ```
//! use idf_engine::prelude::*;
//! use idf_core::prelude::*;
//! use std::sync::Arc;
//!
//! let session = Session::new();
//! let schema = Arc::new(Schema::new(vec![
//!     Field::new("id", DataType::Int64),
//!     Field::new("name", DataType::Utf8),
//! ]));
//! let df = session.create_dataframe(schema.clone(), vec![
//!     vec![Value::Int64(1), Value::Utf8("ada".into())],
//! ]);
//! let indexed = df.create_index("id").unwrap();
//! indexed.cache();
//!
//! // fine-grained append + point lookup
//! indexed.append_row(&[Value::Int64(1), Value::Utf8("ada v2".into())]).unwrap();
//! let rows = indexed.get_rows_chunk(1i64).unwrap();
//! assert_eq!(rows.len(), 2);
//! assert_eq!(rows.value_at(1, 0), Value::Utf8("ada v2".into())); // latest first
//! ```

#![deny(missing_docs)]

/// Crate-wide lock-acquisition order, enforced by idf-lint's
/// `lock-order` rule: a lock may only be acquired while holding locks
/// that appear strictly earlier in this list. The DML path exercises
/// the full chain: `apply_dml` serializes statements on `dml_lock`,
/// freezes every touched partition's `append_lock`, logs the statement
/// through the `sink`, and publishes into `batches`.
pub const LOCK_ORDER: &[(&str, &str)] = &[
    (
        "dml_lock",
        "table-level DML statement serialization; taken first so two UPDATE/DELETE statements never interleave their read-compute-publish cycles",
    ),
    (
        "append_lock",
        "per-partition writer exclusion; taken under dml_lock (ascending partition order) and held across the commit and publish phases",
    ),
    (
        "sink",
        "durability sink slot; read under the held append locks so the WAL record and the in-memory publish form one atomic commit window",
    ),
    (
        "batches",
        "per-partition batch list; innermost — publishing a row appends under the partition's own append_lock",
    ),
];

pub mod api;
pub mod batch;
pub mod config;
pub mod failpoints;
pub mod join_exec;
pub mod layout;
pub mod partition;
pub mod pointer;
pub mod sink;
pub mod source;
pub mod strategy;
pub mod table;

/// Convenience re-exports.
pub mod prelude {
    pub use crate::api::{
        install_indexed_ddl, CreateIndexExt, IndexedDataFrame, IndexedTableFactory,
    };
    pub use crate::config::IndexConfig;
    pub use crate::source::IndexedSource;
    pub use crate::strategy::IndexedJoinStrategy;
    pub use crate::table::IndexedTable;
}
