//! The indexed equi-join operator.
//!
//! Paper, §2 (*Indexed Join*): *"To join an Indexed DataFrame and a
//! (regular) Dataframe, the rows of the latter are shuffled according to
//! the hash partitioning scheme of the former. As the build side is already
//! created in the form of the index, the probes are made locally from the
//! shuffled rows. When the Dataframe size is small enough to be broadcasted
//! efficiently, our implementation falls back to a broadcast-join instead
//! of a shuffle."*
//!
//! The crucial asymmetry versus the vanilla hash join: there is **no build
//! phase**. The cTrie *is* the build table, amortized across every query,
//! and appends keep it current — this is where the paper's join speedups
//! come from.

use std::sync::Arc;

use idf_engine::catalog::ChunkIter;
use idf_engine::chunk::Chunk;
use idf_engine::error::{EngineError, Result};
use idf_engine::physical::{ExecCache, ExecPlanRef, ExecutionPlan, PhysicalExprRef, TaskContext};
use idf_engine::schema::SchemaRef;

use crate::partition::PartitionSnapshot;
use crate::table::IndexedTable;

/// How the probe side reaches the index partitions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeMode {
    /// Probe rows were hash-shuffled to the index's partitioning; each
    /// partition probes locally.
    Shuffled,
    /// The whole probe side is broadcast to every index partition; foreign
    /// keys simply miss (each key lives in exactly one partition, so no
    /// duplicates arise).
    Broadcast,
}

/// Inner equi-join with a pre-built index as the build side.
pub struct IndexedJoinExec {
    /// The indexed (build) table.
    pub table: Arc<IndexedTable>,
    /// Columns of the indexed side to emit (scan projection), `None` = all.
    pub indexed_projection: Option<Vec<usize>>,
    /// The probe side (shuffled or not, per `mode`).
    pub probe: ExecPlanRef,
    /// Key expression over the probe schema.
    pub probe_key: PhysicalExprRef,
    /// Whether the indexed side is the logical *left* input (controls
    /// output column order).
    pub indexed_is_left: bool,
    /// Output schema.
    pub schema: SchemaRef,
    /// Probe delivery mode.
    pub mode: ProbeMode,
    /// Per-execution cache of the broadcast probe side (see
    /// [`ExecCache`]: a plain `OnceLock` would replay stale probe data
    /// when the same plan is executed again).
    broadcast: ExecCache<Arc<Vec<Chunk>>>,
}

impl IndexedJoinExec {
    /// Create an indexed join.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        table: Arc<IndexedTable>,
        indexed_projection: Option<Vec<usize>>,
        probe: ExecPlanRef,
        probe_key: PhysicalExprRef,
        indexed_is_left: bool,
        schema: SchemaRef,
        mode: ProbeMode,
    ) -> Self {
        IndexedJoinExec {
            table,
            indexed_projection,
            probe,
            probe_key,
            indexed_is_left,
            schema,
            mode,
            broadcast: ExecCache::new(),
        }
    }

    fn probe_chunks(&self, partition: usize, ctx: &TaskContext) -> Result<Vec<Chunk>> {
        match self.mode {
            ProbeMode::Shuffled => self.probe.execute(partition, ctx)?.collect(),
            ProbeMode::Broadcast => {
                let all = self.broadcast.get_or_try_init(ctx, || {
                    let parts = idf_engine::physical::execute_collect_partitions(&self.probe, ctx)?;
                    Ok(Arc::new(parts.into_iter().flatten().collect()))
                })?;
                Ok(all.as_ref().clone())
            }
        }
    }

    /// Join one probe chunk against one partition's index.
    ///
    /// Two phases: (1) probe — cTrie lookups and backward-pointer walks
    /// collect the matched payload slices; (2) gather — matched payloads
    /// are decoded column-at-a-time (vectorized), the probe side with a
    /// columnar `take`, and the indexed *key* column is materialized from
    /// the probe keys directly (equal by definition of the equi-join).
    fn join_chunk(
        &self,
        snapshot: &PartitionSnapshot,
        probe_chunk: &Chunk,
        indexed_cols: &[usize],
    ) -> Result<Option<Chunk>> {
        let keys = self.probe_key.evaluate(probe_chunk)?;
        let mut probe_rows: Vec<u32> = Vec::new();
        let mut matched: Vec<&[u8]> = Vec::new();
        for row in 0..probe_chunk.len() {
            let key = keys.value_at(row);
            if key.is_null() {
                continue;
            }
            // THE index probe: cTrie lookup + backward-pointer walk.
            for payload in snapshot.lookup_payloads(&key) {
                matched.push(payload?);
                probe_rows.push(row as u32);
            }
        }
        if probe_rows.is_empty() {
            return Ok(None);
        }
        let key_col = self.table.key_col();
        let indexed_part: Vec<Arc<idf_engine::column::Column>> = indexed_cols
            .iter()
            .map(|&c| {
                if c == key_col {
                    Ok(Arc::new(keys.take(&probe_rows)))
                } else {
                    Ok(Arc::new(snapshot.decode_column_batch(&matched, c)?))
                }
            })
            .collect::<Result<_>>()?;
        let probe_part = probe_chunk.take(&probe_rows)?;
        let mut columns = Vec::with_capacity(self.schema.len());
        if self.indexed_is_left {
            columns.extend(indexed_part);
            columns.extend(probe_part.columns().iter().cloned());
        } else {
            columns.extend(probe_part.columns().iter().cloned());
            columns.extend(indexed_part);
        }
        Ok(Some(Chunk::new(columns)?))
    }
}

impl std::fmt::Debug for IndexedJoinExec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "IndexedJoinExec({:?})", self.mode)
    }
}

impl ExecutionPlan for IndexedJoinExec {
    fn name(&self) -> &'static str {
        "IndexedJoin"
    }

    fn schema(&self) -> SchemaRef {
        Arc::clone(&self.schema)
    }

    fn output_partitions(&self) -> usize {
        self.table.num_partitions()
    }

    fn children(&self) -> Vec<ExecPlanRef> {
        vec![Arc::clone(&self.probe)]
    }

    fn execute(&self, partition: usize, ctx: &TaskContext) -> Result<ChunkIter> {
        if self.mode == ProbeMode::Shuffled
            && self.probe.output_partitions() != self.table.num_partitions()
        {
            return Err(EngineError::internal(
                "shuffled probe side must match the index partitioning (strategy bug)",
            ));
        }
        let indexed_cols: Vec<usize> = match &self.indexed_projection {
            Some(p) => p.clone(),
            None => (0..self.table.schema().len()).collect(),
        };
        let snapshot = self.table.partition(partition).snapshot();
        let mut out = Vec::new();
        for chunk in self.probe_chunks(partition, ctx)? {
            ctx.check_cancelled()?;
            if let Some(joined) = self.join_chunk(&snapshot, &chunk, &indexed_cols)? {
                out.push(joined);
            }
        }
        // Route through the context like every other operator so the join
        // shows up in EXPLAIN ANALYZE and respects per-chunk lifecycle
        // checks downstream.
        Ok(ctx.instrument(self, Box::new(out.into_iter().map(Ok))))
    }

    fn detail(&self) -> String {
        format!(
            "build=index({}), probe {:?}",
            self.table.schema().field(self.table.key_col()).name,
            self.mode
        )
    }
}
