//! Indexed DataFrame configuration.

/// Tunables for the indexed representation.
///
/// The paper: *"The row batches are collections of binary, unsafe arrays
/// (e.g., of 4 MB in size) … Both the batch and row sizes are configurable
/// parameters."*
#[derive(Debug, Clone)]
pub struct IndexConfig {
    /// Capacity of one row batch in bytes (default 4 MiB; max 8 MiB, the
    /// packed pointer's offset width).
    pub batch_size: usize,
    /// Maximum encoded row size in bytes (default and max 1 KiB, the packed
    /// pointer's size width).
    pub max_row_size: usize,
    /// Number of hash partitions (defaults to the machine parallelism).
    pub num_partitions: usize,
    /// Preferred rows per chunk when scanning.
    pub scan_chunk_rows: usize,
}

impl Default for IndexConfig {
    fn default() -> Self {
        IndexConfig {
            batch_size: 4 << 20,
            max_row_size: crate::pointer::MAX_ROW_SIZE,
            num_partitions: idf_engine::config::default_parallelism(),
            scan_chunk_rows: 8192,
        }
    }
}

impl IndexConfig {
    /// Validate against the packed-pointer field widths.
    pub fn validate(&self) -> Result<(), String> {
        if self.batch_size > crate::pointer::MAX_BATCH_SIZE {
            return Err(format!(
                "batch_size {} exceeds the packed pointer's offset range {}",
                self.batch_size,
                crate::pointer::MAX_BATCH_SIZE
            ));
        }
        if self.max_row_size > crate::pointer::MAX_ROW_SIZE {
            return Err(format!(
                "max_row_size {} exceeds the packed pointer's size range {}",
                self.max_row_size,
                crate::pointer::MAX_ROW_SIZE
            ));
        }
        if self.batch_size < self.max_row_size {
            return Err("batch_size must be at least max_row_size".to_string());
        }
        if self.num_partitions == 0 || self.scan_chunk_rows == 0 {
            return Err("num_partitions and scan_chunk_rows must be positive".to_string());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        assert!(IndexConfig::default().validate().is_ok());
    }

    #[test]
    fn rejects_out_of_range() {
        let c = IndexConfig {
            batch_size: 16 << 20,
            ..Default::default()
        };
        assert!(c.validate().is_err());
        let c = IndexConfig {
            max_row_size: 4096,
            ..Default::default()
        };
        assert!(c.validate().is_err());
        let c = IndexConfig {
            batch_size: 512,
            ..Default::default()
        };
        assert!(c.validate().is_err());
        let c = IndexConfig {
            num_partitions: 0,
            ..Default::default()
        };
        assert!(c.validate().is_err());
    }
}
