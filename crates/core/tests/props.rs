//! Property-based tests for the core storage invariants: packed pointers,
//! the binary row layout, and the partition's chain/scan semantics against
//! a naive model.

use std::sync::Arc;

use idf_core::config::IndexConfig;
use idf_core::layout::RowLayout;
use idf_core::partition::IndexedPartition;
use idf_core::pointer::{RowPtr, MAX_BATCHES, MAX_BATCH_SIZE, MAX_ROW_SIZE};
use idf_engine::schema::{Field, Schema};
use idf_engine::types::{DataType, Value};
use proptest::prelude::*;

proptest! {
    #[test]
    fn packed_pointer_roundtrips(
        batch in 0..MAX_BATCHES,
        offset in 0..MAX_BATCH_SIZE,
        size in 1..=MAX_ROW_SIZE,
    ) {
        let p = RowPtr::new(batch, offset, size);
        prop_assert_eq!(p.batch(), batch);
        prop_assert_eq!(p.offset(), offset);
        prop_assert_eq!(p.size(), size);
        prop_assert!(!p.is_null());
        prop_assert_eq!(RowPtr::from_raw(p.raw()), p);
    }
}

fn value_strategy(dt: DataType) -> BoxedStrategy<Value> {
    match dt {
        DataType::Boolean => prop_oneof![
            1 => Just(Value::Null),
            4 => any::<bool>().prop_map(Value::Boolean),
        ]
        .boxed(),
        DataType::Int32 => prop_oneof![
            1 => Just(Value::Null),
            4 => any::<i32>().prop_map(Value::Int32),
        ]
        .boxed(),
        DataType::Int64 => prop_oneof![
            1 => Just(Value::Null),
            4 => any::<i64>().prop_map(Value::Int64),
        ]
        .boxed(),
        DataType::Float64 => prop_oneof![
            1 => Just(Value::Null),
            4 => any::<f64>().prop_map(Value::Float64),
        ]
        .boxed(),
        DataType::Utf8 => prop_oneof![
            1 => Just(Value::Null),
            4 => "[a-zA-Z0-9 àéλ🦀]{0,40}".prop_map(Value::Utf8),
        ]
        .boxed(),
        DataType::Timestamp => prop_oneof![
            1 => Just(Value::Null),
            4 => any::<i64>().prop_map(Value::Timestamp),
        ]
        .boxed(),
    }
}

fn wide_schema() -> Arc<Schema> {
    Arc::new(Schema::new(vec![
        Field::new("a", DataType::Int64),
        Field::new("b", DataType::Utf8),
        Field::new("c", DataType::Float64),
        Field::new("d", DataType::Boolean),
        Field::new("e", DataType::Int32),
        Field::new("f", DataType::Timestamp),
        Field::new("g", DataType::Utf8),
    ]))
}

fn row_strategy() -> impl Strategy<Value = Vec<Value>> {
    let schema = wide_schema();
    let fields: Vec<BoxedStrategy<Value>> =
        schema.fields.iter().map(|f| value_strategy(f.data_type)).collect();
    fields
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    #[test]
    fn row_layout_roundtrips(row in row_strategy()) {
        let layout = RowLayout::new(wide_schema());
        let mut buf = Vec::new();
        layout.encode(&row, &mut buf).expect("encode");
        prop_assert_eq!(layout.decode_row(&buf), row);
    }

    #[test]
    fn rows_in_one_buffer_do_not_interfere(
        rows in proptest::collection::vec(row_strategy(), 1..20)
    ) {
        let layout = RowLayout::new(wide_schema());
        let mut buf = Vec::new();
        let mut spans = Vec::new();
        for row in &rows {
            let start = buf.len();
            layout.encode(row, &mut buf).expect("encode");
            spans.push((start, buf.len()));
        }
        for (row, (start, end)) in rows.iter().zip(spans) {
            prop_assert_eq!(&layout.decode_row(&buf[start..end]), row);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    #[test]
    fn partition_matches_naive_model(
        ops in proptest::collection::vec((0i64..40, 0u32..1000), 1..300)
    ) {
        let schema = Arc::new(Schema::new(vec![
            Field::new("k", DataType::Int64),
            Field::new("v", DataType::Int64),
        ]));
        let cfg = IndexConfig {
            batch_size: 512, // force frequent batch rollover
            max_row_size: 128,
            num_partitions: 1,
            ..Default::default()
        };
        let p = IndexedPartition::new(Arc::clone(&schema), 0, cfg);
        // model: per-key vec of values, append order
        let mut model: std::collections::HashMap<i64, Vec<i64>> = Default::default();
        for (k, v) in &ops {
            let v = i64::from(*v);
            p.append_row(&[Value::Int64(*k), Value::Int64(v)]).expect("append");
            model.entry(*k).or_default().push(v);
        }
        let snap = p.snapshot();
        prop_assert_eq!(snap.row_count(), ops.len());
        for (k, versions) in &model {
            let chunk = snap.lookup_chunk(&Value::Int64(*k), None).expect("lookup");
            prop_assert_eq!(chunk.len(), versions.len());
            // chains run latest-first
            for (i, expected) in versions.iter().rev().enumerate() {
                prop_assert_eq!(chunk.value_at(1, i), Value::Int64(*expected));
            }
        }
        // scan covers exactly the appended multiset, in append order per batch walk
        let scanned: usize = snap
            .scan_chunks(None, 64)
            .expect("scan")
            .iter()
            .map(idf_engine::chunk::Chunk::len)
            .sum();
        prop_assert_eq!(scanned, ops.len());
    }
}
