//! Randomized tests for the core storage invariants: packed pointers,
//! the binary row layout, and the partition's chain/scan semantics
//! against a naive model. Seeded generation keeps every case
//! reproducible: a failure message names the seed that replays it.

use std::sync::Arc;

use idf_core::config::IndexConfig;
use idf_core::layout::RowLayout;
use idf_core::partition::IndexedPartition;
use idf_core::pointer::{RowPtr, MAX_BATCHES, MAX_BATCH_SIZE, MAX_ROW_SIZE};
use idf_engine::schema::{Field, Schema};
use idf_engine::types::{DataType, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

#[test]
fn packed_pointer_roundtrips() {
    let mut rng = StdRng::seed_from_u64(0xb17_0001);
    let check = |batch: usize, offset: usize, size: usize| {
        let p = RowPtr::new(batch, offset, size);
        assert_eq!(p.batch(), batch);
        assert_eq!(p.offset(), offset);
        assert_eq!(p.size(), size);
        assert!(!p.is_null());
        assert_eq!(RowPtr::from_raw(p.raw()), p);
    };
    // Boundary corners plus random interior points.
    for batch in [0, 1, MAX_BATCHES - 1] {
        for offset in [0, 1, MAX_BATCH_SIZE - 1] {
            for size in [1, MAX_ROW_SIZE] {
                check(batch, offset, size);
            }
        }
    }
    for _ in 0..2000 {
        check(
            rng.gen_range(0..MAX_BATCHES),
            rng.gen_range(0..MAX_BATCH_SIZE),
            rng.gen_range(1..MAX_ROW_SIZE + 1),
        );
    }
}

fn random_value(rng: &mut StdRng, dt: DataType) -> Value {
    if rng.gen_bool(0.2) {
        return Value::Null;
    }
    match dt {
        DataType::Boolean => Value::Boolean(rng.gen_bool(0.5)),
        DataType::Int32 => Value::Int32(rng.gen_range(i32::MIN..i32::MAX)),
        DataType::Int64 => Value::Int64(rng.gen_range(i64::MIN..i64::MAX)),
        DataType::Float64 => Value::Float64(rng.gen_range(-1e18..1e18)),
        DataType::Utf8 => {
            // Mixed-width code points exercise the var-length section.
            const ALPHABET: &[char] = &['a', 'Z', '9', ' ', 'à', 'é', 'λ', '🦀'];
            let len = rng.gen_range(0..41usize);
            Value::Utf8(
                (0..len)
                    .map(|_| ALPHABET[rng.gen_range(0..ALPHABET.len())])
                    .collect(),
            )
        }
        DataType::Timestamp => Value::Timestamp(rng.gen_range(i64::MIN..i64::MAX)),
    }
}

fn wide_schema() -> Arc<Schema> {
    Arc::new(Schema::new(vec![
        Field::new("a", DataType::Int64),
        Field::new("b", DataType::Utf8),
        Field::new("c", DataType::Float64),
        Field::new("d", DataType::Boolean),
        Field::new("e", DataType::Int32),
        Field::new("f", DataType::Timestamp),
        Field::new("g", DataType::Utf8),
    ]))
}

fn random_row(rng: &mut StdRng, schema: &Schema) -> Vec<Value> {
    schema
        .fields
        .iter()
        .map(|f| random_value(rng, f.data_type))
        .collect()
}

#[test]
fn row_layout_roundtrips() {
    let schema = wide_schema();
    let layout = RowLayout::new(Arc::clone(&schema));
    for seed in 0..128u64 {
        let mut rng = StdRng::seed_from_u64(0x1a70_0000 + seed);
        let row = random_row(&mut rng, &schema);
        let mut buf = Vec::new();
        layout.encode(&row, &mut buf).expect("encode");
        assert_eq!(layout.decode_row(&buf).expect("decode"), row, "seed {seed}");
    }
}

#[test]
fn rows_in_one_buffer_do_not_interfere() {
    let schema = wide_schema();
    let layout = RowLayout::new(Arc::clone(&schema));
    for seed in 0..64u64 {
        let mut rng = StdRng::seed_from_u64(0xb0f_0000 + seed);
        let rows: Vec<Vec<Value>> = (0..rng.gen_range(1..20usize))
            .map(|_| random_row(&mut rng, &schema))
            .collect();
        let mut buf = Vec::new();
        let mut spans = Vec::new();
        for row in &rows {
            let start = buf.len();
            layout.encode(row, &mut buf).expect("encode");
            spans.push((start, buf.len()));
        }
        for (i, (row, (start, end))) in rows.iter().zip(spans).enumerate() {
            assert_eq!(
                &layout.decode_row(&buf[start..end]).expect("decode"),
                row,
                "seed {seed}, row {i}"
            );
        }
    }
}

#[test]
fn partition_matches_naive_model() {
    let schema = Arc::new(Schema::new(vec![
        Field::new("k", DataType::Int64),
        Field::new("v", DataType::Int64),
    ]));
    for seed in 0..32u64 {
        let mut rng = StdRng::seed_from_u64(0x9a57_0000 + seed);
        let ops: Vec<(i64, i64)> = (0..rng.gen_range(1..300usize))
            .map(|_| (rng.gen_range(0..40i64), rng.gen_range(0..1000i64)))
            .collect();
        let cfg = IndexConfig {
            batch_size: 512, // force frequent batch rollover
            max_row_size: 128,
            num_partitions: 1,
            ..Default::default()
        };
        let p = IndexedPartition::new(Arc::clone(&schema), 0, cfg);
        // model: per-key vec of values, append order
        let mut model: std::collections::HashMap<i64, Vec<i64>> = Default::default();
        for (k, v) in &ops {
            p.append_row(&[Value::Int64(*k), Value::Int64(*v)])
                .expect("append");
            model.entry(*k).or_default().push(*v);
        }
        let snap = p.snapshot();
        assert_eq!(snap.row_count(), ops.len(), "seed {seed}");
        for (k, versions) in &model {
            let chunk = snap.lookup_chunk(&Value::Int64(*k), None).expect("lookup");
            assert_eq!(chunk.len(), versions.len(), "seed {seed}, key {k}");
            // chains run latest-first
            for (i, expected) in versions.iter().rev().enumerate() {
                assert_eq!(
                    chunk.value_at(1, i),
                    Value::Int64(*expected),
                    "seed {seed}, key {k}, version {i}"
                );
            }
        }
        // scan covers exactly the appended multiset
        let scanned: usize = snap
            .scan_chunks(None, 64)
            .expect("scan")
            .iter()
            .map(idf_engine::chunk::Chunk::len)
            .sum();
        assert_eq!(scanned, ops.len(), "seed {seed}");
    }
}
