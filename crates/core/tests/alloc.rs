//! Allocation accounting for the single-key lookup hot path.
//!
//! The paper's latency claims hinge on `getRows` staying off the
//! allocator once the table is warm: the cTrie probe borrows the key, the
//! chain walk yields borrowed payload slices, and fixed-width decoding
//! produces inline `Value`s. This test proves it with a counting global
//! allocator: after warm-up, a storm of single-key probes must perform
//! **zero** heap allocations.
//!
//! This file intentionally contains exactly one `#[test]` — integration
//! tests in one binary run concurrently, and any neighbour test's
//! allocations would race the counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use idf_core::config::IndexConfig;
use idf_core::partition::IndexedPartition;
use idf_engine::schema::{Field, Schema};
use idf_engine::types::{DataType, Value};

/// `System`, plus a global count of `alloc`/`realloc` calls.
struct CountingAllocator;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

// SAFETY: pure pass-through to `System`; the only extra work is a relaxed
// atomic bump, which allocates nothing and upholds `GlobalAlloc`'s contract
// exactly as `System` does.
unsafe impl GlobalAlloc for CountingAllocator {
    // SAFETY: delegates to `System.alloc` with the caller's layout unchanged.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        System.alloc(layout)
    }

    // SAFETY: delegates to `System.realloc`; ptr/layout/new_size come from
    // the caller under the same contract.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        System.realloc(ptr, layout, new_size)
    }

    // SAFETY: delegates to `System.dealloc` with the caller's ptr and layout.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn allocations() -> usize {
    ALLOCATIONS.load(Ordering::SeqCst)
}

#[test]
fn single_key_lookups_do_not_allocate() {
    const KEYS: i64 = 128;
    const VERSIONS: i64 = 8;

    let schema = Arc::new(Schema::new(vec![
        Field::new("k", DataType::Int64),
        Field::new("v", DataType::Int64),
    ]));
    let part = IndexedPartition::new(Arc::clone(&schema), 0, IndexConfig::default());
    for ver in 0..VERSIONS {
        for k in 0..KEYS {
            part.append_row(&[Value::Int64(k), Value::Int64(ver * KEYS + k)])
                .expect("append");
        }
    }

    let snap = part.snapshot();

    // Warm up: first probes may lazily initialize thread-locals deep in
    // the runtime; they are not part of the steady-state claim.
    for k in 0..KEYS {
        assert_eq!(
            snap.lookup_count(&Value::Int64(k)).expect("count"),
            VERSIONS as usize
        );
    }

    let before = allocations();
    let mut checksum = 0i64;
    for round in 0..4 {
        for k in 0..KEYS {
            let key = Value::Int64((k + round) % KEYS);
            // Chain length via the borrowed-key probe.
            assert_eq!(snap.lookup_count(&key).expect("count"), VERSIONS as usize);
            // Walk the version chain and decode a fixed-width column —
            // payloads are borrowed slices, values are inline.
            for payload in snap.lookup_payloads(&key) {
                let payload = payload.expect("chain");
                match snap.decode_value(payload, 1).expect("decode") {
                    Value::Int64(v) => checksum ^= v,
                    other => panic!("unexpected value {other:?}"),
                }
            }
        }
    }
    let delta = allocations() - before;

    assert_eq!(
        delta, 0,
        "single-key lookup hot path allocated {delta} times (checksum {checksum})"
    );
}
