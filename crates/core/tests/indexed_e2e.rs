//! End-to-end tests of the Indexed DataFrame through the engine: the
//! Catalyst-analog integration must route equality filters into cTrie
//! lookups, claim equi-joins for `IndexedJoinExec`, fall back to vanilla
//! execution everywhere else, and keep answers identical to the vanilla
//! engine throughout — including under concurrent appends.

use std::sync::Arc;

use idf_core::prelude::*;
use idf_engine::prelude::*;

fn person_schema() -> SchemaRef {
    Arc::new(Schema::new(vec![
        Field::new("id", DataType::Int64),
        Field::new("name", DataType::Utf8),
        Field::new("age", DataType::Int64),
    ]))
}

fn knows_schema() -> SchemaRef {
    Arc::new(Schema::new(vec![
        Field::new("src", DataType::Int64),
        Field::new("dst", DataType::Int64),
        Field::new("weight", DataType::Int64),
    ]))
}

fn setup() -> (Session, IndexedDataFrame) {
    let session = Session::new();
    let person_rows: Vec<Vec<Value>> = (0..500)
        .map(|i| {
            vec![
                Value::Int64(i),
                Value::Utf8(format!("p{i}")),
                Value::Int64(20 + i % 40),
            ]
        })
        .collect();
    let chunk = Chunk::from_rows(&person_schema(), &person_rows).unwrap();
    session.register_table(
        "person_plain",
        Arc::new(MemTable::from_chunk_partitioned(person_schema(), chunk, 4).unwrap()),
    );
    let knows_rows: Vec<Vec<Value>> = (0..2000)
        .map(|i| {
            vec![
                Value::Int64(i % 500),
                Value::Int64((i * 13 + 1) % 500),
                Value::Int64(i % 7),
            ]
        })
        .collect();
    let chunk = Chunk::from_rows(&knows_schema(), &knows_rows).unwrap();
    session.register_table(
        "knows",
        Arc::new(MemTable::from_chunk_partitioned(knows_schema(), chunk, 4).unwrap()),
    );
    // Index person on id; register so SQL can see it.
    let indexed = session
        .table("person_plain")
        .unwrap()
        .create_index("id")
        .unwrap();
    indexed.cache().register("person");
    (session, indexed)
}

#[test]
fn equality_filter_becomes_index_lookup() {
    let (session, _) = setup();
    let df = session
        .sql("SELECT name FROM person WHERE id = 123")
        .unwrap();
    let plan = df.explain().unwrap();
    // The filter must be pushed into the scan (no Filter operator left).
    assert!(
        plan.contains("pushed="),
        "expected pushed filter, got:\n{plan}"
    );
    assert!(
        !plan
            .split("== Physical ==")
            .nth(1)
            .unwrap()
            .contains("Filter"),
        "no residual filter expected:\n{plan}"
    );
    let out = df.collect().unwrap();
    assert_eq!(out.len(), 1);
    assert_eq!(out.value_at(0, 0), Value::Utf8("p123".into()));
}

#[test]
fn get_rows_returns_all_versions_latest_first() {
    let (_, indexed) = setup();
    indexed
        .append_row(&[
            Value::Int64(7),
            Value::Utf8("p7 v2".into()),
            Value::Int64(99),
        ])
        .unwrap();
    let rows = indexed.get_rows_chunk(7i64).unwrap();
    assert_eq!(rows.len(), 2);
    assert_eq!(rows.value_at(1, 0), Value::Utf8("p7 v2".into()));
    assert_eq!(rows.value_at(1, 1), Value::Utf8("p7".into()));
    // And through the DataFrame wrapper as in the paper's Listing 1.
    let df = indexed.get_rows(7i64).unwrap();
    assert_eq!(df.count().unwrap(), 2);
}

#[test]
fn indexed_join_is_planned_and_correct() {
    let (session, indexed) = setup();
    let knows = session.table("knows").unwrap();
    let joined = indexed.join(&knows, "id", "src").unwrap();
    let plan = joined.explain().unwrap();
    assert!(
        plan.contains("IndexedJoin"),
        "expected IndexedJoin:\n{plan}"
    );
    // Compare against the vanilla plan on the plain table.
    let vanilla = session
        .table("person_plain")
        .unwrap()
        .join(&knows, vec![("id", "src")], JoinType::Inner)
        .unwrap();
    assert!(!vanilla.explain().unwrap().contains("IndexedJoin"));
    let a = joined.count().unwrap();
    let b = vanilla.count().unwrap();
    assert_eq!(a, b);
    assert_eq!(a, 2000);
}

#[test]
fn indexed_join_values_match_vanilla() {
    let (session, indexed) = setup();
    let knows = session.table("knows").unwrap();
    let sort = |df: &DataFrame| -> Vec<Vec<Value>> {
        let sorted = df
            .sort(vec![
                SortExpr::asc(col("src")),
                SortExpr::asc(col("dst")),
                SortExpr::asc(col("id")),
            ])
            .unwrap()
            .collect()
            .unwrap();
        sorted.to_rows()
    };
    let joined = indexed
        .join(&knows, "id", "src")
        .unwrap()
        .select(vec![col("id"), col("src"), col("dst")])
        .unwrap();
    let vanilla = session
        .table("person_plain")
        .unwrap()
        .join(&knows, vec![("id", "src")], JoinType::Inner)
        .unwrap()
        .select(vec![col("id"), col("src"), col("dst")])
        .unwrap();
    assert_eq!(sort(&joined), sort(&vanilla));
}

#[test]
fn sql_join_over_registered_indexed_table() {
    let (session, _) = setup();
    let df = session
        .sql(
            "SELECT p.name, k.dst FROM person p JOIN knows k ON p.id = k.src \
             WHERE k.weight = 0",
        )
        .unwrap();
    let plan = df.explain().unwrap();
    assert!(plan.contains("IndexedJoin"), "{plan}");
    let expected = (0..2000).filter(|i| i % 7 == 0).count();
    assert_eq!(df.count().unwrap(), expected);
}

#[test]
fn non_indexed_operations_fall_back() {
    let (session, _) = setup();
    // Range filter cannot use the index.
    let df = session
        .sql("SELECT count(*) FROM person WHERE id > 400")
        .unwrap();
    let plan = df.explain().unwrap();
    assert!(
        plan.split("== Physical ==")
            .nth(1)
            .unwrap()
            .contains("Filter"),
        "range filter must stay:\n{plan}"
    );
    let out = df.collect().unwrap();
    assert_eq!(out.value_at(0, 0), Value::Int64(99));
    // Aggregation over the indexed table falls back to a scan.
    let agg = session
        .sql("SELECT age, count(*) AS n FROM person GROUP BY age ORDER BY age LIMIT 1")
        .unwrap()
        .collect()
        .unwrap();
    assert_eq!(agg.value_at(0, 0), Value::Int64(20));
}

#[test]
fn append_rows_batched_and_fine_grained() {
    let (session, indexed) = setup();
    let before = indexed.row_count();
    // Batched: a 100-row regular DataFrame.
    let rows: Vec<Vec<Value>> = (1000..1100)
        .map(|i| {
            vec![
                Value::Int64(i),
                Value::Utf8(format!("n{i}")),
                Value::Int64(30),
            ]
        })
        .collect();
    let batch_df = session.create_dataframe(person_schema(), rows);
    indexed.append_rows(&batch_df).unwrap();
    // Fine-grained: single-row DataFrames.
    for i in 1100..1110 {
        let one = session.create_dataframe(
            person_schema(),
            vec![vec![
                Value::Int64(i),
                Value::Utf8(format!("n{i}")),
                Value::Int64(31),
            ]],
        );
        indexed.append_rows(&one).unwrap();
    }
    assert_eq!(indexed.row_count(), before + 110);
    // New rows are immediately visible to indexed queries.
    let out = session
        .sql("SELECT name FROM person WHERE id = 1105")
        .unwrap();
    assert_eq!(out.count().unwrap(), 1);
}

#[test]
fn append_schema_mismatch_rejected() {
    let (session, indexed) = setup();
    let bad = session.create_dataframe(
        knows_schema(),
        vec![vec![Value::Int64(1), Value::Int64(2), Value::Int64(3)]],
    );
    assert!(indexed.append_rows(&bad).is_err());
}

#[test]
fn snapshot_df_is_repeatable_under_appends() {
    let (session, indexed) = setup();
    let snap = indexed.snapshot_df();
    let live = indexed.df();
    let n0 = snap.count().unwrap();
    indexed
        .append_row(&[
            Value::Int64(9999),
            Value::Utf8("late".into()),
            Value::Int64(1),
        ])
        .unwrap();
    assert_eq!(snap.count().unwrap(), n0, "frozen view must not move");
    assert_eq!(live.count().unwrap(), n0 + 1);
    let _ = session;
}

#[test]
fn frozen_joins_respect_the_snapshot() {
    let (session, indexed) = setup();
    let knows = session.table("knows").unwrap();
    let frozen = indexed.snapshot_df();
    let joined_before = frozen
        .join(&knows, vec![("id", "src")], JoinType::Inner)
        .unwrap();
    let n_before = joined_before.count().unwrap();
    // Frozen scans are not claimed by the indexed strategy (it would read
    // the live table); they fall back to the vanilla join.
    assert!(
        !joined_before.explain().unwrap().contains("IndexedJoin"),
        "{}",
        joined_before.explain().unwrap()
    );
    // Appends after the snapshot add matches for key 3 in the live table
    // but must not change the frozen join's answer.
    indexed
        .append_row(&[Value::Int64(3), Value::Utf8("late".into()), Value::Int64(0)])
        .unwrap();
    assert_eq!(joined_before.count().unwrap(), n_before);
    let live = indexed.join(&knows, "id", "src").unwrap();
    assert!(
        live.count().unwrap() > n_before,
        "live join sees the new row's matches"
    );
}

#[test]
fn concurrent_queries_during_append_stream() {
    let (session, indexed) = setup();
    let writer = {
        let indexed = indexed.clone();
        std::thread::spawn(move || {
            for i in 0..2000i64 {
                indexed
                    .append_row(&[
                        Value::Int64(10_000 + i),
                        Value::Utf8(format!("live{i}")),
                        Value::Int64(i % 50),
                    ])
                    .unwrap();
            }
        })
    };
    // Interactive lookups while the update stream runs (the demo scenario).
    for _ in 0..50 {
        let out = session
            .sql("SELECT name FROM person WHERE id = 250")
            .unwrap();
        assert_eq!(out.count().unwrap(), 1);
    }
    writer.join().unwrap();
    assert_eq!(indexed.row_count(), 2500);
    let out = session
        .sql("SELECT name FROM person WHERE id = 11999")
        .unwrap();
    assert_eq!(out.count().unwrap(), 1);
}

#[test]
fn broadcast_probe_when_small() {
    let (session, indexed) = setup();
    // A tiny probe side should take the broadcast path.
    let small = session
        .table("knows")
        .unwrap()
        .filter(col("src").eq(lit(3i64)))
        .unwrap()
        .cache()
        .unwrap();
    let joined = indexed.join(&small, "id", "src").unwrap();
    let plan = joined.explain().unwrap();
    assert!(plan.contains("IndexedJoin"), "{plan}");
    assert!(
        plan.contains("Broadcast") || !plan.contains("Shuffle"),
        "small probe should broadcast, not shuffle:\n{plan}"
    );
    assert_eq!(joined.count().unwrap(), 4, "person 3 has 4 edges");
}

#[test]
fn multi_version_lookup_counts_grow() {
    let (_, indexed) = setup();
    for v in 0..10 {
        indexed
            .append_row(&[
                Value::Int64(42),
                Value::Utf8(format!("v{v}")),
                Value::Int64(v),
            ])
            .unwrap();
        assert_eq!(
            indexed.get_rows_chunk(42i64).unwrap().len(),
            (v + 2) as usize
        );
    }
}

#[test]
fn indexed_ddl_create_insert_lookup() {
    let session = Session::new();
    install_indexed_ddl(&session, IndexConfig::default());
    session
        .sql("CREATE TABLE events (id BIGINT, name VARCHAR)")
        .unwrap();
    session
        .sql("INSERT INTO events VALUES (1, 'a'), (2, 'b'), (1, 'a2')")
        .unwrap();
    // Key-equality SELECT on the indexed (first) column pushes into the
    // scan, where IndexedSource answers it with a cTrie lookup.
    let df = session.sql("SELECT name FROM events WHERE id = 1").unwrap();
    let plan = df.explain().unwrap();
    assert!(plan.contains("pushed=[(id = 1)]"), "{plan}");
    assert_eq!(df.count().unwrap(), 2);
    // Duplicate CREATE is a typed error and leaves the table intact.
    let err = session
        .sql("CREATE TABLE events (id BIGINT)")
        .map(|_| ())
        .unwrap_err();
    assert!(matches!(err, EngineError::TableAlreadyExists(_)), "{err}");
    let out = session.sql("SELECT * FROM events").unwrap();
    assert_eq!(out.count().unwrap(), 3);
    session.sql("DROP TABLE events").unwrap();
    let err = session.sql("SELECT * FROM events").map(|_| ()).unwrap_err();
    assert!(matches!(err, EngineError::TableNotFound(_)), "{err}");
}

#[test]
fn frozen_source_rejects_append_rows() {
    let (_, indexed) = setup();
    let live = IndexedSource::live(Arc::clone(indexed.table()));
    let frozen = IndexedSource::frozen(Arc::clone(indexed.table()));
    use idf_engine::catalog::TableSource;
    let row = vec![vec![
        Value::Int64(9001),
        Value::Utf8("new".into()),
        Value::Int64(1),
    ]];
    let err = frozen.append_rows(&row).unwrap_err();
    assert!(matches!(err, EngineError::Unsupported(_)), "{err}");
    assert_eq!(live.append_rows(&row).unwrap(), 1);
    assert_eq!(indexed.get_rows_chunk(9001i64).unwrap().len(), 1);
    // Typed validation comes from the shared check.
    let bad = vec![vec![Value::Int64(1)]];
    let err = live.append_rows(&bad).unwrap_err();
    assert!(matches!(err, EngineError::Type(_)), "{err}");
}
