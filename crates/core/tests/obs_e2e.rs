//! End-to-end observability: `EXPLAIN ANALYZE` per-operator counters must
//! agree with the rows a query actually returns on the three indexed hot
//! paths (point lookup, batched IN-list probe, indexed join), the global
//! Prometheus exposition must show the storage counters moving under a
//! mixed workload, and the query-lifecycle accounting must classify
//! cancellations as `cancelled` — not `failed` — without ever wedging the
//! registry or the slow-query log.

#![cfg(feature = "obs")]

use std::sync::Arc;
use std::time::Duration;

use idf_core::prelude::*;
use idf_engine::config::EngineConfig;
use idf_engine::prelude::*;

fn person_schema() -> SchemaRef {
    Arc::new(Schema::new(vec![
        Field::new("id", DataType::Int64),
        Field::new("name", DataType::Utf8),
        Field::new("age", DataType::Int64),
    ]))
}

fn setup(session: &Session) -> IndexedDataFrame {
    let rows: Vec<Vec<Value>> = (0..500)
        .map(|i| {
            vec![
                Value::Int64(i),
                Value::Utf8(format!("p{i}")),
                Value::Int64(20 + i % 40),
            ]
        })
        .collect();
    let chunk = Chunk::from_rows(&person_schema(), &rows).unwrap();
    session.register_table(
        "person_plain",
        Arc::new(MemTable::from_chunk_partitioned(person_schema(), chunk, 4).unwrap()),
    );
    let indexed = session
        .table("person_plain")
        .unwrap()
        .create_index("id")
        .unwrap();
    indexed.cache().register("person");
    indexed
}

/// The stats of the indexed scan operator (the scan with pushed key
/// filters), or a panic listing what did execute.
fn indexed_scan_stats(
    registry: &idf_engine::physical::MetricsRegistry,
) -> idf_engine::physical::OperatorStats {
    let report = registry.report();
    report
        .iter()
        .find(|s| s.key.starts_with("SourceScan") && s.key.contains("pushed="))
        .unwrap_or_else(|| panic!("no indexed scan operator in report: {report:?}"))
        .clone()
}

#[test]
fn explain_analyze_point_lookup_rows_match() {
    let session = Session::new();
    setup(&session);
    let df = session
        .sql("SELECT name FROM person WHERE id = 123")
        .unwrap();
    let query = session.new_query();
    let (out, exec, registry) = df.collect_instrumented(&query).unwrap();
    assert_eq!(out.len(), 1);
    let scan = indexed_scan_stats(&registry);
    assert_eq!(
        scan.rows,
        out.len() as u64,
        "scan rows-out must equal collected rows: {:?}",
        registry.report()
    );
    // The annotated tree shows the indexed operator with actuals — and
    // the pushed filter means there is no residual Filter doing the work.
    let annotated = registry.render_annotated(exec.as_ref());
    assert!(annotated.contains("pushed="), "{annotated}");
    assert!(!annotated.contains("Filter"), "{annotated}");
    let scan_line = annotated.lines().find(|l| l.contains("pushed=")).unwrap();
    assert!(
        scan_line.contains("rows=1") && scan_line.contains("time="),
        "scan line must carry actuals: {scan_line}"
    );
}

#[test]
fn explain_analyze_in_list_probe_rows_match() {
    let session = Session::new();
    setup(&session);
    let df = session
        .sql("SELECT name FROM person WHERE id IN (1, 5, 123, 400)")
        .unwrap();
    let query = session.new_query();
    let (out, _exec, registry) = df.collect_instrumented(&query).unwrap();
    assert_eq!(out.len(), 4);
    let scan = indexed_scan_stats(&registry);
    assert_eq!(scan.rows, out.len() as u64, "{:?}", registry.report());
}

#[test]
fn explain_analyze_indexed_join_rows_match() {
    let session = Session::new();
    let indexed = setup(&session);
    let knows_schema: SchemaRef = Arc::new(Schema::new(vec![
        Field::new("src", DataType::Int64),
        Field::new("dst", DataType::Int64),
    ]));
    let knows_rows: Vec<Vec<Value>> = (0..2000)
        .map(|i| vec![Value::Int64(i % 500), Value::Int64((i * 13 + 1) % 500)])
        .collect();
    let chunk = Chunk::from_rows(&knows_schema, &knows_rows).unwrap();
    session.register_table(
        "knows",
        Arc::new(MemTable::from_chunk_partitioned(knows_schema, chunk, 4).unwrap()),
    );
    let joined = indexed
        .join(&session.table("knows").unwrap(), "id", "src")
        .unwrap();
    let query = session.new_query();
    let (out, exec, registry) = joined.collect_instrumented(&query).unwrap();
    assert_eq!(out.len(), 2000);
    let join = registry
        .report()
        .into_iter()
        .find(|s| s.key.starts_with("IndexedJoin"))
        .expect("IndexedJoin must be instrumented");
    assert_eq!(join.rows, out.len() as u64);
    assert!(
        registry
            .render_annotated(exec.as_ref())
            .lines()
            .any(|l| l.contains("IndexedJoin") && l.contains("rows=2000")),
        "{}",
        registry.render_annotated(exec.as_ref())
    );
}

#[test]
fn explain_analyze_via_sql_reports_actuals() {
    let session = Session::new();
    setup(&session);
    let out = session
        .sql("EXPLAIN ANALYZE SELECT name FROM person WHERE id = 42")
        .unwrap()
        .collect()
        .unwrap();
    let text: Vec<String> = (0..out.len())
        .map(|r| match out.value_at(0, r) {
            Value::Utf8(s) => s,
            other => panic!("plan column must be text, got {other:?}"),
        })
        .collect();
    let joined = text.join("\n");
    assert!(joined.contains("Physical (analyzed)"), "{joined}");
    assert!(joined.contains("pushed="), "{joined}");
    assert!(joined.contains("rows=1"), "{joined}");
    assert!(joined.contains("1 result rows"), "{joined}");
}

/// Value of a counter line in the Prometheus exposition, e.g.
/// `idf_storage_append_rows_total 42`.
fn expo_value(text: &str, metric: &str) -> u64 {
    text.lines()
        .find(|l| l.starts_with(metric) && !l.starts_with('#'))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("metric {metric} missing from exposition:\n{text}"))
}

#[test]
fn metrics_text_nonzero_after_mixed_workload() {
    let session = Session::new();
    let indexed = setup(&session);
    for i in 0..50 {
        indexed
            .append_row(&[
                Value::Int64(1000 + i),
                Value::Utf8(format!("n{i}")),
                Value::Int64(30),
            ])
            .unwrap();
    }
    for i in 0..20i64 {
        assert!(!indexed.get_rows_chunk(1000 + i).unwrap().is_empty());
    }
    let _ = indexed.get_rows_chunk(999_999i64).unwrap(); // a miss
    let text = session.metrics_text();
    assert!(expo_value(&text, "idf_storage_append_rows_total") >= 50);
    assert!(expo_value(&text, "idf_storage_append_bytes_total") > 0);
    assert!(expo_value(&text, "idf_index_probe_hits_total") >= 20);
    assert!(expo_value(&text, "idf_index_probe_misses_total") >= 1);
    assert!(expo_value(&text, "idf_query_started_total") >= 1);
    // Histogram exposition is well-formed: cumulative buckets + count.
    assert!(
        text.contains("idf_index_chain_walk_length_bucket"),
        "{text}"
    );
    assert!(text.contains("le=\"+Inf\""), "{text}");
}

#[test]
fn cancelled_query_counts_as_cancelled_and_slow_log_stays_live() {
    let m = idf_obs::global();
    let cancelled0 = m.queries_cancelled.get();
    let failed0 = m.queries_failed.get();

    let config = EngineConfig {
        slow_query_threshold: Some(Duration::ZERO),
        ..EngineConfig::default()
    };
    let session = Session::with_config(config);
    setup(&session);

    // A pre-cancelled context: execution must stop with a cancellation
    // error, counted as `cancelled`, never `failed`.
    let df = session.sql("SELECT name FROM person WHERE id = 7").unwrap();
    let query = session.new_query();
    query.cancel();
    let err = df.collect_ctx(&query).unwrap_err();
    assert!(err.is_cancellation(), "got: {err}");
    assert!(m.queries_cancelled.get() > cancelled0);
    assert_eq!(
        m.queries_failed.get(),
        failed0,
        "cancellation must not count as failure"
    );

    // With a zero threshold every query is "slow": both the finished and
    // the cancelled query land in the log, labelled with their SQL text.
    let ok = session.sql("SELECT name FROM person WHERE id = 8").unwrap();
    assert_eq!(ok.collect().unwrap().len(), 1);
    let entries = session.slow_queries();
    assert!(
        entries
            .iter()
            .any(|e| e.label.contains("id = 8") && e.outcome == idf_obs::QueryOutcome::Finished),
        "finished slow query missing: {entries:?}"
    );
    assert!(
        entries
            .iter()
            .any(|e| e.label.contains("id = 7") && e.outcome == idf_obs::QueryOutcome::Cancelled),
        "cancelled slow query missing: {entries:?}"
    );

    // The registry never deadlocks: reading the exposition and the log
    // while queries run concurrently always returns.
    std::thread::scope(|s| {
        let runner = s.spawn(|| {
            for i in 0..50 {
                let q = session.new_query();
                if i % 2 == 0 {
                    q.cancel();
                }
                let _ = df.collect_ctx(&q);
            }
        });
        for _ in 0..50 {
            let _ = session.metrics_text();
            let _ = session.slow_queries();
        }
        runner.join().unwrap();
    });
    assert!(!session.metrics_text().is_empty());
}
