//! Deterministic chaos suite: faults injected at every registered
//! storage-layer site while lookups race appends, asserting the PR-1
//! snapshot-consistency invariants the whole time — no abort, no poisoned
//! lock, per-partition-consistent chains, and a failed append never
//! partially visible.
//!
//! Rounds are capped so the suite rides in tier-1 `cargo test`; set
//! `IDF_CHAOS_ROUNDS` to run longer locally (see EXPERIMENTS.md).

#![cfg(feature = "failpoints")]

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Duration;

use idf_core::config::IndexConfig;
use idf_core::failpoints as fp;
use idf_core::table::IndexedTable;
use idf_engine::chunk::Chunk;
use idf_engine::schema::{Field, Schema, SchemaRef};
use idf_engine::types::{DataType, Value};
use idf_fail::{FailConfig, FailGuard};

/// The failpoint registry is process-global; every test here serializes
/// on this lock (poison tolerated so one failure doesn't cascade).
static CHAOS_LOCK: Mutex<()> = Mutex::new(());

fn serial() -> std::sync::MutexGuard<'static, ()> {
    CHAOS_LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

fn rounds() -> usize {
    std::env::var("IDF_CHAOS_ROUNDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(24)
}

fn schema() -> SchemaRef {
    Arc::new(Schema::new(vec![
        Field::new("k", DataType::Int64),
        Field::new("v", DataType::Int64),
    ]))
}

fn table() -> Arc<IndexedTable> {
    Arc::new(
        IndexedTable::new(
            schema(),
            0,
            IndexConfig {
                num_partitions: 4,
                ..Default::default()
            },
        )
        .unwrap(),
    )
}

fn chunk(rows: impl Iterator<Item = (i64, i64)>) -> Chunk {
    let rows: Vec<Vec<Value>> = rows
        .map(|(k, v)| vec![Value::Int64(k), Value::Int64(v)])
        .collect();
    Chunk::from_rows(&schema(), &rows).unwrap()
}

/// An operation outcome under chaos: success, a tolerated injected
/// failure, or an intolerable error (which fails the test).
fn tolerated(result: Result<(), String>) -> bool {
    match result {
        Ok(()) => true,
        Err(msg) => {
            assert!(
                msg.contains("injected") || msg.contains("panicked") || msg.contains("failpoint"),
                "non-injected failure under chaos: {msg}"
            );
            false
        }
    }
}

/// Run `f`, flattening engine errors and panics into a message.
fn run_op(f: impl FnOnce() -> idf_engine::error::Result<()>) -> Result<(), String> {
    match catch_unwind(AssertUnwindSafe(f)) {
        Ok(Ok(())) => Ok(()),
        Ok(Err(e)) => Err(e.to_string()),
        Err(payload) => Err(idf_engine::error::panic_message(payload.as_ref())),
    }
}

/// Full integrity audit with all faults cleared: every key's chain is
/// latest-first and contiguous (values `len-1 … 0`), and the total row
/// count matches the per-key success counters.
fn audit(table: &IndexedTable, expected: &[u64]) {
    assert!(
        idf_fail::hit_count("nonexistent").is_none(),
        "sanity: registry reachable"
    );
    let snap = table.snapshot();
    let mut total = 0usize;
    for (k, &succ) in expected.iter().enumerate() {
        let c = snap.lookup_chunk(&Value::Int64(k as i64), None).unwrap();
        assert_eq!(c.len() as u64, succ, "key {k} chain length");
        for r in 0..c.len() {
            assert_eq!(
                c.value_at(1, r),
                Value::Int64(c.len() as i64 - 1 - r as i64),
                "key {k} chain must be latest-first and contiguous"
            );
        }
        total += c.len();
    }
    assert_eq!(table.row_count(), total);
    // No poisoned state: the table still accepts appends and answers.
    table
        .append_row(&[Value::Int64(0), Value::Int64(expected[0] as i64)])
        .unwrap();
    assert_eq!(
        snap.lookup_chunk(&Value::Int64(0), None).unwrap().len() + 1,
        table
            .snapshot()
            .lookup_chunk(&Value::Int64(0), None)
            .unwrap()
            .len()
    );
}

#[test]
fn fault_at_every_site_is_survivable() {
    let _s = serial();
    idf_fail::reset();
    for &site in fp::SITES {
        for config in [
            FailConfig::error("chaos io error"),
            FailConfig::panic("chaos crash"),
            FailConfig::delay(1).times(8),
        ] {
            let t = table();
            t.append_chunk(&chunk((0..64).map(|i| (i % 8, i / 8))))
                .unwrap();
            let is_delay = matches!(&config, c if format!("{c:?}").contains("Delay"));
            let guard = FailGuard::new(site, config);
            // Mixed workload under the fault: every op either succeeds or
            // reports the injection — never aborts, never corrupts.
            let keys: Vec<Value> = (0..8).map(Value::Int64).collect();
            let ops: Vec<Result<(), String>> = vec![
                run_op(|| t.append_chunk(&chunk((0..8).map(|i| (i, 100))))),
                run_op(|| t.append_row(&[Value::Int64(3), Value::Int64(200)])),
                run_op(|| t.snapshot().lookup_batch(&keys, None).map(|_| ())),
                run_op(|| t.lookup_chunk(&Value::Int64(5), None).map(|_| ())),
            ];
            let successes = ops.into_iter().filter(|o| tolerated(o.clone())).count();
            if is_delay {
                assert_eq!(successes, 4, "delay must not fail ops at {site}");
            }
            assert!(
                idf_fail::hit_count(site).unwrap_or(0) > 0,
                "workload never reached site {site}"
            );
            drop(guard);
            // With the fault cleared the table is fully consistent: every
            // chain intact, appends and lookups work.
            let snap = t.snapshot();
            for k in 0..8 {
                let c = snap.lookup_chunk(&Value::Int64(k), None).unwrap();
                assert!(!c.is_empty(), "seed rows for key {k} survived");
            }
            t.append_row(&[Value::Int64(7), Value::Int64(999)]).unwrap();
            assert!(t.snapshot().lookup_batch(&keys, None).unwrap().len() >= 64);
        }
    }
}

#[test]
fn failed_chunk_append_is_never_partially_visible() {
    let _s = serial();
    idf_fail::reset();
    // A fault at the publish commit point (or anywhere in encode) of a
    // cross-partition batch must leave the table exactly as it was.
    for config in [
        (
            fp::APPEND_PUBLISH,
            FailConfig::error("publish fault").times(1),
        ),
        (
            fp::APPEND_ENCODE,
            FailConfig::error("encode fault").times(1),
        ),
        (
            fp::APPEND_ENCODE,
            FailConfig::panic("encode crash").times(1),
        ),
    ] {
        let (site, cfg) = config;
        let t = table();
        t.append_chunk(&chunk((0..100).map(|i| (i % 10, i / 10))))
            .unwrap();
        let before = t.row_count();
        let batch = chunk((1000..1040).map(|i| (i, 0)));
        let err = {
            let _guard = FailGuard::new(site, cfg);
            t.append_chunk(&batch).unwrap_err()
        };
        let msg = err.to_string();
        assert!(
            msg.contains("injected") || msg.contains("panicked"),
            "site {site}: {msg}"
        );
        assert_eq!(t.row_count(), before, "site {site}: no partial publish");
        let snap = t.snapshot();
        for k in 1000..1040 {
            assert!(
                snap.lookup_chunk(&Value::Int64(k), None)
                    .unwrap()
                    .is_empty(),
                "site {site}: key {k} of the failed batch is visible"
            );
        }
        // The same batch goes through once the fault clears.
        t.append_chunk(&batch).unwrap();
        assert_eq!(t.row_count(), before + 40);
    }
}

/// Query-lifecycle metrics must stay internally consistent while faults
/// fire in the storage layer: every started query settles exactly once
/// (finished + cancelled + failed), and the in-flight gauge returns to
/// its baseline — no double counting, no leaks, whatever the failpoints
/// do to the queries themselves.
#[cfg(feature = "obs")]
#[test]
fn metrics_stay_consistent_under_chaos() {
    let _s = serial();
    idf_fail::reset();
    let m = idf_obs::global();
    let started0 = m.queries_started.get();
    let settled = |m: &idf_obs::MetricsRegistry| {
        m.queries_finished.get() + m.queries_cancelled.get() + m.queries_failed.get()
    };
    let settled0 = settled(m);
    let inflight0 = m.queries_in_flight.get();
    let cancelled0 = m.queries_cancelled.get();

    let session = idf_engine::prelude::Session::new();
    let t = table();
    t.append_chunk(&chunk((0..64).map(|i| (i % 8, i / 8))))
        .unwrap();
    let indexed = idf_core::api::IndexedDataFrame::from_table(session.clone(), Arc::clone(&t));
    indexed.register("chaos_t");
    let df = session.sql("SELECT v FROM chaos_t WHERE k = 3").unwrap();

    let mut rng = Lcg(0xC0FFEE);
    let n = rounds().max(8);
    for round in 0..n {
        let site = fp::SITES[(rng.next() as usize) % fp::SITES.len()];
        let cfg = match rng.next() % 2 {
            0 => FailConfig::error("chaos"),
            _ => FailConfig::panic("chaos"),
        };
        let guard = FailGuard::new(site, cfg.times(1 + rng.next() % 3));
        let q = session.new_query();
        if round % 3 == 0 {
            q.cancel();
        }
        // Outcome is irrelevant — only the accounting is under test.
        let _ = df.collect_ctx(&q);
        drop(guard);
    }
    idf_fail::reset();

    let started = m.queries_started.get() - started0;
    assert!(started >= n as u64, "every round issues at least one query");
    assert_eq!(
        started,
        settled(m) - settled0,
        "every started query must settle exactly once"
    );
    assert!(
        m.queries_cancelled.get() - cancelled0 >= (n as u64).div_ceil(3),
        "pre-cancelled rounds must be counted as cancelled"
    );
    assert_eq!(
        m.queries_in_flight.get(),
        inflight0,
        "in-flight gauge must return to baseline"
    );
}

/// Deterministic xorshift-style generator so every run of a seed is
/// identical.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 17
    }
}

#[test]
fn seeded_chaos_lookups_under_appends() {
    let _s = serial();
    idf_fail::reset();
    for seed in [0xDEAD_BEEFu64, 42, 0x1DF2_2024] {
        chaos_round(seed, rounds());
    }
}

fn chaos_round(seed: u64, rounds: usize) {
    const KEYS: usize = 8;
    let t = table();
    let stop = Arc::new(AtomicBool::new(false));
    // Per-key success counters: the writer appends value = #successes so
    // far, so a key's published chain is always exactly `0..succ`.
    let counters: Mutex<Vec<u64>> = Mutex::new(vec![0; KEYS]);
    let mut rng = Lcg(seed);

    std::thread::scope(|s| {
        let writer = {
            let t = Arc::clone(&t);
            let stop = Arc::clone(&stop);
            let counters = &counters;
            s.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    for k in 0..KEYS {
                        let succ = { counters.lock().unwrap_or_else(PoisonError::into_inner)[k] };
                        let row = [Value::Int64(k as i64), Value::Int64(succ as i64)];
                        if tolerated(run_op(|| t.append_row(&row))) {
                            counters.lock().unwrap_or_else(PoisonError::into_inner)[k] += 1;
                        }
                    }
                }
            })
        };
        let reader = {
            let t = Arc::clone(&t);
            let stop = Arc::clone(&stop);
            s.spawn(move || {
                let keys: Vec<Value> = (0..KEYS as i64).map(Value::Int64).collect();
                while !stop.load(Ordering::Relaxed) {
                    let snap = t.snapshot();
                    // Batched probe: per-partition snapshot consistency.
                    let _ = run_op(|| snap.lookup_batch(&keys, None).map(|_| ()));
                    // Per-key chain contiguity on the same snapshot.
                    for k in &keys {
                        let result = catch_unwind(AssertUnwindSafe(|| snap.lookup_chunk(k, None)));
                        let Ok(Ok(c)) = result else {
                            continue; // injected failure — tolerated
                        };
                        if !c.is_empty() {
                            assert_eq!(
                                c.value_at(1, 0),
                                Value::Int64(c.len() as i64 - 1),
                                "chain head must be the latest append"
                            );
                            assert_eq!(c.value_at(1, c.len() - 1), Value::Int64(0));
                        }
                    }
                }
            })
        };
        // Chaos driver: flip a random fault on and off per round.
        for _ in 0..rounds {
            let site = fp::SITES[(rng.next() as usize) % fp::SITES.len()];
            let cfg = match rng.next() % 3 {
                0 => FailConfig::error("chaos"),
                1 => FailConfig::panic("chaos"),
                _ => FailConfig::delay(1),
            };
            let cfg = cfg.skip(rng.next() % 4).times(1 + rng.next() % 4);
            let guard = FailGuard::new(site, cfg);
            std::thread::sleep(Duration::from_millis(2));
            drop(guard);
        }
        stop.store(true, Ordering::Relaxed);
        writer.join().unwrap();
        reader.join().unwrap();
    });

    idf_fail::reset();
    let expected = counters
        .into_inner()
        .unwrap_or_else(PoisonError::into_inner);
    assert!(
        expected.iter().sum::<u64>() > 0,
        "seed {seed:#x}: writer made no progress"
    );
    audit(&t, &expected);
}
