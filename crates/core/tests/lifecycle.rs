//! Query lifecycle hardening over the indexed storage layer: the
//! acceptance scenarios of the robustness PR. A heavy query on a
//! million-row indexed table is cancellable mid-execution with bounded
//! latency while concurrent point lookups on the same session keep
//! answering; an over-budget aggregation dies with a typed
//! `ResourceExhausted` without disturbing its neighbours; oversized rows
//! are rejected as typed errors at every API layer with no partial
//! visibility.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use idf_core::prelude::*;
use idf_engine::config::EngineConfig;
use idf_engine::error::EngineError;
use idf_engine::prelude::*;

fn schema() -> SchemaRef {
    Arc::new(Schema::new(vec![
        Field::new("id", DataType::Int64),
        Field::new("grp", DataType::Int64),
        Field::new("v", DataType::Int64),
    ]))
}

fn indexed_table(session: &Session, rows: i64) -> IndexedDataFrame {
    let data: Vec<Vec<Value>> = (0..rows)
        .map(|i| vec![Value::Int64(i), Value::Int64(i % 500), Value::Int64(i * 7)])
        .collect();
    let chunk = Chunk::from_rows(&schema(), &data).unwrap();
    let df = session.dataframe_from_chunk(schema(), chunk);
    let idf = df.create_index("id").unwrap();
    idf.cache();
    idf
}

#[test]
fn heavy_query_cancels_while_lookups_proceed() {
    let session = Session::new();
    let idf = indexed_table(&session, 1_000_000);
    idf.register("big");
    // A full-scan aggregation over the million rows: plenty of chunk
    // boundaries for the cooperative cancellation check to fire at.
    let heavy = session
        .sql("SELECT grp, count(*), sum(v) FROM big GROUP BY grp")
        .unwrap();
    let query = session.new_query();
    let stop_lookups = Arc::new(AtomicBool::new(false));

    std::thread::scope(|s| {
        // Concurrent point lookups on the same session, racing the
        // cancelled query the whole time.
        let reader = {
            let idf = idf.clone();
            let stop = Arc::clone(&stop_lookups);
            s.spawn(move || {
                let mut lookups = 0usize;
                while !stop.load(Ordering::Relaxed) {
                    let key = (lookups as i64 * 37) % 1_000_000;
                    let chunk = idf.get_rows_chunk(key).unwrap();
                    assert_eq!(chunk.len(), 1, "key {key}");
                    lookups += 1;
                }
                lookups
            })
        };
        let canceller = {
            let query = Arc::clone(&query);
            s.spawn(move || {
                std::thread::sleep(Duration::from_millis(50));
                query.cancel();
                Instant::now()
            })
        };
        let result = heavy.collect_ctx(&query);
        let returned_at = Instant::now();
        let cancelled_at = canceller.join().unwrap();
        stop_lookups.store(true, Ordering::Relaxed);
        let lookups = reader.join().unwrap();

        assert_eq!(
            result.unwrap_err(),
            EngineError::Cancelled,
            "1M-row aggregation must not finish within 50ms in a test build"
        );
        let latency = returned_at.saturating_duration_since(cancelled_at);
        assert!(latency < Duration::from_secs(2), "cancel took {latency:?}");
        assert!(lookups > 0, "reader never got a lookup through");
    });

    // The same session still answers the same (un-cancelled) query shape.
    let out = session
        .sql("SELECT grp, count(*) FROM big GROUP BY grp LIMIT 5")
        .unwrap()
        .collect()
        .unwrap();
    assert_eq!(out.len(), 5);
}

#[test]
fn over_budget_scan_aggregation_is_resource_exhausted() {
    let session = Session::with_config(EngineConfig {
        query_memory_limit: Some(64 * 1024),
        ..Default::default()
    });
    let idf = indexed_table(&session, 100_000);
    idf.register("t");
    // The full scan charges every produced chunk: ~2.4 MB of row data
    // against a 64 KiB budget.
    let err = session
        .sql("SELECT grp, count(*), sum(v) FROM t GROUP BY grp")
        .unwrap()
        .collect()
        .unwrap_err();
    assert!(
        matches!(err, EngineError::ResourceExhausted(_)),
        "got {err:?}"
    );
    // Point lookups (indexed probes of a few rows) stay within budget —
    // both through the library API and through SQL on the same session.
    assert_eq!(idf.get_rows_chunk(4217i64).unwrap().len(), 1);
    let out = session
        .sql("SELECT v FROM t WHERE id = 4217")
        .unwrap()
        .collect()
        .unwrap();
    assert_eq!(out.len(), 1);
}

#[test]
fn oversized_row_is_typed_error_with_no_partial_visibility() {
    let session = Session::new();
    let idf = indexed_table(&session, 1_000);
    let before = idf.row_count();

    let huge = "x".repeat(4096);
    // Two well-formed appends succeed; a mistyped row fails at encode
    // and leaves no trace.
    idf.append_row(&[Value::Int64(-1), Value::Int64(0), Value::Int64(0)])
        .unwrap();
    idf.append_row(&[Value::Int64(-3), Value::Int64(0), Value::Int64(0)])
        .unwrap();
    idf.append_row(&[Value::Int64(-2), Value::Utf8(huge.clone()), Value::Int64(0)])
        .unwrap_err();
    assert!(idf.get_rows_chunk(-2i64).unwrap().is_empty());

    // A string schema so the row can legitimately exceed max_row_size.
    let sschema = Arc::new(Schema::new(vec![
        Field::new("k", DataType::Int64),
        Field::new("s", DataType::Utf8),
    ]));
    let df = session.create_dataframe(
        sschema.clone(),
        vec![vec![Value::Int64(1), Value::Utf8("ok".into())]],
    );
    let sidf = df.create_index("k").unwrap();
    let err = sidf
        .append_row(&[Value::Int64(2), Value::Utf8(huge.clone())])
        .unwrap_err();
    assert!(
        matches!(err, EngineError::RowTooLarge { .. }),
        "got {err:?}"
    );
    assert!(err.to_string().contains("at most"), "got: {err}");
    assert_eq!(sidf.row_count(), 1, "failed append left no trace");
    assert!(sidf.get_rows_chunk(2i64).unwrap().is_empty());

    // API layer: a chunk append where ONE row in the middle is oversized
    // must publish nothing at all (phase-1 validation precedes phase 2).
    let rows: Vec<Vec<Value>> = (10..20)
        .map(|i| {
            let s = if i == 15 {
                huge.clone()
            } else {
                format!("s{i}")
            };
            vec![Value::Int64(i), Value::Utf8(s)]
        })
        .collect();
    let bad = session.create_dataframe(sschema, rows);
    let err = sidf.append_rows(&bad).unwrap_err();
    assert!(
        matches!(err, EngineError::RowTooLarge { .. }),
        "got {err:?}"
    );
    assert_eq!(sidf.row_count(), 1, "no row of the failed batch is visible");
    for k in 10..20 {
        assert!(sidf.get_rows_chunk(k).unwrap().is_empty(), "key {k}");
    }
    // The table remains fully usable after the rejected batch.
    sidf.append_row(&[Value::Int64(2), Value::Utf8("fine".into())])
        .unwrap();
    assert_eq!(sidf.get_rows_chunk(2i64).unwrap().len(), 1);
    assert_eq!(idf.row_count(), before + 2);
}
