//! Named fault-injection sites in the durability layer.
//!
//! Same contract as the storage-layer registry
//! (`crates/core/src/failpoints.rs`): each constant names an
//! `idf_fail::eval` site, every constant is registered exactly once in
//! [`SITES`], and the crash-consistency chaos suite iterates the table
//! asserting that a fault at any site leaves a reopened table equal to a
//! prefix of the committed appends.

use idf_engine::error::{EngineError, Result};

/// Head of a WAL commit (`TableWal::begin_commit`), before the record is
/// staged: a fault here fails the append with nothing logged and nothing
/// published.
pub const WAL_APPEND: &str = "durable::wal::append";

/// The group-commit writer's flush, before bytes reach the file: a fault
/// here poisons the WAL — `Sync` commits in the batch fail, and the
/// error is sticky until the WAL is reopened.
pub const WAL_FSYNC: &str = "durable::wal::fsync";

/// Checkpoint serialization, before the snapshot file is renamed into
/// place: a fault here must leave the previous checkpoint (and the
/// untruncated WAL) fully authoritative.
pub const CHECKPOINT_WRITE: &str = "durable::checkpoint::write";

/// Per-record WAL replay during recovery: a fault here must fail the
/// open with a typed error, and a later clean open must succeed.
pub const RECOVERY_REPLAY: &str = "durable::recovery::replay";

/// Per-target scrub verification (`DurableSession::scrub`): a fault here
/// must fail the scrub with a typed error without quarantining anything,
/// and a later clean scrub must succeed.
pub const SCRUB_VERIFY: &str = "durable::scrub::verify";

/// Head of `resume_writes` re-arming a degraded WAL: a fault here must
/// leave the table degraded (still read-only, still serving reads) and a
/// later clean resume must succeed.
pub const WAL_RESUME: &str = "durable::wal::resume";

/// Head of a DML WAL commit (`TableWal::begin_commit_kinds` on a record
/// that carries tombstones), before the record is staged: a fault here
/// fails the statement with nothing logged and nothing published — the
/// table keeps serving its pre-statement contents.
pub const WAL_DML_FRAME: &str = "durable::wal::dml_frame";

/// Every registered durability site, for chaos suites to iterate.
pub const SITES: &[&str] = &[
    WAL_APPEND,
    WAL_FSYNC,
    CHECKPOINT_WRITE,
    RECOVERY_REPLAY,
    SCRUB_VERIFY,
    WAL_RESUME,
    WAL_DML_FRAME,
];

/// Evaluate the failpoint at `site`, mapping an injected fault into a
/// typed durability error that names the site.
#[inline]
pub fn check(site: &str) -> Result<()> {
    idf_fail::eval(site)
        .map_err(|msg| EngineError::durability(format!("injected failure at {site}: {msg}")))
}
