//! Per-table write-ahead log with a group-commit writer thread.
//!
//! Commit path: the appender frames its encoded rows (one checksummed,
//! length-prefixed record per committed chunk), stages the frame on the
//! writer's queue, and — at `DurabilityLevel::Sync` — blocks until the
//! writer reports the frame durable. The writer drains whatever has
//! accumulated, writes it in one pass, and issues **one** `fsync` for the
//! whole batch, so N concurrent committers pay one disk flush between
//! them (the classic group commit).
//!
//! All file access goes through the [`crate::io::StorageIo`] seam, so the
//! same code runs against the real filesystem and the deterministic
//! simulated disk ([`crate::sim::SimIo`]).
//!
//! Torn tails: a crash mid-write leaves a trailing partial frame; on open
//! the segment is scanned frame by frame and truncated at the first
//! length or CRC violation, so exactly the durable prefix survives.
//!
//! Failure model: the first flush failure (I/O error, ENOSPC, injected
//! fault) **degrades** the log — frames queued behind the failed batch
//! are discarded (their commits observe the failure and report it; a
//! later flush would resurrect refused appends on recovery), the writer
//! thread exits, and every subsequent append fails fast with the typed
//! [`EngineError::ReadOnly`]. Reads never touch the WAL, so the table
//! keeps serving. [`TableWal::rearm`] (driven by
//! `DurableSession::resume_writes`) is the explicit way back: it takes a
//! fresh checkpoint and rotates to a new segment, so disk and memory
//! agree again before the first new append is accepted.
//!
//! Checkpoint coordination: [`TableWal::quiesce_and_rotate`] closes the
//! commit gate, waits until every logged commit is both flushed and
//! published to memory (the [`WalTicket`] dropped), runs the caller's
//! snapshot write, and then **rotates** to the new segment path the
//! caller returned. Segments are named by checkpoint id; recovery replays
//! the contiguous chain of segments at-or-after the manifest's snapshot
//! id, so the previous generation's segment can be *retained* (for scrub
//! fallback) without ever being replayed as duplicates.
//!
//! Shutdown ordering: drop closes the log and joins the writer, which
//! drains every staged frame first. A `Sync` committer caught mid-commit
//! waits until the writer has actually exited, so its outcome
//! deterministically matches the disk: flushed-then-acknowledged or
//! failed-and-absent, never "reported failed but durable".

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};

use idf_core::sink::{AppendSink, CommitGuard, RowKind, SinkStatus};
use idf_engine::config::DurabilityLevel;
use idf_engine::error::{EngineError, Result};

use crate::codec::{
    check_frame_len, frame, put_bytes, put_u32, read_frame, Cursor, FrameRead, MAX_WAL_FRAME,
};
use crate::io::{AppendFile, StorageIo};

/// Crate-wide lock-acquisition order, enforced by idf-lint's
/// `lock-order` rule: a lock may only be acquired while holding locks
/// that appear strictly earlier in this list.
pub const LOCK_ORDER: &[(&str, &str)] = &[
    (
        "writer",
        "writer-thread handle; taken first on heal/shutdown, before any shared state",
    ),
    (
        "file",
        "live segment handle; held for a whole group-commit batch, never while parked on state",
    ),
    (
        "path",
        "segment path cell; nested inside file only during the rotation swap",
    ),
    (
        "state",
        "innermost hub (queue, horizons, degraded flag); any path may end here",
    ),
];

/// Body sentinel distinguishing a DML record from a plain append. A
/// plain record starts with its row count, and `MAX_WAL_FRAME` caps any
/// real count far below this, so the value can never be a legal count —
/// legacy segments decode unchanged.
pub(crate) const DML_SENTINEL: u32 = 0xFFFF_FFFF;

/// One decoded WAL record: the encoded row payloads of one committed
/// append, in publish order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord {
    /// Encoded row payloads (see `IndexedPartition::encode_row`).
    pub rows: Vec<Vec<u8>>,
    /// Per-row [`RowKind`] wire bytes for a DML record; empty for a
    /// plain append (every row is data). Parallel to `rows` when
    /// non-empty.
    pub kinds: Vec<u8>,
}

/// Scan a segment file: `(valid records, valid byte length)`. Bytes past
/// the returned length are a torn tail. A missing file reads as empty.
pub fn read_records(io: &dyn StorageIo, path: &Path) -> Result<(Vec<WalRecord>, u64)> {
    let buf = match io.read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok((Vec::new(), 0)),
        Err(e) => {
            return Err(EngineError::durability(format!(
                "reading WAL segment {}: {e}",
                path.display()
            )))
        }
    };
    let mut records = Vec::new();
    let mut offset = 0usize;
    // Stops at the first torn frame — expected after a crash; the caller
    // truncates the file to `offset`.
    while let FrameRead::Ok { body, next } = read_frame(&buf, offset, MAX_WAL_FRAME) {
        records.push(decode_record(body)?);
        offset = next;
    }
    Ok((records, offset as u64))
}

pub(crate) fn decode_record(body: &[u8]) -> Result<WalRecord> {
    let mut c = Cursor::new(body, "WAL record");
    let head = c.u32()?;
    if head == DML_SENTINEL {
        // DML record: count, then per row `kind byte | len | payload`.
        let n = c.u32()? as usize;
        let mut rows = Vec::with_capacity(n.min(1 << 20));
        let mut kinds = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            let k = c.u8()?;
            if RowKind::from_u8(k).is_none() {
                return Err(EngineError::corrupt(format!(
                    "WAL DML record carries unknown row kind {k}"
                )));
            }
            kinds.push(k);
            rows.push(c.bytes()?.to_vec());
        }
        c.expect_end()?;
        return Ok(WalRecord { rows, kinds });
    }
    let n = head as usize;
    let mut rows = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        rows.push(c.bytes()?.to_vec());
    }
    c.expect_end()?;
    Ok(WalRecord {
        rows,
        kinds: Vec::new(),
    })
}

struct WalState {
    /// Frames staged for the writer, in sequence order.
    queue: Vec<(u64, Vec<u8>)>,
    /// Next commit sequence number (1-based; 0 means "nothing").
    next_seq: u64,
    /// Highest sequence number known durable.
    flushed_seq: u64,
    /// Byte length of the durable prefix of the live segment: advanced
    /// only after a successful batch fsync. Bytes past it (a batch whose
    /// write landed but whose flush failed) belong to commits that were
    /// reported failed; rotation trims to this mark so they can never be
    /// replayed.
    synced_len: u64,
    /// Commits logged (or staged) but not yet published to memory.
    in_flight: u64,
    /// Closed while a checkpoint quiesces; new commits wait.
    gate_closed: bool,
    /// Set by drop; wakes everything up to fail/exit.
    shutdown: bool,
    /// Sticky first I/O (or injected) failure: the log is read-only
    /// until explicitly re-armed. Holds the cause message.
    degraded: Option<String>,
    /// True once the writer thread has returned — either poisoned or
    /// after the shutdown drain. `Sync` waiters key off this so a drop
    /// mid-commit resolves deterministically instead of racing the
    /// drain.
    writer_exited: bool,
}

impl WalState {
    /// Mark the log degraded (first cause wins) and count the
    /// transition.
    fn poison(&mut self, cause: String) {
        if self.degraded.is_none() {
            self.degraded = Some(cause);
            idf_obs::global().wal_degraded_transitions.inc();
        }
    }

    fn read_only_error(&self) -> EngineError {
        EngineError::read_only(
            self.degraded
                .clone()
                .unwrap_or_else(|| "WAL degraded".to_string()),
        )
    }
}

struct WalInner {
    level: DurabilityLevel,
    io: Arc<dyn StorageIo>,
    file: Mutex<Box<dyn AppendFile>>,
    state: Mutex<WalState>,
    /// Signals the writer thread that the queue is non-empty (or
    /// shutdown).
    work: Condvar,
    /// Signals committers/checkpointers: flush progress, gate reopen,
    /// ticket drops, errors.
    done: Condvar,
}

fn lock<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

fn wait<'a, T>(cv: &Condvar, g: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    cv.wait(g).unwrap_or_else(PoisonError::into_inner)
}

impl WalInner {
    fn fail(&self) -> EngineError {
        EngineError::durability("WAL is shut down")
    }
}

/// Open (creating if absent) the segment file at `path` and fsync its
/// parent directory so the entry survives a crash — a freshly created
/// segment whose directory entry is not durable could vanish along with
/// every record fsync'd into it.
fn open_segment(io: &dyn StorageIo, path: &Path) -> Result<Box<dyn AppendFile>> {
    let file = io.open_append(path).map_err(|e| {
        EngineError::durability(format!("opening WAL segment {}: {e}", path.display()))
    })?;
    if let Some(dir) = path.parent() {
        io.sync_dir(dir).map_err(|e| {
            EngineError::durability(format!("syncing WAL directory {}: {e}", dir.display()))
        })?;
    }
    Ok(file)
}

fn spawn_writer(inner: &Arc<WalInner>) -> Result<std::thread::JoinHandle<()>> {
    let inner = Arc::clone(inner);
    std::thread::Builder::new()
        .name("idf-wal-writer".into())
        .spawn(move || writer_loop(&inner))
        .map_err(|e| EngineError::durability(format!("spawning WAL writer: {e}")))
}

/// The per-table write-ahead log. Owns the group-commit writer thread;
/// dropping the log drains the queue and joins the writer.
pub struct TableWal {
    inner: Arc<WalInner>,
    writer: Mutex<Option<std::thread::JoinHandle<()>>>,
    /// Current segment path; swapped under the lock by rotation.
    path: Mutex<PathBuf>,
}

impl TableWal {
    /// Open (creating if absent) the segment at `path`: scan it, truncate
    /// any torn tail, start the writer thread, and return the log plus
    /// the records that survived — the caller replays them.
    pub fn open(
        io: Arc<dyn StorageIo>,
        path: &Path,
        level: DurabilityLevel,
    ) -> Result<(Self, Vec<WalRecord>)> {
        let (records, valid_len) = read_records(io.as_ref(), path)?;
        let file = open_segment(io.as_ref(), path)?;
        let total = io.file_len(path).map_err(|e| {
            EngineError::durability(format!("sizing WAL segment {}: {e}", path.display()))
        })?;
        if total > valid_len {
            io.set_len(path, valid_len).map_err(|e| {
                EngineError::durability(format!(
                    "truncating torn WAL tail of {}: {e}",
                    path.display()
                ))
            })?;
            // Flush the truncation now: trimmed only in the page cache,
            // the torn tail would resurrect on the next crash — and by
            // then this segment may have been rotated into history,
            // where recovery rightly reads any trailing bytes as at-rest
            // corruption rather than a crash artifact.
            io.sync_file(path).map_err(|e| {
                EngineError::durability(format!("flushing truncated WAL {}: {e}", path.display()))
            })?;
        }
        let inner = Arc::new(WalInner {
            level,
            io,
            file: Mutex::new(file),
            state: Mutex::new(WalState {
                queue: Vec::new(),
                next_seq: 1,
                flushed_seq: 0,
                synced_len: valid_len,
                in_flight: 0,
                gate_closed: false,
                shutdown: false,
                degraded: None,
                writer_exited: false,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
        });
        let writer = spawn_writer(&inner)?;
        Ok((
            TableWal {
                inner,
                writer: Mutex::new(Some(writer)),
                path: Mutex::new(path.to_path_buf()),
            },
            records,
        ))
    }

    /// The current segment path.
    pub fn path(&self) -> PathBuf {
        lock(&self.path).clone()
    }

    /// The degraded cause, when the log is read-only.
    pub fn degraded_reason(&self) -> Option<String> {
        lock(&self.inner.state).degraded.clone()
    }

    /// Log one committed append. Blocks per the configured durability
    /// level (see module docs); the returned ticket must be held until
    /// the rows are published to memory.
    ///
    /// A degraded log fails fast with [`EngineError::ReadOnly`] carrying
    /// the original cause; nothing is staged.
    ///
    /// Commits whose encoded record exceeds [`MAX_WAL_FRAME`] are
    /// rejected here, before anything is staged or acknowledged: the
    /// read side treats an over-cap length prefix as a torn tail, so
    /// fsync'ing such a frame would silently drop it (and every record
    /// after it) on reopen. The error is the caller's — the WAL itself
    /// is not degraded.
    pub fn begin_commit(&self, rows: &[&[u8]]) -> Result<WalTicket> {
        crate::failpoints::check(crate::failpoints::WAL_APPEND)?;
        let body_len = 4 + rows.iter().map(|r| r.len() + 4).sum::<usize>();
        check_frame_len(body_len, MAX_WAL_FRAME, "WAL record")?;
        let mut body = Vec::with_capacity(body_len);
        put_u32(&mut body, rows.len() as u32);
        for r in rows {
            put_bytes(&mut body, r);
        }
        self.stage(frame(&body)?)
    }

    /// Log one committed DML statement: the same staging/flush contract
    /// as [`TableWal::begin_commit`], but the record carries a
    /// [`RowKind`] byte per row so recovery can replay tombstones as
    /// tombstones. A statement whose rows are all data (a plain append
    /// routed through the kind-aware seam) uses the legacy record layout
    /// — pre-DML segments and pure-insert workloads stay bit-compatible.
    pub fn begin_commit_kinds(&self, rows: &[&[u8]], kinds: &[RowKind]) -> Result<WalTicket> {
        debug_assert_eq!(rows.len(), kinds.len());
        if kinds.iter().all(|&k| k == RowKind::Data) {
            return self.begin_commit(rows);
        }
        crate::failpoints::check(crate::failpoints::WAL_APPEND)?;
        crate::failpoints::check(crate::failpoints::WAL_DML_FRAME)?;
        let body_len = 8 + rows.iter().map(|r| r.len() + 5).sum::<usize>();
        check_frame_len(body_len, MAX_WAL_FRAME, "WAL DML record")?;
        let mut body = Vec::with_capacity(body_len);
        put_u32(&mut body, DML_SENTINEL);
        put_u32(&mut body, rows.len() as u32);
        for (r, k) in rows.iter().zip(kinds) {
            body.push(k.to_u8());
            put_bytes(&mut body, r);
        }
        self.stage(frame(&body)?)
    }

    /// Stage one framed record on the writer queue and block per the
    /// durability level (the tail of both commit paths).
    fn stage(&self, framed: Vec<u8>) -> Result<WalTicket> {
        let mut st = lock(&self.inner.state);
        loop {
            if st.degraded.is_some() {
                idf_obs::global().wal_readonly_rejections.inc();
                return Err(st.read_only_error());
            }
            if st.shutdown {
                return Err(self.inner.fail());
            }
            if !st.gate_closed {
                break;
            }
            st = wait(&self.inner.done, st);
        }
        let seq = st.next_seq;
        st.next_seq += 1;
        st.queue.push((seq, framed));
        st.in_flight += 1;
        self.inner.work.notify_one();
        if self.inner.level == DurabilityLevel::Sync {
            // On shutdown, wait for the writer to finish its drain (it
            // flushes every staged frame before exiting), so the outcome
            // reported here always matches what is on disk.
            while st.flushed_seq < seq
                && st.degraded.is_none()
                && !(st.shutdown && st.writer_exited)
            {
                st = wait(&self.inner.done, st);
            }
            if st.flushed_seq < seq {
                // Flush failed or the WAL went away before our record hit
                // disk: the commit is not durable, so fail it. The caller
                // will not publish, keeping memory and log agreed.
                st.in_flight -= 1;
                let err = if st.degraded.is_some() {
                    st.read_only_error()
                } else {
                    self.inner.fail()
                };
                drop(st);
                // idf-lint: allow(condvar-discipline) -- predicate was updated under 'state' before release; notifying after unlock spares waiters a futile wake-then-block
                self.inner.done.notify_all();
                return Err(err);
            }
        }
        drop(st);
        Ok(WalTicket {
            inner: Arc::clone(&self.inner),
        })
    }

    /// Close the commit gate and wait until the log is drained. On `Ok`
    /// the gate is closed and the caller must reopen it. A degraded log
    /// counts as drained once nothing is queued or in flight (its queue
    /// was discarded at poisoning time); `allow_degraded` decides whether
    /// that is acceptable or a [`EngineError::ReadOnly`] failure.
    fn close_gate_and_drain(&self, allow_degraded: bool) -> Result<()> {
        let mut st = lock(&self.inner.state);
        // One gate holder at a time; a second caller queues here.
        while st.gate_closed && !st.shutdown {
            st = wait(&self.inner.done, st);
        }
        if st.shutdown {
            return Err(self.inner.fail());
        }
        st.gate_closed = true;
        loop {
            if st.shutdown {
                st.gate_closed = false;
                drop(st);
                // idf-lint: allow(condvar-discipline) -- predicate was updated under 'state' before release; notifying after unlock spares waiters a futile wake-then-block
                self.inner.done.notify_all();
                return Err(self.inner.fail());
            }
            let drained = if st.degraded.is_some() {
                if !allow_degraded {
                    let err = st.read_only_error();
                    st.gate_closed = false;
                    drop(st);
                    // idf-lint: allow(condvar-discipline) -- predicate was updated under 'state' before release; notifying after unlock spares waiters a futile wake-then-block
                    self.inner.done.notify_all();
                    return Err(err);
                }
                st.queue.is_empty() && st.in_flight == 0
            } else {
                st.queue.is_empty() && st.in_flight == 0 && st.flushed_seq + 1 == st.next_seq
            };
            if drained {
                return Ok(());
            }
            st = wait(&self.inner.done, st);
        }
    }

    fn reopen_gate(&self) {
        let mut st = lock(&self.inner.state);
        st.gate_closed = false;
        drop(st);
        // idf-lint: allow(condvar-discipline) -- predicate was updated under 'state' before release; notifying after unlock spares waiters a futile wake-then-block
        self.inner.done.notify_all();
    }

    /// Quiesce the log (no new commits; every logged commit flushed *and*
    /// published), run `write_snapshot`, and — if it succeeded — rotate
    /// to the fresh segment path it returned. The gate reopens on every
    /// path. Fails with [`EngineError::ReadOnly`] on a degraded log; the
    /// explicit re-arm path is [`TableWal::rearm`].
    ///
    /// `write_snapshot` runs entirely inside the quiesced window (so it
    /// can read the manifest, pick the next checkpoint id, and flip the
    /// manifest without racing another checkpointer) and returns the new
    /// segment path, conventionally named by the checkpoint id it just
    /// committed. The old segment is *retained* as the previous
    /// generation — recovery replays only segments at-or-after the
    /// manifest id, and scrub's quarantine-and-fall-back path needs the
    /// covered segment to rebuild from snapshot N-1.
    ///
    /// The rotate-then-publish order is load-bearing: an error out of the
    /// manifest flip does NOT prove the flip won't land (a rename whose
    /// directory fsync failed may still become durable later), so by the
    /// time the flip is attempted, commits must already be going to the
    /// segment the new manifest names. Whichever manifest generation
    /// survives a crash, the chain from it is complete.
    pub fn quiesce_and_rotate<T>(
        &self,
        prepare: impl FnOnce() -> Result<(T, PathBuf)>,
        publish: impl FnOnce(&T) -> Result<()>,
    ) -> Result<T> {
        self.rotate_inner(false, prepare, publish)
    }

    /// Re-arm a degraded (or healthy) log: quiesce — a degraded log is
    /// trivially drained — run `prepare` (a *fresh checkpoint*, which is
    /// what re-synchronizes disk with memory after the WAL lost writes),
    /// rotate to the returned segment, run `publish` (the manifest flip),
    /// then clear the degraded state and restart the writer thread. On
    /// failure the log stays degraded.
    pub fn rearm<T>(
        &self,
        prepare: impl FnOnce() -> Result<(T, PathBuf)>,
        publish: impl FnOnce(&T) -> Result<()>,
    ) -> Result<T> {
        self.rotate_inner(true, prepare, publish)
    }

    fn rotate_inner<T>(
        &self,
        allow_degraded: bool,
        prepare: impl FnOnce() -> Result<(T, PathBuf)>,
        publish: impl FnOnce(&T) -> Result<()>,
    ) -> Result<T> {
        self.close_gate_and_drain(allow_degraded)?;
        // A panic out of either closure (e.g. an injected panic at the
        // checkpoint-write site) must not skip the gate reopen below —
        // committers would block forever. Contain it as an error.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(prepare))
            .unwrap_or_else(|payload| {
                Err(EngineError::durability(format!(
                    "checkpoint write panicked: {}",
                    idf_engine::error::panic_message(payload.as_ref())
                )))
            });
        let result = result.and_then(|(value, new_path)| {
            // Trim the outgoing segment to its durable prefix *before*
            // the new segment exists. A degraded log can carry bytes past
            // the last acknowledged flush (a batch whose write landed but
            // whose fsync failed — its commits were reported failed); as
            // long as the segment is the newest, reopen truncates such a
            // tail as a crash artifact, but once a successor segment is
            // durable this one is history and recovery rightly treats any
            // trailing bytes as corruption. Trimming here keeps the
            // "historical segments are exactly valid" invariant true by
            // construction — and guarantees refused commits never
            // resurrect through chain replay.
            self.trim_to_synced()?;
            // Rotate next. If this fails nothing has flipped: the old
            // segment is still the live one and stays fully recoverable.
            self.swap_segment(&new_path)?;
            // Flip the manifest only now that commits can no longer land
            // in the segment the flip would orphan. A failure here leaves
            // the durable manifest in one of two states — old (the chain
            // still starts at the retained previous segment) or, if the
            // reported-failed rename lands anyway, new (the chain starts
            // at the just-armed segment) — and both recover completely,
            // so the log stays healthy; only this checkpoint is reported
            // failed.
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| publish(&value)))
                .unwrap_or_else(|payload| {
                    Err(EngineError::durability(format!(
                        "manifest publish panicked: {}",
                        idf_engine::error::panic_message(payload.as_ref())
                    )))
                })?;
            self.heal_after_rotate().map(|()| value)
        });
        self.reopen_gate();
        result
    }

    /// Swap the live segment for a fresh one at `new_path`. The old
    /// segment file stays on disk as the previous generation (recovery
    /// replays only the contiguous chain at-or-after the manifest id;
    /// checkpoint GC sweeps generations older than one). Only called with
    /// the gate closed and the queue drained, so no frame can land in
    /// either file mid-swap.
    fn swap_segment(&self, new_path: &Path) -> Result<()> {
        let new_file = open_segment(self.inner.io.as_ref(), new_path)?;
        let mut file = lock(&self.inner.file);
        let mut path = lock(&self.path);
        *file = new_file;
        *path = new_path.to_path_buf();
        // The durable-prefix mark follows the live file — even when the
        // later publish step fails and the rotation as a whole is
        // reported failed, commits continue on the new segment.
        lock(&self.inner.state).synced_len = 0;
        Ok(())
    }

    /// Truncate the live segment to its durable prefix and flush the
    /// truncation. A no-op on a healthy quiesced log (every written byte
    /// is synced); on a degraded one it removes the failed batch's
    /// remnants. Only called with the gate closed and the queue drained.
    fn trim_to_synced(&self) -> Result<()> {
        let synced = lock(&self.inner.state).synced_len;
        let path = self.path();
        let io = self.inner.io.as_ref();
        let len = io.file_len(&path).map_err(|e| {
            EngineError::durability(format!("sizing WAL segment {}: {e}", path.display()))
        })?;
        if len <= synced {
            return Ok(());
        }
        io.set_len(&path, synced).map_err(|e| {
            EngineError::durability(format!(
                "trimming unflushed WAL tail of {}: {e}",
                path.display()
            ))
        })?;
        io.sync_file(&path).map_err(|e| {
            EngineError::durability(format!("flushing trimmed WAL {}: {e}", path.display()))
        })?;
        Ok(())
    }

    /// After a successful rotation: clear the degraded state, restart the
    /// writer if it exited, and re-align the flush horizon (the queue is
    /// empty — anything it held was either flushed or discarded-and-
    /// reported-failed at poisoning time).
    fn heal_after_rotate(&self) -> Result<()> {
        let was_degraded;
        let respawn;
        {
            let mut st = lock(&self.inner.state);
            was_degraded = st.degraded.take().is_some();
            st.flushed_seq = st.next_seq - 1;
            respawn = st.writer_exited;
        }
        if respawn {
            let mut w = lock(&self.writer);
            if let Some(h) = w.take() {
                // idf-lint: allow(blocking-under-lock) -- writer already exited (writer_exited set); join only reaps the thread, and 'writer' must stay held to serialize respawn
                let _ = h.join();
            }
            match spawn_writer(&self.inner) {
                Ok(h) => {
                    *w = Some(h);
                    lock(&self.inner.state).writer_exited = false;
                }
                Err(e) => {
                    lock(&self.inner.state).poison(e.to_string());
                    return Err(e);
                }
            }
        }
        if was_degraded {
            idf_obs::global().wal_resumes.inc();
        }
        Ok(())
    }

    /// Quiesce the log and run `f` inside the quiet window without
    /// rotating — scrub uses this to scan the live segment without racing
    /// appends. Works on a degraded log too (it is trivially drained),
    /// which is exactly when scrubbing matters most.
    pub fn quiesce<T>(&self, f: impl FnOnce() -> Result<T>) -> Result<T> {
        self.close_gate_and_drain(true)?;
        let result =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)).unwrap_or_else(|payload| {
                Err(EngineError::durability(format!(
                    "quiesced task panicked: {}",
                    idf_engine::error::panic_message(payload.as_ref())
                )))
            });
        self.reopen_gate();
        result
    }
}

impl Drop for TableWal {
    fn drop(&mut self) {
        {
            let mut st = lock(&self.inner.state);
            st.shutdown = true;
        }
        // idf-lint: allow(condvar-discipline) -- predicate was updated under 'state' before release; notifying after unlock spares waiters a futile wake-then-block
        self.inner.work.notify_all();
        // idf-lint: allow(condvar-discipline) -- predicate was updated under 'state' before release; notifying after unlock spares waiters a futile wake-then-block
        self.inner.done.notify_all();
        if let Some(h) = lock(&self.writer).take() {
            // idf-lint: allow(blocking-under-lock) -- shutdown: work/done were notified above so the writer exits on its next wake; nothing else takes 'writer' during drop
            let _ = h.join();
        }
    }
}

/// In-flight commit marker (see [`idf_core::sink::CommitGuard`]): held
/// from WAL append until the rows are visible in memory.
pub struct WalTicket {
    inner: Arc<WalInner>,
}

impl std::fmt::Debug for WalTicket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("WalTicket")
    }
}

impl CommitGuard for WalTicket {}

impl Drop for WalTicket {
    fn drop(&mut self) {
        let mut st = lock(&self.inner.state);
        st.in_flight -= 1;
        drop(st);
        // idf-lint: allow(condvar-discipline) -- predicate was updated under 'state' before release; notifying after unlock spares waiters a futile wake-then-block
        self.inner.done.notify_all();
    }
}

/// The group-commit writer: drain everything staged, write it in one
/// pass, fsync once, publish the new flush horizon.
fn writer_loop(inner: &Arc<WalInner>) {
    loop {
        let batch = {
            let mut st = lock(&inner.state);
            loop {
                if !st.queue.is_empty() {
                    break std::mem::take(&mut st.queue);
                }
                if st.shutdown {
                    st.writer_exited = true;
                    drop(st);
                    // idf-lint: allow(condvar-discipline) -- predicate was updated under 'state' before release; notifying after unlock spares waiters a futile wake-then-block
                    inner.done.notify_all();
                    return;
                }
                st = wait(&inner.work, st);
            }
        };
        let max_seq = batch.last().map(|(s, _)| *s).unwrap_or(0);
        let record_count = batch.len() as u64;
        let byte_count: u64 = batch.iter().map(|(_, f)| f.len() as u64).sum();
        // Panics (e.g. an injected panic at the fsync site) must not kill
        // the writer — committers would block forever on a flush horizon
        // that never advances. They degrade the WAL like an I/O error.
        let flushed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            crate::failpoints::check(crate::failpoints::WAL_FSYNC)?;
            let mut file = lock(&inner.file);
            for (_, framed) in &batch {
                // idf-lint: allow(blocking-under-lock) -- group-commit drain: one write+fsync per batch under 'file' is the design; committers park on 'state', never on 'file'
                file.write_all(framed)
                    .map_err(|e| EngineError::durability(format!("WAL write: {e}")))?;
            }
            // idf-lint: allow(blocking-under-lock) -- group-commit drain: the single fsync under 'file' is the batch's durability point; committers park on 'state'
            file.sync_data()
                .map_err(|e| EngineError::durability(format!("WAL fsync: {e}")))
        }))
        .unwrap_or_else(|payload| {
            Err(EngineError::durability(format!(
                "WAL writer panicked: {}",
                idf_engine::error::panic_message(payload.as_ref())
            )))
        });
        let mut st = lock(&inner.state);
        match flushed {
            Ok(()) => {
                st.flushed_seq = max_seq;
                st.synced_len += byte_count;
                let m = idf_obs::global();
                m.wal_records.add(record_count);
                m.wal_bytes.add(byte_count);
                m.wal_fsyncs.inc();
                m.wal_group_commit_batch.record(record_count);
            }
            Err(e) => {
                // Degrade and stop. Frames still queued behind the failed
                // batch belong to commits that observe the degraded state
                // and report failure — writing them on a later iteration
                // (e.g. after a transient fsync error clears) would make
                // recovery resurrect appends the caller was told did not
                // happen. `begin_commit` refuses new work once degraded,
                // so exiting leaves nothing unserved.
                st.poison(e.to_string());
                st.queue.clear();
                st.writer_exited = true;
                drop(st);
                // idf-lint: allow(condvar-discipline) -- predicate was updated under 'state' before release; notifying after unlock spares waiters a futile wake-then-block
                inner.done.notify_all();
                return;
            }
        }
        drop(st);
        // idf-lint: allow(condvar-discipline) -- predicate was updated under 'state' before release; notifying after unlock spares waiters a futile wake-then-block
        inner.done.notify_all();
    }
}

/// The [`AppendSink`] a durable session installs on its tables: commits
/// flow into the table's WAL at the session's durability level.
pub struct WalSink {
    wal: Arc<TableWal>,
    /// WAL records this sink has logged (recovery-replayed records are
    /// not re-logged because the sink is installed after replay).
    records: AtomicU64,
}

impl WalSink {
    /// A sink logging into `wal`.
    pub fn new(wal: Arc<TableWal>) -> Self {
        WalSink {
            wal,
            records: AtomicU64::new(0),
        }
    }

    /// Records logged through this sink.
    pub fn records_logged(&self) -> u64 {
        // idf-lint: allow(atomics-audit) -- monotonic stats counter; nothing else is published through it
        self.records.load(Ordering::Relaxed)
    }
}

impl AppendSink for WalSink {
    fn begin_commit(&self, rows: &[&[u8]]) -> Result<Box<dyn CommitGuard>> {
        let ticket = self.wal.begin_commit(rows)?;
        // idf-lint: allow(atomics-audit) -- monotonic stats counter; nothing else is published through it
        self.records.fetch_add(1, Ordering::Relaxed);
        Ok(Box::new(ticket))
    }

    fn begin_commit_kinds(
        &self,
        rows: &[&[u8]],
        kinds: &[RowKind],
    ) -> Result<Box<dyn CommitGuard>> {
        let ticket = self.wal.begin_commit_kinds(rows, kinds)?;
        // idf-lint: allow(atomics-audit) -- monotonic stats counter; nothing else is published through it
        self.records.fetch_add(1, Ordering::Relaxed);
        Ok(Box::new(ticket))
    }

    fn status(&self) -> SinkStatus {
        match self.wal.degraded_reason() {
            Some(cause) => SinkStatus::ReadOnly(cause),
            None => SinkStatus::Writable,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::OsIo;
    use crate::TempDir;

    fn osio() -> Arc<dyn StorageIo> {
        Arc::new(OsIo)
    }

    fn open(path: &Path, level: DurabilityLevel) -> (TableWal, Vec<WalRecord>) {
        TableWal::open(osio(), path, level).unwrap()
    }

    fn payloads(n: usize) -> Vec<Vec<u8>> {
        (0..n).map(|i| format!("row-{i}").into_bytes()).collect()
    }

    fn commit(wal: &TableWal, rows: &[Vec<u8>]) {
        let refs: Vec<&[u8]> = rows.iter().map(Vec::as_slice).collect();
        let _ticket = wal.begin_commit(&refs).unwrap();
    }

    #[test]
    fn sync_commits_survive_reopen() {
        let dir = TempDir::new("wal-sync");
        let path = dir.path().join("wal.log");
        {
            let (wal, records) = open(&path, DurabilityLevel::Sync);
            assert!(records.is_empty());
            commit(&wal, &payloads(3));
            commit(&wal, &payloads(1));
        }
        let (_, records) = open(&path, DurabilityLevel::Sync);
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].rows, payloads(3));
        assert_eq!(records[1].rows, payloads(1));
    }

    #[test]
    fn async_commits_flush_on_drop() {
        let dir = TempDir::new("wal-async");
        let path = dir.path().join("wal.log");
        {
            let (wal, _) = open(&path, DurabilityLevel::Async);
            for _ in 0..50 {
                commit(&wal, &payloads(2));
            }
            // Drop drains the queue before joining the writer.
        }
        let (_, records) = open(&path, DurabilityLevel::Async);
        assert_eq!(records.len(), 50);
    }

    #[test]
    fn torn_tail_is_truncated_on_open() {
        let dir = TempDir::new("wal-torn");
        let path = dir.path().join("wal.log");
        {
            let (wal, _) = open(&path, DurabilityLevel::Sync);
            commit(&wal, &payloads(2));
            commit(&wal, &payloads(2));
        }
        // Simulate a crash mid-write: append garbage, then chop a valid
        // frame's tail off as well.
        let mut bytes = std::fs::read(&path).unwrap();
        let full = bytes.len();
        bytes.extend_from_slice(&[0xAB; 7]);
        std::fs::write(&path, &bytes).unwrap();
        let (wal, records) = open(&path, DurabilityLevel::Sync);
        assert_eq!(records.len(), 2, "garbage tail dropped");
        assert_eq!(std::fs::metadata(&path).unwrap().len(), full as u64);
        drop(wal);
        // Now tear the second record itself.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.truncate(full - 3);
        std::fs::write(&path, &bytes).unwrap();
        let (_, records) = open(&path, DurabilityLevel::Sync);
        assert_eq!(records.len(), 1, "torn second record dropped");
    }

    #[test]
    fn dml_records_round_trip_kinds() {
        let dir = TempDir::new("wal-dml");
        let path = dir.path().join("wal.log");
        {
            let (wal, _) = open(&path, DurabilityLevel::Sync);
            commit(&wal, &payloads(2));
            let rows = [b"tomb".as_slice(), b"surv".as_slice(), b"new".as_slice()];
            let kinds = [RowKind::Tombstone, RowKind::Data, RowKind::Data];
            let _t = wal.begin_commit_kinds(&rows, &kinds).unwrap();
            // An all-data statement goes back to the legacy layout.
            let _t = wal
                .begin_commit_kinds(&[b"plain".as_slice()], &[RowKind::Data])
                .unwrap();
        }
        let (_, records) = open(&path, DurabilityLevel::Sync);
        assert_eq!(records.len(), 3);
        assert!(records[0].kinds.is_empty());
        assert_eq!(
            records[1].rows,
            vec![b"tomb".to_vec(), b"surv".to_vec(), b"new".to_vec()]
        );
        assert_eq!(records[1].kinds, vec![1, 0, 0]);
        assert!(
            records[2].kinds.is_empty(),
            "all-data commit must use the legacy record layout"
        );
    }

    #[test]
    fn dml_record_with_unknown_kind_is_corrupt() {
        // Hand-build a DML body carrying kind byte 7.
        let mut body = Vec::new();
        put_u32(&mut body, DML_SENTINEL);
        put_u32(&mut body, 1);
        body.push(7);
        put_bytes(&mut body, b"row");
        let err = decode_record(&body).unwrap_err();
        assert!(err.to_string().contains("unknown row kind"), "{err}");
    }

    #[test]
    fn group_commit_coalesces_concurrent_writers() {
        let dir = TempDir::new("wal-group");
        let path = dir.path().join("wal.log");
        let (wal, _) = open(&path, DurabilityLevel::Sync);
        let wal = Arc::new(wal);
        let fsyncs_before = idf_obs::global().wal_fsyncs.get();
        std::thread::scope(|s| {
            for t in 0..8 {
                let wal = Arc::clone(&wal);
                s.spawn(move || {
                    for i in 0..25 {
                        let row = format!("t{t}-i{i}").into_bytes();
                        let _ticket = wal.begin_commit(&[row.as_slice()]).unwrap();
                    }
                });
            }
        });
        let fsyncs = idf_obs::global().wal_fsyncs.get() - fsyncs_before;
        // Every commit was fsync'd before acknowledging, but batching
        // keeps fsyncs at or below the commit count (usually far below;
        // equality only if the writer never saw two queued frames).
        if idf_obs::enabled() {
            assert!(fsyncs <= 200, "fsyncs {fsyncs} exceed commits");
            assert!(fsyncs >= 1);
        }
        drop(wal);
        let (_, records) = open(&path, DurabilityLevel::Sync);
        assert_eq!(records.len(), 200);
    }

    #[test]
    fn quiesce_rotates_only_on_success_and_retains_previous_segment() {
        let dir = TempDir::new("wal-quiesce");
        let path = dir.path().join("wal-1.log");
        let next = dir.path().join("wal-2.log");
        let (wal, _) = open(&path, DurabilityLevel::Sync);
        commit(&wal, &payloads(2));
        // Failed snapshot write: old segment untouched, no new segment.
        let err = wal
            .quiesce_and_rotate::<()>(|| Err(EngineError::durability("boom")), |_| Ok(()))
            .unwrap_err();
        assert!(err.to_string().contains("boom"));
        assert!(std::fs::metadata(&path).unwrap().len() > 0);
        assert!(!next.exists());
        assert_eq!(wal.path(), path);
        // A failed publish happens *after* the rotation: the log moves to
        // the fresh segment (safe under either surviving manifest) but
        // the checkpoint is reported failed and the log stays healthy.
        let rolled = dir.path().join("wal-roll.log");
        let err = wal
            .quiesce_and_rotate(
                || Ok((0u64, rolled.clone())),
                |_| Err(EngineError::durability("flip failed")),
            )
            .unwrap_err();
        assert!(err.to_string().contains("flip failed"));
        assert_eq!(wal.path(), rolled);
        assert!(
            wal.degraded_reason().is_none(),
            "publish failure must not poison"
        );
        commit(&wal, &payloads(1));
        // Successful snapshot write: rotated to the fresh segment; the
        // old one is *retained* as the previous generation (checkpoint GC
        // sweeps older ones) and commits land in the new file.
        let id = wal
            .quiesce_and_rotate(|| Ok((2u64, next.clone())), |_| Ok(()))
            .unwrap();
        assert_eq!(id, 2);
        assert_eq!(wal.path(), next);
        assert!(
            path.exists(),
            "previous generation retained for scrub fallback"
        );
        assert_eq!(std::fs::metadata(&next).unwrap().len(), 0);
        commit(&wal, &payloads(1));
        drop(wal);
        let (_, records) = open(&next, DurabilityLevel::Sync);
        assert_eq!(records.len(), 1, "only the post-checkpoint commit");
    }

    #[test]
    fn oversized_commit_is_rejected_before_acknowledgement() {
        let dir = TempDir::new("wal-oversize");
        let path = dir.path().join("wal-1.log");
        let (wal, _) = open(&path, DurabilityLevel::Sync);
        // One row whose record body (4-byte count + 4-byte len + row)
        // lands just past the cap.
        let big = vec![0xA5u8; MAX_WAL_FRAME - 7];
        let err = wal.begin_commit(&[big.as_slice()]).unwrap_err();
        assert!(err.to_string().contains("frame cap"), "{err}");
        // A client error, not an I/O failure: nothing was staged and the
        // WAL keeps accepting normal commits.
        commit(&wal, &payloads(2));
        drop(wal);
        let (_, records) = open(&path, DurabilityLevel::Sync);
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].rows, payloads(2));
    }

    #[cfg(feature = "failpoints")]
    #[test]
    fn injected_fsync_failure_degrades_to_typed_read_only() {
        let dir = TempDir::new("wal-fsync-fault");
        let path = dir.path().join("wal.log");
        let (wal, _) = open(&path, DurabilityLevel::Sync);
        commit(&wal, &payloads(1));
        {
            let _guard = idf_fail::FailGuard::new(
                crate::failpoints::WAL_FSYNC,
                idf_fail::FailConfig::error("disk gone"),
            );
            let row = b"doomed".as_slice();
            let err = wal.begin_commit(&[row]).unwrap_err();
            assert!(err.to_string().contains("injected"), "{err}");
            assert!(
                matches!(err, EngineError::ReadOnly(_)),
                "degraded append must be typed ReadOnly, got {err:?}"
            );
            // Sticky: even without the failpoint the WAL stays degraded.
        }
        let row = b"still-doomed".as_slice();
        let err = wal.begin_commit(&[row]).unwrap_err();
        assert!(matches!(err, EngineError::ReadOnly(_)), "{err:?}");
        assert!(wal.degraded_reason().is_some());
        drop(wal);
        // Reopen recovers the pre-fault prefix.
        let (_, records) = open(&path, DurabilityLevel::Sync);
        assert_eq!(records.len(), 1);
    }

    /// A *transient* flush failure (here: a failpoint armed for exactly
    /// one hit) must not let frames queued behind the failing batch reach
    /// disk on a later writer iteration — their commits observed the
    /// degraded state and were reported failed, so flushing them would
    /// resurrect refused appends on recovery.
    #[cfg(feature = "failpoints")]
    #[test]
    fn transient_fsync_failure_never_flushes_queued_commits() {
        let dir = TempDir::new("wal-transient");
        let path = dir.path().join("wal.log");
        let (wal, _) = open(&path, DurabilityLevel::Async);
        let _guard = idf_fail::FailGuard::new(
            crate::failpoints::WAL_FSYNC,
            idf_fail::FailConfig::error("transient disk error").times(1),
        );
        // Async commits are acknowledged once staged; pile several up so
        // some are queued behind the batch that hits the (single-shot)
        // fault.
        for i in 0..16 {
            let row = format!("async-{i}").into_bytes();
            if wal.begin_commit(&[row.as_slice()]).is_err() {
                break; // degradation already surfaced
            }
        }
        // Wait for the writer to hit the fault and degrade the log.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        loop {
            let row = b"probe".as_slice();
            if wal.begin_commit(&[row]).is_err() {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "WAL never became degraded"
            );
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        drop(wal);
        // The fault fired exactly once, so every later iteration *could*
        // have written — the fix is that there is no later iteration.
        let (_, records) = open(&path, DurabilityLevel::Async);
        assert!(
            records.is_empty(),
            "{} refused commits were flushed after the transient fault",
            records.len()
        );
    }

    /// Regression (shutdown ordering): a `Sync` committer whose frame is
    /// still queued when the log is dropped must resolve deterministically
    /// — the drop drain flushes the frame, so the committer is
    /// acknowledged and the record is on disk. Before the fix the waiter
    /// bailed as soon as it saw `shutdown`, reporting failure for a
    /// commit the drain then made durable.
    #[cfg(feature = "failpoints")]
    #[test]
    fn drop_during_pending_sync_commit_resolves_deterministically() {
        let dir = TempDir::new("wal-drop-pending");
        let path = dir.path().join("wal.log");
        for round in 0..8 {
            let p = dir.path().join(format!("wal-{round}.log"));
            let (wal, _) = TableWal::open(osio(), &p, DurabilityLevel::Sync).unwrap();
            let wal = Arc::new(wal);
            // Slow the flush so the drop lands while the commit is
            // pending.
            let guard = idf_fail::FailGuard::new(
                crate::failpoints::WAL_FSYNC,
                idf_fail::FailConfig::delay(15),
            );
            let committer = {
                let wal = Arc::clone(&wal);
                std::thread::spawn(move || {
                    let row = b"pending".as_slice();
                    wal.begin_commit(&[row]).map(|_t| ())
                })
            };
            std::thread::sleep(std::time::Duration::from_millis(3));
            drop(wal); // shutdown + drain + join
            let outcome = committer.join().unwrap();
            drop(guard);
            let (_, records) = TableWal::open(osio(), &p, DurabilityLevel::Sync).unwrap();
            match outcome {
                Ok(()) => assert_eq!(
                    records.len(),
                    1,
                    "round {round}: acknowledged commit missing from disk"
                ),
                Err(e) => {
                    // Only acceptable if the record truly is absent.
                    assert_eq!(
                        records.len(),
                        0,
                        "round {round}: commit reported failed ({e}) but is durable"
                    );
                }
            }
        }
        let _ = path;
    }

    #[cfg(feature = "failpoints")]
    #[test]
    fn rearm_recovers_a_degraded_log() {
        let dir = TempDir::new("wal-rearm");
        let path = dir.path().join("wal-1.log");
        let next = dir.path().join("wal-2.log");
        let (wal, _) = open(&path, DurabilityLevel::Sync);
        commit(&wal, &payloads(1));
        {
            let _guard = idf_fail::FailGuard::new(
                crate::failpoints::WAL_FSYNC,
                idf_fail::FailConfig::error("disk gone").times(1),
            );
            assert!(wal.begin_commit(&[b"doomed".as_slice()]).is_err());
        }
        assert!(wal.degraded_reason().is_some());
        // Checkpoint refuses: the log is read-only.
        let err = wal
            .quiesce_and_rotate::<()>(|| unreachable!("must not run"), |_| Ok(()))
            .unwrap_err();
        assert!(matches!(err, EngineError::ReadOnly(_)), "{err:?}");
        // A rearm whose publish phase fails leaves the log degraded.
        let stillborn = dir.path().join("wal-stillborn.log");
        let err = wal
            .rearm(
                || Ok(((), stillborn.clone())),
                |_| Err(EngineError::durability("flip failed")),
            )
            .unwrap_err();
        assert!(err.to_string().contains("flip failed"));
        assert!(
            wal.degraded_reason().is_some(),
            "failed rearm must stay degraded"
        );
        // Re-arm rotates to a fresh segment and accepts commits again.
        wal.rearm(|| Ok(((), next.clone())), |_| Ok(())).unwrap();
        assert!(wal.degraded_reason().is_none());
        commit(&wal, &payloads(2));
        drop(wal);
        let (_, records) = open(&next, DurabilityLevel::Sync);
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].rows, payloads(2));
    }
}
