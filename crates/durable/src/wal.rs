//! Per-table write-ahead log with a group-commit writer thread.
//!
//! Commit path: the appender frames its encoded rows (one checksummed,
//! length-prefixed record per committed chunk), stages the frame on the
//! writer's queue, and — at `DurabilityLevel::Sync` — blocks until the
//! writer reports the frame durable. The writer drains whatever has
//! accumulated, writes it in one pass, and issues **one** `fsync` for the
//! whole batch, so N concurrent committers pay one disk flush between
//! them (the classic group commit).
//!
//! Torn tails: a crash mid-write leaves a trailing partial frame; on open
//! the segment is scanned frame by frame and truncated at the first
//! length or CRC violation, so exactly the durable prefix survives.
//!
//! Checkpoint coordination: [`TableWal::quiesce_and_rotate`] closes the
//! commit gate, waits until every logged commit is both flushed and
//! published to memory (the [`WalTicket`] dropped), runs the caller's
//! snapshot write, and then **rotates** to the new segment path the
//! caller returned (deleting the old segment best-effort). Segments are
//! named by checkpoint id, so recovery opens only the segment paired
//! with the manifest's snapshot — a crash anywhere between the manifest
//! flip and the old segment's deletion leaves a stale segment that
//! recovery never reads, instead of a covered prefix it would replay as
//! duplicates.

use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};

use idf_core::sink::{AppendSink, CommitGuard};
use idf_engine::config::DurabilityLevel;
use idf_engine::error::{EngineError, Result};

use crate::codec::{
    check_frame_len, frame, put_bytes, put_u32, read_frame, Cursor, FrameRead, MAX_WAL_FRAME,
};

/// One decoded WAL record: the encoded row payloads of one committed
/// append, in publish order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord {
    /// Encoded row payloads (see `IndexedPartition::encode_row`).
    pub rows: Vec<Vec<u8>>,
}

/// Scan a segment file: `(valid records, valid byte length)`. Bytes past
/// the returned length are a torn tail. A missing file reads as empty.
pub fn read_records(path: &Path) -> Result<(Vec<WalRecord>, u64)> {
    let buf = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok((Vec::new(), 0)),
        Err(e) => {
            return Err(EngineError::durability(format!(
                "reading WAL segment {}: {e}",
                path.display()
            )))
        }
    };
    let mut records = Vec::new();
    let mut offset = 0usize;
    // Stops at the first torn frame — expected after a crash; the caller
    // truncates the file to `offset`.
    while let FrameRead::Ok { body, next } = read_frame(&buf, offset, MAX_WAL_FRAME) {
        records.push(decode_record(body)?);
        offset = next;
    }
    Ok((records, offset as u64))
}

fn decode_record(body: &[u8]) -> Result<WalRecord> {
    let mut c = Cursor::new(body, "WAL record");
    let n = c.u32()? as usize;
    let mut rows = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        rows.push(c.bytes()?.to_vec());
    }
    c.expect_end()?;
    Ok(WalRecord { rows })
}

struct WalState {
    /// Frames staged for the writer, in sequence order.
    queue: Vec<(u64, Vec<u8>)>,
    /// Next commit sequence number (1-based; 0 means "nothing").
    next_seq: u64,
    /// Highest sequence number known durable.
    flushed_seq: u64,
    /// Commits logged (or staged) but not yet published to memory.
    in_flight: u64,
    /// Closed while a checkpoint quiesces; new commits wait.
    gate_closed: bool,
    /// Set by drop; wakes everything up to fail/exit.
    shutdown: bool,
    /// Sticky first I/O (or injected) failure; the WAL refuses further
    /// work until reopened.
    io_error: Option<EngineError>,
}

struct WalInner {
    level: DurabilityLevel,
    file: Mutex<File>,
    state: Mutex<WalState>,
    /// Signals the writer thread that the queue is non-empty (or
    /// shutdown).
    work: Condvar,
    /// Signals committers/checkpointers: flush progress, gate reopen,
    /// ticket drops, errors.
    done: Condvar,
}

fn lock<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

fn wait<'a, T>(cv: &Condvar, g: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    cv.wait(g).unwrap_or_else(PoisonError::into_inner)
}

impl WalInner {
    fn fail(&self) -> EngineError {
        EngineError::durability("WAL is shut down")
    }
}

/// Open (creating if absent) the segment file at `path` and fsync its
/// parent directory so the entry survives a crash — a freshly created
/// segment whose directory entry is not durable could vanish along with
/// every record fsync'd into it.
fn open_segment(path: &Path) -> Result<File> {
    let file = OpenOptions::new()
        .read(true)
        .append(true)
        .create(true)
        .open(path)
        .map_err(|e| {
            EngineError::durability(format!("opening WAL segment {}: {e}", path.display()))
        })?;
    if let Some(dir) = path.parent() {
        File::open(dir).and_then(|d| d.sync_all()).map_err(|e| {
            EngineError::durability(format!("syncing WAL directory {}: {e}", dir.display()))
        })?;
    }
    Ok(file)
}

/// The per-table write-ahead log. Owns the group-commit writer thread;
/// dropping the log drains the queue and joins the writer.
pub struct TableWal {
    inner: Arc<WalInner>,
    writer: Option<std::thread::JoinHandle<()>>,
    /// Current segment path; swapped under the lock by rotation.
    path: Mutex<PathBuf>,
}

impl TableWal {
    /// Open (creating if absent) the segment at `path`: scan it, truncate
    /// any torn tail, start the writer thread, and return the log plus
    /// the records that survived — the caller replays them.
    pub fn open(path: &Path, level: DurabilityLevel) -> Result<(Self, Vec<WalRecord>)> {
        let (records, valid_len) = read_records(path)?;
        let file = open_segment(path)?;
        file.set_len(valid_len).map_err(|e| {
            EngineError::durability(format!(
                "truncating torn WAL tail of {}: {e}",
                path.display()
            ))
        })?;
        let inner = Arc::new(WalInner {
            level,
            file: Mutex::new(file),
            state: Mutex::new(WalState {
                queue: Vec::new(),
                next_seq: 1,
                flushed_seq: 0,
                in_flight: 0,
                gate_closed: false,
                shutdown: false,
                io_error: None,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
        });
        let writer = {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("idf-wal-writer".into())
                .spawn(move || writer_loop(&inner))
                .map_err(|e| EngineError::durability(format!("spawning WAL writer: {e}")))?
        };
        Ok((
            TableWal {
                inner,
                writer: Some(writer),
                path: Mutex::new(path.to_path_buf()),
            },
            records,
        ))
    }

    /// The current segment path.
    pub fn path(&self) -> PathBuf {
        lock(&self.path).clone()
    }

    /// Log one committed append. Blocks per the configured durability
    /// level (see module docs); the returned ticket must be held until
    /// the rows are published to memory.
    ///
    /// Commits whose encoded record exceeds [`MAX_WAL_FRAME`] are
    /// rejected here, before anything is staged or acknowledged: the
    /// read side treats an over-cap length prefix as a torn tail, so
    /// fsync'ing such a frame would silently drop it (and every record
    /// after it) on reopen. The error is the caller's — the WAL itself
    /// is not poisoned.
    pub fn begin_commit(&self, rows: &[&[u8]]) -> Result<WalTicket> {
        crate::failpoints::check(crate::failpoints::WAL_APPEND)?;
        let body_len = 4 + rows.iter().map(|r| r.len() + 4).sum::<usize>();
        check_frame_len(body_len, MAX_WAL_FRAME, "WAL record")?;
        let mut body = Vec::with_capacity(body_len);
        put_u32(&mut body, rows.len() as u32);
        for r in rows {
            put_bytes(&mut body, r);
        }
        let framed = frame(&body)?;

        let mut st = lock(&self.inner.state);
        while st.gate_closed && !st.shutdown && st.io_error.is_none() {
            st = wait(&self.inner.done, st);
        }
        if let Some(e) = &st.io_error {
            return Err(e.clone());
        }
        if st.shutdown {
            return Err(self.inner.fail());
        }
        let seq = st.next_seq;
        st.next_seq += 1;
        st.queue.push((seq, framed));
        st.in_flight += 1;
        self.inner.work.notify_one();
        if self.inner.level == DurabilityLevel::Sync {
            while st.flushed_seq < seq && st.io_error.is_none() && !st.shutdown {
                st = wait(&self.inner.done, st);
            }
            if st.flushed_seq < seq {
                // Flush failed or the WAL went away before our record hit
                // disk: the commit is not durable, so fail it. The caller
                // will not publish, keeping memory and log agreed.
                st.in_flight -= 1;
                let err = st.io_error.clone().unwrap_or_else(|| self.inner.fail());
                drop(st);
                self.inner.done.notify_all();
                return Err(err);
            }
        }
        drop(st);
        Ok(WalTicket {
            inner: Arc::clone(&self.inner),
        })
    }

    /// Quiesce the log (no new commits; every logged commit flushed *and*
    /// published), run `write_snapshot`, and — if it succeeded — rotate
    /// to the fresh segment path it returned, deleting the old segment
    /// best-effort. The gate reopens on every path.
    ///
    /// `write_snapshot` runs entirely inside the quiesced window (so it
    /// can read the manifest, pick the next checkpoint id, and flip the
    /// manifest without racing another checkpointer) and returns the new
    /// segment path, conventionally named by the checkpoint id it just
    /// committed. Rotation rather than in-place truncation is what makes
    /// the checkpoint crash-atomic: once the manifest points at snapshot
    /// N, recovery reads only segment N — the covered records sit in the
    /// old segment, which recovery never opens, whether or not the
    /// deletion happened. If the new segment cannot be created after the
    /// manifest has flipped, the WAL is poisoned (appending to the old,
    /// covered segment would make commits invisible to recovery).
    pub fn quiesce_and_rotate<T>(
        &self,
        write_snapshot: impl FnOnce() -> Result<(T, PathBuf)>,
    ) -> Result<T> {
        {
            let mut st = lock(&self.inner.state);
            // One checkpointer at a time; a second caller queues here.
            while st.gate_closed && !st.shutdown {
                st = wait(&self.inner.done, st);
            }
            if st.shutdown {
                return Err(self.inner.fail());
            }
            st.gate_closed = true;
            loop {
                if let Some(e) = &st.io_error {
                    let err = e.clone();
                    st.gate_closed = false;
                    drop(st);
                    self.inner.done.notify_all();
                    return Err(err);
                }
                if st.shutdown {
                    st.gate_closed = false;
                    drop(st);
                    self.inner.done.notify_all();
                    return Err(self.inner.fail());
                }
                let drained =
                    st.queue.is_empty() && st.in_flight == 0 && st.flushed_seq + 1 == st.next_seq;
                if drained {
                    break;
                }
                st = wait(&self.inner.done, st);
            }
        }
        // A panic out of the snapshot writer (e.g. an injected panic at
        // the checkpoint-write site) must not skip the gate reopen below
        // — committers would block forever. Contain it as an error.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(write_snapshot))
            .unwrap_or_else(|payload| {
                Err(EngineError::durability(format!(
                    "checkpoint write panicked: {}",
                    idf_engine::error::panic_message(payload.as_ref())
                )))
            });
        let result = result.and_then(|(value, new_path)| match self.rotate_to(&new_path) {
            Ok(()) => Ok(value),
            Err(e) => {
                // The manifest has already flipped inside `write_snapshot`:
                // recovery will read the new segment, so the old one must
                // never accept another commit. Poison the WAL.
                let mut st = lock(&self.inner.state);
                st.io_error.get_or_insert(e.clone());
                drop(st);
                Err(e)
            }
        });
        let mut st = lock(&self.inner.state);
        st.gate_closed = false;
        drop(st);
        self.inner.done.notify_all();
        result
    }

    /// Swap the live segment for a fresh one at `new_path` and delete
    /// the old segment best-effort (a leftover is stale litter recovery
    /// ignores; the next checkpoint's GC sweeps it). Only called with the
    /// gate closed and the queue drained, so no frame can land in either
    /// file mid-swap.
    fn rotate_to(&self, new_path: &Path) -> Result<()> {
        let new_file = open_segment(new_path)?;
        let old_path = {
            let mut file = lock(&self.inner.file);
            let mut path = lock(&self.path);
            *file = new_file;
            std::mem::replace(&mut *path, new_path.to_path_buf())
        };
        if old_path != new_path {
            let _ = std::fs::remove_file(&old_path);
        }
        Ok(())
    }
}

impl Drop for TableWal {
    fn drop(&mut self) {
        {
            let mut st = lock(&self.inner.state);
            st.shutdown = true;
        }
        self.inner.work.notify_all();
        self.inner.done.notify_all();
        if let Some(h) = self.writer.take() {
            let _ = h.join();
        }
    }
}

/// In-flight commit marker (see [`idf_core::sink::CommitGuard`]): held
/// from WAL append until the rows are visible in memory.
pub struct WalTicket {
    inner: Arc<WalInner>,
}

impl std::fmt::Debug for WalTicket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("WalTicket")
    }
}

impl CommitGuard for WalTicket {}

impl Drop for WalTicket {
    fn drop(&mut self) {
        let mut st = lock(&self.inner.state);
        st.in_flight -= 1;
        drop(st);
        self.inner.done.notify_all();
    }
}

/// The group-commit writer: drain everything staged, write it in one
/// pass, fsync once, publish the new flush horizon.
fn writer_loop(inner: &Arc<WalInner>) {
    loop {
        let batch = {
            let mut st = lock(&inner.state);
            loop {
                if !st.queue.is_empty() {
                    break std::mem::take(&mut st.queue);
                }
                if st.shutdown {
                    return;
                }
                st = wait(&inner.work, st);
            }
        };
        let max_seq = batch.last().map(|(s, _)| *s).unwrap_or(0);
        let record_count = batch.len() as u64;
        let byte_count: u64 = batch.iter().map(|(_, f)| f.len() as u64).sum();
        // Panics (e.g. an injected panic at the fsync site) must not kill
        // the writer — committers would block forever on a flush horizon
        // that never advances. They poison the WAL like an I/O error.
        let flushed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            crate::failpoints::check(crate::failpoints::WAL_FSYNC)?;
            let mut file = lock(&inner.file);
            for (_, framed) in &batch {
                file.write_all(framed)
                    .map_err(|e| EngineError::durability(format!("WAL write: {e}")))?;
            }
            file.sync_data()
                .map_err(|e| EngineError::durability(format!("WAL fsync: {e}")))
        }))
        .unwrap_or_else(|payload| {
            Err(EngineError::durability(format!(
                "WAL writer panicked: {}",
                idf_engine::error::panic_message(payload.as_ref())
            )))
        });
        let mut st = lock(&inner.state);
        match flushed {
            Ok(()) => {
                st.flushed_seq = max_seq;
                let m = idf_obs::global();
                m.wal_records.add(record_count);
                m.wal_bytes.add(byte_count);
                m.wal_fsyncs.inc();
                m.wal_group_commit_batch.record(record_count);
            }
            Err(e) => {
                // Poison and stop. Frames still queued behind the failed
                // batch belong to commits that observe the sticky error
                // and report failure — writing them on a later iteration
                // (e.g. after a transient fsync error clears) would make
                // recovery resurrect appends the caller was told did not
                // happen. `begin_commit` refuses new work once poisoned,
                // so exiting leaves nothing unserved.
                st.io_error.get_or_insert(e);
                st.queue.clear();
                drop(st);
                inner.done.notify_all();
                return;
            }
        }
        drop(st);
        inner.done.notify_all();
    }
}

/// The [`AppendSink`] a durable session installs on its tables: commits
/// flow into the table's WAL at the session's durability level.
pub struct WalSink {
    wal: Arc<TableWal>,
    /// WAL records this sink has logged (recovery-replayed records are
    /// not re-logged because the sink is installed after replay).
    records: AtomicU64,
}

impl WalSink {
    /// A sink logging into `wal`.
    pub fn new(wal: Arc<TableWal>) -> Self {
        WalSink {
            wal,
            records: AtomicU64::new(0),
        }
    }

    /// Records logged through this sink.
    pub fn records_logged(&self) -> u64 {
        self.records.load(Ordering::Relaxed)
    }
}

impl AppendSink for WalSink {
    fn begin_commit(&self, rows: &[&[u8]]) -> Result<Box<dyn CommitGuard>> {
        let ticket = self.wal.begin_commit(rows)?;
        self.records.fetch_add(1, Ordering::Relaxed);
        Ok(Box::new(ticket))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TempDir;

    fn payloads(n: usize) -> Vec<Vec<u8>> {
        (0..n).map(|i| format!("row-{i}").into_bytes()).collect()
    }

    fn commit(wal: &TableWal, rows: &[Vec<u8>]) {
        let refs: Vec<&[u8]> = rows.iter().map(Vec::as_slice).collect();
        let _ticket = wal.begin_commit(&refs).unwrap();
    }

    #[test]
    fn sync_commits_survive_reopen() {
        let dir = TempDir::new("wal-sync");
        let path = dir.path().join("wal.log");
        {
            let (wal, records) = TableWal::open(&path, DurabilityLevel::Sync).unwrap();
            assert!(records.is_empty());
            commit(&wal, &payloads(3));
            commit(&wal, &payloads(1));
        }
        let (_, records) = TableWal::open(&path, DurabilityLevel::Sync).unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].rows, payloads(3));
        assert_eq!(records[1].rows, payloads(1));
    }

    #[test]
    fn async_commits_flush_on_drop() {
        let dir = TempDir::new("wal-async");
        let path = dir.path().join("wal.log");
        {
            let (wal, _) = TableWal::open(&path, DurabilityLevel::Async).unwrap();
            for _ in 0..50 {
                commit(&wal, &payloads(2));
            }
            // Drop drains the queue before joining the writer.
        }
        let (_, records) = TableWal::open(&path, DurabilityLevel::Async).unwrap();
        assert_eq!(records.len(), 50);
    }

    #[test]
    fn torn_tail_is_truncated_on_open() {
        let dir = TempDir::new("wal-torn");
        let path = dir.path().join("wal.log");
        {
            let (wal, _) = TableWal::open(&path, DurabilityLevel::Sync).unwrap();
            commit(&wal, &payloads(2));
            commit(&wal, &payloads(2));
        }
        // Simulate a crash mid-write: append garbage, then chop a valid
        // frame's tail off as well.
        let mut bytes = std::fs::read(&path).unwrap();
        let full = bytes.len();
        bytes.extend_from_slice(&[0xAB; 7]);
        std::fs::write(&path, &bytes).unwrap();
        let (wal, records) = TableWal::open(&path, DurabilityLevel::Sync).unwrap();
        assert_eq!(records.len(), 2, "garbage tail dropped");
        assert_eq!(std::fs::metadata(&path).unwrap().len(), full as u64);
        drop(wal);
        // Now tear the second record itself.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.truncate(full - 3);
        std::fs::write(&path, &bytes).unwrap();
        let (_, records) = TableWal::open(&path, DurabilityLevel::Sync).unwrap();
        assert_eq!(records.len(), 1, "torn second record dropped");
    }

    #[test]
    fn group_commit_coalesces_concurrent_writers() {
        let dir = TempDir::new("wal-group");
        let path = dir.path().join("wal.log");
        let (wal, _) = TableWal::open(&path, DurabilityLevel::Sync).unwrap();
        let wal = Arc::new(wal);
        let fsyncs_before = idf_obs::global().wal_fsyncs.get();
        std::thread::scope(|s| {
            for t in 0..8 {
                let wal = Arc::clone(&wal);
                s.spawn(move || {
                    for i in 0..25 {
                        let row = format!("t{t}-i{i}").into_bytes();
                        let _ticket = wal.begin_commit(&[row.as_slice()]).unwrap();
                    }
                });
            }
        });
        let fsyncs = idf_obs::global().wal_fsyncs.get() - fsyncs_before;
        // Every commit was fsync'd before acknowledging, but batching
        // keeps fsyncs at or below the commit count (usually far below;
        // equality only if the writer never saw two queued frames).
        if idf_obs::enabled() {
            assert!(fsyncs <= 200, "fsyncs {fsyncs} exceed commits");
            assert!(fsyncs >= 1);
        }
        drop(wal);
        let (_, records) = TableWal::open(&path, DurabilityLevel::Sync).unwrap();
        assert_eq!(records.len(), 200);
    }

    #[test]
    fn quiesce_rotates_only_on_success() {
        let dir = TempDir::new("wal-quiesce");
        let path = dir.path().join("wal-1.log");
        let next = dir.path().join("wal-2.log");
        let (wal, _) = TableWal::open(&path, DurabilityLevel::Sync).unwrap();
        commit(&wal, &payloads(2));
        // Failed snapshot write: old segment untouched, no new segment.
        let err = wal
            .quiesce_and_rotate::<()>(|| Err(EngineError::durability("boom")))
            .unwrap_err();
        assert!(err.to_string().contains("boom"));
        assert!(std::fs::metadata(&path).unwrap().len() > 0);
        assert!(!next.exists());
        assert_eq!(wal.path(), path);
        // Successful snapshot write: rotated to the fresh segment, old
        // one deleted, commits keep working and land in the new file.
        let id = wal.quiesce_and_rotate(|| Ok((2u64, next.clone()))).unwrap();
        assert_eq!(id, 2);
        assert_eq!(wal.path(), next);
        assert!(!path.exists(), "covered segment deleted");
        assert_eq!(std::fs::metadata(&next).unwrap().len(), 0);
        commit(&wal, &payloads(1));
        drop(wal);
        let (_, records) = TableWal::open(&next, DurabilityLevel::Sync).unwrap();
        assert_eq!(records.len(), 1, "only the post-checkpoint commit");
    }

    #[test]
    fn oversized_commit_is_rejected_before_acknowledgement() {
        let dir = TempDir::new("wal-oversize");
        let path = dir.path().join("wal-1.log");
        let (wal, _) = TableWal::open(&path, DurabilityLevel::Sync).unwrap();
        // One row whose record body (4-byte count + 4-byte len + row)
        // lands just past the cap.
        let big = vec![0xA5u8; MAX_WAL_FRAME - 7];
        let err = wal.begin_commit(&[big.as_slice()]).unwrap_err();
        assert!(err.to_string().contains("frame cap"), "{err}");
        // A client error, not an I/O failure: nothing was staged and the
        // WAL keeps accepting normal commits.
        commit(&wal, &payloads(2));
        drop(wal);
        let (_, records) = TableWal::open(&path, DurabilityLevel::Sync).unwrap();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].rows, payloads(2));
    }

    #[cfg(feature = "failpoints")]
    #[test]
    fn injected_fsync_failure_fails_sync_commits_stickily() {
        let dir = TempDir::new("wal-fsync-fault");
        let path = dir.path().join("wal.log");
        let (wal, _) = TableWal::open(&path, DurabilityLevel::Sync).unwrap();
        commit(&wal, &payloads(1));
        {
            let _guard = idf_fail::FailGuard::new(
                crate::failpoints::WAL_FSYNC,
                idf_fail::FailConfig::error("disk gone"),
            );
            let row = b"doomed".as_slice();
            let err = wal.begin_commit(&[row]).unwrap_err();
            assert!(err.to_string().contains("injected"), "{err}");
            // Sticky: even without the failpoint the WAL stays poisoned.
        }
        let row = b"still-doomed".as_slice();
        assert!(wal.begin_commit(&[row]).is_err());
        drop(wal);
        // Reopen recovers the pre-fault prefix.
        let (_, records) = TableWal::open(&path, DurabilityLevel::Sync).unwrap();
        assert_eq!(records.len(), 1);
    }

    /// A *transient* flush failure (here: a failpoint armed for exactly
    /// one hit) must not let frames queued behind the failing batch reach
    /// disk on a later writer iteration — their commits observed the
    /// sticky error and were reported failed, so flushing them would
    /// resurrect refused appends on recovery.
    #[cfg(feature = "failpoints")]
    #[test]
    fn transient_fsync_failure_never_flushes_queued_commits() {
        let dir = TempDir::new("wal-transient");
        let path = dir.path().join("wal.log");
        let (wal, _) = TableWal::open(&path, DurabilityLevel::Async).unwrap();
        let _guard = idf_fail::FailGuard::new(
            crate::failpoints::WAL_FSYNC,
            idf_fail::FailConfig::error("transient disk error").times(1),
        );
        // Async commits are acknowledged once staged; pile several up so
        // some are queued behind the batch that hits the (single-shot)
        // fault.
        for i in 0..16 {
            let row = format!("async-{i}").into_bytes();
            if wal.begin_commit(&[row.as_slice()]).is_err() {
                break; // poisoning already surfaced
            }
        }
        // Wait for the writer to hit the fault and poison the log.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        loop {
            let row = b"probe".as_slice();
            if wal.begin_commit(&[row]).is_err() {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "WAL never became poisoned"
            );
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        drop(wal);
        // The fault fired exactly once, so every later iteration *could*
        // have written — the fix is that there is no later iteration.
        let (_, records) = TableWal::open(&path, DurabilityLevel::Async).unwrap();
        assert!(
            records.is_empty(),
            "{} refused commits were flushed after the transient fault",
            records.len()
        );
    }
}
