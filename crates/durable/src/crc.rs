//! Hand-rolled CRC32 (IEEE 802.3 polynomial, the zlib/gzip variant) —
//! the workspace builds fully offline, so no checksum crate is pulled in.
//!
//! Table-driven, one table built at first use; throughput is far beyond
//! what the WAL needs (frames are checksummed once per commit).

use std::sync::OnceLock;

/// Reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

fn table() -> &'static [u32; 256] {
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, slot) in t.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ POLY
                } else {
                    crc >> 1
                };
            }
            *slot = crc;
        }
        t
    })
}

/// CRC32 of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let t = table();
    let mut crc = !0u32;
    for &b in data {
        crc = (crc >> 8) ^ t[((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for the IEEE CRC32.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn detects_single_bit_flips() {
        let data = b"the quick brown fox jumps over the lazy dog".to_vec();
        let base = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32(&flipped), base, "flip at {byte}:{bit}");
            }
        }
    }
}
