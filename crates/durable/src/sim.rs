//! `SimIo`: a seeded, deterministic, in-memory disk implementing
//! [`StorageIo`] for FoundationDB-style simulation of the durability
//! layer.
//!
//! # Disk model
//!
//! Every file carries two byte images:
//!
//! - **`live`** — what reads observe *now* (the OS page cache view);
//! - **`synced`** — what survives a [`SimIo::crash`] (the platter view),
//!   advanced only by `fsync`/`fdatasync`.
//!
//! plus an **`entry_durable`** bit: a freshly created (or
//! renamed-into-place) entry vanishes on crash until its containing
//! directory is synced, exactly the POSIX trap the real code guards
//! against with directory fsyncs. Renames move the `live` namespace
//! immediately but stay on an undo list until the destination directory
//! is synced; a crash rolls un-synced renames back (the displaced
//! destination file reappears, the source returns to its old name with
//! its last-synced content).
//!
//! [`SimIo::crash`] is the in-process power cut: un-synced bytes are
//! discarded (a seeded coin decides whether a *prefix* of the un-synced
//! tail survives — a torn write), un-synced entries and renames are
//! rolled back, and the crash **epoch** is bumped so every handle opened
//! before the crash fails with a stale-handle error — a leaked writer
//! thread from the "previous life" cannot flush acknowledged-after-death
//! data into the new one. A test then reopens the store in microseconds
//! instead of re-execing a SIGKILL child.
//!
//! # Fault injection
//!
//! [`FaultProfile`] holds per-operation fault probabilities (transient
//! write EIO, transient + sticky fsync failure, read EIO, read-side
//! bit-flips, torn tails on crash, silent rename drops) and an optional
//! byte capacity whose exhaustion surfaces as ENOSPC. Decisions are
//! **hash-derived** — seed ⊕ operation kind ⊕ path ⊕ a per-(kind, path)
//! counter fed through SplitMix64 — so a given seed yields the same
//! fault pattern regardless of thread interleaving, and any failing
//! schedule replays from its printed seed.

use std::collections::HashMap;
use std::io::{self, ErrorKind};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

use crate::io::{AppendFile, DirEntryInfo, StorageIo};

/// Per-operation fault probabilities (0.0 disables a fault class) plus
/// the optional disk capacity. See the module docs for the model.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultProfile {
    /// Probability a write/append fails with a transient EIO.
    pub write_error: f64,
    /// Probability an fsync/fdatasync fails.
    pub fsync_error: f64,
    /// Given an fsync failure, probability it is *sticky*: every later
    /// sync fails too until [`SimIo::clear_sticky_fsync`] or a crash.
    pub fsync_sticky: f64,
    /// Probability a whole-file read fails with a transient EIO.
    pub read_error: f64,
    /// Probability a read returns a copy with one bit flipped.
    pub read_bit_flip: f64,
    /// Probability a crash preserves a *prefix* of a file's un-synced
    /// tail (a torn write) instead of discarding it entirely.
    pub torn_write: f64,
    /// Probability a directory sync silently fails to commit a pending
    /// rename (a lying filesystem; the rename still rolls back on
    /// crash). Byzantine — breaks the ack contract by design.
    pub rename_drop: f64,
    /// Disk capacity in bytes; writes past it fail with ENOSPC.
    pub capacity: Option<u64>,
}

impl FaultProfile {
    /// No faults at all: a perfectly honest in-memory disk (crashes
    /// still lose un-synced data, torn tails never survive).
    pub const fn none() -> Self {
        FaultProfile {
            write_error: 0.0,
            fsync_error: 0.0,
            fsync_sticky: 0.0,
            read_error: 0.0,
            read_bit_flip: 0.0,
            torn_write: 0.0,
            rename_drop: 0.0,
            capacity: None,
        }
    }

    /// Crash-realistic faults an honest disk can produce: transient
    /// write/fsync errors (sometimes sticky) and torn tails. Under this
    /// profile the recovery invariants must hold *exactly*.
    pub const fn crash_faults() -> Self {
        FaultProfile {
            write_error: 0.02,
            fsync_error: 0.03,
            fsync_sticky: 0.25,
            read_error: 0.0,
            read_bit_flip: 0.0,
            torn_write: 0.5,
            rename_drop: 0.0,
            capacity: None,
        }
    }

    /// Everything in [`FaultProfile::crash_faults`] plus a lying read
    /// path and dropped renames. Opens may fail with typed errors and
    /// recovered prefixes may be short, but nothing may panic, hang,
    /// duplicate or reorder.
    pub const fn byzantine() -> Self {
        FaultProfile {
            read_error: 0.02,
            read_bit_flip: 0.01,
            rename_drop: 0.02,
            ..FaultProfile::crash_faults()
        }
    }
}

/// Counters of what the simulated disk has done and injected, for tests
/// asserting a schedule actually exercised faults.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SimStats {
    /// Appends + whole-file writes served.
    pub writes: u64,
    /// File syncs served (including failed ones).
    pub syncs: u64,
    /// Crashes simulated.
    pub crashes: u64,
    /// Faults injected, across every class.
    pub faults_injected: u64,
    /// Torn tails preserved by crashes.
    pub torn_tails: u64,
}

#[derive(Debug, Clone, Default)]
struct SimFile {
    /// Contents reads observe now.
    live: Vec<u8>,
    /// Contents a crash reverts to (when the entry itself is durable).
    synced: Vec<u8>,
    /// False until the containing directory is synced; a crash removes
    /// non-durable entries outright.
    entry_durable: bool,
}

/// Undo record for a rename not yet covered by a directory sync.
#[derive(Debug)]
struct PendingRename {
    from: PathBuf,
    to: PathBuf,
    /// Durable state of the displaced destination, if it existed.
    displaced: Option<SimFile>,
    /// Durable state the source had at rename time (restored on crash
    /// when the source entry itself was durable).
    src_synced: Vec<u8>,
    src_entry_durable: bool,
}

/// Operation kinds feeding the hash-derived fault decisions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum OpKind {
    Write,
    Fsync,
    Read,
    BitFlip,
    Torn,
    TornLen,
    RenameDrop,
}

struct SimState {
    epoch: u64,
    files: HashMap<PathBuf, SimFile>,
    dirs: Vec<PathBuf>,
    renames: Vec<PendingRename>,
    profile: FaultProfile,
    sticky_fsync: bool,
    seed: u64,
    counters: HashMap<(u8, PathBuf), u64>,
    stats: SimStats,
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

fn hash_path(path: &Path) -> u64 {
    // FNV-1a over the path bytes: stable across runs and platforms.
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in path.as_os_str().as_encoded_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

fn eio(what: &str, path: &Path) -> io::Error {
    io::Error::other(format!("injected I/O error ({what}) on {}", path.display()))
}

fn enospc(path: &Path) -> io::Error {
    io::Error::other(format!(
        "No space left on device (ENOSPC) writing {}",
        path.display()
    ))
}

fn stale(path: &Path) -> io::Error {
    io::Error::other(format!(
        "stale handle for {} (crashed since open)",
        path.display()
    ))
}

impl SimState {
    /// Seeded, interleaving-independent fault decision: the draw for the
    /// N-th operation of a given kind on a given path is a pure function
    /// of (seed, kind, path, N).
    fn draw(&mut self, kind: OpKind, path: &Path) -> u64 {
        let key = (kind as u8, path.to_path_buf());
        let n = self.counters.entry(key).or_insert(0);
        *n += 1;
        splitmix64(
            self.seed
                ^ (kind as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
                ^ hash_path(path)
                ^ n.wrapping_mul(0xD6E8_FEB8_6659_FD93),
        )
    }

    fn decide(&mut self, kind: OpKind, path: &Path, prob: f64) -> bool {
        if prob <= 0.0 {
            return false;
        }
        let hit = (self.draw(kind, path) as f64 / u64::MAX as f64) < prob;
        if hit {
            self.stats.faults_injected += 1;
        }
        hit
    }

    fn used_bytes(&self) -> u64 {
        self.files.values().map(|f| f.live.len() as u64).sum()
    }

    /// Append up to the capacity; on overflow a *prefix* lands (as a
    /// real ENOSPC leaves a partial write) and the call errors.
    fn append_capped(&mut self, path: &Path, buf: &[u8]) -> io::Result<()> {
        let room = match self.profile.capacity {
            Some(cap) => (cap.saturating_sub(self.used_bytes())) as usize,
            None => usize::MAX,
        };
        let take = buf.len().min(room);
        let file = self
            .files
            .get_mut(path)
            .ok_or_else(|| io::Error::new(ErrorKind::NotFound, "file removed"))?;
        file.live.extend_from_slice(&buf[..take]);
        if take < buf.len() {
            self.stats.faults_injected += 1;
            return Err(enospc(path));
        }
        Ok(())
    }

    fn fsync_file(&mut self, path: &Path) -> io::Result<()> {
        self.stats.syncs += 1;
        if self.sticky_fsync {
            self.stats.faults_injected += 1;
            return Err(eio("sticky fsync", path));
        }
        let p = self.profile.fsync_error;
        let sticky_p = self.profile.fsync_sticky;
        if self.decide(OpKind::Fsync, path, p) {
            if self.decide(OpKind::Fsync, path, sticky_p) {
                self.sticky_fsync = true;
            }
            return Err(eio("fsync", path));
        }
        let file = self
            .files
            .get_mut(path)
            .ok_or_else(|| io::Error::new(ErrorKind::NotFound, "file removed"))?;
        file.synced = file.live.clone();
        Ok(())
    }
}

fn lock(m: &Mutex<SimState>) -> MutexGuard<'_, SimState> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The deterministic simulated disk. Cheap to clone via `Arc`; all
/// handles and sessions share one disk state.
pub struct SimIo {
    state: Arc<Mutex<SimState>>,
}

impl std::fmt::Debug for SimIo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = lock(&self.state);
        f.debug_struct("SimIo")
            .field("seed", &st.seed)
            .field("epoch", &st.epoch)
            .field("files", &st.files.len())
            .finish()
    }
}

impl SimIo {
    /// A fresh disk driven by `seed` under `profile`.
    pub fn new(seed: u64, profile: FaultProfile) -> Arc<Self> {
        Arc::new(SimIo {
            state: Arc::new(Mutex::new(SimState {
                epoch: 0,
                files: HashMap::new(),
                dirs: Vec::new(),
                renames: Vec::new(),
                profile,
                sticky_fsync: false,
                seed,
                counters: HashMap::new(),
                stats: SimStats::default(),
            })),
        })
    }

    /// Simulate a power cut: un-synced renames roll back, non-durable
    /// entries vanish, un-synced tails are discarded (or torn to a
    /// seeded prefix), and every pre-crash handle goes stale.
    pub fn crash(&self) {
        let mut st = lock(&self.state);
        st.stats.crashes += 1;
        // Roll back renames never covered by a directory sync, newest
        // first so chained renames unwind correctly.
        while let Some(r) = st.renames.pop() {
            let moved = st.files.remove(&r.to);
            if let Some(displaced) = r.displaced {
                st.files.insert(r.to.clone(), displaced);
            }
            if r.src_entry_durable {
                let _ = moved; // its un-synced live state dies with the crash
                st.files.insert(
                    r.from.clone(),
                    SimFile {
                        live: r.src_synced.clone(),
                        synced: r.src_synced,
                        entry_durable: true,
                    },
                );
            }
        }
        let paths: Vec<PathBuf> = st.files.keys().cloned().collect();
        for path in paths {
            let file = &st.files[&path];
            if !file.entry_durable {
                st.files.remove(&path);
                continue;
            }
            let (synced_len, is_pure_append) = {
                let f = &st.files[&path];
                (f.synced.len(), f.live.starts_with(&f.synced))
            };
            let live_len = st.files[&path].live.len();
            let mut keep = synced_len;
            if is_pure_append && live_len > synced_len {
                let p = st.profile.torn_write;
                if st.decide(OpKind::Torn, &path, p) {
                    let extra = (live_len - synced_len) as u64;
                    let torn = st.draw(OpKind::TornLen, &path) % (extra + 1);
                    keep = synced_len + torn as usize;
                    if torn > 0 {
                        st.stats.torn_tails += 1;
                    }
                }
            }
            let f = st.files.get_mut(&path).expect("file present");
            if is_pure_append {
                f.live.truncate(keep);
            } else {
                f.live = f.synced.clone();
            }
            f.synced = f.live.clone();
        }
        st.epoch += 1;
        // A reboot clears the kernel's sticky error state; the profile
        // may of course re-trigger it.
        st.sticky_fsync = false;
    }

    /// Flip one bit of the *stored* byte at `offset` of `path` — real
    /// at-rest corruption (both the live and crash-surviving images),
    /// for scrub tests. Panics if the file or offset does not exist.
    pub fn corrupt(&self, path: &Path, offset: u64) {
        let mut st = lock(&self.state);
        let f = st.files.get_mut(path).expect("corrupt: no such sim file");
        let i = offset as usize;
        f.live[i] ^= 0x40;
        if i < f.synced.len() {
            f.synced[i] ^= 0x40;
        }
    }

    /// Change the disk capacity (None = unbounded). Freeing space after
    /// an ENOSPC storm is `set_capacity(None)` or a larger cap.
    pub fn set_capacity(&self, capacity: Option<u64>) {
        lock(&self.state).profile.capacity = capacity;
    }

    /// Swap the fault profile mid-run — e.g. go quiet
    /// ([`FaultProfile::none`]) for a schedule's final
    /// recover-and-verify pass. The fault decision stream keeps its
    /// position, so earlier draws are unaffected.
    pub fn set_profile(&self, profile: FaultProfile) {
        let mut st = lock(&self.state);
        // Keep an explicitly-set capacity unless the new profile sets
        // its own.
        let capacity = profile.capacity.or(st.profile.capacity);
        st.profile = profile;
        st.profile.capacity = capacity;
    }

    /// Force (or clear) the sticky-fsync failure state.
    pub fn set_sticky_fsync(&self, on: bool) {
        lock(&self.state).sticky_fsync = on;
    }

    /// Clear a sticky fsync failure ("the disk came back").
    pub fn clear_sticky_fsync(&self) {
        self.set_sticky_fsync(false);
    }

    /// Bytes currently stored across all files.
    pub fn used_bytes(&self) -> u64 {
        lock(&self.state).used_bytes()
    }

    /// Snapshot of the fault/operation counters.
    pub fn stats(&self) -> SimStats {
        lock(&self.state).stats
    }

    /// Current crash epoch (how many crashes have happened).
    pub fn epoch(&self) -> u64 {
        lock(&self.state).epoch
    }

    /// The raw live bytes of `path`, bypassing fault injection.
    pub fn raw(&self, path: &Path) -> Option<Vec<u8>> {
        lock(&self.state).files.get(path).map(|f| f.live.clone())
    }

    fn dir_exists(st: &SimState, dir: &Path) -> bool {
        st.dirs.iter().any(|d| d == dir)
    }
}

/// Append handle into the simulated disk; goes stale after a crash.
struct SimAppendFile {
    state: Arc<Mutex<SimState>>,
    path: PathBuf,
    epoch: u64,
}

impl AppendFile for SimAppendFile {
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        let mut st = lock(&self.state);
        if st.epoch != self.epoch {
            return Err(stale(&self.path));
        }
        st.stats.writes += 1;
        let p = st.profile.write_error;
        if st.decide(OpKind::Write, &self.path, p) {
            return Err(eio("write", &self.path));
        }
        st.append_capped(&self.path, buf)
    }

    fn sync_data(&mut self) -> io::Result<()> {
        let mut st = lock(&self.state);
        if st.epoch != self.epoch {
            return Err(stale(&self.path));
        }
        st.fsync_file(&self.path)
    }
}

impl StorageIo for SimIo {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        let mut st = lock(&self.state);
        let p = st.profile.read_error;
        if st.decide(OpKind::Read, path, p) {
            return Err(eio("read", path));
        }
        let Some(file) = st.files.get(path) else {
            return Err(io::Error::new(
                ErrorKind::NotFound,
                format!("no such file: {}", path.display()),
            ));
        };
        let mut bytes = file.live.clone();
        let p = st.profile.read_bit_flip;
        if !bytes.is_empty() && st.decide(OpKind::BitFlip, path, p) {
            let i = (st.draw(OpKind::BitFlip, path) as usize) % bytes.len();
            bytes[i] ^= 0x01;
        }
        Ok(bytes)
    }

    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let mut st = lock(&self.state);
        st.stats.writes += 1;
        let p = st.profile.write_error;
        if st.decide(OpKind::Write, path, p) {
            return Err(eio("write", path));
        }
        if let Some(cap) = st.profile.capacity {
            let others = st.used_bytes() - st.files.get(path).map_or(0, |f| f.live.len() as u64);
            if others + bytes.len() as u64 > cap {
                st.stats.faults_injected += 1;
                return Err(enospc(path));
            }
        }
        let entry = st.files.entry(path.to_path_buf()).or_default();
        entry.live = bytes.to_vec();
        Ok(())
    }

    fn open_append(&self, path: &Path) -> io::Result<Box<dyn AppendFile>> {
        let mut st = lock(&self.state);
        st.files.entry(path.to_path_buf()).or_default();
        let epoch = st.epoch;
        drop(st);
        Ok(Box::new(SimAppendFile {
            state: Arc::clone(&self.state),
            path: path.to_path_buf(),
            epoch,
        }))
    }

    fn set_len(&self, path: &Path, len: u64) -> io::Result<()> {
        let mut st = lock(&self.state);
        let file = st
            .files
            .get_mut(path)
            .ok_or_else(|| io::Error::new(ErrorKind::NotFound, "no such file"))?;
        let len = len as usize;
        file.live.truncate(len);
        // Truncation is metadata the real code only applies to cut an
        // already-lost tail; model it as immediately durable.
        file.synced.truncate(len);
        Ok(())
    }

    fn sync_file(&self, path: &Path) -> io::Result<()> {
        lock(&self.state).fsync_file(path)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        let mut st = lock(&self.state);
        let Some(moved) = st.files.remove(from) else {
            return Err(io::Error::new(
                ErrorKind::NotFound,
                format!("rename source missing: {}", from.display()),
            ));
        };
        let displaced = st.files.get(to).and_then(|f| {
            f.entry_durable.then(|| SimFile {
                live: f.synced.clone(),
                synced: f.synced.clone(),
                entry_durable: true,
            })
        });
        st.renames.push(PendingRename {
            from: from.to_path_buf(),
            to: to.to_path_buf(),
            displaced,
            src_synced: moved.synced.clone(),
            src_entry_durable: moved.entry_durable,
        });
        st.files.insert(
            to.to_path_buf(),
            SimFile {
                live: moved.live,
                synced: moved.synced,
                // The *entry* at `to` is not durable until the directory
                // is synced, even if the content bytes are.
                entry_durable: false,
            },
        );
        Ok(())
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        let mut st = lock(&self.state);
        if st.files.remove(path).is_none() {
            return Err(io::Error::new(ErrorKind::NotFound, "no such file"));
        }
        // Unlink + the eventual dir sync; simulated as immediately
        // durable (resurrection of a deleted stale file is not a fault
        // class the durability layer needs to distinguish — stale
        // litter is ignored by recovery either way).
        st.renames.retain(|r| r.to != *path);
        Ok(())
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        let mut st = lock(&self.state);
        st.stats.syncs += 1;
        if st.sticky_fsync {
            st.stats.faults_injected += 1;
            return Err(eio("sticky fsync (dir)", dir));
        }
        let p = st.profile.fsync_error;
        let sticky_p = st.profile.fsync_sticky;
        if st.decide(OpKind::Fsync, dir, p) {
            if st.decide(OpKind::Fsync, dir, sticky_p) {
                st.sticky_fsync = true;
            }
            return Err(eio("dir fsync", dir));
        }
        // Commit pending renames whose destination lives in `dir` —
        // unless the byzantine rename-drop fault swallows one.
        let mut kept = Vec::new();
        let drop_p = st.profile.rename_drop;
        for r in std::mem::take(&mut st.renames) {
            if r.to.parent() != Some(dir) {
                kept.push(r);
            } else if st.decide(OpKind::RenameDrop, &r.to, drop_p) {
                kept.push(r); // silently not durable
            } else if let Some(f) = st.files.get_mut(&r.to) {
                f.entry_durable = true;
                f.synced = f.live.clone();
            }
        }
        st.renames = kept;
        // Created entries in `dir` become durable (their content is
        // whatever has been fsync'd into them).
        let still_pending: Vec<PathBuf> = st.renames.iter().map(|r| r.to.clone()).collect();
        for (path, file) in st.files.iter_mut() {
            if path.parent() == Some(dir) && !still_pending.contains(path) {
                file.entry_durable = true;
            }
        }
        Ok(())
    }

    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        let mut st = lock(&self.state);
        let mut d = dir.to_path_buf();
        loop {
            if !SimIo::dir_exists(&st, &d) {
                st.dirs.push(d.clone());
            }
            match d.parent() {
                Some(p) if p.as_os_str().is_empty() => break,
                Some(p) => d = p.to_path_buf(),
                None => break,
            }
        }
        Ok(())
    }

    fn read_dir(&self, dir: &Path) -> io::Result<Vec<DirEntryInfo>> {
        let st = lock(&self.state);
        if !SimIo::dir_exists(&st, dir) {
            return Err(io::Error::new(ErrorKind::NotFound, "no such directory"));
        }
        let mut out = Vec::new();
        for d in &st.dirs {
            if d.parent() == Some(dir) {
                if let Some(name) = d.file_name().and_then(|n| n.to_str()) {
                    out.push(DirEntryInfo {
                        name: name.to_string(),
                        is_dir: true,
                    });
                }
            }
        }
        for p in st.files.keys() {
            if p.parent() == Some(dir) {
                if let Some(name) = p.file_name().and_then(|n| n.to_str()) {
                    out.push(DirEntryInfo {
                        name: name.to_string(),
                        is_dir: false,
                    });
                }
            }
        }
        out.sort_by(|a, b| a.name.cmp(&b.name));
        Ok(out)
    }

    fn exists(&self, path: &Path) -> bool {
        let st = lock(&self.state);
        st.files.contains_key(path) || SimIo::dir_exists(&st, path)
    }

    fn is_dir(&self, path: &Path) -> bool {
        SimIo::dir_exists(&lock(&self.state), path)
    }

    fn file_len(&self, path: &Path) -> io::Result<u64> {
        let st = lock(&self.state);
        st.files
            .get(path)
            .map(|f| f.live.len() as u64)
            .ok_or_else(|| io::Error::new(ErrorKind::NotFound, "no such file"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quiet() -> Arc<SimIo> {
        SimIo::new(7, FaultProfile::none())
    }

    #[test]
    fn unsynced_appends_die_in_a_crash_synced_ones_survive() {
        let io = quiet();
        io.create_dir_all(Path::new("/d")).unwrap();
        let p = Path::new("/d/seg");
        let mut f = io.open_append(p).unwrap();
        io.sync_dir(Path::new("/d")).unwrap();
        f.write_all(b"durable").unwrap();
        f.sync_data().unwrap();
        f.write_all(b"-lost").unwrap();
        assert_eq!(io.read(p).unwrap(), b"durable-lost");
        io.crash();
        assert_eq!(io.read(p).unwrap(), b"durable");
        // The old handle is stale in the new epoch.
        assert!(f.write_all(b"zombie").is_err());
        assert!(f.sync_data().is_err());
    }

    #[test]
    fn unsynced_entry_vanishes_in_a_crash() {
        let io = quiet();
        io.create_dir_all(Path::new("/d")).unwrap();
        let p = Path::new("/d/new");
        let mut f = io.open_append(p).unwrap();
        f.write_all(b"bytes").unwrap();
        f.sync_data().unwrap(); // content synced, entry never was
        io.crash();
        assert!(!io.exists(p), "entry without a dir sync must vanish");
    }

    #[test]
    fn rename_is_atomic_and_needs_dir_sync_to_stick() {
        let io = quiet();
        let d = Path::new("/d");
        io.create_dir_all(d).unwrap();
        // Durable original destination.
        io.write(Path::new("/d/dst"), b"old").unwrap();
        io.sync_file(Path::new("/d/dst")).unwrap();
        io.sync_dir(d).unwrap();
        // Replacement staged the atomic way, minus the final dir sync.
        io.write(Path::new("/d/tmp"), b"new").unwrap();
        io.sync_file(Path::new("/d/tmp")).unwrap();
        io.rename(Path::new("/d/tmp"), Path::new("/d/dst")).unwrap();
        assert_eq!(io.read(Path::new("/d/dst")).unwrap(), b"new");
        io.crash();
        assert_eq!(
            io.read(Path::new("/d/dst")).unwrap(),
            b"old",
            "rename without dir sync rolls back"
        );
        // Same dance with the dir sync: survives.
        io.write(Path::new("/d/tmp"), b"new2").unwrap();
        io.sync_file(Path::new("/d/tmp")).unwrap();
        io.rename(Path::new("/d/tmp"), Path::new("/d/dst")).unwrap();
        io.sync_dir(d).unwrap();
        io.crash();
        assert_eq!(io.read(Path::new("/d/dst")).unwrap(), b"new2");
    }

    #[test]
    fn capacity_enforces_enospc_and_freeing_space_recovers() {
        let io = quiet();
        io.set_capacity(Some(8));
        io.create_dir_all(Path::new("/d")).unwrap();
        let p = Path::new("/d/f");
        let mut f = io.open_append(p).unwrap();
        f.write_all(b"12345").unwrap();
        let err = f.write_all(b"6789A").unwrap_err();
        assert!(err.to_string().contains("ENOSPC"), "{err}");
        // A prefix landed (torn), as a real ENOSPC leaves.
        assert_eq!(io.file_len(p).unwrap(), 8);
        io.set_capacity(None);
        f.write_all(b"ok").unwrap();
        assert_eq!(io.file_len(p).unwrap(), 10);
    }

    #[test]
    fn sticky_fsync_fails_until_cleared() {
        let io = quiet();
        io.create_dir_all(Path::new("/d")).unwrap();
        io.write(Path::new("/d/f"), b"x").unwrap();
        io.set_sticky_fsync(true);
        assert!(io.sync_file(Path::new("/d/f")).is_err());
        assert!(io.sync_dir(Path::new("/d")).is_err());
        io.clear_sticky_fsync();
        io.sync_file(Path::new("/d/f")).unwrap();
    }

    #[test]
    fn corrupt_flips_a_stored_bit() {
        let io = quiet();
        io.create_dir_all(Path::new("/d")).unwrap();
        io.write(Path::new("/d/f"), b"AAAA").unwrap();
        io.sync_file(Path::new("/d/f")).unwrap();
        io.sync_dir(Path::new("/d")).unwrap(); // make the entry durable too
        io.corrupt(Path::new("/d/f"), 2);
        let got = io.read(Path::new("/d/f")).unwrap();
        assert_eq!(got, vec![b'A', b'A', b'A' ^ 0x40, b'A']);
        io.crash(); // survives a crash: it is at-rest corruption
        assert_eq!(io.read(Path::new("/d/f")).unwrap()[2], b'A' ^ 0x40);
    }

    #[test]
    fn same_seed_same_faults() {
        for _ in 0..2 {
            let mk = || SimIo::new(99, FaultProfile::crash_faults());
            let (a, b) = (mk(), mk());
            for io in [&a, &b] {
                io.create_dir_all(Path::new("/d")).unwrap();
            }
            let run = |io: &Arc<SimIo>| -> Vec<bool> {
                let mut outcomes = Vec::new();
                let mut f = io.open_append(Path::new("/d/seg")).unwrap();
                for i in 0..64 {
                    outcomes.push(f.write_all(&[i]).is_ok());
                    outcomes.push(f.sync_data().is_ok());
                    io.clear_sticky_fsync();
                }
                outcomes
            };
            assert_eq!(run(&a), run(&b), "seeded fault stream must be stable");
        }
    }

    #[test]
    fn torn_write_preserves_only_a_prefix() {
        // With torn writes certain, some crash leaves a strict prefix of
        // the un-synced tail; never more than was written.
        let profile = FaultProfile {
            torn_write: 1.0,
            ..FaultProfile::none()
        };
        let io = SimIo::new(3, profile);
        io.create_dir_all(Path::new("/d")).unwrap();
        let p = Path::new("/d/seg");
        let mut f = io.open_append(p).unwrap();
        io.sync_dir(Path::new("/d")).unwrap();
        f.write_all(b"SYNCED").unwrap();
        f.sync_data().unwrap();
        f.write_all(b"unsynced-tail").unwrap();
        io.crash();
        let got = io.read(p).unwrap();
        assert!(got.starts_with(b"SYNCED"));
        assert!(got.len() <= b"SYNCED".len() + b"unsynced-tail".len());
        assert!(b"SYNCEDunsynced-tail".starts_with(got.as_slice()));
    }
}
