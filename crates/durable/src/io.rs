//! The storage I/O seam: every file operation the WAL, checkpoint and
//! recovery paths perform goes through [`StorageIo`], so the whole
//! durability layer can run against either the real filesystem
//! ([`OsIo`]) or the deterministic in-memory fault-injecting disk
//! ([`crate::sim::SimIo`]).
//!
//! The trait is deliberately shaped around what the durability layer
//! actually does — whole-file reads, atomic-replace writes, append
//! streams with explicit `fdatasync`, renames, and directory syncs —
//! rather than mirroring `std::fs`. Narrowness is what makes the
//! simulated disk's crash semantics tractable: every durability-relevant
//! transition (bytes appended but not synced, a rename not yet covered
//! by a directory sync, a created entry whose directory was never
//! synced) maps to exactly one trait call.
//!
//! All methods return `std::io::Error`; callers wrap into typed
//! `EngineError`s at the boundary, exactly as the pre-seam code did.

use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::Path;

/// An open append stream (a WAL segment). Writes buffer in the OS page
/// cache (or the simulated unsynced buffer) until [`AppendFile::sync_data`]
/// makes them durable.
pub trait AppendFile: Send {
    /// Append `buf` in full.
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()>;

    /// Make every byte appended so far durable (`fdatasync`).
    fn sync_data(&mut self) -> io::Result<()>;
}

/// One directory entry as seen by [`StorageIo::read_dir`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirEntryInfo {
    /// File or directory name (final path component).
    pub name: String,
    /// True when the entry is a directory.
    pub is_dir: bool,
}

/// Every file operation the durability layer performs.
pub trait StorageIo: Send + Sync {
    /// Read the whole file at `path`.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;

    /// Create-or-truncate `path` with `bytes`. **Not** durable until
    /// [`StorageIo::sync_file`] (content) and [`StorageIo::sync_dir`]
    /// (entry, for new files) are called.
    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;

    /// Open `path` for appending, creating it if absent. A freshly
    /// created entry is not durable until its directory is synced.
    fn open_append(&self, path: &Path) -> io::Result<Box<dyn AppendFile>>;

    /// Truncate `path` to `len` bytes (used to cut torn WAL tails).
    fn set_len(&self, path: &Path, len: u64) -> io::Result<()>;

    /// Make the current contents of `path` durable (`fsync`).
    fn sync_file(&self, path: &Path) -> io::Result<()>;

    /// Atomically replace `to` with `from`. Durable only once the
    /// containing directory is synced.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;

    /// Delete the file at `path`.
    fn remove_file(&self, path: &Path) -> io::Result<()>;

    /// Sync the directory at `dir`, making created/renamed entries
    /// within it durable.
    fn sync_dir(&self, dir: &Path) -> io::Result<()>;

    /// Create `dir` and any missing parents.
    fn create_dir_all(&self, dir: &Path) -> io::Result<()>;

    /// List the entries of `dir`.
    fn read_dir(&self, dir: &Path) -> io::Result<Vec<DirEntryInfo>>;

    /// Whether a file or directory exists at `path`.
    fn exists(&self, path: &Path) -> bool;

    /// Whether `path` exists and is a directory.
    fn is_dir(&self, path: &Path) -> bool;

    /// Length in bytes of the file at `path`.
    fn file_len(&self, path: &Path) -> io::Result<u64>;
}

/// The real filesystem: thin wrappers over `std::fs`.
#[derive(Debug, Default, Clone, Copy)]
pub struct OsIo;

impl AppendFile for File {
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        Write::write_all(self, buf)
    }

    fn sync_data(&mut self) -> io::Result<()> {
        File::sync_data(self)
    }
}

impl StorageIo for OsIo {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        std::fs::read(path)
    }

    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        std::fs::write(path, bytes)
    }

    fn open_append(&self, path: &Path) -> io::Result<Box<dyn AppendFile>> {
        let file = OpenOptions::new()
            .read(true)
            .append(true)
            .create(true)
            .open(path)?;
        Ok(Box::new(file))
    }

    fn set_len(&self, path: &Path, len: u64) -> io::Result<()> {
        OpenOptions::new().write(true).open(path)?.set_len(len)
    }

    fn sync_file(&self, path: &Path) -> io::Result<()> {
        File::open(path)?.sync_all()
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        File::open(dir)?.sync_all()
    }

    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        std::fs::create_dir_all(dir)
    }

    fn read_dir(&self, dir: &Path) -> io::Result<Vec<DirEntryInfo>> {
        let mut out = Vec::new();
        for entry in std::fs::read_dir(dir)? {
            let entry = entry?;
            let is_dir = entry.path().is_dir();
            let name = entry.file_name().into_string().map_err(|raw| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("non-UTF-8 name {raw:?} in {}", dir.display()),
                )
            })?;
            out.push(DirEntryInfo { name, is_dir });
        }
        Ok(out)
    }

    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }

    fn is_dir(&self, path: &Path) -> bool {
        path.is_dir()
    }

    fn file_len(&self, path: &Path) -> io::Result<u64> {
        Ok(std::fs::metadata(path)?.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TempDir;

    #[test]
    fn os_io_roundtrip_and_rename() {
        let dir = TempDir::new("osio");
        let io = OsIo;
        let a = dir.path().join("a");
        let b = dir.path().join("b");
        io.write(&a, b"hello").unwrap();
        io.sync_file(&a).unwrap();
        assert_eq!(io.read(&a).unwrap(), b"hello");
        assert_eq!(io.file_len(&a).unwrap(), 5);
        io.rename(&a, &b).unwrap();
        io.sync_dir(dir.path()).unwrap();
        assert!(!io.exists(&a));
        assert_eq!(io.read(&b).unwrap(), b"hello");
        let names: Vec<String> = io
            .read_dir(dir.path())
            .unwrap()
            .into_iter()
            .map(|e| e.name)
            .collect();
        assert_eq!(names, vec!["b".to_string()]);
        io.remove_file(&b).unwrap();
        assert!(!io.exists(&b));
    }

    #[test]
    fn os_io_append_and_truncate() {
        let dir = TempDir::new("osio-append");
        let io = OsIo;
        let p = dir.path().join("seg");
        {
            let mut f = io.open_append(&p).unwrap();
            f.write_all(b"0123456789").unwrap();
            f.sync_data().unwrap();
        }
        io.set_len(&p, 4).unwrap();
        assert_eq!(io.read(&p).unwrap(), b"0123");
        // Reopening for append continues after the truncation point.
        let mut f = io.open_append(&p).unwrap();
        f.write_all(b"XY").unwrap();
        drop(f);
        assert_eq!(io.read(&p).unwrap(), b"0123XY");
    }
}
