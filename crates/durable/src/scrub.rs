//! Corruption scrubbing: re-walk a table's on-disk state (manifest,
//! checkpoint snapshots, WAL segments) verifying magic bytes and CRCs,
//! report typed findings with byte offsets, and — in repair mode —
//! quarantine a corrupt snapshot and fall back to the previous valid
//! generation.
//!
//! Bytes rot after they are written: latent sector errors, firmware
//! bugs, bit flips. Recovery only validates what it reads on open; scrub
//! is the proactive pass that re-verifies everything *before* the next
//! crash makes a corrupt checkpoint load-bearing.
//!
//! Fallback protocol (repair mode, corrupt snapshot `N`):
//!
//! 1. verify the fallback is actually viable — snapshot `N-1` loads and
//!    segments `N-1` and `N` both exist (checkpoint GC retains exactly
//!    this generation pair for exactly this purpose);
//! 2. rename `ckpt-N.snap` to `ckpt-N.snap.quarantine` (evidence, and
//!    the id is never reused — see `checkpoint::next_checkpoint_id`);
//! 3. flip the manifest back to `N-1`. Recovery then restores snapshot
//!    `N-1` and replays the contiguous segment chain `N-1`, `N` — the
//!    full acknowledged state, nothing lost.
//!
//! Each step is crash-atomic in itself and the order is chosen so a
//! crash between any two steps leaves a recoverable store: after (2) the
//! manifest still points at `N` whose snapshot is gone — recovery fails
//! typed, and re-running scrub completes the fallback.
//!
//! Scrub never deletes anything and never rewrites payload bytes; the
//! only mutations are the quarantine rename and the manifest flip, both
//! gated behind `repair`.

use std::path::Path;

use idf_engine::error::{EngineError, Result};

use crate::checkpoint;
use crate::codec::{read_frame, FrameRead, MAX_WAL_FRAME};
use crate::io::StorageIo;

/// One verified target within a table directory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScrubEntry {
    /// File name of the verified target (`MANIFEST`, `ckpt-3.snap`,
    /// `wal-3.log`, …).
    pub target: String,
    /// Outcome: `ok`, `corrupt`, `quarantined`, `fell-back`, `stale` or
    /// `unrecoverable`.
    pub status: String,
    /// Human-readable detail; corruption findings include byte offsets.
    pub detail: String,
}

impl ScrubEntry {
    fn new(target: impl Into<String>, status: &str, detail: impl Into<String>) -> Self {
        ScrubEntry {
            target: target.into(),
            status: status.to_string(),
            detail: detail.into(),
        }
    }

    /// True for findings that indicate damaged bytes (`corrupt`,
    /// `quarantined`, `unrecoverable`).
    pub fn is_corruption(&self) -> bool {
        matches!(
            self.status.as_str(),
            "corrupt" | "quarantined" | "unrecoverable"
        )
    }
}

/// The scrub result for one table directory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScrubReport {
    /// Table (directory) name.
    pub table: String,
    /// One entry per verified target, manifest first.
    pub entries: Vec<ScrubEntry>,
}

impl ScrubReport {
    /// True when every target verified clean (fallback entries count as
    /// findings, not clean).
    pub fn is_clean(&self) -> bool {
        self.entries
            .iter()
            .all(|e| e.status == "ok" || e.status == "stale")
    }
}

fn file_name(path: &Path) -> String {
    path.file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| path.display().to_string())
}

/// Scrub one table directory. With `repair` set, a corrupt snapshot is
/// quarantined and the manifest falls back to the previous generation
/// when that is verifiably safe; without it, scrub only reports.
///
/// The caller must hold the table's WAL quiesced (or know no WAL is
/// live, e.g. before opening a session) so the live segment is not
/// appended to mid-walk.
pub fn scrub_table_dir(io: &dyn StorageIo, dir: &Path, repair: bool) -> Result<Vec<ScrubEntry>> {
    let mut entries = Vec::new();

    // Manifest first: everything else hangs off its id.
    crate::failpoints::check(crate::failpoints::SCRUB_VERIFY)?;
    let id = match checkpoint::read_manifest(io, dir) {
        Ok(Some(id)) => {
            entries.push(ScrubEntry::new(
                "MANIFEST",
                "ok",
                format!("points at checkpoint {id}"),
            ));
            id
        }
        Ok(None) => {
            return Err(EngineError::corrupt(format!(
                "scrub: table directory {} has no manifest",
                dir.display()
            )))
        }
        Err(e) => {
            // A corrupt manifest has no fallback (it IS the root of
            // trust); report and stop — nothing else can be attributed
            // to a generation.
            idf_obs::global().scrub_corruptions.inc();
            entries.push(ScrubEntry::new("MANIFEST", "unrecoverable", e.to_string()));
            idf_obs::global().scrub_runs.inc();
            return Ok(entries);
        }
    };

    // The authoritative snapshot.
    crate::failpoints::check(crate::failpoints::SCRUB_VERIFY)?;
    let snap = checkpoint::snap_path(dir, id);
    let mut effective_id = id;
    match verify_snapshot(io, dir, id) {
        Ok(rows) => entries.push(ScrubEntry::new(
            file_name(&snap),
            "ok",
            format!("{rows} rows"),
        )),
        Err((detail, _)) => {
            idf_obs::global().scrub_corruptions.inc();
            let fell_back = if repair {
                try_fallback(io, dir, id, &detail, &mut entries)?
            } else {
                None
            };
            if let Some(prev) = fell_back {
                effective_id = prev;
            } else if repair {
                entries.push(ScrubEntry::new(
                    file_name(&snap),
                    "unrecoverable",
                    format!("{detail}; no valid previous generation to fall back to"),
                ));
            } else {
                entries.push(ScrubEntry::new(file_name(&snap), "corrupt", detail));
            }
        }
    }

    // WAL segments: everything at-or-after the effective id is live
    // state, replayed ascending; older segments are covered litter
    // awaiting GC. Id gaps are benign — a checkpoint attempt that fails
    // after writing its snapshot burns the id without ever creating the
    // matching segment (and a segment that ever accepted a commit has a
    // durable directory entry, so acknowledged data cannot hide in a
    // gap).
    let seg_ids = checkpoint::list_segment_ids(io, dir)?;
    for seg_id in seg_ids {
        crate::failpoints::check(crate::failpoints::SCRUB_VERIFY)?;
        let seg = checkpoint::wal_path(dir, seg_id);
        if seg_id < effective_id {
            entries.push(ScrubEntry::new(
                file_name(&seg),
                "stale",
                "covered by the authoritative checkpoint; never replayed",
            ));
            continue;
        }
        entries.push(verify_segment(io, &seg)?);
    }
    idf_obs::global().scrub_runs.inc();
    Ok(entries)
}

/// Full verification of snapshot `id`: magic, frame CRC, and every
/// structural claim (the same validation recovery runs). Returns the row
/// count on success, or `(detail-with-offsets, was_readable)` on
/// failure.
fn verify_snapshot(
    io: &dyn StorageIo,
    dir: &Path,
    id: u64,
) -> std::result::Result<usize, (String, bool)> {
    let path = checkpoint::snap_path(dir, id);
    let bytes = match io.read(&path) {
        Ok(b) => b,
        Err(e) => return Err((format!("unreadable: {e}"), false)),
    };
    if bytes.len() < 8 || &bytes[..8] != checkpoint::SNAP_MAGIC {
        return Err(("bad magic at byte offset 0".to_string(), true));
    }
    match read_frame(&bytes, 8, crate::codec::MAX_SNAPSHOT_FRAME) {
        FrameRead::Ok { next, .. } if next == bytes.len() => {}
        _ => {
            return Err((
                format!(
                    "frame CRC/length check failed over byte range 8..{}",
                    bytes.len()
                ),
                true,
            ))
        }
    }
    // CRC passed — validate structure too (a CRC collision or a bug in
    // the writer would land here).
    match checkpoint::load_table(io, dir, id) {
        Ok(table) => Ok(table.row_count()),
        Err(e) => Err((e.to_string(), true)),
    }
}

/// Attempt the quarantine-and-fall-back protocol for corrupt snapshot
/// `id`. Returns `Ok(Some(prev))` when the manifest now points at the
/// previous generation `prev`.
fn try_fallback(
    io: &dyn StorageIo,
    dir: &Path,
    id: u64,
    detail: &str,
    entries: &mut Vec<ScrubEntry>,
) -> Result<Option<u64>> {
    let snap = checkpoint::snap_path(dir, id);
    // Viability first, mutation second: a previous generation must load
    // and leave a complete segment chain behind it, otherwise the
    // fallback would trade a corrupt snapshot for missing data. The
    // candidates are segment ids below `id`, newest first — checkpoint
    // ids burned by failed attempts have a snapshot but no segment and
    // are skipped by construction; every segment between the chosen
    // generation and `id` is in the candidate list itself, so the replay
    // chain from `prev` is complete.
    if !io.exists(&checkpoint::wal_path(dir, id)) {
        return Ok(None);
    }
    let prev = match checkpoint::list_segment_ids(io, dir)?
        .into_iter()
        .filter(|&s| s < id)
        .rev()
        .find(|&s| verify_snapshot(io, dir, s).is_ok())
    {
        Some(p) => p,
        None => return Ok(None),
    };
    // Flip the manifest first, quarantine second: every crash (or
    // reported-failed-but-landed rename) window then leaves either the
    // original broken-but-rescrubable state or a fully valid one. The
    // reverse order could strand a manifest pointing at a snapshot that
    // has already moved to quarantine, which a re-run cannot repair.
    checkpoint::write_manifest(io, dir, prev)?;
    let qpath = checkpoint::quarantine_path(dir, id);
    io.rename(&snap, &qpath)
        .map_err(|e| EngineError::durability(format!("quarantining {}: {e}", snap.display())))?;
    io.sync_dir(dir)
        .map_err(|e| EngineError::durability(format!("syncing dir {}: {e}", dir.display())))?;
    entries.push(ScrubEntry::new(
        file_name(&snap),
        "quarantined",
        format!("{detail}; moved to {}", file_name(&qpath)),
    ));
    entries.push(ScrubEntry::new(
        "MANIFEST",
        "fell-back",
        format!("now points at checkpoint {prev}; segments at-or-after {prev} replay on recovery"),
    ));
    Ok(Some(prev))
}

/// Frame-walk one WAL segment verifying every CRC. Trailing bytes past
/// the last valid frame are reported with their byte offset — a flipped
/// bit mid-segment and a torn tail both land here; the offset tells them
/// apart (mid-file vs end-of-file).
fn verify_segment(io: &dyn StorageIo, path: &Path) -> Result<ScrubEntry> {
    let bytes = io
        .read(path)
        .map_err(|e| EngineError::durability(format!("scrub: reading {}: {e}", path.display())))?;
    let mut offset = 0usize;
    let mut frames = 0u64;
    while let FrameRead::Ok { next, .. } = read_frame(&bytes, offset, MAX_WAL_FRAME) {
        offset = next;
        frames += 1;
    }
    if offset == bytes.len() {
        Ok(ScrubEntry::new(
            file_name(path),
            "ok",
            format!("{frames} frames, {} bytes", bytes.len()),
        ))
    } else {
        idf_obs::global().scrub_corruptions.inc();
        Ok(ScrubEntry::new(
            file_name(path),
            "corrupt",
            format!(
                "frame CRC/length check failed at byte offset {offset} ({} of {} bytes valid, {frames} whole frames)",
                offset,
                bytes.len()
            ),
        ))
    }
}

/// Scrub every table directory under `data_dir` — usable *without* an
/// open session, which is how a store whose authoritative snapshot has
/// rotted is repaired: `DurableSession::open` fails typed, this runs
/// with `repair`, and the reopen recovers from the fallback generation.
pub fn scrub_data_dir(
    io: &dyn StorageIo,
    data_dir: &Path,
    repair: bool,
) -> Result<Vec<ScrubReport>> {
    let entries = io.read_dir(data_dir).map_err(|e| {
        EngineError::durability(format!(
            "scrub: reading data_dir {}: {e}",
            data_dir.display()
        ))
    })?;
    let mut names: Vec<String> = entries
        .into_iter()
        .filter(|e| e.is_dir && io.exists(&checkpoint::manifest_path(&data_dir.join(&e.name))))
        .map(|e| e.name)
        .collect();
    names.sort();
    let mut reports = Vec::with_capacity(names.len());
    for name in names {
        let entries = scrub_table_dir(io, &data_dir.join(&name), repair)?;
        reports.push(ScrubReport {
            table: name,
            entries,
        });
    }
    Ok(reports)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::OsIo;
    use crate::TempDir;
    use idf_core::config::IndexConfig;
    use idf_core::table::IndexedTable;
    use idf_engine::schema::{Field, Schema};
    use idf_engine::types::{DataType, Value};
    use std::sync::Arc;

    const IO: OsIo = OsIo;

    fn sample_table(rows: i64) -> IndexedTable {
        let schema = Arc::new(Schema::new(vec![
            Field::required("id", DataType::Int64),
            Field::new("name", DataType::Utf8),
        ]));
        let config = IndexConfig {
            num_partitions: 2,
            ..IndexConfig::default()
        };
        let table = IndexedTable::new(schema, 0, config).unwrap();
        for i in 0..rows {
            table
                .append_row(&[Value::Int64(i), Value::Utf8(format!("r{i}"))])
                .unwrap();
        }
        table
    }

    fn write_generation(dir: &Path, id: u64, table: &IndexedTable) {
        checkpoint::write_snapshot(&IO, dir, id, &table.snapshot(), table.config()).unwrap();
        std::fs::write(checkpoint::wal_path(dir, id), b"").unwrap();
        checkpoint::write_manifest(&IO, dir, id).unwrap();
    }

    #[test]
    fn clean_directory_scrubs_ok() {
        let dir = TempDir::new("scrub-clean");
        let table = sample_table(50);
        write_generation(dir.path(), 1, &table);
        let entries = scrub_table_dir(&IO, dir.path(), false).unwrap();
        assert!(entries.iter().all(|e| e.status == "ok"), "{entries:?}");
        assert_eq!(entries.len(), 3, "manifest + snapshot + segment");
    }

    #[test]
    fn flipped_snapshot_bit_is_reported_with_offsets_and_repair_falls_back() {
        let dir = TempDir::new("scrub-flip");
        let table = sample_table(40);
        write_generation(dir.path(), 1, &table);
        // Generation 2 covers more rows, then its snapshot rots.
        table
            .append_row(&[Value::Int64(40), Value::Utf8("late".into())])
            .unwrap();
        checkpoint::write_snapshot(&IO, dir.path(), 2, &table.snapshot(), table.config()).unwrap();
        std::fs::write(checkpoint::wal_path(dir.path(), 2), b"").unwrap();
        checkpoint::write_manifest(&IO, dir.path(), 2).unwrap();
        let spath = checkpoint::snap_path(dir.path(), 2);
        let mut bytes = std::fs::read(&spath).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x04;
        std::fs::write(&spath, &bytes).unwrap();
        // Report-only first.
        let entries = scrub_table_dir(&IO, dir.path(), false).unwrap();
        let finding = entries
            .iter()
            .find(|e| e.target == "ckpt-2.snap")
            .expect("snapshot finding");
        assert_eq!(finding.status, "corrupt");
        assert!(finding.detail.contains("byte range"), "{finding:?}");
        assert_eq!(
            checkpoint::read_manifest(&IO, dir.path()).unwrap(),
            Some(2),
            "report-only scrub must not mutate"
        );
        // Repair quarantines and falls back to generation 1.
        let entries = scrub_table_dir(&IO, dir.path(), true).unwrap();
        assert!(
            entries.iter().any(|e| e.status == "quarantined"),
            "{entries:?}"
        );
        assert!(entries.iter().any(|e| e.status == "fell-back"));
        assert_eq!(checkpoint::read_manifest(&IO, dir.path()).unwrap(), Some(1));
        assert!(checkpoint::quarantine_path(dir.path(), 2).exists());
        assert!(!spath.exists());
        // The fallback generation is loadable and the chain is whole.
        checkpoint::load_table(&IO, dir.path(), 1).unwrap();
        let entries = scrub_table_dir(&IO, dir.path(), false).unwrap();
        assert!(entries.iter().all(|e| e.status == "ok"), "{entries:?}");
        // The quarantined id is never reallocated.
        assert!(checkpoint::next_checkpoint_id(&IO, dir.path()).unwrap() > 2);
    }

    #[test]
    fn repair_refuses_fallback_when_previous_generation_is_missing() {
        let dir = TempDir::new("scrub-norecover");
        let table = sample_table(10);
        write_generation(dir.path(), 1, &table);
        let spath = checkpoint::snap_path(dir.path(), 1);
        let mut bytes = std::fs::read(&spath).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(&spath, &bytes).unwrap();
        let entries = scrub_table_dir(&IO, dir.path(), true).unwrap();
        let finding = entries
            .iter()
            .find(|e| e.target == "ckpt-1.snap")
            .expect("snapshot finding");
        assert_eq!(finding.status, "unrecoverable", "{entries:?}");
        // Nothing was quarantined or flipped.
        assert!(spath.exists());
        assert_eq!(checkpoint::read_manifest(&IO, dir.path()).unwrap(), Some(1));
    }

    #[test]
    fn mid_segment_bit_flip_is_reported_with_its_offset() {
        let dir = TempDir::new("scrub-walflip");
        let table = sample_table(5);
        write_generation(dir.path(), 1, &table);
        // Three valid frames in the segment, then rot the middle one.
        let seg = checkpoint::wal_path(dir.path(), 1);
        let mut bytes = Vec::new();
        let mut second_frame_at = 0;
        for i in 0..3 {
            if i == 1 {
                second_frame_at = bytes.len();
            }
            let body = vec![i as u8; 20];
            bytes.extend_from_slice(&crate::codec::frame(&body).unwrap());
        }
        let flip_at = second_frame_at + 12;
        bytes[flip_at] ^= 0x01;
        std::fs::write(&seg, &bytes).unwrap();
        let entries = scrub_table_dir(&IO, dir.path(), false).unwrap();
        let finding = entries
            .iter()
            .find(|e| e.target == "wal-1.log")
            .expect("segment finding");
        assert_eq!(finding.status, "corrupt");
        assert!(
            finding
                .detail
                .contains(&format!("byte offset {second_frame_at}")),
            "{finding:?}"
        );
        assert!(finding.detail.contains("1 whole frames"), "{finding:?}");
    }

    #[test]
    fn scrub_data_dir_walks_every_table() {
        let dir = TempDir::new("scrub-walk");
        for name in ["alpha", "beta"] {
            let tdir = dir.path().join(name);
            std::fs::create_dir_all(&tdir).unwrap();
            write_generation(&tdir, 1, &sample_table(3));
        }
        // Litter that must be ignored.
        std::fs::write(dir.path().join("stray-file"), b"x").unwrap();
        std::fs::create_dir_all(dir.path().join("not-a-table")).unwrap();
        let reports = scrub_data_dir(&IO, dir.path(), false).unwrap();
        let names: Vec<&str> = reports.iter().map(|r| r.table.as_str()).collect();
        assert_eq!(names, vec!["alpha", "beta"]);
        assert!(reports.iter().all(|r| r.is_clean()));
    }
}
