//! The durable session: open-with-recovery, durable table creation, and
//! the checkpoint hook behind `CHECKPOINT`.
//!
//! A [`DurableSession`] wraps the regular engine [`Session`]. Opening one
//! validates (creating if absent) `EngineConfig::data_dir`, then for every
//! table directory found there: restores the newest valid checkpoint,
//! replays the WAL tail through the ordinary two-phase append path (so
//! PR-2's no-partial-visibility invariant holds during recovery too), and
//! registers the table for SQL — point lookups, indexed joins and scans
//! work on the recovered data exactly as they did before the crash.
//!
//! The append sink is installed *after* replay, so replayed records are
//! not re-logged; at [`DurabilityLevel::None`] no sink is installed at all
//! and durability is checkpoint-only.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

use idf_core::api::IndexedDataFrame;
use idf_core::config::IndexConfig;
use idf_core::table::IndexedTable;
use idf_engine::chunk::Chunk;
use idf_engine::config::{DurabilityLevel, EngineConfig};
use idf_engine::error::{EngineError, Result};
use idf_engine::schema::SchemaRef;
use idf_engine::session::{DurabilityHook, Session};

use parking_lot::Mutex;

use crate::checkpoint;
use crate::wal::{TableWal, WalSink};

/// One durable table: the live in-memory table, its WAL, and its
/// directory on disk.
struct DurableTable {
    table: Arc<IndexedTable>,
    /// Kept even at [`DurabilityLevel::None`] so checkpoints can quiesce
    /// and truncate a WAL left behind by an earlier session at a stricter
    /// level.
    wal: Arc<TableWal>,
    dir: PathBuf,
}

/// Shared durable state; installed into the engine session as its
/// [`DurabilityHook`], so `CHECKPOINT` (SQL or programmatic) lands here.
struct DurableState {
    level: DurabilityLevel,
    tables: Mutex<HashMap<String, Arc<DurableTable>>>,
}

impl DurableState {
    fn checkpoint_one(&self, name: &str, t: &DurableTable) -> Result<()> {
        let started = Instant::now();
        let table = &t.table;
        // Quiesce the WAL (every logged commit flushed *and* published),
        // then — inside the quiet window, which also serializes
        // concurrent checkpointers, so the id read here cannot race —
        // pick the next id, snapshot, flip the manifest, and rotate to
        // the segment paired with the new id. Recovery reads only that
        // pairing, so the old (covered) segment is dead the instant the
        // manifest flips, crash or no crash. At `DurabilityLevel::None`
        // the WAL is trivially drained and this degrades to
        // snapshot-plus-rotate.
        let id = t.wal.quiesce_and_rotate(|| {
            let id = checkpoint::read_manifest(&t.dir)?.map_or(1, |id| id + 1);
            checkpoint::write_snapshot(&t.dir, id, &table.snapshot(), table.config())?;
            checkpoint::write_manifest(&t.dir, id)?;
            Ok((id, checkpoint::wal_path(&t.dir, id)))
        })?;
        checkpoint::remove_stale_files(&t.dir, id);
        if idf_obs::enabled() {
            idf_obs::global()
                .checkpoint_duration_ns
                .record(started.elapsed().as_nanos() as u64);
        }
        let _ = name;
        Ok(())
    }
}

impl DurabilityHook for DurableState {
    fn checkpoint(&self, table: Option<&str>) -> Result<Vec<String>> {
        let targets: Vec<(String, Arc<DurableTable>)> = {
            let tables = self.tables.lock();
            match table {
                Some(name) => {
                    let t = tables.get(name).ok_or_else(|| {
                        EngineError::plan(format!("CHECKPOINT: unknown durable table '{name}'"))
                    })?;
                    vec![(name.to_string(), Arc::clone(t))]
                }
                None => {
                    let mut all: Vec<_> = tables
                        .iter()
                        .map(|(n, t)| (n.clone(), Arc::clone(t)))
                        .collect();
                    all.sort_by(|a, b| a.0.cmp(&b.0));
                    all
                }
            }
        };
        let mut done = Vec::with_capacity(targets.len());
        for (name, t) in &targets {
            self.checkpoint_one(name, t)?;
            done.push(name.clone());
        }
        Ok(done)
    }
}

/// An engine session with the durability layer attached. See the module
/// docs; construct with [`DurableSession::open`].
pub struct DurableSession {
    session: Session,
    state: Arc<DurableState>,
    data_dir: PathBuf,
}

impl std::fmt::Debug for DurableSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DurableSession")
            .field("data_dir", &self.data_dir)
            .field("level", &self.state.level)
            .field("tables", &self.table_names())
            .finish()
    }
}

impl DurableSession {
    /// Open (or create) the durable store at `config.data_dir` and
    /// recover every table found there.
    ///
    /// # Errors
    /// - `Durability` when `data_dir` is unset, collides with a
    ///   non-directory path, or is not writable;
    /// - `Corrupt` when a manifest or snapshot fails validation;
    /// - any replay error surfaced by the regular append path.
    pub fn open(config: EngineConfig) -> Result<Self> {
        let Some(data_dir) = config.data_dir.clone() else {
            return Err(EngineError::durability(
                "DurableSession::open requires EngineConfig::data_dir",
            ));
        };
        validate_data_dir(&data_dir)?;
        let level = config.durability;
        let session = Session::with_config(config);
        let state = Arc::new(DurableState {
            level,
            tables: Mutex::new(HashMap::new()),
        });
        let started = Instant::now();
        let mut replayed = 0u64;
        for name in table_dirs(&data_dir)? {
            let dir = data_dir.join(&name);
            replayed += recover_table(&session, &state, &name, &dir)?;
        }
        if idf_obs::enabled() {
            let m = idf_obs::global();
            m.recovery_duration_ns
                .record(started.elapsed().as_nanos() as u64);
            m.recovery_replayed_records.add(replayed);
        }
        session.set_durability_hook(Arc::clone(&state) as Arc<dyn DurabilityHook>);
        Ok(DurableSession {
            session,
            state,
            data_dir,
        })
    }

    /// The wrapped engine session (SQL, catalog, metrics…).
    pub fn session(&self) -> &Session {
        &self.session
    }

    /// The store's root directory.
    pub fn data_dir(&self) -> &Path {
        &self.data_dir
    }

    /// Parse and bind a SQL query — passthrough to [`Session::sql`].
    pub fn sql(&self, query: &str) -> Result<idf_engine::dataframe::DataFrame> {
        self.session.sql(query)
    }

    /// Checkpoint `table`, or every durable table when `None`; returns
    /// the names checkpointed. Equivalent to SQL `CHECKPOINT [table]`.
    pub fn checkpoint(&self, table: Option<&str>) -> Result<Vec<String>> {
        self.session.checkpoint(table)
    }

    /// Names of the durable tables, sorted.
    pub fn table_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.state.tables.lock().keys().cloned().collect();
        names.sort();
        names
    }

    /// The indexed handle for a recovered or created durable table.
    pub fn dataframe(&self, name: &str) -> Result<IndexedDataFrame> {
        let tables = self.state.tables.lock();
        let t = tables
            .get(name)
            .ok_or_else(|| EngineError::plan(format!("unknown durable table '{name}'")))?;
        Ok(IndexedDataFrame::from_table(
            self.session.clone(),
            Arc::clone(&t.table),
        ))
    }

    /// Create a durable indexed table: its directory, an initial (empty)
    /// checkpoint so the table survives a crash before its first append,
    /// and its WAL; then register it for SQL like any indexed table.
    pub fn create_table(
        &self,
        name: &str,
        schema: SchemaRef,
        key_col: usize,
        config: IndexConfig,
    ) -> Result<IndexedDataFrame> {
        validate_table_name(name)?;
        let mut tables = self.state.tables.lock();
        if tables.contains_key(name) {
            return Err(EngineError::plan(format!(
                "durable table '{name}' already exists"
            )));
        }
        let dir = self.data_dir.join(name);
        if checkpoint::manifest_path(&dir).exists() {
            return Err(EngineError::durability(format!(
                "table directory {} already holds durable state",
                dir.display()
            )));
        }
        std::fs::create_dir_all(&dir).map_err(|e| {
            EngineError::durability(format!("creating table directory {}: {e}", dir.display()))
        })?;
        let table = Arc::new(IndexedTable::new(schema, key_col, config)?);
        // Empty checkpoint first: a crash between now and the first
        // successful checkpoint recovers an empty table plus the WAL tail.
        checkpoint::write_snapshot(&dir, 1, &table.snapshot(), table.config())?;
        checkpoint::write_manifest(&dir, 1)?;
        let (wal, records) = TableWal::open(&checkpoint::wal_path(&dir, 1), self.state.level)?;
        debug_assert!(records.is_empty(), "fresh table with a non-empty WAL");
        let wal = Arc::new(wal);
        if self.state.level != DurabilityLevel::None {
            table.set_append_sink(Arc::new(WalSink::new(Arc::clone(&wal))));
        }
        tables.insert(
            name.to_string(),
            Arc::new(DurableTable {
                table: Arc::clone(&table),
                wal,
                dir,
            }),
        );
        drop(tables);
        let df = IndexedDataFrame::from_table(self.session.clone(), table);
        df.register(name);
        Ok(df)
    }
}

/// Restore one table directory: checkpoint, WAL replay, registration.
/// Returns the number of WAL records replayed.
fn recover_table(
    session: &Session,
    state: &Arc<DurableState>,
    name: &str,
    dir: &Path,
) -> Result<u64> {
    let id = checkpoint::read_manifest(dir)?.ok_or_else(|| {
        EngineError::corrupt(format!("table directory {} has no manifest", dir.display()))
    })?;
    let table = Arc::new(checkpoint::load_table(dir, id)?);
    // The segment named by the manifest's id holds exactly the commits
    // made after that snapshot; a covered segment a crash left behind
    // has a different id and is never opened.
    let (wal, records) = TableWal::open(&checkpoint::wal_path(dir, id), state.level)?;
    let schema = table.schema();
    let mut replayed = 0u64;
    for record in &records {
        crate::failpoints::check(crate::failpoints::RECOVERY_REPLAY)?;
        let mut rows = Vec::with_capacity(record.rows.len());
        for payload in &record.rows {
            rows.push(table.decode_payload(payload)?);
        }
        let chunk = Chunk::from_rows(&schema, &rows)?;
        // Replaying through the regular append path re-runs routing,
        // validation and the two-phase publish, so recovered state obeys
        // every invariant live appends do.
        table.append_chunk(&chunk)?;
        replayed += 1;
    }
    // Sink goes in only now: replayed records must not be re-logged.
    let wal = Arc::new(wal);
    if state.level != DurabilityLevel::None {
        table.set_append_sink(Arc::new(WalSink::new(Arc::clone(&wal))));
    }
    state.tables.lock().insert(
        name.to_string(),
        Arc::new(DurableTable {
            table: Arc::clone(&table),
            wal,
            dir: dir.to_path_buf(),
        }),
    );
    let df = IndexedDataFrame::from_table(session.clone(), table);
    df.register(name);
    Ok(replayed)
}

/// Table directories under `data_dir`: immediate subdirectories holding a
/// manifest. Anything else (probe files, litter) is ignored.
fn table_dirs(data_dir: &Path) -> Result<Vec<String>> {
    let entries = std::fs::read_dir(data_dir).map_err(|e| {
        EngineError::durability(format!("reading data_dir {}: {e}", data_dir.display()))
    })?;
    let mut names = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| {
            EngineError::durability(format!("reading data_dir {}: {e}", data_dir.display()))
        })?;
        let path = entry.path();
        if !path.is_dir() || !checkpoint::manifest_path(&path).exists() {
            continue;
        }
        match entry.file_name().into_string() {
            Ok(name) => names.push(name),
            Err(raw) => {
                return Err(EngineError::corrupt(format!(
                    "table directory with non-UTF-8 name {raw:?} in {}",
                    data_dir.display()
                )))
            }
        }
    }
    names.sort();
    Ok(names)
}

/// Create `data_dir` if absent and verify it is a writable directory.
fn validate_data_dir(dir: &Path) -> Result<()> {
    if dir.exists() && !dir.is_dir() {
        return Err(EngineError::durability(format!(
            "data_dir {} exists and is not a directory",
            dir.display()
        )));
    }
    std::fs::create_dir_all(dir).map_err(|e| {
        EngineError::durability(format!("creating data_dir {}: {e}", dir.display()))
    })?;
    let probe = dir.join(".idf-write-probe");
    std::fs::write(&probe, b"ok").map_err(|e| {
        EngineError::durability(format!("data_dir {} is not writable: {e}", dir.display()))
    })?;
    let _ = std::fs::remove_file(&probe);
    Ok(())
}

/// Durable table names become directory names, so they are restricted to
/// a filesystem-safe alphabet.
fn validate_table_name(name: &str) -> Result<()> {
    let ok = !name.is_empty()
        && name.len() <= 128
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-');
    if ok {
        Ok(())
    } else {
        Err(EngineError::plan(format!(
            "invalid durable table name {name:?}: use up to 128 ASCII letters, digits, '_' or '-'"
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TempDir;
    use idf_engine::schema::{Field, Schema};
    use idf_engine::types::{DataType, Value};

    fn cfg(dir: &Path, level: DurabilityLevel) -> EngineConfig {
        EngineConfig {
            data_dir: Some(dir.to_path_buf()),
            durability: level,
            ..EngineConfig::default()
        }
    }

    fn people_schema() -> SchemaRef {
        Arc::new(Schema::new(vec![
            Field::required("id", DataType::Int64),
            Field::new("name", DataType::Utf8),
        ]))
    }

    fn small_index() -> IndexConfig {
        IndexConfig {
            num_partitions: 4,
            ..IndexConfig::default()
        }
    }

    #[test]
    fn open_requires_and_validates_data_dir() {
        let err = DurableSession::open(EngineConfig::default()).unwrap_err();
        assert!(err.to_string().contains("data_dir"), "{err}");
        // Colliding with a plain file is a typed error.
        let dir = TempDir::new("sess-collide");
        let file = dir.path().join("not-a-dir");
        std::fs::write(&file, b"x").unwrap();
        let err = DurableSession::open(cfg(&file, DurabilityLevel::Sync)).unwrap_err();
        assert!(err.to_string().contains("not a directory"), "{err}");
        // A missing directory is created.
        let fresh = dir.path().join("a").join("b");
        let sess = DurableSession::open(cfg(&fresh, DurabilityLevel::Sync)).unwrap();
        assert!(fresh.is_dir());
        assert!(sess.table_names().is_empty());
    }

    #[test]
    fn table_names_are_validated() {
        let dir = TempDir::new("sess-names");
        let sess = DurableSession::open(cfg(dir.path(), DurabilityLevel::Sync)).unwrap();
        for bad in ["", "a/b", "..", "a b", "naïve"] {
            let err = sess
                .create_table(bad, people_schema(), 0, small_index())
                .unwrap_err();
            assert!(err.to_string().contains("table name"), "{bad:?}: {err}");
        }
        sess.create_table("ok_name-1", people_schema(), 0, small_index())
            .unwrap();
    }

    #[test]
    fn sync_appends_survive_reopen_without_checkpoint() {
        let dir = TempDir::new("sess-reopen");
        {
            let sess = DurableSession::open(cfg(dir.path(), DurabilityLevel::Sync)).unwrap();
            let df = sess
                .create_table("people", people_schema(), 0, small_index())
                .unwrap();
            for i in 0..200i64 {
                df.append_row(&[Value::Int64(i % 40), Value::Utf8(format!("p{i}"))])
                    .unwrap();
            }
        }
        let sess = DurableSession::open(cfg(dir.path(), DurabilityLevel::Sync)).unwrap();
        assert_eq!(sess.table_names(), vec!["people".to_string()]);
        let df = sess.dataframe("people").unwrap();
        assert_eq!(df.table().row_count(), 200);
        let rows = df.get_rows(7i64).unwrap().collect().unwrap();
        assert_eq!(rows.len(), 5);
        // SQL works on the recovered table.
        let out = sess
            .sql("SELECT COUNT(*) FROM people")
            .unwrap()
            .collect()
            .unwrap();
        assert_eq!(out.to_rows()[0][0], Value::Int64(200));
    }

    #[test]
    fn checkpoint_rotates_wal_and_reopen_restores_from_snapshot() {
        let dir = TempDir::new("sess-ckpt");
        {
            let sess = DurableSession::open(cfg(dir.path(), DurabilityLevel::Sync)).unwrap();
            let df = sess
                .create_table("people", people_schema(), 0, small_index())
                .unwrap();
            for i in 0..100i64 {
                df.append_row(&[Value::Int64(i), Value::Utf8(format!("p{i}"))])
                    .unwrap();
            }
            let done = sess.checkpoint(None).unwrap();
            assert_eq!(done, vec!["people".to_string()]);
            // Creation wrote checkpoint 1, so this checkpoint is id 2:
            // the covered segment is gone, the paired one starts empty.
            let tdir = dir.path().join("people");
            assert!(!checkpoint::wal_path(&tdir, 1).exists());
            let wal = checkpoint::wal_path(&tdir, 2);
            assert_eq!(std::fs::metadata(&wal).unwrap().len(), 0);
            // Post-checkpoint appends land in the fresh segment.
            df.append_row(&[Value::Int64(100), Value::Utf8("tail".into())])
                .unwrap();
            assert!(std::fs::metadata(&wal).unwrap().len() > 0);
        }
        let sess = DurableSession::open(cfg(dir.path(), DurabilityLevel::Sync)).unwrap();
        assert_eq!(sess.dataframe("people").unwrap().table().row_count(), 101);
    }

    /// The exact crash window rotation exists for: the manifest has
    /// flipped to the new checkpoint, but the covered segment was never
    /// deleted. Recovery must ignore it — replaying it would duplicate
    /// every row the snapshot already contains.
    #[test]
    fn covered_wal_segment_left_by_crash_is_not_replayed() {
        let dir = TempDir::new("sess-crashwin");
        let tdir = dir.path().join("people");
        let covered;
        {
            let sess = DurableSession::open(cfg(dir.path(), DurabilityLevel::Sync)).unwrap();
            let df = sess
                .create_table("people", people_schema(), 0, small_index())
                .unwrap();
            for i in 0..50i64 {
                df.append_row(&[Value::Int64(i), Value::Utf8(format!("p{i}"))])
                    .unwrap();
            }
            // Capture segment 1's bytes (all 50 appends), checkpoint to
            // id 2, then resurrect segment 1 as the crash would have
            // left it.
            covered = std::fs::read(checkpoint::wal_path(&tdir, 1)).unwrap();
            assert!(!covered.is_empty());
            sess.checkpoint(Some("people")).unwrap();
        }
        std::fs::write(checkpoint::wal_path(&tdir, 1), &covered).unwrap();
        let sess = DurableSession::open(cfg(dir.path(), DurabilityLevel::Sync)).unwrap();
        let df = sess.dataframe("people").unwrap();
        assert_eq!(df.table().row_count(), 50, "covered segment replayed");
        for key in [0i64, 25, 49] {
            let rows = df.get_rows(key).unwrap().collect().unwrap();
            assert_eq!(rows.len(), 1, "key {key} duplicated");
        }
        // The next checkpoint sweeps the stale segment.
        sess.checkpoint(Some("people")).unwrap();
        assert!(!checkpoint::wal_path(&tdir, 1).exists());
    }

    #[test]
    fn checkpoint_via_sql_and_unknown_table_is_typed() {
        let dir = TempDir::new("sess-sql-ckpt");
        let sess = DurableSession::open(cfg(dir.path(), DurabilityLevel::Async)).unwrap();
        sess.create_table("t1", people_schema(), 0, small_index())
            .unwrap();
        let out = sess.sql("CHECKPOINT t1").unwrap().collect().unwrap();
        assert_eq!(out.to_rows(), vec![vec![Value::Utf8("t1".into())]]);
        let err = sess.sql("CHECKPOINT nope").err().unwrap();
        assert!(err.to_string().contains("unknown durable table"), "{err}");
    }

    #[test]
    fn level_none_is_checkpoint_only() {
        let dir = TempDir::new("sess-none");
        {
            let sess = DurableSession::open(cfg(dir.path(), DurabilityLevel::None)).unwrap();
            let df = sess
                .create_table("t", people_schema(), 0, small_index())
                .unwrap();
            df.append_row(&[Value::Int64(1), Value::Utf8("kept".into())])
                .unwrap();
            sess.checkpoint(Some("t")).unwrap();
            df.append_row(&[Value::Int64(2), Value::Utf8("lost".into())])
                .unwrap();
            // No WAL sink at level None: the post-checkpoint row is
            // volatile and the rotated segment (checkpoint id 2) stays
            // empty.
            let wal = checkpoint::wal_path(&dir.path().join("t"), 2);
            assert_eq!(std::fs::metadata(&wal).unwrap().len(), 0);
        }
        let sess = DurableSession::open(cfg(dir.path(), DurabilityLevel::None)).unwrap();
        assert_eq!(sess.dataframe("t").unwrap().table().row_count(), 1);
    }

    #[test]
    fn duplicate_create_is_rejected() {
        let dir = TempDir::new("sess-dup");
        let sess = DurableSession::open(cfg(dir.path(), DurabilityLevel::Sync)).unwrap();
        sess.create_table("t", people_schema(), 0, small_index())
            .unwrap();
        let err = sess
            .create_table("t", people_schema(), 0, small_index())
            .unwrap_err();
        assert!(err.to_string().contains("already exists"), "{err}");
    }
}
