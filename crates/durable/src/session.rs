//! The durable session: open-with-recovery, durable table creation, and
//! the hooks behind `CHECKPOINT`, `SCRUB` and `resume_writes`.
//!
//! A [`DurableSession`] wraps the regular engine [`Session`]. Opening one
//! validates (creating if absent) `EngineConfig::data_dir`, then for every
//! table directory found there: restores the authoritative checkpoint,
//! replays the contiguous WAL-segment chain at-or-after the manifest id
//! through the ordinary two-phase append path (so PR-2's
//! no-partial-visibility invariant holds during recovery too), and
//! registers the table for SQL — point lookups, indexed joins and scans
//! work on the recovered data exactly as they did before the crash.
//!
//! The append sink is installed *after* replay, so replayed records are
//! not re-logged; at [`DurabilityLevel::None`] no sink is installed at all
//! and durability is checkpoint-only.
//!
//! Every file operation goes through the [`StorageIo`] seam:
//! [`DurableSession::open`] uses the real filesystem, and
//! [`DurableSession::open_with_io`] accepts any implementation — the
//! simulation harness opens sessions against [`crate::sim::SimIo`] and
//! crash-tests the whole stack in microseconds per schedule.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

use idf_core::api::IndexedDataFrame;
use idf_core::config::IndexConfig;
use idf_core::sink::{RowKind, SinkStatus};
use idf_core::table::IndexedTable;
use idf_engine::chunk::Chunk;
use idf_engine::config::{DurabilityLevel, EngineConfig};
use idf_engine::error::{EngineError, Result};
use idf_engine::schema::SchemaRef;
use idf_engine::session::{DurabilityHook, ScrubRow, Session};

use parking_lot::Mutex;

use crate::checkpoint;
use crate::io::{OsIo, StorageIo};
use crate::scrub;
use crate::wal::{TableWal, WalRecord, WalSink};

/// One durable table: the live in-memory table, its WAL, and its
/// directory on disk.
struct DurableTable {
    table: Arc<IndexedTable>,
    /// Kept even at [`DurabilityLevel::None`] so checkpoints can quiesce
    /// and rotate a WAL left behind by an earlier session at a stricter
    /// level.
    wal: Arc<TableWal>,
    dir: PathBuf,
}

/// Shared durable state; installed into the engine session as its
/// [`DurabilityHook`], so `CHECKPOINT` / `SCRUB` / `resume_writes` (SQL
/// or programmatic) land here.
struct DurableState {
    level: DurabilityLevel,
    io: Arc<dyn StorageIo>,
    tables: Mutex<HashMap<String, Arc<DurableTable>>>,
}

impl DurableState {
    /// Resolve `table` (or all tables, sorted) into checkpoint/scrub
    /// targets.
    fn targets(&self, table: Option<&str>, verb: &str) -> Result<Vec<(String, Arc<DurableTable>)>> {
        let tables = self.tables.lock();
        match table {
            Some(name) => {
                let t = tables.get(name).ok_or_else(|| {
                    EngineError::plan(format!("{verb}: unknown durable table '{name}'"))
                })?;
                Ok(vec![(name.to_string(), Arc::clone(t))])
            }
            None => {
                let mut all: Vec<_> = tables
                    .iter()
                    .map(|(n, t)| (n.clone(), Arc::clone(t)))
                    .collect();
                all.sort_by(|a, b| a.0.cmp(&b.0));
                Ok(all)
            }
        }
    }

    /// Snapshot phase of a checkpoint: pick the next id and write the
    /// snapshot, inside the WAL's quiesced window (which also serializes
    /// concurrent checkpointers, so the id picked here cannot race). The
    /// manifest flip is the separate publish phase, run by the WAL after
    /// it has rotated onto the new segment.
    fn prepare_checkpoint(&self, t: &DurableTable) -> Result<(u64, PathBuf)> {
        let io = self.io.as_ref();
        let id = checkpoint::next_checkpoint_id(io, &t.dir)?;
        checkpoint::write_snapshot(io, &t.dir, id, &t.table.snapshot(), t.table.config())?;
        Ok((id, checkpoint::wal_path(&t.dir, id)))
    }

    fn checkpoint_one(&self, t: &DurableTable) -> Result<()> {
        let started = Instant::now();
        // Quiesce the WAL (every logged commit flushed *and* published),
        // snapshot, rotate to the segment paired with the new id, then
        // flip the manifest. Recovery replays the contiguous segment
        // chain at-or-after the manifest id, so whichever side of the
        // flip a crash lands on, the chain from the surviving manifest
        // is complete. At `DurabilityLevel::None` the WAL is trivially
        // drained and this degrades to snapshot-plus-rotate.
        let id = t.wal.quiesce_and_rotate(
            || self.prepare_checkpoint(t),
            |id| checkpoint::write_manifest(self.io.as_ref(), &t.dir, *id),
        )?;
        checkpoint::remove_stale_files(self.io.as_ref(), &t.dir, id);
        if idf_obs::enabled() {
            idf_obs::global()
                .checkpoint_duration_ns
                .record(started.elapsed().as_nanos() as u64);
        }
        Ok(())
    }

    fn scrub_one(&self, name: &str, t: &DurableTable) -> Result<Vec<ScrubRow>> {
        // The quiesced window stops appends from landing in the live
        // segment mid-walk; a degraded WAL is trivially quiesced, which
        // is exactly when scrubbing matters most.
        let entries = t
            .wal
            .quiesce(|| scrub::scrub_table_dir(self.io.as_ref(), &t.dir, true))?;
        Ok(entries
            .into_iter()
            .map(|e| ScrubRow {
                table: name.to_string(),
                target: e.target,
                status: e.status,
                detail: e.detail,
            })
            .collect())
    }

    fn resume_one(&self, t: &DurableTable) -> Result<()> {
        crate::failpoints::check(crate::failpoints::WAL_RESUME)?;
        // Re-arming takes a *fresh checkpoint*: a degraded WAL may have
        // lost acknowledged-`Async` frames the in-memory table still
        // holds, so the only safe way back to a writable state is to
        // re-anchor disk at the current memory image and start a clean
        // segment.
        let id = t.wal.rearm(
            || self.prepare_checkpoint(t),
            |id| checkpoint::write_manifest(self.io.as_ref(), &t.dir, *id),
        )?;
        checkpoint::remove_stale_files(self.io.as_ref(), &t.dir, id);
        Ok(())
    }
}

impl DurabilityHook for DurableState {
    fn checkpoint(&self, table: Option<&str>) -> Result<Vec<String>> {
        let targets = self.targets(table, "CHECKPOINT")?;
        let mut done = Vec::with_capacity(targets.len());
        for (name, t) in &targets {
            self.checkpoint_one(t)?;
            done.push(name.clone());
        }
        Ok(done)
    }

    fn scrub(&self, table: Option<&str>) -> Result<Vec<ScrubRow>> {
        let targets = self.targets(table, "SCRUB")?;
        let mut rows = Vec::new();
        for (name, t) in &targets {
            rows.extend(self.scrub_one(name, t)?);
        }
        Ok(rows)
    }

    fn resume_writes(&self, table: Option<&str>) -> Result<Vec<String>> {
        let targets = self.targets(table, "resume_writes")?;
        let mut done = Vec::with_capacity(targets.len());
        for (name, t) in &targets {
            self.resume_one(t)?;
            done.push(name.clone());
        }
        Ok(done)
    }
}

/// An engine session with the durability layer attached. See the module
/// docs; construct with [`DurableSession::open`].
pub struct DurableSession {
    session: Session,
    state: Arc<DurableState>,
    data_dir: PathBuf,
}

impl std::fmt::Debug for DurableSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DurableSession")
            .field("data_dir", &self.data_dir)
            .field("level", &self.state.level)
            .field("tables", &self.table_names())
            .finish()
    }
}

impl DurableSession {
    /// Open (or create) the durable store at `config.data_dir` on the
    /// real filesystem and recover every table found there.
    ///
    /// # Errors
    /// - `Durability` when `data_dir` is unset, collides with a
    ///   non-directory path, or is not writable;
    /// - `Corrupt` when a manifest, snapshot or segment chain fails
    ///   validation;
    /// - any replay error surfaced by the regular append path.
    pub fn open(config: EngineConfig) -> Result<Self> {
        Self::open_with_io(config, Arc::new(OsIo))
    }

    /// [`DurableSession::open`] against an explicit [`StorageIo`] — the
    /// simulation harness passes [`crate::sim::SimIo`] here and runs the
    /// entire durability stack against the deterministic in-memory disk.
    pub fn open_with_io(config: EngineConfig, io: Arc<dyn StorageIo>) -> Result<Self> {
        let Some(data_dir) = config.data_dir.clone() else {
            return Err(EngineError::durability(
                "DurableSession::open requires EngineConfig::data_dir",
            ));
        };
        validate_data_dir(io.as_ref(), &data_dir)?;
        let level = config.durability;
        let session = Session::with_config(config);
        let state = Arc::new(DurableState {
            level,
            io,
            tables: Mutex::new(HashMap::new()),
        });
        let started = Instant::now();
        let mut replayed = 0u64;
        for name in table_dirs(state.io.as_ref(), &data_dir)? {
            let dir = data_dir.join(&name);
            replayed += recover_table(&session, &state, &name, &dir)?;
        }
        if idf_obs::enabled() {
            let m = idf_obs::global();
            m.recovery_duration_ns
                .record(started.elapsed().as_nanos() as u64);
            m.recovery_replayed_records.add(replayed);
        }
        session.set_durability_hook(Arc::clone(&state) as Arc<dyn DurabilityHook>);
        Ok(DurableSession {
            session,
            state,
            data_dir,
        })
    }

    /// The wrapped engine session (SQL, catalog, metrics…).
    pub fn session(&self) -> &Session {
        &self.session
    }

    /// The store's root directory.
    pub fn data_dir(&self) -> &Path {
        &self.data_dir
    }

    /// Parse and bind a SQL query — passthrough to [`Session::sql`].
    pub fn sql(&self, query: &str) -> Result<idf_engine::dataframe::DataFrame> {
        self.session.sql(query)
    }

    /// Checkpoint `table`, or every durable table when `None`; returns
    /// the names checkpointed. Equivalent to SQL `CHECKPOINT [table]`.
    pub fn checkpoint(&self, table: Option<&str>) -> Result<Vec<String>> {
        self.session.checkpoint(table)
    }

    /// Verify the on-disk state of `table` (or all durable tables):
    /// re-walk manifest, snapshots and WAL segments checking CRCs,
    /// quarantine a corrupt snapshot and fall back to the previous valid
    /// generation. Equivalent to SQL `SCRUB [table]`.
    pub fn scrub(&self, table: Option<&str>) -> Result<Vec<ScrubRow>> {
        self.session.scrub(table)
    }

    /// Re-arm writes on `table` (or all durable tables) after a
    /// read-only degradation: take a fresh checkpoint and rotate to a
    /// clean segment so appends are accepted again.
    pub fn resume_writes(&self, table: Option<&str>) -> Result<Vec<String>> {
        self.session.resume_writes(table)
    }

    /// Whether `name` currently accepts appends, with the degradation
    /// cause when it does not.
    pub fn write_status(&self, name: &str) -> Result<SinkStatus> {
        let tables = self.state.tables.lock();
        let t = tables
            .get(name)
            .ok_or_else(|| EngineError::plan(format!("unknown durable table '{name}'")))?;
        Ok(t.table.write_status())
    }

    /// Names of the durable tables, sorted.
    pub fn table_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.state.tables.lock().keys().cloned().collect();
        names.sort();
        names
    }

    /// The indexed handle for a recovered or created durable table.
    pub fn dataframe(&self, name: &str) -> Result<IndexedDataFrame> {
        let tables = self.state.tables.lock();
        let t = tables
            .get(name)
            .ok_or_else(|| EngineError::plan(format!("unknown durable table '{name}'")))?;
        Ok(IndexedDataFrame::from_table(
            self.session.clone(),
            Arc::clone(&t.table),
        ))
    }

    /// Create a durable indexed table: its directory, an initial (empty)
    /// checkpoint so the table survives a crash before its first append,
    /// and its WAL; then register it for SQL like any indexed table.
    pub fn create_table(
        &self,
        name: &str,
        schema: SchemaRef,
        key_col: usize,
        config: IndexConfig,
    ) -> Result<IndexedDataFrame> {
        validate_table_name(name)?;
        let io = Arc::clone(&self.state.io);
        let mut tables = self.state.tables.lock();
        if tables.contains_key(name) {
            return Err(EngineError::plan(format!(
                "durable table '{name}' already exists"
            )));
        }
        let dir = self.data_dir.join(name);
        if io.exists(&checkpoint::manifest_path(&dir)) {
            return Err(EngineError::durability(format!(
                "table directory {} already holds durable state",
                dir.display()
            )));
        }
        io.create_dir_all(&dir).map_err(|e| {
            EngineError::durability(format!("creating table directory {}: {e}", dir.display()))
        })?;
        let table = Arc::new(IndexedTable::new(schema, key_col, config)?);
        // Empty checkpoint first: a crash between now and the first
        // successful checkpoint recovers an empty table plus the WAL tail.
        checkpoint::write_snapshot(io.as_ref(), &dir, 1, &table.snapshot(), table.config())?;
        checkpoint::write_manifest(io.as_ref(), &dir, 1)?;
        // A create that failed between writing its segment and landing
        // its manifest leaves a stale `wal-1.log` behind; the missing
        // manifest makes the directory dead, so clear the leftover
        // before arming the fresh log.
        let wal_path = checkpoint::wal_path(&dir, 1);
        if io.exists(&wal_path) {
            io.remove_file(&wal_path).map_err(|e| {
                EngineError::durability(format!(
                    "clearing stale segment {}: {e}",
                    wal_path.display()
                ))
            })?;
        }
        let (wal, records) = TableWal::open(Arc::clone(&io), &wal_path, self.state.level)?;
        if !records.is_empty() {
            return Err(EngineError::corrupt(format!(
                "fresh table segment {} is unexpectedly non-empty",
                wal_path.display()
            )));
        }
        let wal = Arc::new(wal);
        if self.state.level != DurabilityLevel::None {
            table.set_append_sink(Arc::new(WalSink::new(Arc::clone(&wal))));
        }
        tables.insert(
            name.to_string(),
            Arc::new(DurableTable {
                table: Arc::clone(&table),
                wal,
                dir,
            }),
        );
        drop(tables);
        let df = IndexedDataFrame::from_table(self.session.clone(), table);
        df.register(name);
        Ok(df)
    }
}

/// Restore one table directory: checkpoint, WAL-chain replay,
/// registration. Returns the number of WAL records replayed.
fn recover_table(
    session: &Session,
    state: &Arc<DurableState>,
    name: &str,
    dir: &Path,
) -> Result<u64> {
    let io = state.io.as_ref();
    let id = checkpoint::read_manifest(io, dir)?.ok_or_else(|| {
        EngineError::corrupt(format!("table directory {} has no manifest", dir.display()))
    })?;
    let table = Arc::new(checkpoint::load_table(io, dir, id)?);
    // Replay every segment at-or-after the manifest id, ascending.
    // Normally that is just `wal-<id>.log`; after a scrub fallback (or a
    // fault that stopped a checkpoint between the manifest flip and GC)
    // there can be several, each covering the commits made while it was
    // live — together a complete continuation of the restored image. Id
    // gaps are benign, not loss: a checkpoint attempt that fails after
    // writing its snapshot burns the id without ever creating the
    // matching segment, while a segment that ever accepted a commit has
    // a durable directory entry (creation dir-fsyncs before the swap
    // completes, and a failed dir-fsync aborts the rotation), so
    // acknowledged commits cannot hide in a gap.
    let chain: Vec<u64> = checkpoint::list_segment_ids(io, dir)?
        .into_iter()
        .filter(|&s| s >= id)
        .collect();
    // All but the newest segment are closed history: read them outright.
    // The newest becomes the live WAL (torn tail truncated, writer
    // started) and contributes its surviving records the same way.
    let last = chain.last().copied().unwrap_or(id);
    let live_path = checkpoint::wal_path(dir, last);
    let (_, live_valid) = crate::wal::read_records(io, &live_path)?;
    let mut scans = Vec::with_capacity(chain.len().saturating_sub(1));
    for &seg in chain.iter().take(chain.len().saturating_sub(1)) {
        let path = checkpoint::wal_path(dir, seg);
        let (segment_records, valid_len) = crate::wal::read_records(io, &path)?;
        let total = io.file_len(&path).map_err(|e| {
            EngineError::durability(format!("sizing WAL segment {}: {e}", path.display()))
        })?;
        scans.push((path, segment_records, valid_len, total));
    }
    let mut records: Vec<WalRecord> = Vec::new();
    for k in 0..scans.len() {
        if scans[k].2 != scans[k].3 {
            // Bytes past the valid prefix of a historical segment. A
            // segment rotated into history was quiesced and trimmed to
            // its durable prefix first, so normally this is at-rest
            // corruption — with one exception: an *aborted* rotation
            // (the fresh segment was created but the swap failed) leaves
            // the old segment live, where it may gain a torn unsynced
            // tail at the next crash, while the stillborn successors
            // never receive a single commit. The two cases are told
            // apart by what follows: commits after this segment prove a
            // completed rotation (which would have trimmed it), so any
            // later data means corruption; all-empty successors mean the
            // tail is a crash artifact, healed here exactly the way the
            // live segment's tail is (truncate and flush — idempotent,
            // and only ever dropping bytes past the last decodable
            // frame, which no acknowledged commit can be in).
            let (path, _, valid, total) = &scans[k];
            let later_data = live_valid > 0 || scans[k + 1..].iter().any(|s| s.2 > 0);
            if later_data {
                return Err(EngineError::corrupt(format!(
                    "WAL segment {} is corrupt: {} readable bytes of {} (run SCRUB)",
                    path.display(),
                    valid,
                    total
                )));
            }
            io.set_len(path, *valid).map_err(|e| {
                EngineError::durability(format!(
                    "truncating aborted-rotation WAL tail of {}: {e}",
                    path.display()
                ))
            })?;
            io.sync_file(path).map_err(|e| {
                EngineError::durability(format!("flushing truncated WAL {}: {e}", path.display()))
            })?;
        }
        records.append(&mut scans[k].1);
    }
    let (wal, tail) = TableWal::open(
        Arc::clone(&state.io),
        &checkpoint::wal_path(dir, last),
        state.level,
    )?;
    records.extend(tail);
    let schema = table.schema();
    let mut replayed = 0u64;
    for record in &records {
        crate::failpoints::check(crate::failpoints::RECOVERY_REPLAY)?;
        if !record.kinds.is_empty() {
            // DML record: replay each payload with its logged kind so
            // tombstones land as tombstones and version order (the
            // record's publish order) is preserved.
            let kinds = record
                .kinds
                .iter()
                .map(|&k| {
                    RowKind::from_u8(k).ok_or_else(|| {
                        EngineError::corrupt(format!("WAL DML record carries unknown row kind {k}"))
                    })
                })
                .collect::<Result<Vec<_>>>()?;
            table.replay_dml(&record.rows, &kinds)?;
            replayed += 1;
            continue;
        }
        let mut rows = Vec::with_capacity(record.rows.len());
        for payload in &record.rows {
            rows.push(table.decode_payload(payload)?);
        }
        let chunk = Chunk::from_rows(&schema, &rows)?;
        // Replaying through the regular append path re-runs routing,
        // validation and the two-phase publish, so recovered state obeys
        // every invariant live appends do.
        table.append_chunk(&chunk)?;
        replayed += 1;
    }
    // Sink goes in only now: replayed records must not be re-logged.
    let wal = Arc::new(wal);
    if state.level != DurabilityLevel::None {
        table.set_append_sink(Arc::new(WalSink::new(Arc::clone(&wal))));
    }
    state.tables.lock().insert(
        name.to_string(),
        Arc::new(DurableTable {
            table: Arc::clone(&table),
            wal,
            dir: dir.to_path_buf(),
        }),
    );
    let df = IndexedDataFrame::from_table(session.clone(), table);
    df.register(name);
    Ok(replayed)
}

/// Table directories under `data_dir`: immediate subdirectories holding a
/// manifest. Anything else (probe files, litter) is ignored.
fn table_dirs(io: &dyn StorageIo, data_dir: &Path) -> Result<Vec<String>> {
    let entries = io.read_dir(data_dir).map_err(|e| {
        EngineError::durability(format!("reading data_dir {}: {e}", data_dir.display()))
    })?;
    let mut names = Vec::new();
    for entry in entries {
        let path = data_dir.join(&entry.name);
        if !entry.is_dir || !io.exists(&checkpoint::manifest_path(&path)) {
            continue;
        }
        names.push(entry.name);
    }
    names.sort();
    Ok(names)
}

/// Create `data_dir` if absent and verify it is a writable directory.
fn validate_data_dir(io: &dyn StorageIo, dir: &Path) -> Result<()> {
    if io.exists(dir) && !io.is_dir(dir) {
        return Err(EngineError::durability(format!(
            "data_dir {} exists and is not a directory",
            dir.display()
        )));
    }
    io.create_dir_all(dir).map_err(|e| {
        EngineError::durability(format!("creating data_dir {}: {e}", dir.display()))
    })?;
    let probe = dir.join(".idf-write-probe");
    io.write(&probe, b"ok").map_err(|e| {
        EngineError::durability(format!("data_dir {} is not writable: {e}", dir.display()))
    })?;
    let _ = io.remove_file(&probe);
    Ok(())
}

/// Durable table names become directory names, so they are restricted to
/// a filesystem-safe alphabet.
fn validate_table_name(name: &str) -> Result<()> {
    let ok = !name.is_empty()
        && name.len() <= 128
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-');
    if ok {
        Ok(())
    } else {
        Err(EngineError::plan(format!(
            "invalid durable table name {name:?}: use up to 128 ASCII letters, digits, '_' or '-'"
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TempDir;
    use idf_engine::schema::{Field, Schema};
    use idf_engine::types::{DataType, Value};

    fn cfg(dir: &Path, level: DurabilityLevel) -> EngineConfig {
        EngineConfig {
            data_dir: Some(dir.to_path_buf()),
            durability: level,
            ..EngineConfig::default()
        }
    }

    fn people_schema() -> SchemaRef {
        Arc::new(Schema::new(vec![
            Field::required("id", DataType::Int64),
            Field::new("name", DataType::Utf8),
        ]))
    }

    fn small_index() -> IndexConfig {
        IndexConfig {
            num_partitions: 4,
            ..IndexConfig::default()
        }
    }

    #[test]
    fn open_requires_and_validates_data_dir() {
        let err = DurableSession::open(EngineConfig::default()).unwrap_err();
        assert!(err.to_string().contains("data_dir"), "{err}");
        // Colliding with a plain file is a typed error.
        let dir = TempDir::new("sess-collide");
        let file = dir.path().join("not-a-dir");
        std::fs::write(&file, b"x").unwrap();
        let err = DurableSession::open(cfg(&file, DurabilityLevel::Sync)).unwrap_err();
        assert!(err.to_string().contains("not a directory"), "{err}");
        // A missing directory is created.
        let fresh = dir.path().join("a").join("b");
        let sess = DurableSession::open(cfg(&fresh, DurabilityLevel::Sync)).unwrap();
        assert!(fresh.is_dir());
        assert!(sess.table_names().is_empty());
    }

    #[test]
    fn table_names_are_validated() {
        let dir = TempDir::new("sess-names");
        let sess = DurableSession::open(cfg(dir.path(), DurabilityLevel::Sync)).unwrap();
        for bad in ["", "a/b", "..", "a b", "naïve"] {
            let err = sess
                .create_table(bad, people_schema(), 0, small_index())
                .unwrap_err();
            assert!(err.to_string().contains("table name"), "{bad:?}: {err}");
        }
        sess.create_table("ok_name-1", people_schema(), 0, small_index())
            .unwrap();
    }

    #[test]
    fn sync_appends_survive_reopen_without_checkpoint() {
        let dir = TempDir::new("sess-reopen");
        {
            let sess = DurableSession::open(cfg(dir.path(), DurabilityLevel::Sync)).unwrap();
            let df = sess
                .create_table("people", people_schema(), 0, small_index())
                .unwrap();
            for i in 0..200i64 {
                df.append_row(&[Value::Int64(i % 40), Value::Utf8(format!("p{i}"))])
                    .unwrap();
            }
        }
        let sess = DurableSession::open(cfg(dir.path(), DurabilityLevel::Sync)).unwrap();
        assert_eq!(sess.table_names(), vec!["people".to_string()]);
        let df = sess.dataframe("people").unwrap();
        assert_eq!(df.table().row_count(), 200);
        let rows = df.get_rows(7i64).unwrap().collect().unwrap();
        assert_eq!(rows.len(), 5);
        // SQL works on the recovered table.
        let out = sess
            .sql("SELECT COUNT(*) FROM people")
            .unwrap()
            .collect()
            .unwrap();
        assert_eq!(out.to_rows()[0][0], Value::Int64(200));
    }

    /// The full DML durability loop: UPDATE/DELETE through SQL, crash
    /// (drop) before any checkpoint, recover from WAL replay — deleted
    /// rows stay deleted, updated rows keep their new image. Then
    /// checkpoint and reopen again: the snapshot round-trips the row
    /// kinds bit-for-bit, so the answers do not change.
    #[test]
    fn dml_survives_reopen_with_and_without_checkpoint() {
        let dir = TempDir::new("sess-dml");
        {
            let sess = DurableSession::open(cfg(dir.path(), DurabilityLevel::Sync)).unwrap();
            let df = sess
                .create_table("people", people_schema(), 0, small_index())
                .unwrap();
            for i in 0..40i64 {
                df.append_row(&[Value::Int64(i), Value::Utf8(format!("p{i}"))])
                    .unwrap();
            }
            let out = sess
                .sql("DELETE FROM people WHERE id < 10")
                .unwrap()
                .collect()
                .unwrap();
            assert_eq!(out.to_rows()[0][0], Value::Int64(10));
            let out = sess
                .sql("UPDATE people SET name = 'renamed' WHERE id = 20")
                .unwrap()
                .collect()
                .unwrap();
            assert_eq!(out.to_rows()[0][0], Value::Int64(1));
        }
        let verify = |sess: &DurableSession| {
            let df = sess.dataframe("people").unwrap();
            for key in [0i64, 5, 9] {
                assert_eq!(
                    df.get_rows(key).unwrap().collect().unwrap().len(),
                    0,
                    "deleted key {key} resurrected"
                );
            }
            assert_eq!(df.get_rows(10i64).unwrap().collect().unwrap().len(), 1);
            let out = sess
                .sql("SELECT name FROM people WHERE id = 20")
                .unwrap()
                .collect()
                .unwrap();
            assert_eq!(out.to_rows(), vec![vec![Value::Utf8("renamed".into())]]);
            let out = sess
                .sql("SELECT COUNT(*) FROM people")
                .unwrap()
                .collect()
                .unwrap();
            assert_eq!(out.to_rows()[0][0], Value::Int64(30));
        };
        {
            let sess = DurableSession::open(cfg(dir.path(), DurabilityLevel::Sync)).unwrap();
            verify(&sess);
            sess.checkpoint(None).unwrap();
            // Post-checkpoint DML lands in the fresh segment and replays
            // on top of the snapshot.
            let out = sess
                .sql("DELETE FROM people WHERE id = 39")
                .unwrap()
                .collect()
                .unwrap();
            assert_eq!(out.to_rows()[0][0], Value::Int64(1));
        }
        let sess = DurableSession::open(cfg(dir.path(), DurabilityLevel::Sync)).unwrap();
        let df = sess.dataframe("people").unwrap();
        assert_eq!(df.get_rows(39i64).unwrap().collect().unwrap().len(), 0);
        let out = sess
            .sql("SELECT COUNT(*) FROM people")
            .unwrap()
            .collect()
            .unwrap();
        assert_eq!(out.to_rows()[0][0], Value::Int64(29));
    }

    #[test]
    fn checkpoint_rotates_wal_and_reopen_restores_from_snapshot() {
        let dir = TempDir::new("sess-ckpt");
        {
            let sess = DurableSession::open(cfg(dir.path(), DurabilityLevel::Sync)).unwrap();
            let df = sess
                .create_table("people", people_schema(), 0, small_index())
                .unwrap();
            for i in 0..100i64 {
                df.append_row(&[Value::Int64(i), Value::Utf8(format!("p{i}"))])
                    .unwrap();
            }
            let done = sess.checkpoint(None).unwrap();
            assert_eq!(done, vec!["people".to_string()]);
            // Creation wrote checkpoint 1, so this checkpoint is id 2.
            // The covered segment is *retained* as the previous
            // generation (scrub's fallback needs it); the paired new one
            // starts empty.
            let tdir = dir.path().join("people");
            assert!(
                checkpoint::wal_path(&tdir, 1).exists(),
                "previous generation retained"
            );
            assert!(checkpoint::snap_path(&tdir, 1).exists());
            let wal = checkpoint::wal_path(&tdir, 2);
            assert_eq!(std::fs::metadata(&wal).unwrap().len(), 0);
            // Post-checkpoint appends land in the fresh segment.
            df.append_row(&[Value::Int64(100), Value::Utf8("tail".into())])
                .unwrap();
            assert!(std::fs::metadata(&wal).unwrap().len() > 0);
            // A further checkpoint (id 3) retires generation 1.
            sess.checkpoint(None).unwrap();
            assert!(!checkpoint::wal_path(&tdir, 1).exists());
            assert!(!checkpoint::snap_path(&tdir, 1).exists());
            assert!(checkpoint::snap_path(&tdir, 2).exists());
        }
        let sess = DurableSession::open(cfg(dir.path(), DurabilityLevel::Sync)).unwrap();
        assert_eq!(sess.dataframe("people").unwrap().table().row_count(), 101);
    }

    /// The exact crash window rotation exists for: the manifest has
    /// flipped to the new checkpoint, but the covered segment still
    /// holds the pre-checkpoint commits. Recovery must not replay it —
    /// replaying would duplicate every row the snapshot already
    /// contains.
    #[test]
    fn covered_wal_segment_left_by_crash_is_not_replayed() {
        let dir = TempDir::new("sess-crashwin");
        let tdir = dir.path().join("people");
        {
            let sess = DurableSession::open(cfg(dir.path(), DurabilityLevel::Sync)).unwrap();
            let df = sess
                .create_table("people", people_schema(), 0, small_index())
                .unwrap();
            for i in 0..50i64 {
                df.append_row(&[Value::Int64(i), Value::Utf8(format!("p{i}"))])
                    .unwrap();
            }
            sess.checkpoint(Some("people")).unwrap();
            // Two-generation retention keeps segment 1 (all 50 appends)
            // on disk — exactly what the crash window used to leave.
            assert!(std::fs::metadata(checkpoint::wal_path(&tdir, 1))
                .map(|m| m.len() > 0)
                .unwrap_or(false));
        }
        let sess = DurableSession::open(cfg(dir.path(), DurabilityLevel::Sync)).unwrap();
        let df = sess.dataframe("people").unwrap();
        assert_eq!(df.table().row_count(), 50, "covered segment replayed");
        for key in [0i64, 25, 49] {
            let rows = df.get_rows(key).unwrap().collect().unwrap();
            assert_eq!(rows.len(), 1, "key {key} duplicated");
        }
        // The checkpoint after next sweeps the stale generation.
        sess.checkpoint(Some("people")).unwrap();
        sess.checkpoint(Some("people")).unwrap();
        assert!(!checkpoint::wal_path(&tdir, 1).exists());
    }

    #[test]
    fn checkpoint_via_sql_and_unknown_table_is_typed() {
        let dir = TempDir::new("sess-sql-ckpt");
        let sess = DurableSession::open(cfg(dir.path(), DurabilityLevel::Async)).unwrap();
        sess.create_table("t1", people_schema(), 0, small_index())
            .unwrap();
        let out = sess.sql("CHECKPOINT t1").unwrap().collect().unwrap();
        assert_eq!(out.to_rows(), vec![vec![Value::Utf8("t1".into())]]);
        let err = sess.sql("CHECKPOINT nope").err().unwrap();
        assert!(err.to_string().contains("unknown durable table"), "{err}");
    }

    #[test]
    fn scrub_via_sql_reports_clean_state_and_unknown_table_is_typed() {
        let dir = TempDir::new("sess-sql-scrub");
        let sess = DurableSession::open(cfg(dir.path(), DurabilityLevel::Sync)).unwrap();
        let df = sess
            .create_table("t1", people_schema(), 0, small_index())
            .unwrap();
        df.append_row(&[Value::Int64(1), Value::Utf8("a".into())])
            .unwrap();
        let out = sess.sql("SCRUB t1").unwrap().collect().unwrap();
        let rows = out.to_rows();
        assert!(rows.len() >= 3, "manifest + snapshot + segment: {rows:?}");
        for row in &rows {
            assert_eq!(row[0], Value::Utf8("t1".into()));
            assert_eq!(row[2], Value::Utf8("ok".into()), "{row:?}");
        }
        let err = sess.sql("SCRUB nope").err().unwrap();
        assert!(err.to_string().contains("unknown durable table"), "{err}");
        // Programmatic path agrees.
        assert!(sess.scrub(None).unwrap().iter().all(|r| r.status == "ok"));
    }

    #[test]
    fn level_none_is_checkpoint_only() {
        let dir = TempDir::new("sess-none");
        {
            let sess = DurableSession::open(cfg(dir.path(), DurabilityLevel::None)).unwrap();
            let df = sess
                .create_table("t", people_schema(), 0, small_index())
                .unwrap();
            df.append_row(&[Value::Int64(1), Value::Utf8("kept".into())])
                .unwrap();
            sess.checkpoint(Some("t")).unwrap();
            df.append_row(&[Value::Int64(2), Value::Utf8("lost".into())])
                .unwrap();
            // No WAL sink at level None: the post-checkpoint row is
            // volatile and the rotated segment (checkpoint id 2) stays
            // empty.
            let wal = checkpoint::wal_path(&dir.path().join("t"), 2);
            assert_eq!(std::fs::metadata(&wal).unwrap().len(), 0);
        }
        let sess = DurableSession::open(cfg(dir.path(), DurabilityLevel::None)).unwrap();
        assert_eq!(sess.dataframe("t").unwrap().table().row_count(), 1);
    }

    /// Mixed durability histories: rows written under `Sync`, the store
    /// reopened under `Async` for more rows, then reopened under `Sync`
    /// again — every acknowledged row survives each transition (clean
    /// drops flush the Async tail; the crash variants live in the
    /// simulation suite).
    #[test]
    fn recovery_across_mixed_durability_levels() {
        let dir = TempDir::new("sess-mixed");
        {
            let sess = DurableSession::open(cfg(dir.path(), DurabilityLevel::Sync)).unwrap();
            let df = sess
                .create_table("t", people_schema(), 0, small_index())
                .unwrap();
            for i in 0..30i64 {
                df.append_row(&[Value::Int64(i), Value::Utf8(format!("sync-{i}"))])
                    .unwrap();
            }
        }
        {
            let sess = DurableSession::open(cfg(dir.path(), DurabilityLevel::Async)).unwrap();
            let df = sess.dataframe("t").unwrap();
            assert_eq!(df.table().row_count(), 30);
            for i in 30..50i64 {
                df.append_row(&[Value::Int64(i), Value::Utf8(format!("async-{i}"))])
                    .unwrap();
            }
        }
        let sess = DurableSession::open(cfg(dir.path(), DurabilityLevel::Sync)).unwrap();
        let df = sess.dataframe("t").unwrap();
        assert_eq!(df.table().row_count(), 50);
        for key in [0i64, 29, 30, 49] {
            assert_eq!(df.get_rows(key).unwrap().collect().unwrap().len(), 1);
        }
        // And the table keeps accepting Sync appends.
        df.append_row(&[Value::Int64(50), Value::Utf8("post".into())])
            .unwrap();
    }

    #[test]
    fn duplicate_create_is_rejected() {
        let dir = TempDir::new("sess-dup");
        let sess = DurableSession::open(cfg(dir.path(), DurabilityLevel::Sync)).unwrap();
        sess.create_table("t", people_schema(), 0, small_index())
            .unwrap();
        let err = sess
            .create_table("t", people_schema(), 0, small_index())
            .unwrap_err();
        assert!(err.to_string().contains("already exists"), "{err}");
    }

    #[cfg(feature = "failpoints")]
    #[test]
    fn degraded_table_serves_reads_and_resume_writes_rearms() {
        let dir = TempDir::new("sess-degrade");
        let sess = DurableSession::open(cfg(dir.path(), DurabilityLevel::Sync)).unwrap();
        let df = sess
            .create_table("t", people_schema(), 0, small_index())
            .unwrap();
        for i in 0..20i64 {
            df.append_row(&[Value::Int64(i), Value::Utf8(format!("p{i}"))])
                .unwrap();
        }
        // One injected fsync failure degrades the WAL...
        {
            let _guard = idf_fail::FailGuard::new(
                crate::failpoints::WAL_FSYNC,
                idf_fail::FailConfig::error("disk died").times(1),
            );
            let err = df
                .append_row(&[Value::Int64(20), Value::Utf8("doomed".into())])
                .unwrap_err();
            assert!(matches!(err, EngineError::ReadOnly(_)), "{err:?}");
        }
        // ...stickily: appends keep failing typed, reads keep serving.
        let err = df
            .append_row(&[Value::Int64(21), Value::Utf8("also-doomed".into())])
            .unwrap_err();
        assert!(matches!(err, EngineError::ReadOnly(_)), "{err:?}");
        assert!(matches!(
            sess.write_status("t").unwrap(),
            SinkStatus::ReadOnly(_)
        ));
        assert_eq!(df.table().row_count(), 20);
        assert_eq!(df.get_rows(7i64).unwrap().collect().unwrap().len(), 1);
        let out = sess
            .sql("SELECT COUNT(*) FROM t")
            .unwrap()
            .collect()
            .unwrap();
        assert_eq!(out.to_rows()[0][0], Value::Int64(20));
        // Checkpoint refuses while degraded; resume_writes re-arms.
        let err = sess.checkpoint(Some("t")).unwrap_err();
        assert!(matches!(err, EngineError::ReadOnly(_)), "{err:?}");
        assert_eq!(
            sess.resume_writes(Some("t")).unwrap(),
            vec!["t".to_string()]
        );
        assert_eq!(sess.write_status("t").unwrap(), SinkStatus::Writable);
        df.append_row(&[Value::Int64(22), Value::Utf8("revived".into())])
            .unwrap();
        drop(df);
        drop(sess);
        // The re-anchored store recovers everything acknowledged.
        let sess = DurableSession::open(cfg(dir.path(), DurabilityLevel::Sync)).unwrap();
        let df = sess.dataframe("t").unwrap();
        assert_eq!(df.table().row_count(), 21);
        assert_eq!(df.get_rows(22i64).unwrap().collect().unwrap().len(), 1);
        assert_eq!(df.get_rows(20i64).unwrap().collect().unwrap().len(), 0);
    }
}
