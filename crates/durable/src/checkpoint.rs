//! Checkpoint snapshots and the per-table manifest.
//!
//! On-disk layout, one directory per table under the session's
//! `data_dir`:
//!
//! ```text
//! data_dir/<table>/
//!   wal-<id>.log              append segment paired with snapshot <id>
//!   ckpt-<id>.snap            full table image, the manifest's id wins
//!   ckpt-<id>.snap.quarantine a snapshot scrub found corrupt (evidence)
//!   MANIFEST                  the id of the authoritative snapshot
//! ```
//!
//! The WAL segment is *named by checkpoint id*: segment `id` holds
//! exactly the commits made after snapshot `id` was taken. Recovery
//! replays the contiguous chain of segments at-or-after the manifest's
//! id (normally just one; more when a checkpoint landed its manifest but
//! a later crash or fault interrupted cleanup), so a covered prefix can
//! never replay as duplicate rows.
//!
//! **Two-generation retention**: checkpoint GC keeps the authoritative
//! generation *and* the previous one (snapshot `N-1` plus its segment).
//! That is what lets scrub quarantine a corrupt snapshot `N` and fall
//! back: snapshot `N-1` + segment `N-1` + segment `N` together still
//! reconstruct the full acknowledged state. Generations older than one
//! are swept.
//!
//! A snapshot file is `b"IDFSNAP1"` followed by **one** CRC frame whose
//! body serializes the schema, index configuration, and every partition:
//! sealed row-batch bytes verbatim (cut at the snapshot watermark) plus a
//! compact cTrie dump of `(key, packed pointer)` pairs that recovery
//! reloads with the bulk `from_entries` path — no per-row re-encoding or
//! re-hashing on either side.
//!
//! Atomicity: snapshot and manifest are written to a temp file, fsynced,
//! renamed into place, and the directory fsynced. The manifest flips last,
//! so a crash anywhere mid-checkpoint leaves the previous
//! snapshot-plus-WAL fully authoritative; stale generations are garbage-
//! collected only after the flip.
//!
//! All file access goes through the [`StorageIo`] seam so the whole
//! layer runs identically against the real filesystem and the simulated
//! fault-injecting disk.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use idf_core::batch::RowBatch;
use idf_core::config::IndexConfig;
use idf_core::partition::IndexedPartition;
use idf_core::table::{IndexedTable, TableSnapshot};
use idf_engine::error::{EngineError, Result};
use idf_engine::schema::{Field, Schema, SchemaRef};

use crate::codec::{
    check_frame_len, frame, put_bytes, put_data_type, put_u32, put_u64, put_value, read_frame,
    Cursor, FrameRead, MAX_SNAPSHOT_FRAME,
};
use crate::io::StorageIo;

/// Magic prefix of a snapshot file.
pub const SNAP_MAGIC: &[u8; 8] = b"IDFSNAP1";

/// Magic prefix of a manifest file.
pub const MANIFEST_MAGIC: &[u8; 8] = b"IDFMANI1";

/// The WAL segment paired with checkpoint `id` of a table directory:
/// it holds the commits made after snapshot `id` was taken.
pub fn wal_path(table_dir: &Path, id: u64) -> PathBuf {
    table_dir.join(format!("wal-{id}.log"))
}

/// The manifest of a table directory.
pub fn manifest_path(table_dir: &Path) -> PathBuf {
    table_dir.join("MANIFEST")
}

/// The snapshot file for checkpoint `id`.
pub fn snap_path(table_dir: &Path, id: u64) -> PathBuf {
    table_dir.join(format!("ckpt-{id}.snap"))
}

/// Where scrub parks a corrupt snapshot: same name with a `.quarantine`
/// suffix. Kept as evidence (and so the id is never reused) until GC
/// sweeps its generation.
pub fn quarantine_path(table_dir: &Path, id: u64) -> PathBuf {
    table_dir.join(format!("ckpt-{id}.snap.quarantine"))
}

fn io_err(what: &str, path: &Path, e: &std::io::Error) -> EngineError {
    EngineError::durability(format!("{what} {}: {e}", path.display()))
}

/// Parse the checkpoint id out of a table-directory file name
/// (`wal-<id>.log`, `ckpt-<id>.snap`, `ckpt-<id>.snap.quarantine`).
fn file_id(name: &str) -> Option<u64> {
    let rest = name
        .strip_prefix("ckpt-")
        .and_then(|r| {
            r.strip_suffix(".snap")
                .or_else(|| r.strip_suffix(".snap.quarantine"))
        })
        .or_else(|| {
            name.strip_prefix("wal-")
                .and_then(|r| r.strip_suffix(".log"))
        });
    rest.and_then(|id| id.parse::<u64>().ok())
}

/// Write `bytes` to `dir/name` atomically: temp file, fsync, rename,
/// directory fsync.
fn write_atomic(io: &dyn StorageIo, dir: &Path, name: &str, bytes: &[u8]) -> Result<()> {
    let tmp = dir.join(format!("{name}.tmp"));
    let dst = dir.join(name);
    io.write(&tmp, bytes)
        .map_err(|e| io_err("writing", &tmp, &e))?;
    io.sync_file(&tmp)
        .map_err(|e| io_err("syncing", &tmp, &e))?;
    io.rename(&tmp, &dst)
        .map_err(|e| io_err("renaming", &dst, &e))?;
    io.sync_dir(dir)
        .map_err(|e| io_err("syncing dir", dir, &e))?;
    Ok(())
}

// ---------------------------------------------------------------------
// Manifest
// ---------------------------------------------------------------------

/// Point the manifest at checkpoint `id` (atomic flip).
pub fn write_manifest(io: &dyn StorageIo, table_dir: &Path, id: u64) -> Result<()> {
    let mut body = Vec::with_capacity(8);
    put_u64(&mut body, id);
    let mut bytes = MANIFEST_MAGIC.to_vec();
    bytes.extend_from_slice(&frame(&body)?);
    write_atomic(io, table_dir, "MANIFEST", &bytes)
}

/// The authoritative checkpoint id, or `None` when no manifest exists.
/// A present-but-malformed manifest is a typed corruption error.
pub fn read_manifest(io: &dyn StorageIo, table_dir: &Path) -> Result<Option<u64>> {
    let path = manifest_path(table_dir);
    let bytes = match io.read(&path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(io_err("reading", &path, &e)),
    };
    let corrupt = |why: &str| EngineError::corrupt(format!("manifest {}: {why}", path.display()));
    if bytes.len() < 8 || &bytes[..8] != MANIFEST_MAGIC {
        return Err(corrupt("bad magic"));
    }
    match read_frame(&bytes, 8, 16) {
        FrameRead::Ok { body, next } if next == bytes.len() => {
            let mut c = Cursor::new(body, "manifest");
            let id = c.u64()?;
            c.expect_end()?;
            Ok(Some(id))
        }
        _ => Err(corrupt("bad or torn frame")),
    }
}

/// The next checkpoint id to allocate: strictly above the manifest *and*
/// every id any on-disk file (snapshot, segment, quarantined snapshot)
/// still carries. Scanning the files — not just the manifest — means an
/// id is never reused even after a fault (a dropped manifest rename, a
/// quarantined generation) rolled the manifest backwards; reusing an id
/// would pair a fresh segment with a stale snapshot of the same name.
pub fn next_checkpoint_id(io: &dyn StorageIo, table_dir: &Path) -> Result<u64> {
    let mut max = read_manifest(io, table_dir)?.unwrap_or(0);
    let entries = io
        .read_dir(table_dir)
        .map_err(|e| io_err("listing", table_dir, &e))?;
    for entry in entries {
        if let Some(id) = file_id(&entry.name) {
            max = max.max(id);
        }
    }
    Ok(max + 1)
}

/// The ids of every WAL segment (`wal-<id>.log`) in `table_dir`,
/// ascending. Recovery replays the contiguous run of these at-or-after
/// the manifest id.
pub fn list_segment_ids(io: &dyn StorageIo, table_dir: &Path) -> Result<Vec<u64>> {
    let entries = io
        .read_dir(table_dir)
        .map_err(|e| io_err("listing", table_dir, &e))?;
    let mut ids: Vec<u64> = entries
        .iter()
        .filter_map(|e| {
            e.name
                .strip_prefix("wal-")
                .and_then(|r| r.strip_suffix(".log"))
                .and_then(|id| id.parse::<u64>().ok())
        })
        .collect();
    ids.sort_unstable();
    Ok(ids)
}

// ---------------------------------------------------------------------
// Snapshot write
// ---------------------------------------------------------------------

fn encode_table(snap: &TableSnapshot, config: &IndexConfig) -> Vec<u8> {
    let schema = snap.schema();
    let mut body = Vec::new();
    put_u32(&mut body, schema.len() as u32);
    for f in &schema.fields {
        put_bytes(&mut body, f.name.as_bytes());
        put_data_type(&mut body, f.data_type);
        body.push(u8::from(f.nullable));
        match &f.qualifier {
            Some(q) => {
                body.push(1);
                put_bytes(&mut body, q.as_bytes());
            }
            None => body.push(0),
        }
    }
    put_u32(&mut body, snap.key_col() as u32);
    put_u64(&mut body, config.batch_size as u64);
    put_u64(&mut body, config.max_row_size as u64);
    put_u64(&mut body, config.num_partitions as u64);
    put_u64(&mut body, config.scan_chunk_rows as u64);
    put_u32(&mut body, snap.partitions().len() as u32);
    for p in snap.partitions() {
        put_u64(&mut body, p.row_count() as u64);
        let batches = p.export_batches();
        put_u32(&mut body, batches.len() as u32);
        for (capacity, bytes) in batches {
            put_u64(&mut body, capacity as u64);
            put_bytes(&mut body, bytes);
        }
        let entries = p.export_index();
        put_u64(&mut body, entries.len() as u64);
        for (key, ptr) in entries {
            put_value(&mut body, &key);
            put_u64(&mut body, ptr);
        }
    }
    body
}

/// Serialize `snap` as checkpoint `id` of `table_dir` (atomic; the
/// manifest is *not* flipped — the caller does that once the snapshot is
/// durable).
pub fn write_snapshot(
    io: &dyn StorageIo,
    table_dir: &Path,
    id: u64,
    snap: &TableSnapshot,
    config: &IndexConfig,
) -> Result<()> {
    crate::failpoints::check(crate::failpoints::CHECKPOINT_WRITE)?;
    let body = encode_table(snap, config);
    // Refuse before anything durable changes: an over-cap body would
    // wrap the u32 length prefix (or be rejected by the reader), leaving
    // a checkpoint that "succeeded" but can never be loaded.
    check_frame_len(body.len(), MAX_SNAPSHOT_FRAME, "checkpoint snapshot")?;
    let mut bytes = SNAP_MAGIC.to_vec();
    bytes.extend_from_slice(&frame(&body)?);
    write_atomic(io, table_dir, &format!("ckpt-{id}.snap"), &bytes)
}

/// Best-effort sweep of generations older than the previous one: keeps
/// every file whose id is `keep_id` or the previous *real* generation —
/// the largest id below `keep_id` that still has a WAL segment (the
/// fallback generation scrub needs; a snapshot whose id was burned by a
/// failed checkpoint attempt has no segment and is useless as a fallback,
/// so it must not shadow the generation that is). Deletes the rest.
/// Failures are ignored — stale files are litter recovery never reads,
/// never a correctness problem.
pub fn remove_stale_files(io: &dyn StorageIo, table_dir: &Path, keep_id: u64) {
    let Ok(entries) = io.read_dir(table_dir) else {
        return;
    };
    let ids: Vec<(String, u64)> = entries
        .iter()
        .filter_map(|e| file_id(&e.name).map(|id| (e.name.clone(), id)))
        .collect();
    let prev = ids
        .iter()
        .filter(|(name, id)| *id < keep_id && name.starts_with("wal-"))
        .map(|&(_, id)| id)
        .max();
    for (name, id) in ids {
        if id == keep_id || Some(id) == prev {
            continue;
        }
        let _ = io.remove_file(&table_dir.join(name));
    }
}

// ---------------------------------------------------------------------
// Snapshot load
// ---------------------------------------------------------------------

/// Restore the table image of checkpoint `id`. Every structural claim in
/// the file is validated (schema shape, partition fan-out, batch bounds,
/// index pointers) — corruption is a typed error, never a panic and never
/// a silently wrong table.
pub fn load_table(io: &dyn StorageIo, table_dir: &Path, id: u64) -> Result<IndexedTable> {
    let path = snap_path(table_dir, id);
    let bytes = io
        .read(&path)
        .map_err(|e| io_err("reading snapshot", &path, &e))?;
    let corrupt = |why: &str| EngineError::corrupt(format!("snapshot {}: {why}", path.display()));
    if bytes.len() < 8 || &bytes[..8] != SNAP_MAGIC {
        return Err(corrupt("bad magic"));
    }
    let body = match read_frame(&bytes, 8, MAX_SNAPSHOT_FRAME) {
        // Snapshots are renamed into place whole, so a torn or trailing
        // frame is corruption, not a tolerable tail.
        FrameRead::Ok { body, next } if next == bytes.len() => body,
        _ => return Err(corrupt("bad or torn frame")),
    };
    let mut c = Cursor::new(body, "snapshot");
    let nfields = c.u32()? as usize;
    let mut fields = Vec::with_capacity(nfields.min(1 << 16));
    for _ in 0..nfields {
        let name = c.string()?;
        let data_type = c.data_type()?;
        let nullable = c.u8()? != 0;
        let qualifier = match c.u8()? {
            0 => None,
            1 => Some(c.string()?),
            other => return Err(corrupt(&format!("bad qualifier flag {other}"))),
        };
        fields.push(Field {
            name,
            data_type,
            nullable,
            qualifier,
        });
    }
    let schema: SchemaRef = Arc::new(Schema::new(fields));
    let key_col = c.u32()? as usize;
    let config = IndexConfig {
        batch_size: c.u64()? as usize,
        max_row_size: c.u64()? as usize,
        num_partitions: c.u64()? as usize,
        scan_chunk_rows: c.u64()? as usize,
    };
    let nparts = c.u32()? as usize;
    if nparts != config.num_partitions {
        return Err(corrupt(&format!(
            "{} partitions serialized for a fan-out of {}",
            nparts, config.num_partitions
        )));
    }
    let mut partitions = Vec::with_capacity(nparts.min(1 << 16));
    for _ in 0..nparts {
        let row_count = c.u64()? as usize;
        let nbatches = c.u32()? as usize;
        let mut batches = Vec::with_capacity(nbatches.min(1 << 16));
        for _ in 0..nbatches {
            let capacity = c.u64()? as usize;
            let data = c.bytes()?;
            batches.push(Arc::new(RowBatch::from_committed_bytes(capacity, data)?));
        }
        let nkeys = c.u64()? as usize;
        let mut entries = Vec::with_capacity(nkeys.min(1 << 20));
        for _ in 0..nkeys {
            let key = c.value()?;
            let ptr = c.u64()?;
            entries.push((key, ptr));
        }
        partitions.push(Arc::new(IndexedPartition::restore(
            Arc::clone(&schema),
            key_col,
            config.clone(),
            batches,
            entries,
            row_count,
        )?));
    }
    c.expect_end()?;
    IndexedTable::from_restored_partitions(schema, key_col, config, partitions)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::OsIo;
    use crate::TempDir;
    use idf_engine::types::{DataType, Value};

    const IO: OsIo = OsIo;

    fn sample_table() -> IndexedTable {
        let schema = Arc::new(Schema::new(vec![
            Field::required("id", DataType::Int64),
            Field::new("name", DataType::Utf8),
        ]));
        let config = IndexConfig {
            num_partitions: 4,
            ..IndexConfig::default()
        };
        let table = IndexedTable::new(schema, 0, config).unwrap();
        for i in 0..500i64 {
            table
                .append_row(&[Value::Int64(i % 100), Value::Utf8(format!("row-{i}"))])
                .unwrap();
        }
        table
    }

    #[test]
    fn snapshot_roundtrip_preserves_rows_and_index() {
        let dir = TempDir::new("ckpt-roundtrip");
        let table = sample_table();
        write_snapshot(&IO, dir.path(), 1, &table.snapshot(), table.config()).unwrap();
        write_manifest(&IO, dir.path(), 1).unwrap();
        assert_eq!(read_manifest(&IO, dir.path()).unwrap(), Some(1));
        let restored = load_table(&IO, dir.path(), 1).unwrap();
        assert_eq!(restored.row_count(), 500);
        assert_eq!(restored.schema(), table.schema());
        for key in [0i64, 17, 99] {
            let before = table.lookup_chunk(&Value::Int64(key), None).unwrap();
            let after = restored.lookup_chunk(&Value::Int64(key), None).unwrap();
            assert_eq!(before.len(), 5, "key {key}");
            assert_eq!(before.to_rows(), after.to_rows(), "key {key}");
        }
        // And the restored table keeps accepting appends.
        restored
            .append_row(&[Value::Int64(17), Value::Utf8("post-restore".into())])
            .unwrap();
        assert_eq!(
            restored
                .lookup_chunk(&Value::Int64(17), None)
                .unwrap()
                .len(),
            6
        );
    }

    #[test]
    fn missing_manifest_reads_as_none() {
        let dir = TempDir::new("ckpt-nomani");
        assert_eq!(read_manifest(&IO, dir.path()).unwrap(), None);
    }

    #[test]
    fn corrupt_manifest_and_snapshot_are_typed_errors() {
        let dir = TempDir::new("ckpt-corrupt");
        let table = sample_table();
        write_snapshot(&IO, dir.path(), 3, &table.snapshot(), table.config()).unwrap();
        write_manifest(&IO, dir.path(), 3).unwrap();
        // Manifest with a flipped byte.
        let mpath = manifest_path(dir.path());
        let mut m = std::fs::read(&mpath).unwrap();
        let last = m.len() - 1;
        m[last] ^= 0x01;
        std::fs::write(&mpath, &m).unwrap();
        let err = read_manifest(&IO, dir.path()).unwrap_err();
        assert!(err.to_string().contains("corrupt"), "{err}");
        // Snapshot with a flipped payload byte.
        let spath = snap_path(dir.path(), 3);
        let mut s = std::fs::read(&spath).unwrap();
        let mid = s.len() / 2;
        s[mid] ^= 0x10;
        std::fs::write(&spath, &s).unwrap();
        let err = load_table(&IO, dir.path(), 3).unwrap_err();
        assert!(err.to_string().contains("corrupt"), "{err}");
        // Missing snapshot is a durability error, not a panic.
        assert!(load_table(&IO, dir.path(), 99).is_err());
    }

    #[test]
    fn gc_keeps_two_generations_and_sweeps_older_ones() {
        let dir = TempDir::new("ckpt-gc");
        let table = sample_table();
        for id in 1..=3 {
            write_snapshot(&IO, dir.path(), id, &table.snapshot(), table.config()).unwrap();
            std::fs::write(wal_path(dir.path(), id), b"segment").unwrap();
        }
        write_manifest(&IO, dir.path(), 3).unwrap();
        remove_stale_files(&IO, dir.path(), 3);
        // Generation 1 is older-than-previous: swept. Generation 2 is the
        // scrub-fallback generation: retained alongside the live one.
        assert!(!snap_path(dir.path(), 1).exists());
        assert!(!wal_path(dir.path(), 1).exists());
        assert!(snap_path(dir.path(), 2).exists(), "fallback snapshot kept");
        assert!(wal_path(dir.path(), 2).exists(), "fallback segment kept");
        assert!(snap_path(dir.path(), 3).exists());
        assert!(wal_path(dir.path(), 3).exists(), "live segment kept");
        load_table(&IO, dir.path(), 3).unwrap();
        // A second sweep at the next generation retires generation 2.
        std::fs::write(wal_path(dir.path(), 4), b"segment").unwrap();
        write_snapshot(&IO, dir.path(), 4, &table.snapshot(), table.config()).unwrap();
        remove_stale_files(&IO, dir.path(), 4);
        assert!(!snap_path(dir.path(), 2).exists());
        assert!(snap_path(dir.path(), 3).exists());
        assert!(snap_path(dir.path(), 4).exists());
    }

    #[test]
    fn next_checkpoint_id_never_reuses_an_on_disk_id() {
        let dir = TempDir::new("ckpt-nextid");
        // Empty dir: first id is 1.
        assert_eq!(next_checkpoint_id(&IO, dir.path()).unwrap(), 1);
        // Manifest at 2, but a quarantined snapshot and a stray segment
        // carry higher ids (e.g. after scrub rolled the manifest back):
        // the next id must clear them all.
        write_manifest(&IO, dir.path(), 2).unwrap();
        std::fs::write(quarantine_path(dir.path(), 5), b"bad").unwrap();
        std::fs::write(wal_path(dir.path(), 4), b"seg").unwrap();
        assert_eq!(next_checkpoint_id(&IO, dir.path()).unwrap(), 6);
        // Segment listing is ascending and complete.
        std::fs::write(wal_path(dir.path(), 2), b"seg").unwrap();
        assert_eq!(list_segment_ids(&IO, dir.path()).unwrap(), vec![2, 4]);
    }

    #[cfg(feature = "failpoints")]
    #[test]
    fn injected_checkpoint_fault_leaves_previous_checkpoint_authoritative() {
        let dir = TempDir::new("ckpt-fault");
        let table = sample_table();
        write_snapshot(&IO, dir.path(), 1, &table.snapshot(), table.config()).unwrap();
        write_manifest(&IO, dir.path(), 1).unwrap();
        table
            .append_row(&[Value::Int64(7), Value::Utf8("extra".into())])
            .unwrap();
        let _guard = idf_fail::FailGuard::new(
            crate::failpoints::CHECKPOINT_WRITE,
            idf_fail::FailConfig::error("disk full"),
        );
        let err =
            write_snapshot(&IO, dir.path(), 2, &table.snapshot(), table.config()).unwrap_err();
        assert!(err.to_string().contains("injected"), "{err}");
        assert_eq!(read_manifest(&IO, dir.path()).unwrap(), Some(1));
        assert_eq!(load_table(&IO, dir.path(), 1).unwrap().row_count(), 500);
    }
}
