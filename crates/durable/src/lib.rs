//! `idf-durable`: the durability layer that makes Indexed DataFrames
//! survive process death.
//!
//! The paper's tables are purely in-memory — a restart loses every table
//! and re-ingesting SNB-scale data plus rebuilding the cTrie from scratch
//! is exactly the cost this layer amortizes. Three cooperating pieces:
//!
//! 1. **Write-ahead log** ([`wal`]): every committed append is framed
//!    (length-prefixed, CRC32-checksummed) and appended to a per-table
//!    segment file by a group-commit writer thread that coalesces
//!    concurrent commits into one `fsync`. The durability level
//!    ([`idf_engine::config::DurabilityLevel`]) decides whether commits
//!    wait for that fsync (`Sync`), are acknowledged once staged
//!    (`Async`), or skip the WAL entirely (`None`, the default — the rest
//!    of the workspace is unchanged unless durability is asked for).
//! 2. **Checkpoints** ([`checkpoint`]): a consistent [`TableSnapshot`] —
//!    row batches verbatim plus a compact cTrie dump — serialized to a
//!    manifest-versioned file; the WAL then rotates to a fresh segment
//!    named by the new checkpoint id, retiring the covered one.
//! 3. **Recovery** ([`DurableSession::open`]): the newest valid
//!    checkpoint is restored (bulk cTrie load, no per-row work), the WAL
//!    tail is replayed through the regular two-phase append path, and
//!    corrupt manifests/segments surface as typed errors, never panics.
//!
//! [`TableSnapshot`]: idf_core::table::TableSnapshot

#![warn(missing_docs)]

pub mod checkpoint;
pub mod codec;
pub mod crc;
pub mod failpoints;
pub mod io;
pub mod scrub;
pub mod session;
pub mod sim;
pub mod wal;

pub use io::{OsIo, StorageIo};
pub use scrub::{scrub_data_dir, ScrubReport};
pub use session::DurableSession;
pub use sim::{FaultProfile, SimIo};

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// A process-unique temporary directory, removed on drop. All durable
/// tests and benches go through this so `cargo test -q` stays
/// parallel-safe and leaves no litter behind.
#[derive(Debug)]
pub struct TempDir {
    path: PathBuf,
}

impl TempDir {
    /// Create a fresh directory under the system temp dir.
    ///
    /// # Panics
    /// Panics when the directory cannot be created — test/bench
    /// bootstrap, where failing loudly is the right call.
    pub fn new(prefix: &str) -> Self {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        // idf-lint: allow(atomics-audit) -- unique temp-dir suffix: atomicity alone suffices
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        let path = std::env::temp_dir().join(format!("idf-{prefix}-{}-{n}", std::process::id()));
        std::fs::create_dir_all(&path).expect("create temp dir");
        TempDir { path }
    }

    /// The directory path.
    pub fn path(&self) -> &std::path::Path {
        &self.path
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}
