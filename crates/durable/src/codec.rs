//! Binary codec shared by the WAL and checkpoint formats.
//!
//! Everything is little-endian and length-prefixed. The unit of torn-write
//! protection is the *frame*: `u32 body_len | u32 crc32(body) | body`. A
//! reader that hits a frame whose length runs past the file, or whose CRC
//! does not match, treats everything from that offset on as a torn tail.
//!
//! Scalars use one tag byte each (`0 Null … 6 Timestamp`); a schema field
//! is `name | dtype tag | nullable`. Decoders return typed
//! [`EngineError::Corrupt`] errors on any malformed input — recovery must
//! reject bad bytes, never panic on them.

use idf_engine::error::{EngineError, Result};
use idf_engine::types::{DataType, Value};

use crate::crc::crc32;

/// Hard cap on one frame body (64 MiB for WAL records; checkpoints use
/// [`MAX_SNAPSHOT_FRAME`]). Enforced symmetrically: writers refuse to
/// frame a larger body (see [`check_frame_len`]) and readers treat a
/// length prefix beyond the cap as corruption rather than an allocation
/// request.
pub const MAX_WAL_FRAME: usize = 64 << 20;

/// Hard cap on a checkpoint snapshot frame (a full table image). One
/// below `1 << 32` so every permitted body length round-trips through
/// the `u32` frame prefix without wrapping.
pub const MAX_SNAPSHOT_FRAME: usize = (4 << 30) - 1;

// ---------------------------------------------------------------------
// Writing
// ---------------------------------------------------------------------

/// Append `u32` little-endian.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append `u64` little-endian.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append a length-prefixed byte string.
pub fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    put_u32(out, b.len() as u32);
    out.extend_from_slice(b);
}

/// Refuse to frame a body longer than `max_body` bytes. Writers call
/// this *before* a frame is staged or acknowledged — a reader-side cap
/// alone would let an oversized frame be fsync'd, then silently dropped
/// as a "torn tail" on reopen, losing an acknowledged commit.
pub fn check_frame_len(len: usize, max_body: usize, what: &str) -> Result<()> {
    if len > max_body {
        return Err(EngineError::durability(format!(
            "{what} of {len} bytes exceeds the {max_body}-byte frame cap"
        )));
    }
    Ok(())
}

/// Frame `body` for appending to a segment: length, checksum, body.
/// Errors when the body cannot be represented by the `u32` length prefix
/// (callers normally reject far earlier via [`check_frame_len`]).
pub fn frame(body: &[u8]) -> Result<Vec<u8>> {
    let len = u32::try_from(body.len()).map_err(|_| {
        EngineError::durability(format!(
            "frame body of {} bytes overflows the u32 length prefix",
            body.len()
        ))
    })?;
    let mut out = Vec::with_capacity(8 + body.len());
    put_u32(&mut out, len);
    put_u32(&mut out, crc32(body));
    out.extend_from_slice(body);
    Ok(out)
}

/// Encode one scalar: tag byte + payload.
pub fn put_value(out: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => out.push(0),
        Value::Boolean(b) => {
            out.push(1);
            out.push(u8::from(*b));
        }
        Value::Int32(i) => {
            out.push(2);
            out.extend_from_slice(&i.to_le_bytes());
        }
        Value::Int64(i) => {
            out.push(3);
            out.extend_from_slice(&i.to_le_bytes());
        }
        Value::Float64(f) => {
            out.push(4);
            out.extend_from_slice(&f.to_bits().to_le_bytes());
        }
        Value::Utf8(s) => {
            out.push(5);
            put_bytes(out, s.as_bytes());
        }
        Value::Timestamp(t) => {
            out.push(6);
            out.extend_from_slice(&t.to_le_bytes());
        }
    }
}

/// Encode a data type as one tag byte.
pub fn put_data_type(out: &mut Vec<u8>, dt: DataType) {
    out.push(match dt {
        DataType::Boolean => 0,
        DataType::Int32 => 1,
        DataType::Int64 => 2,
        DataType::Float64 => 3,
        DataType::Utf8 => 4,
        DataType::Timestamp => 5,
    });
}

// ---------------------------------------------------------------------
// Reading
// ---------------------------------------------------------------------

/// Sequential reader over a decoded frame body with typed truncation
/// errors.
pub struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
    /// What is being decoded, named in corruption errors.
    what: &'static str,
}

impl<'a> Cursor<'a> {
    /// Read `buf` from the start; `what` names the structure in errors.
    pub fn new(buf: &'a [u8], what: &'static str) -> Self {
        Cursor { buf, pos: 0, what }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.buf.len());
        match end {
            Some(end) => {
                let s = &self.buf[self.pos..end];
                self.pos = end;
                Ok(s)
            }
            None => Err(EngineError::corrupt(format!(
                "{} truncated: wanted {n} bytes at offset {} of {}",
                self.what,
                self.pos,
                self.buf.len()
            ))),
        }
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Read `u32` little-endian.
    pub fn u32(&mut self) -> Result<u32> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Read `u64` little-endian.
    pub fn u64(&mut self) -> Result<u64> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Read `i32` little-endian.
    pub fn i32(&mut self) -> Result<i32> {
        Ok(self.u32()? as i32)
    }

    /// Read `i64` little-endian.
    pub fn i64(&mut self) -> Result<i64> {
        Ok(self.u64()? as i64)
    }

    /// Read a length-prefixed byte string.
    pub fn bytes(&mut self) -> Result<&'a [u8]> {
        let n = self.u32()? as usize;
        self.take(n)
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn string(&mut self) -> Result<String> {
        let what = self.what;
        let b = self.bytes()?;
        String::from_utf8(b.to_vec())
            .map_err(|_| EngineError::corrupt(format!("{what}: non-UTF-8 string")))
    }

    /// Read one scalar (tag byte + payload).
    pub fn value(&mut self) -> Result<Value> {
        let tag = self.u8()?;
        Ok(match tag {
            0 => Value::Null,
            1 => Value::Boolean(self.u8()? != 0),
            2 => Value::Int32(self.i32()?),
            3 => Value::Int64(self.i64()?),
            4 => Value::Float64(f64::from_bits(self.u64()?)),
            5 => Value::Utf8(self.string()?),
            6 => Value::Timestamp(self.i64()?),
            other => {
                return Err(EngineError::corrupt(format!(
                    "{}: unknown value tag {other}",
                    self.what
                )))
            }
        })
    }

    /// Read a data type tag byte.
    pub fn data_type(&mut self) -> Result<DataType> {
        let tag = self.u8()?;
        Ok(match tag {
            0 => DataType::Boolean,
            1 => DataType::Int32,
            2 => DataType::Int64,
            3 => DataType::Float64,
            4 => DataType::Utf8,
            5 => DataType::Timestamp,
            other => {
                return Err(EngineError::corrupt(format!(
                    "{}: unknown data type tag {other}",
                    self.what
                )))
            }
        })
    }

    /// Error unless every byte was consumed.
    pub fn expect_end(&self) -> Result<()> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(EngineError::corrupt(format!(
                "{}: {} trailing bytes",
                self.what,
                self.remaining()
            )))
        }
    }
}

/// How one attempt to read a frame from `buf[offset..]` ended.
pub enum FrameRead<'a> {
    /// A valid frame; `next` is the offset just past it.
    Ok {
        /// The verified frame body.
        body: &'a [u8],
        /// Offset of the byte after the frame.
        next: usize,
    },
    /// `buf` ends exactly at `offset` — a clean end of segment.
    End,
    /// Bytes from `offset` on are not a valid frame (torn tail or
    /// corruption) — the reader truncates here.
    Torn,
}

/// Try to read one frame at `buf[offset..]`, verifying length and CRC.
/// `max_body` caps the declared body length (see [`MAX_WAL_FRAME`]).
pub fn read_frame(buf: &[u8], offset: usize, max_body: usize) -> FrameRead<'_> {
    if offset == buf.len() {
        return FrameRead::End;
    }
    let Some(header) = buf.get(offset..offset + 8) else {
        return FrameRead::Torn;
    };
    let len = u32::from_le_bytes([header[0], header[1], header[2], header[3]]) as usize;
    let crc = u32::from_le_bytes([header[4], header[5], header[6], header[7]]);
    if len > max_body {
        return FrameRead::Torn;
    }
    let Some(body) = buf.get(offset + 8..offset + 8 + len) else {
        return FrameRead::Torn;
    };
    if crc32(body) != crc {
        return FrameRead::Torn;
    }
    FrameRead::Ok {
        body,
        next: offset + 8 + len,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_roundtrip() {
        let values = [
            Value::Null,
            Value::Boolean(true),
            Value::Boolean(false),
            Value::Int32(-5),
            Value::Int64(i64::MIN),
            Value::Float64(3.25),
            Value::Utf8("héllo".into()),
            Value::Utf8(String::new()),
            Value::Timestamp(1_700_000_000_000),
        ];
        let mut buf = Vec::new();
        for v in &values {
            put_value(&mut buf, v);
        }
        let mut c = Cursor::new(&buf, "test values");
        for v in &values {
            assert_eq!(&c.value().unwrap(), v);
        }
        c.expect_end().unwrap();
    }

    #[test]
    fn data_type_roundtrip() {
        let all = [
            DataType::Boolean,
            DataType::Int32,
            DataType::Int64,
            DataType::Float64,
            DataType::Utf8,
            DataType::Timestamp,
        ];
        let mut buf = Vec::new();
        for dt in all {
            put_data_type(&mut buf, dt);
        }
        let mut c = Cursor::new(&buf, "test dtypes");
        for dt in all {
            assert_eq!(c.data_type().unwrap(), dt);
        }
    }

    #[test]
    fn truncation_and_bad_tags_are_typed_errors() {
        let mut c = Cursor::new(&[5u8], "thing");
        // Tag 5 = Utf8, but no length follows.
        let err = c.value().unwrap_err();
        assert!(err.to_string().contains("corrupt"), "{err}");
        let mut c = Cursor::new(&[9u8], "thing");
        assert!(c.value().is_err());
        let mut c = Cursor::new(&[7u8], "thing");
        assert!(c.data_type().is_err());
    }

    #[test]
    fn oversized_bodies_are_rejected_at_write_time() {
        // No allocation needed: the checks are pure length arithmetic.
        check_frame_len(MAX_WAL_FRAME, MAX_WAL_FRAME, "WAL record").unwrap();
        let err = check_frame_len(MAX_WAL_FRAME + 1, MAX_WAL_FRAME, "WAL record").unwrap_err();
        assert!(err.to_string().contains("frame cap"), "{err}");
        check_frame_len(MAX_SNAPSHOT_FRAME, MAX_SNAPSHOT_FRAME, "snapshot").unwrap();
        let err =
            check_frame_len(MAX_SNAPSHOT_FRAME + 1, MAX_SNAPSHOT_FRAME, "snapshot").unwrap_err();
        assert!(err.to_string().contains("frame cap"), "{err}");
        // The snapshot cap itself must fit the u32 length prefix, so a
        // cap-respecting body can never wrap it.
        assert!(MAX_SNAPSHOT_FRAME <= u32::MAX as usize);
    }

    #[test]
    fn frame_roundtrip_and_torn_tail() {
        let a = frame(b"alpha").unwrap();
        let b = frame(b"bravo-bravo").unwrap();
        let mut buf = [a.clone(), b.clone()].concat();
        match read_frame(&buf, 0, MAX_WAL_FRAME) {
            FrameRead::Ok { body, next } => {
                assert_eq!(body, b"alpha");
                match read_frame(&buf, next, MAX_WAL_FRAME) {
                    FrameRead::Ok { body, next } => {
                        assert_eq!(body, b"bravo-bravo");
                        assert!(matches!(
                            read_frame(&buf, next, MAX_WAL_FRAME),
                            FrameRead::End
                        ));
                    }
                    _ => panic!("second frame"),
                }
            }
            _ => panic!("first frame"),
        }
        // Chop mid-second-frame: first frame still reads, tail is torn.
        buf.truncate(a.len() + 3);
        let FrameRead::Ok { next, .. } = read_frame(&buf, 0, MAX_WAL_FRAME) else {
            panic!("first frame after truncation")
        };
        assert!(matches!(
            read_frame(&buf, next, MAX_WAL_FRAME),
            FrameRead::Torn
        ));
        // Flip a body bit: CRC catches it.
        let mut flipped = [a, b].concat();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x40;
        let FrameRead::Ok { next, .. } = read_frame(&flipped, 0, MAX_WAL_FRAME) else {
            panic!("first frame intact")
        };
        assert!(matches!(
            read_frame(&flipped, next, MAX_WAL_FRAME),
            FrameRead::Torn
        ));
    }
}
