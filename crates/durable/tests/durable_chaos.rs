//! Crash-consistency chaos suite: faults injected at every registered
//! durability site while a session appends, checkpoints, "crashes" (the
//! session is dropped mid-workload) and recovers — asserting after every
//! recovery that the table equals a **prefix** of the committed appends:
//! never torn, never reordered, never missing an acknowledged row.
//!
//! Deterministically seeded like the storage chaos suite
//! (`crates/core/tests/chaos.rs`); rounds are capped so the suite rides
//! in tier-1 `cargo test`, and `IDF_CHAOS_ROUNDS` scales it up (the CI
//! `durability` job runs it elevated).

#![cfg(feature = "failpoints")]

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex, PoisonError};

use idf_core::config::IndexConfig;
use idf_durable::failpoints as dfp;
use idf_durable::{DurableSession, TempDir};
use idf_engine::config::{DurabilityLevel, EngineConfig};
use idf_engine::schema::{Field, Schema, SchemaRef};
use idf_engine::types::{DataType, Value};
use idf_fail::{FailConfig, FailGuard};

/// The failpoint registry is process-global; every test here serializes
/// on this lock (poison tolerated so one failure doesn't cascade).
static CHAOS_LOCK: Mutex<()> = Mutex::new(());

fn serial() -> std::sync::MutexGuard<'static, ()> {
    CHAOS_LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

fn rounds() -> usize {
    std::env::var("IDF_CHAOS_ROUNDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(12)
}

fn schema() -> SchemaRef {
    Arc::new(Schema::new(vec![
        Field::required("k", DataType::Int64),
        Field::new("v", DataType::Int64),
    ]))
}

fn config(dir: &std::path::Path) -> EngineConfig {
    EngineConfig {
        data_dir: Some(dir.to_path_buf()),
        durability: DurabilityLevel::Sync,
        ..EngineConfig::default()
    }
}

fn index() -> IndexConfig {
    IndexConfig {
        num_partitions: 4,
        ..IndexConfig::default()
    }
}

/// Deterministic generator so every run of a seed is identical.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 17
    }
}

/// Run `f`, flattening engine errors and panics into a message, and
/// assert any failure is an injected one.
fn tolerated(f: impl FnOnce() -> idf_engine::error::Result<()>) -> bool {
    match catch_unwind(AssertUnwindSafe(f)) {
        Ok(Ok(())) => true,
        Ok(Err(e)) => {
            let msg = e.to_string();
            assert!(
                msg.contains("injected") || msg.contains("panicked") || msg.contains("failpoint"),
                "non-injected failure under chaos: {msg}"
            );
            false
        }
        Err(payload) => {
            let msg = idf_engine::error::panic_message(payload.as_ref());
            assert!(
                msg.contains("injected") || msg.contains("chaos"),
                "non-injected panic under chaos: {msg}"
            );
            false
        }
    }
}

/// Assert the recovered table holds exactly the rows `0..expect` (each
/// value is its own key, appended in order), with `lower <= expect <=
/// upper`, and return the count.
fn audit_prefix(sess: &DurableSession, lower: i64, upper: i64) -> i64 {
    let df = sess.dataframe("t").unwrap();
    let r = df.table().row_count() as i64;
    assert!(
        (lower..=upper).contains(&r),
        "recovered {r} rows, committed window was {lower}..={upper}"
    );
    let snap = df.table().snapshot();
    for v in 0..r {
        let c = snap.lookup_chunk(&Value::Int64(v), None).unwrap();
        assert_eq!(c.len(), 1, "row {v} of the recovered prefix");
        assert_eq!(c.value_at(1, 0), Value::Int64(v), "row {v} payload");
    }
    // Nothing past the prefix may survive — no reordered/resurrected tail.
    for v in r..upper + 4 {
        let c = snap.lookup_chunk(&Value::Int64(v), None).unwrap();
        assert!(c.is_empty(), "row {v} beyond the recovered prefix");
    }
    r
}

/// One seeded crash-consistency run: generations of
/// recover → audit → append-under-fault → crash.
fn crash_consistency(seed: u64, generations: usize) {
    let dir = TempDir::new(&format!("chaos-{seed:x}"));
    let mut rng = Lcg(seed);
    // All rows `0..lower` are definitely durable; `lower..upper` is the
    // at-most-one append whose WAL/publish outcome a crash left unknown.
    let mut lower: i64 = 0;
    let mut upper: i64 = 0;

    for gen in 0..generations {
        // Sometimes attempt recovery with a replay fault armed: the open
        // must fail typed (when there is a tail to replay), never panic,
        // and a clean retry must succeed.
        if gen > 0 && rng.next().is_multiple_of(4) {
            let guard = FailGuard::new(dfp::RECOVERY_REPLAY, FailConfig::error("chaos"));
            match DurableSession::open(config(dir.path())) {
                // No WAL tail to replay — the site never fired.
                Ok(sess) => drop(sess),
                Err(e) => assert!(e.to_string().contains("injected"), "{e}"),
            }
            drop(guard);
        }
        let sess = DurableSession::open(config(dir.path())).unwrap();
        if gen == 0 {
            sess.create_table("t", schema(), 0, index()).unwrap();
        }
        let r = audit_prefix(&sess, lower, upper);
        lower = r;
        upper = r;

        let df = sess.dataframe("t").unwrap();
        // Arm a random durability fault partway into the generation.
        let site = dfp::SITES[(rng.next() as usize) % dfp::SITES.len()];
        let cfg = match rng.next() % 3 {
            0 => FailConfig::error("chaos"),
            1 => FailConfig::panic("chaos"),
            _ => FailConfig::delay(1),
        };
        let cfg = cfg.skip(rng.next() % 6).times(1 + rng.next() % 3);
        let guard = FailGuard::new(site, cfg);
        for _ in 0..(4 + rng.next() % 8) {
            if rng.next().is_multiple_of(5) {
                // Checkpoints race the fault too; a failed checkpoint
                // must leave the WAL + previous snapshot authoritative.
                let _ = tolerated(|| sess.checkpoint(Some("t")).map(|_| ()));
            }
            let v = upper;
            let row = [Value::Int64(v), Value::Int64(v)];
            if tolerated(|| df.append_row(&row)) {
                // Acknowledged at `Sync`: durable, full stop.
                lower = v + 1;
                upper = v + 1;
            } else {
                // The WAL's own sites fail before anything reaches disk,
                // so a failed append stays invisible — but it may have
                // poisoned the WAL (sticky fsync fault), so crash now.
                break;
            }
        }
        drop(guard);
        // "Crash": drop the session (and every table handle) mid-stream.
        drop(df);
        drop(sess);
    }
    idf_fail::reset();
    // Final clean recovery and liveness check.
    let sess = DurableSession::open(config(dir.path())).unwrap();
    let r = audit_prefix(&sess, lower, upper);
    let df = sess.dataframe("t").unwrap();
    df.append_row(&[Value::Int64(r), Value::Int64(r)]).unwrap();
    assert_eq!(df.table().row_count() as i64, r + 1);
}

#[test]
fn seeded_crash_consistency_fault_rounds() {
    let _s = serial();
    idf_fail::reset();
    for seed in [0xDEAD_BEEFu64, 42, 0x1DF2_2026] {
        crash_consistency(seed, rounds());
    }
}

/// DML statements under injected faults are all-or-nothing: after every
/// crash-and-recover, a key shows either its old image or its new one —
/// never a torn blend — deleted keys never resurrect once the delete is
/// acked, and acked updates are never lost. Compaction runs mid-round
/// and must never change an answer.
#[test]
fn dml_fault_rounds_are_all_or_nothing() {
    let _s = serial();
    idf_fail::reset();
    const KEYS: i64 = 8;
    // Sites a DML statement actually crosses: the WAL heads, the fsync,
    // and the storage layer's publish point.
    let sites = [
        dfp::WAL_APPEND,
        dfp::WAL_DML_FRAME,
        dfp::WAL_FSYNC,
        idf_core::failpoints::APPEND_PUBLISH,
    ];
    for seed in [7u64, 0xD31B_EEF5, 99] {
        let dir = TempDir::new(&format!("chaos-dml-{seed:x}"));
        let mut rng = Lcg(seed);
        // Per-key committed value; None = deleted/absent. A statement
        // whose ack a fault swallowed widens the key to two legal values.
        let mut certain: Vec<Option<i64>> = (0..KEYS).map(Some).collect();
        let mut ambiguous: Vec<Option<(Option<i64>, Option<i64>)>> = vec![None; KEYS as usize];
        {
            let sess = DurableSession::open(config(dir.path())).unwrap();
            let df = sess.create_table("t", schema(), 0, index()).unwrap();
            for k in 0..KEYS {
                df.append_row(&[Value::Int64(k), Value::Int64(k)]).unwrap();
            }
        }
        let mut next_val: i64 = 1000;
        for _round in 0..rounds() {
            let sess = DurableSession::open(config(dir.path())).unwrap();
            let df = sess.dataframe("t").unwrap();
            let snap = df.table().snapshot();
            for k in 0..KEYS {
                let c = snap.lookup_chunk(&Value::Int64(k), None).unwrap();
                assert!(c.len() <= 1, "key {k} has {} visible rows", c.len());
                let observed = (c.len() == 1).then(|| match c.value_at(1, 0) {
                    Value::Int64(v) => v,
                    other => panic!("key {k} holds {other:?}"),
                });
                match ambiguous[k as usize].take() {
                    Some((a, b)) => assert!(
                        observed == a || observed == b,
                        "key {k} recovered {observed:?}, expected {a:?} or {b:?}"
                    ),
                    None => assert_eq!(
                        observed, certain[k as usize],
                        "key {k} drifted from its acked state"
                    ),
                }
                certain[k as usize] = observed;
            }
            let site = sites[(rng.next() as usize) % sites.len()];
            let cfg = match rng.next() % 3 {
                0 => FailConfig::error("chaos"),
                1 => FailConfig::panic("chaos"),
                _ => FailConfig::delay(1),
            };
            let guard = FailGuard::new(site, cfg.skip(rng.next() % 4).times(1 + rng.next() % 2));
            for _ in 0..(3 + rng.next() % 6) {
                if rng.next().is_multiple_of(6) {
                    // Compaction must be invisible to every answer.
                    df.table().compact().unwrap();
                    for k in 0..KEYS {
                        let c = df
                            .table()
                            .snapshot()
                            .lookup_chunk(&Value::Int64(k), None)
                            .unwrap();
                        let observed = (c.len() == 1).then(|| c.value_at(1, 0));
                        assert_eq!(
                            observed,
                            certain[k as usize].map(Value::Int64),
                            "compaction changed key {k}"
                        );
                    }
                    continue;
                }
                let k = rng.next() as i64 % KEYS;
                let cur = certain[k as usize];
                let (stmt, next) = match (cur, rng.next() % 2) {
                    (Some(_), 0) => {
                        next_val += 1;
                        (
                            format!("UPDATE t SET v = {next_val} WHERE k = {k}"),
                            Some(next_val),
                        )
                    }
                    (Some(_), _) => (format!("DELETE FROM t WHERE k = {k}"), None),
                    (None, _) => {
                        next_val += 1;
                        (
                            format!("INSERT INTO t VALUES ({k}, {next_val})"),
                            Some(next_val),
                        )
                    }
                };
                if tolerated(|| sess.sql(&stmt).and_then(|d| d.collect()).map(|_| ())) {
                    certain[k as usize] = next;
                } else {
                    // One statement, one WAL record: either it is durable
                    // (new state) or it is not (old state). The WAL may
                    // be degraded now, so crash this round.
                    ambiguous[k as usize] = Some((cur, next));
                    break;
                }
            }
            drop(guard);
            drop(df);
            drop(sess);
        }
        idf_fail::reset();
        // Final clean recovery: resolve leftovers and prove liveness.
        let sess = DurableSession::open(config(dir.path())).unwrap();
        let df = sess.dataframe("t").unwrap();
        let snap = df.table().snapshot();
        for k in 0..KEYS {
            let c = snap.lookup_chunk(&Value::Int64(k), None).unwrap();
            let observed = (c.len() == 1).then(|| match c.value_at(1, 0) {
                Value::Int64(v) => v,
                other => panic!("key {k} holds {other:?}"),
            });
            match ambiguous[k as usize].take() {
                Some((a, b)) => assert!(observed == a || observed == b, "final key {k}"),
                None => assert_eq!(observed, certain[k as usize], "final key {k}"),
            }
        }
        let out = sess
            .sql("UPDATE t SET v = 7777 WHERE k = 0")
            .unwrap()
            .collect()
            .unwrap();
        drop(out);
    }
}

/// A fault at the commit point *after* WAL logging (the storage layer's
/// publish site) is the one place an append can fail yet legitimately
/// resurrect on recovery — the documented unknown-outcome window. The
/// recovered table must still be a clean prefix: the ambiguous row is
/// all-or-nothing, never torn.
#[test]
fn publish_fault_after_logging_recovers_all_or_nothing() {
    let _s = serial();
    idf_fail::reset();
    let dir = TempDir::new("chaos-publish");
    {
        let sess = DurableSession::open(config(dir.path())).unwrap();
        let df = sess.create_table("t", schema(), 0, index()).unwrap();
        for v in 0..10i64 {
            df.append_row(&[Value::Int64(v), Value::Int64(v)]).unwrap();
        }
        // `append_row` logs to the WAL, then publishes; fail the publish.
        let _guard = FailGuard::new(
            idf_core::failpoints::APPEND_PUBLISH,
            FailConfig::error("chaos").times(1),
        );
        let err = df
            .append_row(&[Value::Int64(10), Value::Int64(10)])
            .unwrap_err();
        assert!(err.to_string().contains("injected"), "{err}");
        assert_eq!(df.table().row_count(), 10, "failed publish is invisible");
    }
    idf_fail::reset();
    let sess = DurableSession::open(config(dir.path())).unwrap();
    audit_prefix(&sess, 10, 11);
}

/// Torn WAL tails produced by a simulated mid-write crash must be
/// truncated silently while every complete record is replayed.
#[test]
fn torn_wal_tail_recovers_complete_prefix() {
    let _s = serial();
    idf_fail::reset();
    let dir = TempDir::new("chaos-torn");
    {
        let sess = DurableSession::open(config(dir.path())).unwrap();
        let df = sess.create_table("t", schema(), 0, index()).unwrap();
        for v in 0..20i64 {
            df.append_row(&[Value::Int64(v), Value::Int64(v)]).unwrap();
        }
    }
    // Tear the last record's tail off, as a crash mid-write would. No
    // checkpoint has run since creation, so the live segment is the one
    // paired with checkpoint 1.
    let wal = idf_durable::checkpoint::wal_path(&dir.path().join("t"), 1);
    let bytes = std::fs::read(&wal).unwrap();
    std::fs::write(&wal, &bytes[..bytes.len() - 5]).unwrap();
    let sess = DurableSession::open(config(dir.path())).unwrap();
    audit_prefix(&sess, 19, 19);
}
