//! Scrub end-to-end on the real filesystem: flip a single bit in the
//! on-disk files with `std::fs` (no simulator) and drive the full
//! repair loop — `DurableSession::open` fails typed, offline
//! `scrub_data_dir` pinpoints the damage by byte offset, quarantines
//! the rotten snapshot, falls the manifest back one generation, and the
//! reopen recovers every committed row from the surviving chain.

use std::path::Path;
use std::sync::Arc;

use idf_core::config::IndexConfig;
use idf_durable::{scrub_data_dir, DurableSession, OsIo, TempDir};
use idf_engine::config::{DurabilityLevel, EngineConfig};
use idf_engine::error::EngineError;
use idf_engine::schema::{Field, Schema, SchemaRef};
use idf_engine::types::{DataType, Value};

fn config(dir: &Path) -> EngineConfig {
    EngineConfig {
        data_dir: Some(dir.to_path_buf()),
        durability: DurabilityLevel::Sync,
        ..EngineConfig::default()
    }
}

fn schema() -> SchemaRef {
    Arc::new(Schema::new(vec![
        Field::required("id", DataType::Int64),
        Field::new("name", DataType::Utf8),
    ]))
}

fn index() -> IndexConfig {
    IndexConfig {
        num_partitions: 4,
        ..IndexConfig::default()
    }
}

fn append(sess: &DurableSession, key: i64) {
    sess.dataframe("t")
        .unwrap()
        .append_row(&[Value::Int64(key), Value::Utf8(format!("row-{key}"))])
        .unwrap();
}

/// Flip one bit in the middle of `path`, returning the byte offset.
fn flip_bit(path: &Path) -> usize {
    let mut bytes = std::fs::read(path).unwrap();
    let offset = bytes.len() / 2;
    bytes[offset] ^= 0x10;
    std::fs::write(path, &bytes).unwrap();
    offset
}

/// The newest on-disk file matching `prefix`/`suffix` in the table dir.
fn newest(dir: &Path, prefix: &str, suffix: &str) -> std::path::PathBuf {
    std::fs::read_dir(dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with(prefix) && n.ends_with(suffix))
        })
        .max()
        .unwrap_or_else(|| panic!("no {prefix}*{suffix} in {}", dir.display()))
}

/// A single flipped bit in the authoritative checkpoint snapshot: open
/// fails with the typed corruption error, offline scrub with repair
/// quarantines the snapshot and falls the manifest back one generation,
/// and the reopen recovers the complete table from the previous
/// snapshot plus the replayed segment chain.
#[test]
fn flipped_snapshot_bit_quarantines_falls_back_and_recovers() {
    let dir = TempDir::new("scrub-snap");
    {
        let sess = DurableSession::open(config(dir.path())).unwrap();
        sess.create_table("t", schema(), 0, index()).unwrap();
        for key in 0..5 {
            append(&sess, key);
        }
        sess.checkpoint(Some("t")).unwrap();
        for key in 5..10 {
            append(&sess, key);
        }
        sess.checkpoint(Some("t")).unwrap();
        for key in 10..15 {
            append(&sess, key);
        }
    }

    let table_dir = dir.path().join("t");
    let snap = newest(&table_dir, "ckpt-", ".snap");
    flip_bit(&snap);

    // The rot is load-bearing: recovery reads this snapshot and must
    // refuse it, typed.
    let err = DurableSession::open(config(dir.path())).unwrap_err();
    assert!(
        matches!(err, EngineError::Corrupt(_)),
        "open over a flipped snapshot bit must fail Corrupt, got {err:?}"
    );

    // Offline repair: quarantine + manifest fallback.
    let reports = scrub_data_dir(&OsIo, dir.path(), true).unwrap();
    assert_eq!(reports.len(), 1);
    let report = &reports[0];
    assert_eq!(report.table, "t");
    let statuses: Vec<&str> = report.entries.iter().map(|e| e.status.as_str()).collect();
    assert!(statuses.contains(&"quarantined"), "{statuses:?}");
    assert!(statuses.contains(&"fell-back"), "{statuses:?}");
    let quarantined = report
        .entries
        .iter()
        .find(|e| e.status == "quarantined")
        .unwrap();
    assert!(
        quarantined.detail.contains(".quarantine"),
        "{}",
        quarantined.detail
    );
    // The evidence file exists; the broken snapshot no longer does.
    assert!(newest(&table_dir, "ckpt-", ".quarantine").exists());
    assert!(!snap.exists());

    // Reopen: the fallback snapshot plus segment replay reproduce every
    // committed row exactly once, and the table accepts writes again.
    let sess = DurableSession::open(config(dir.path())).unwrap();
    let df = sess.dataframe("t").unwrap();
    assert_eq!(df.table().row_count(), 15);
    for key in 0..15i64 {
        assert_eq!(df.get_rows(key).unwrap().collect().unwrap().len(), 1);
    }
    append(&sess, 15);
    assert_eq!(df.table().row_count(), 16);

    // And a follow-up scrub is clean.
    let reports = scrub_data_dir(&OsIo, dir.path(), false).unwrap();
    assert!(
        reports[0].entries.iter().all(|e| !e.is_corruption()),
        "{:?}",
        reports[0].entries
    );
}

/// A single flipped bit mid-frame in a live WAL segment: offline scrub
/// without repair reports the segment corrupt with the byte offset of
/// the first invalid frame, and touches nothing on disk.
#[test]
fn flipped_wal_frame_bit_is_reported_with_byte_offset() {
    let dir = TempDir::new("scrub-wal");
    {
        let sess = DurableSession::open(config(dir.path())).unwrap();
        sess.create_table("t", schema(), 0, index()).unwrap();
        for key in 0..8 {
            append(&sess, key);
        }
    }

    let table_dir = dir.path().join("t");
    let wal = newest(&table_dir, "wal-", ".log");
    let before = std::fs::read(&wal).unwrap();
    let flipped_at = flip_bit(&wal);

    let reports = scrub_data_dir(&OsIo, dir.path(), false).unwrap();
    let report = &reports[0];
    let entry = report
        .entries
        .iter()
        .find(|e| e.target.starts_with("wal-"))
        .unwrap_or_else(|| panic!("no segment entry in {:?}", report.entries));
    assert_eq!(entry.status, "corrupt", "{entry:?}");
    assert!(
        entry.detail.contains("byte offset"),
        "detail must carry the offset: {}",
        entry.detail
    );
    // The reported offset is the start of the first invalid frame —
    // at or before the flipped byte, never past it.
    let reported: usize = entry
        .detail
        .split("byte offset ")
        .nth(1)
        .and_then(|rest| rest.split_whitespace().next())
        .and_then(|n| n.parse().ok())
        .unwrap_or_else(|| panic!("unparseable detail: {}", entry.detail));
    assert!(
        reported <= flipped_at,
        "reported offset {reported} past the flipped byte {flipped_at}"
    );

    // repair=false is strictly read-only: the file is bit-identical.
    let mut expected = before;
    expected[flipped_at] ^= 0x10;
    assert_eq!(std::fs::read(&wal).unwrap(), expected);
}
