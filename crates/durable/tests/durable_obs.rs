//! End-to-end durability observability: the WAL, checkpoint and recovery
//! metrics must move under a real durable workload and show up in the
//! Prometheus exposition. Runs only with the `obs` feature; the no-op
//! half of the registry is covered by the workspace api-parity lint.

#![cfg(feature = "obs")]

use std::path::Path;
use std::sync::Arc;

use idf_core::config::IndexConfig;
use idf_durable::{DurableSession, TempDir};
use idf_engine::config::{DurabilityLevel, EngineConfig};
use idf_engine::schema::{Field, Schema, SchemaRef};
use idf_engine::types::{DataType, Value};

fn config(dir: &Path) -> EngineConfig {
    EngineConfig {
        data_dir: Some(dir.to_path_buf()),
        durability: DurabilityLevel::Sync,
        ..EngineConfig::default()
    }
}

fn schema() -> SchemaRef {
    Arc::new(Schema::new(vec![
        Field::required("k", DataType::Int64),
        Field::new("v", DataType::Utf8),
    ]))
}

#[test]
fn durability_metrics_move_and_are_exposed() {
    const APPENDS: u64 = 64;
    let m = idf_obs::global();
    let wal_records0 = m.wal_records.get();
    let wal_bytes0 = m.wal_bytes.get();
    let wal_fsyncs0 = m.wal_fsyncs.get();
    let batch0 = m.wal_group_commit_batch.snapshot().count;
    let ckpt0 = m.checkpoint_duration_ns.snapshot().count;
    let recov0 = m.recovery_duration_ns.snapshot().count;
    let replayed0 = m.recovery_replayed_records.get();

    let dir = TempDir::new("obs-durable");
    {
        let sess = DurableSession::open(config(dir.path())).unwrap();
        let df = sess
            .create_table(
                "t",
                schema(),
                0,
                IndexConfig {
                    num_partitions: 4,
                    ..IndexConfig::default()
                },
            )
            .unwrap();
        for i in 0..APPENDS {
            df.append_row(&[Value::Int64(i as i64), Value::Utf8(format!("v{i}"))])
                .unwrap();
        }
        // Half the workload is checkpointed away; the rest stays in the
        // WAL so the reopen below has records to replay.
        sess.checkpoint(Some("t")).unwrap();
        for i in APPENDS..APPENDS * 2 {
            df.append_row(&[Value::Int64(i as i64), Value::Utf8(format!("v{i}"))])
                .unwrap();
        }
    }

    // WAL accounting: one record per append, every commit fsynced before
    // acknowledgement (Sync), batch-size histogram fed per flush.
    let records = m.wal_records.get() - wal_records0;
    assert_eq!(records, APPENDS * 2, "one WAL record per append");
    assert!(m.wal_bytes.get() - wal_bytes0 > 0);
    let fsyncs = m.wal_fsyncs.get() - wal_fsyncs0;
    assert!(fsyncs >= 1 && fsyncs <= records, "fsyncs {fsyncs}");
    let batches = m.wal_group_commit_batch.snapshot();
    assert_eq!(
        batches.count - batch0,
        fsyncs,
        "one batch-size sample per flush"
    );
    assert_eq!(
        m.checkpoint_duration_ns.snapshot().count - ckpt0,
        1,
        "one explicit checkpoint"
    );

    // Recovery accounting: the reopen replays exactly the post-checkpoint
    // WAL tail.
    let sess = DurableSession::open(config(dir.path())).unwrap();
    assert_eq!(sess.dataframe("t").unwrap().row_count() as u64, APPENDS * 2);
    assert_eq!(
        m.recovery_duration_ns.snapshot().count - recov0,
        2,
        "both opens record a recovery duration"
    );
    assert_eq!(
        m.recovery_replayed_records.get() - replayed0,
        APPENDS,
        "the checkpointed prefix is not replayed"
    );

    // And all of it is visible to a Prometheus scrape.
    let text = m.prometheus();
    for name in [
        "idf_wal_records_total",
        "idf_wal_bytes_total",
        "idf_wal_fsyncs_total",
        "idf_wal_group_commit_batch",
        "idf_checkpoint_duration_ns",
        "idf_recovery_duration_ns",
        "idf_recovery_replayed_records_total",
    ] {
        assert!(text.contains(name), "exposition is missing {name}");
    }
}
