//! Deterministic storage-fault simulation: seeded schedules of
//! append/checkpoint/scrub/resume/crash/recover against [`SimIo`]'s
//! in-memory disk, asserting the durability invariants after every
//! recovery:
//!
//! - the recovered table is a **contiguous prefix** of the appended keys
//!   covering every `Sync`-acknowledged row (at most one ambiguous
//!   in-flight row past the acked prefix — a commit whose frame landed
//!   but whose acknowledgement did not);
//! - **no duplicate replay**: each key appears exactly once;
//! - **checkpoints are crash-atomic**: a fault or crash anywhere inside
//!   `CHECKPOINT` recovers either the old or the new anchor, never a
//!   blend.
//!
//! Every schedule is identified by its seed, every panic message carries
//! it, and replaying a seed replays the schedule bit-for-bit. Knobs:
//! `IDF_SIM_SCHEDULES` (default 1000 in release, 50 in debug — a debug
//! schedule is ~50x slower and the default must not dominate a plain
//! `cargo test`), `IDF_SIM_SEED_BASE` (default 0 — the nightly CI run
//! randomizes this and logs it).

use std::path::PathBuf;
use std::sync::Arc;

use idf_core::config::IndexConfig;
use idf_durable::{DurableSession, FaultProfile, SimIo, StorageIo};
use idf_engine::config::{DurabilityLevel, EngineConfig};
use idf_engine::error::EngineError;
use idf_engine::schema::{Field, Schema, SchemaRef};
use idf_engine::types::{DataType, Value};

/// SplitMix64 — the schedule's own decision stream, independent of the
/// fault stream inside `SimIo`.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn schema() -> SchemaRef {
    Arc::new(Schema::new(vec![
        Field::required("id", DataType::Int64),
        Field::new("name", DataType::Utf8),
    ]))
}

fn cfg(level: DurabilityLevel) -> EngineConfig {
    EngineConfig {
        data_dir: Some(PathBuf::from("/data")),
        durability: level,
        ..EngineConfig::default()
    }
}

fn index() -> IndexConfig {
    IndexConfig {
        num_partitions: 4,
        ..IndexConfig::default()
    }
}

/// Open with bounded retries, simulating a crash between attempts (an
/// operator would reboot and try again); each retry draws fresh fault
/// decisions. Returns `None` only for *typed* failures — a panic is
/// always a bug.
fn open_retrying(io: &Arc<SimIo>, level: DurabilityLevel, seed: u64) -> Option<DurableSession> {
    let mut last = String::new();
    for _ in 0..50 {
        match DurableSession::open_with_io(cfg(level), Arc::clone(io) as Arc<dyn StorageIo>) {
            Ok(sess) => return Some(sess),
            Err(err) => {
                last = err.to_string();
                io.crash();
            }
        }
    }
    panic!("seed {seed}: open failed 50 times, last error: {last}");
}

/// Ensure the durable table `t` exists, surviving partially-failed
/// earlier creates. Returns `None` when the session must be rebooted:
/// either durable state landed without the in-memory registration, or
/// the disk wedged (e.g. sticky fsync — only a crash clears it).
fn ensure_table(sess: &DurableSession, _seed: u64) -> Option<()> {
    if sess.table_names().iter().any(|n| n == "t") {
        return Some(());
    }
    for _ in 0..8 {
        match sess.create_table("t", schema(), 0, index()) {
            Ok(_) => return Some(()),
            // The manifest from a faulted attempt landed: recovery owns
            // this directory now, so reopen instead of re-creating.
            Err(err) if err.to_string().contains("already holds durable state") => return None,
            Err(_) => continue,
        }
    }
    None
}

/// The oracle for one table: `acked` rows are guaranteed recovered;
/// `ceiling` additionally admits commits whose outcome the client never
/// learned (append attempts that returned an error after their frame may
/// have reached the disk).
#[derive(Clone, Copy, Debug)]
struct Oracle {
    acked: u64,
    ceiling: u64,
}

/// Full prefix check: exactly the keys `0..n`, each exactly once.
fn assert_contiguous_prefix(sess: &DurableSession, oracle: Oracle, seed: u64) -> u64 {
    let df = sess
        .dataframe("t")
        .unwrap_or_else(|e| panic!("seed {seed}: recovered table missing: {e}"));
    let n = df.table().row_count() as u64;
    assert!(
        n >= oracle.acked && n <= oracle.ceiling,
        "seed {seed}: recovered {n} rows, expected within [{}, {}]",
        oracle.acked,
        oracle.ceiling
    );
    for key in 0..n {
        let hits = df
            .get_rows(key as i64)
            .and_then(|d| d.collect())
            .unwrap_or_else(|e| panic!("seed {seed}: lookup of key {key} failed: {e}"))
            .len();
        assert_eq!(
            hits, 1,
            "seed {seed}: key {key} appears {hits} times in a {n}-row prefix"
        );
    }
    let past = df
        .get_rows(n as i64)
        .and_then(|d| d.collect())
        .map(|d| d.len())
        .unwrap_or_else(|e| panic!("seed {seed}: lookup past prefix failed: {e}"));
    assert_eq!(past, 0, "seed {seed}: key {n} exists beyond the prefix");
    n
}

/// One full schedule on the crash-faults profile: several
/// crash/recover generations, each running a random mix of operations
/// under injected write/fsync/torn-write faults.
fn run_crash_schedule(seed: u64) {
    let io = SimIo::new(seed, FaultProfile::crash_faults());
    let mut rng = Rng(seed ^ 0xc0ff_ee00_dead_beef);
    let mut oracle = Oracle {
        acked: 0,
        ceiling: 0,
    };
    let mut created = false;
    for _generation in 0..3 {
        let Some(sess) = open_retrying(&io, DurabilityLevel::Sync, seed) else {
            unreachable!()
        };
        if ensure_table(&sess, seed).is_none() {
            // Either durable state exists that this session missed, or
            // the disk wedged; reboot and let the next generation
            // recover. Nothing was acked.
            drop(sess);
            io.crash();
            continue;
        }
        if created {
            oracle.acked = assert_contiguous_prefix(&sess, oracle, seed);
            oracle.ceiling = oracle.acked;
        }
        created = true;
        let df = sess.dataframe("t").unwrap();
        let ops = 8 + rng.below(16);
        for _ in 0..ops {
            match rng.below(100) {
                // Append the next key. While degraded this fails fast
                // without touching the disk, so the ceiling only grows
                // when the log could actually have written the frame.
                0..=69 => {
                    let degraded = sess
                        .write_status("t")
                        .map(|s| s != idf_core::sink::SinkStatus::Writable)
                        .unwrap_or(true);
                    if !degraded {
                        oracle.ceiling = oracle.acked + 1;
                    }
                    let key = oracle.acked as i64;
                    match df.append_row(&[Value::Int64(key), Value::Utf8(format!("row-{key}"))]) {
                        Ok(_) => {
                            oracle.acked += 1;
                            oracle.ceiling = oracle.acked;
                        }
                        Err(
                            EngineError::ReadOnly(_)
                            | EngineError::Durability(_)
                            | EngineError::Corrupt(_),
                        ) => {}
                        Err(other) => panic!("seed {seed}: untyped append failure: {other}"),
                    }
                }
                // Checkpoint: on success the disk re-anchors at exactly
                // the acked prefix (ambiguous frames are dropped with
                // the covered segment); on failure either anchor may
                // recover, which the existing ceiling already admits.
                70..=79 => {
                    if sess.checkpoint(Some("t")).is_ok() {
                        oracle.ceiling = oracle.acked;
                    }
                }
                // Scrub with repair: under crash faults, snapshots are
                // written atomically, so a *successful* scrub never
                // finds corruption.
                80..=84 => {
                    if let Ok(rows) = sess.scrub(Some("t")) {
                        for row in rows {
                            assert!(
                                row.status != "corrupt" && row.status != "quarantined",
                                "seed {seed}: scrub found {row:?} without at-rest corruption"
                            );
                        }
                    }
                }
                // Resume: a successful re-arm checkpoints from memory,
                // dropping any ambiguous frame.
                85..=94 => {
                    if sess.resume_writes(Some("t")).is_ok() {
                        oracle.ceiling = oracle.acked;
                    }
                }
                // Reads keep serving regardless of write health.
                _ => {
                    let n = df.table().row_count() as u64;
                    assert_eq!(n, oracle.acked, "seed {seed}: in-memory count drifted");
                    if n > 0 {
                        let key = rng.below(n) as i64;
                        let hits = df.get_rows(key).unwrap().collect().unwrap().len();
                        assert_eq!(hits, 1, "seed {seed}: live lookup of {key}");
                    }
                }
            }
        }
        drop(sess);
        io.crash();
    }
    // Final recovery on a quiet disk must land and hold the invariant.
    // (If every faulted generation failed to create the table, this
    // fault-free pass creates it and the prefix is trivially empty.)
    io.set_profile(FaultProfile::none());
    let sess = open_retrying(&io, DurabilityLevel::Sync, seed).unwrap();
    ensure_table(&sess, seed).expect("fault-free create cannot fail");
    assert_contiguous_prefix(&sess, oracle, seed);
}

/// Committed state of one key in the DML schedule's model. `Either`
/// records the at-most-one statement whose acknowledgement a fault
/// swallowed: its single WAL record is either durable (new state) or
/// absent (old state), never a blend.
#[derive(Clone, Debug, PartialEq)]
enum KeyState {
    Certain(Option<String>),
    Either(Option<String>, Option<String>),
}

/// The visible name for `k`, asserting the key has at most one visible
/// row (DML never duplicates a key's live version).
fn lookup_name(sess: &DurableSession, k: i64, seed: u64) -> Option<String> {
    let df = sess
        .dataframe("t")
        .unwrap_or_else(|e| panic!("seed {seed}: recovered table missing: {e}"));
    let rows = df
        .get_rows(k)
        .and_then(|d| d.collect())
        .unwrap_or_else(|e| panic!("seed {seed}: lookup of key {k} failed: {e}"))
        .to_rows();
    assert!(
        rows.len() <= 1,
        "seed {seed}: key {k} has {} visible rows",
        rows.len()
    );
    rows.first().map(|r| match &r[1] {
        Value::Utf8(s) => s.clone(),
        other => panic!("seed {seed}: key {k} holds non-text name {other:?}"),
    })
}

/// One full DML schedule: seeded generations of
/// recover → audit-model → update/delete/insert/checkpoint/compact under
/// injected write faults → crash. The model tracks every key's committed
/// state; after each recovery, no deleted key may resurrect, no acked
/// update may be lost, and only the single statement in flight at the
/// crash may go either way.
fn run_dml_schedule(seed: u64) {
    const KEYS: u64 = 12;
    let io = SimIo::new(seed, FaultProfile::none());
    let mut rng = Rng(seed ^ 0x0d31_5eed_0000_0001);
    let mut version = 0u64;
    let mut model: Vec<KeyState> = vec![KeyState::Certain(None); KEYS as usize];
    {
        // Fault-free creation keeps the schedule focused on DML faults.
        let sess = open_retrying(&io, DurabilityLevel::Sync, seed).unwrap();
        sess.create_table("t", schema(), 0, index()).unwrap();
    }
    io.crash();
    io.set_profile(FaultProfile::crash_faults());
    for _generation in 0..4 {
        let Some(sess) = open_retrying(&io, DurabilityLevel::Sync, seed) else {
            unreachable!()
        };
        // Audit recovery against the model and resolve ambiguous keys to
        // what actually survived.
        for k in 0..KEYS as i64 {
            let observed = lookup_name(&sess, k, seed);
            match &model[k as usize] {
                KeyState::Certain(v) => assert_eq!(
                    &observed, v,
                    "seed {seed}: key {k} drifted from its acked state"
                ),
                KeyState::Either(a, b) => assert!(
                    observed == *a || observed == *b,
                    "seed {seed}: key {k} recovered {observed:?}, expected {a:?} or {b:?}"
                ),
            }
            model[k as usize] = KeyState::Certain(observed);
        }
        let ops = 6 + rng.below(12);
        for _ in 0..ops {
            let roll = rng.below(100);
            if roll < 10 {
                // Checkpoints never change logical data, so the model is
                // untouched whether they land or fail.
                let _ = sess.checkpoint(Some("t"));
                continue;
            }
            if roll < 20 {
                // Compaction is a pure in-memory rewrite: it must never
                // change an answer, and a crash right after it recovers
                // from checkpoint + WAL as if it never ran.
                let df = sess.dataframe("t").unwrap();
                df.table()
                    .compact()
                    .unwrap_or_else(|e| panic!("seed {seed}: compaction failed: {e}"));
                for k in 0..KEYS as i64 {
                    let KeyState::Certain(want) = &model[k as usize] else {
                        unreachable!()
                    };
                    let got = lookup_name(&sess, k, seed);
                    assert_eq!(&got, want, "seed {seed}: compaction changed key {k}");
                }
                continue;
            }
            let k = rng.below(KEYS) as i64;
            let KeyState::Certain(cur) = model[k as usize].clone() else {
                unreachable!()
            };
            let (stmt, next) = if cur.is_some() {
                if rng.below(2) == 0 {
                    version += 1;
                    (
                        format!("UPDATE t SET name = 'v{version}' WHERE id = {k}"),
                        Some(format!("v{version}")),
                    )
                } else {
                    (format!("DELETE FROM t WHERE id = {k}"), None)
                }
            } else {
                version += 1;
                (
                    format!("INSERT INTO t VALUES ({k}, 'v{version}')"),
                    Some(format!("v{version}")),
                )
            };
            match sess.sql(&stmt).and_then(|d| d.collect()) {
                Ok(out) => {
                    assert_eq!(
                        out.to_rows()[0][0],
                        Value::Int64(1),
                        "seed {seed}: {stmt} acked wrong rows-affected"
                    );
                    model[k as usize] = KeyState::Certain(next);
                }
                Err(
                    EngineError::ReadOnly(_) | EngineError::Durability(_) | EngineError::Corrupt(_),
                ) => {
                    // The statement is one WAL record: durable or absent.
                    // The log may be degraded now, so reboot.
                    model[k as usize] = KeyState::Either(cur, next);
                    break;
                }
                Err(other) => panic!("seed {seed}: untyped DML failure for {stmt}: {other}"),
            }
        }
        drop(sess);
        io.crash();
    }
    // Final fault-free recovery holds every certain key and resolves any
    // leftover ambiguity one last time.
    io.set_profile(FaultProfile::none());
    let sess = open_retrying(&io, DurabilityLevel::Sync, seed).unwrap();
    for k in 0..KEYS as i64 {
        let observed = lookup_name(&sess, k, seed);
        match &model[k as usize] {
            KeyState::Certain(v) => assert_eq!(&observed, v, "seed {seed}: final key {k}"),
            KeyState::Either(a, b) => assert!(
                observed == *a || observed == *b,
                "seed {seed}: final key {k} recovered {observed:?}, expected {a:?} or {b:?}"
            ),
        }
    }
}

/// Run `f`, converting any panic into one that leads with the seed, so a
/// failing schedule is reproducible from the test log alone.
fn with_seed(seed: u64, f: impl FnOnce() + std::panic::UnwindSafe) {
    if let Err(payload) = std::panic::catch_unwind(f) {
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_else(|| "non-string panic".to_string());
        panic!("schedule failed for seed {seed}: {msg}");
    }
}

#[test]
fn seeded_crash_schedules_recover_every_acked_row() {
    let default = if cfg!(debug_assertions) { 50 } else { 1000 };
    let schedules = env_u64("IDF_SIM_SCHEDULES", default);
    let base = env_u64("IDF_SIM_SEED_BASE", 0);
    for i in 0..schedules {
        let seed = base.wrapping_add(i);
        with_seed(seed, || run_crash_schedule(seed));
    }
}

#[test]
fn seeded_dml_schedules_never_resurrect_or_lose_acked_statements() {
    let default = if cfg!(debug_assertions) { 25 } else { 300 };
    let schedules = env_u64("IDF_SIM_DML_SCHEDULES", default);
    let base = env_u64("IDF_SIM_SEED_BASE", 0);
    for i in 0..schedules {
        let seed = base.wrapping_add(i) ^ 0x0d31_0000_0000_0000;
        with_seed(seed, || run_dml_schedule(seed));
    }
}

/// The byzantine profile adds read errors, read-side bit flips and
/// silent rename drops. No prefix guarantee survives that; the contract
/// is **fail-stop**: every operation either succeeds or returns a typed
/// error — never a panic, never an unvalidated row.
#[test]
fn byzantine_schedules_never_panic() {
    let default = if cfg!(debug_assertions) { 25 } else { 150 };
    let schedules = env_u64("IDF_SIM_BYZANTINE_SCHEDULES", default);
    let base = env_u64("IDF_SIM_SEED_BASE", 0);
    for i in 0..schedules {
        let seed = base.wrapping_add(i) ^ 0xbad0_cab1_e000_0000;
        with_seed(seed, || {
            let io = SimIo::new(seed, FaultProfile::byzantine());
            let mut rng = Rng(seed);
            for _generation in 0..3 {
                let sess = match DurableSession::open_with_io(
                    cfg(DurabilityLevel::Sync),
                    Arc::clone(&io) as Arc<dyn StorageIo>,
                ) {
                    Ok(sess) => sess,
                    Err(_) => {
                        io.crash();
                        continue;
                    }
                };
                if sess.table_names().is_empty() {
                    // Typed failures are acceptable; panics are not.
                    let _ = sess.create_table("t", schema(), 0, index());
                }
                if let Ok(df) = sess.dataframe("t") {
                    for _ in 0..rng.below(12) {
                        let key = df.table().row_count() as i64;
                        let _ =
                            df.append_row(&[Value::Int64(key), Value::Utf8(format!("b-{key}"))]);
                    }
                    let _ = df.table().row_count();
                }
                let _ = sess.scrub(None);
                let _ = sess.resume_writes(None);
                let _ = sess.checkpoint(None);
                drop(sess);
                io.crash();
            }
        });
    }
}

/// Satellite: mixed durability levels across crashes. Rows written under
/// `Sync` must survive a crash-and-reopen at `Async`; `Async` rows may
/// lose an unflushed suffix at the next crash but never break prefix
/// contiguity; a final `Sync` generation is exact again.
#[test]
fn mixed_durability_levels_across_crashes_keep_a_contiguous_prefix() {
    for seed in 0..25u64 {
        with_seed(seed, || {
            let io = SimIo::new(seed, FaultProfile::none());
            // Generation 1: Sync — all 20 rows are durable at ack time.
            let sess = open_retrying(&io, DurabilityLevel::Sync, seed).unwrap();
            let df = sess.create_table("t", schema(), 0, index()).unwrap();
            for key in 0..20i64 {
                df.append_row(&[Value::Int64(key), Value::Utf8(format!("s-{key}"))])
                    .unwrap();
            }
            drop(df);
            drop(sess);
            io.crash();
            // Generation 2: Async — acked rows may still be unsynced
            // when the crash hits.
            let sess = open_retrying(&io, DurabilityLevel::Async, seed).unwrap();
            let recovered = assert_contiguous_prefix(
                &sess,
                Oracle {
                    acked: 20,
                    ceiling: 20,
                },
                seed,
            );
            assert_eq!(recovered, 20, "seed {seed}: Sync rows lost across a crash");
            let df = sess.dataframe("t").unwrap();
            for key in 20..35i64 {
                df.append_row(&[Value::Int64(key), Value::Utf8(format!("a-{key}"))])
                    .unwrap();
            }
            drop(df);
            drop(sess);
            io.crash();
            // Generation 3: Sync — the Async suffix may be cut anywhere,
            // but what survives is a contiguous, duplicate-free prefix
            // covering every Sync-acked row.
            let sess = open_retrying(&io, DurabilityLevel::Sync, seed).unwrap();
            let recovered = assert_contiguous_prefix(
                &sess,
                Oracle {
                    acked: 20,
                    ceiling: 35,
                },
                seed,
            );
            let df = sess.dataframe("t").unwrap();
            for key in recovered..recovered + 5 {
                df.append_row(&[Value::Int64(key as i64), Value::Utf8(format!("s2-{key}"))])
                    .unwrap();
            }
            drop(df);
            drop(sess);
            io.crash();
            let sess = open_retrying(&io, DurabilityLevel::Sync, seed).unwrap();
            assert_contiguous_prefix(
                &sess,
                Oracle {
                    acked: recovered + 5,
                    ceiling: recovered + 5,
                },
                seed,
            );
        });
    }
}

/// The whole suite must fit the CI simulation budget: 1000 default-count
/// schedules in well under 60 seconds. Tracked here as a coarse guard so
/// a quadratic regression in the hot path fails loudly rather than
/// timing out the job.
#[test]
fn simulation_throughput_stays_within_budget() {
    if cfg!(debug_assertions) {
        // The budget is calibrated for the optimized build the CI
        // simulation job runs; a debug schedule is ~50x slower.
        return;
    }
    let started = std::time::Instant::now();
    for seed in 5000..5050u64 {
        with_seed(seed, || run_crash_schedule(seed));
    }
    let elapsed = started.elapsed();
    assert!(
        elapsed < std::time::Duration::from_secs(30),
        "50 schedules took {elapsed:?} — 1000 would blow the 60s budget"
    );
}
