//! Real crash-recovery round trip: a child *process* appends with `Sync`
//! durability and is SIGKILLed mid-stream; the parent reopens the store
//! and asserts the recovered table is a contiguous prefix of the appends
//! that covers everything the child acknowledged. This is the only test
//! that exercises recovery after an actual process death (the in-process
//! suites simulate crashes by dropping the session).
//!
//! Mechanism: the parent re-executes its own test binary filtered to
//! [`kill_reopen_child_helper`], which is a no-op unless
//! `IDF_KILL_TEST_DIR` is set — the standard self-exec trick, so no extra
//! binary target is needed.

use std::path::Path;
use std::sync::Arc;
use std::time::{Duration, Instant};

use idf_core::config::IndexConfig;
use idf_durable::{DurableSession, TempDir};
use idf_engine::config::{DurabilityLevel, EngineConfig};
use idf_engine::schema::{Field, Schema, SchemaRef};
use idf_engine::types::{DataType, Value};

const DIR_ENV: &str = "IDF_KILL_TEST_DIR";
/// The child rewrites this file with the count of acknowledged appends.
const ACK_FILE: &str = "acked";
const CHILD_MAX_APPENDS: i64 = 500_000;

fn config(dir: &Path) -> EngineConfig {
    EngineConfig {
        data_dir: Some(dir.to_path_buf()),
        durability: DurabilityLevel::Sync,
        ..EngineConfig::default()
    }
}

fn schema() -> SchemaRef {
    Arc::new(Schema::new(vec![
        Field::required("k", DataType::Int64),
        Field::new("v", DataType::Int64),
    ]))
}

/// Child body: appends `0, 1, 2, …` with `Sync` durability, persisting
/// the acknowledged count after every append, until killed. **Not a test
/// of its own** — exits immediately unless the parent set the env var.
#[test]
fn kill_reopen_child_helper() {
    let Ok(dir) = std::env::var(DIR_ENV) else {
        return;
    };
    let dir = std::path::PathBuf::from(dir);
    let sess = DurableSession::open(config(&dir)).expect("child open");
    let df = sess
        .create_table(
            "t",
            schema(),
            0,
            IndexConfig {
                num_partitions: 4,
                ..IndexConfig::default()
            },
        )
        .expect("child create_table");
    let ack_tmp = dir.join(format!("{ACK_FILE}.tmp"));
    let ack = dir.join(ACK_FILE);
    for v in 0..CHILD_MAX_APPENDS {
        df.append_row(&[Value::Int64(v), Value::Int64(v)])
            .expect("child append");
        // Acknowledged ⇒ durable (Sync). Publish the count atomically so
        // the parent never reads a half-written number.
        std::fs::write(&ack_tmp, (v + 1).to_string()).expect("child ack write");
        std::fs::rename(&ack_tmp, &ack).expect("child ack rename");
    }
}

fn read_acked(dir: &Path) -> i64 {
    std::fs::read_to_string(dir.join(ACK_FILE))
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(0)
}

#[test]
fn sigkill_mid_append_recovers_every_acknowledged_row() {
    let dir = TempDir::new("kill-reopen");
    let exe = std::env::current_exe().unwrap();
    let mut child = std::process::Command::new(exe)
        .args(["kill_reopen_child_helper", "--exact", "--nocapture"])
        .env(DIR_ENV, dir.path())
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn child");

    // Let the child make real progress, then kill it mid-stream.
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        if read_acked(dir.path()) >= 100 {
            break;
        }
        if let Some(status) = child.try_wait().expect("try_wait") {
            panic!(
                "child exited early ({status}) with {} acks",
                read_acked(dir.path())
            );
        }
        assert!(Instant::now() < deadline, "child made no progress");
        std::thread::sleep(Duration::from_millis(10));
    }
    child.kill().expect("SIGKILL child");
    let _ = child.wait();

    // The ack file may lag the WAL by one in-flight append, never lead it.
    let acked = read_acked(dir.path());
    assert!(acked >= 100);

    let sess = DurableSession::open(config(dir.path())).expect("reopen after SIGKILL");
    let df = sess.dataframe("t").expect("recovered table");
    let recovered = df.row_count() as i64;
    assert!(
        recovered >= acked,
        "recovered {recovered} rows but the child had {acked} acknowledged"
    );
    // Contiguous prefix, nothing torn or reordered.
    let snap = df.table().snapshot();
    for v in 0..recovered {
        let c = snap.lookup_chunk(&Value::Int64(v), None).unwrap();
        assert_eq!(c.len(), 1, "recovered row {v}");
        assert_eq!(c.value_at(1, 0), Value::Int64(v));
    }
    assert!(snap
        .lookup_chunk(&Value::Int64(recovered), None)
        .unwrap()
        .is_empty());
    // Recovered store stays fully usable: append, checkpoint, re-query.
    df.append_row(&[Value::Int64(recovered), Value::Int64(recovered)])
        .unwrap();
    sess.checkpoint(None).unwrap();
    assert_eq!(df.row_count() as i64, recovered + 1);
}
